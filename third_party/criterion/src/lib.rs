//! A minimal, dependency-free, **offline** stand-in for the `criterion`
//! crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate accepts the same bench-definition surface
//! the workspace's benches use (`criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `iter`, `iter_batched`) and measures wall-clock mean time per iteration —
//! no warm-up/measurement statistics beyond simple repetition, no plots, no
//! saved baselines. Results print as `<group>/<name>  time: [… per iter]`,
//! and are also exposed machine-readably via [`Criterion::take_results`] for
//! harnesses that want JSON.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export for drop-in compatibility: prevents the optimizer from
/// removing a computation whose result is otherwise unused.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: batch many iterations per setup.
    SmallInput,
    /// Large per-iteration inputs: one setup per iteration.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/param`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/name` label.
    pub id: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Number of measured iterations.
    pub iters: u64,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of samples (used as a repetition hint).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// A top-level benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) {
        let id = id.to_string();
        self.run_one(id, f);
    }

    /// Drains the measurements collected so far (for JSON emitters).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        // Warm-up pass.
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            let mut b = Bencher {
                budget: Duration::from_millis(1),
                total: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
        }
        // Measurement pass.
        let mut b = Bencher {
            budget: self.measurement_time,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iters as f64
        };
        println!(
            "{id:<48} time: [{} per iter, {} iters]",
            fmt_ns(mean_ns),
            b.iters
        );
        self.results.push(BenchResult {
            id,
            mean_ns,
            iters: b.iters,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample-size hint for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Sets the measurement duration for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `<group>/<id>`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) {
        let id = format!("{}/{}", self.name, id);
        self.criterion.run_one(id, f);
    }

    /// Benchmarks `f` with an input value under `<group>/<id>`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let id = format!("{}/{}", self.name, id);
        self.criterion.run_one(id, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to bench closures; runs the measured routine.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly until the time budget is exhausted.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let deadline = Instant::now() + self.budget;
        loop {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, R, S: FnMut() -> I, F: FnMut(I) -> R>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + self.budget;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Like `iter_batched`, mutating the input in place.
    pub fn iter_batched_ref<I, R, S: FnMut() -> I, F: FnMut(&mut I) -> R>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + self.budget;
        loop {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.total += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Defines a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
