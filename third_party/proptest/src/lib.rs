//! A minimal, dependency-free, **offline** stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `proptest` cannot be fetched. This crate reimplements exactly the
//! slice of its API the workspace's tests use — deterministic random input
//! generation driven by a per-test seed, the `proptest!`/`prop_compose!`/
//! `prop_oneof!` macros, and the `prop_assert*` family. There is **no
//! shrinking**: a failing case reports its case number and message; rerunning
//! is deterministic, so failures reproduce exactly.
//!
//! Determinism: every generated value derives from a seed hashed from the
//! test's module path and name, so failures are stable across runs and
//! machines.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration, RNG and case-level error type.

    /// Result of a single property-test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property failed; the test should panic.
        Fail(String),
        /// The inputs were rejected (e.g. by `prop_assume!`); skip the case.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed case with a reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected (skipped) case with a reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    /// Runner configuration. Only `cases` is supported.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A deterministic splitmix64 RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from a test name (stable across runs/platforms).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name, mixed so nearby names diverge.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`. `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform boolean.
        pub fn next_bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values for property tests.
    ///
    /// Unlike the real proptest there is no value tree / shrinking; a
    /// strategy simply produces a value from the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then runs the strategy `f`
        /// produces from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Filters generated values; rejected values are retried (bounded).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let this = Rc::new(self);
            BoxedStrategy {
                gen: Rc::new(move |rng| this.new_value(rng)),
            }
        }
    }

    /// Strategies can be used by shared reference.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive values: {}",
                self.whence
            )
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A type-erased strategy (no shrinking, so just a generator closure).
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    /// Uniform choice among boxed alternatives (backs `prop_oneof!`).
    #[derive(Debug, Clone)]
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union of the given alternatives (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].new_value(rng)
        }
    }

    /// A strategy from a plain generator closure (backs `prop_compose!`).
    pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T> {
        f: F,
    }

    impl<T, F: Fn(&mut TestRng) -> T> FnStrategy<T, F> {
        /// Wraps `f` as a strategy.
        pub fn new(f: F) -> Self {
            FnStrategy { f }
        }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + off) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi - lo + 1;
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    (lo + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-domain strategy for a primitive.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyPrim<T>(pub std::marker::PhantomData<T>);

    impl<T> Default for AnyPrim<T> {
        fn default() -> Self {
            AnyPrim(std::marker::PhantomData)
        }
    }

    impl Strategy for AnyPrim<bool> {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_bool()
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrim<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrim::default()
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrim<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrim<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrim::default()
                }
            }
        )*};
    }
    arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of values from `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` of values from `element` with *target* size drawn from
    /// `size` (duplicates shrink the result, as in real proptest).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = std::collections::BTreeSet::new();
            for _ in 0..n {
                out.insert(self.element.new_value(rng));
            }
            out
        }
    }
}

pub mod option {
    //! Strategies for `Option`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`, `None` with probability 1/4.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` of a value from `inner` (3/4) or `None` (1/4).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

pub mod bool {
    //! Strategies for `bool`.

    use crate::arbitrary::AnyPrim;

    /// Uniform boolean strategy.
    pub const ANY: AnyPrim<std::primitive::bool> = AnyPrim(std::marker::PhantomData);
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Defines property tests. See the real proptest's docs; this version runs
/// `cases` deterministic cases and panics (without shrinking) on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                match result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Composes strategies into a named strategy-returning function.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($params:tt)*)
        ($($bind:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($params)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(
                move |rng: &mut $crate::test_runner::TestRng| -> $ret {
                    $(let $bind = $crate::strategy::Strategy::new_value(&($strat), rng);)+
                    $body
                },
            )
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!` but fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!` but fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            let msg = format!($($fmt)+);
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{msg}\n  left: {left:?}\n right: {right:?}"),
            ));
        }
    }};
}

/// Like `assert_ne!` but fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
