//! A minimal, dependency-free, **offline** stand-in for the `rand` crate.
//!
//! Provides exactly what this workspace uses: `rand::rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer ranges,
//! `Rng::gen::<f64>()` and `Rng::gen_bool`. The generator is splitmix64 —
//! deterministic, seed-stable across platforms, and *not* the real StdRng
//! stream (workload generators here only need reproducibility, not
//! compatibility with rand's historical output).

#![forbid(unsafe_code)]

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a range (integers only).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw entropy source backing the [`Rng`] helpers.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Values generable from raw bits (backs [`Rng::gen`]).
pub trait Standard: Sized {
    /// Produces a value from the generator.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

/// Integer types uniformly samplable via an `i128` widening (keeps the
/// `SampleRange` impls blanket-generic so literal inference works as with
/// the real rand crate).
pub trait UniformInt: Copy {
    /// Widens to `i128`.
    fn to_i128(self) -> i128;
    /// Narrows from `i128` (the value is always in range by construction).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "empty range");
        let off = (rng.next_u64() as i128).rem_euclid(hi - lo);
        T::from_i128(lo + off)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "empty range");
        let off = (rng.next_u64() as i128).rem_euclid(hi - lo + 1);
        T::from_i128(lo + off)
    }
}

/// High-level sampling helpers over an entropy source.
pub trait Rng: RngCore {
    /// A uniform value of `T`'s full generable domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform value from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic splitmix64 generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}
