//! The decomposition graph AST and its builder.

use crate::{DecompError, DsKind};
use relic_spec::{Catalog, ColSet};
use std::collections::HashMap;
use std::fmt;

/// Identifies a node (a let-bound variable `v : B ▷ C`) of a decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The node's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a map edge `C -[ψ]-> v` of a decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u16);

impl EdgeId {
    /// The edge's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A map edge: for each valuation of `key`, the data structure `ds` maps to
/// an instance of node `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Source node (the node whose body contains this map primitive).
    pub from: NodeId,
    /// Key columns `C` of the map.
    pub key: ColSet,
    /// The implementing data structure `ψ`.
    pub ds: DsKind,
    /// Target node `v`.
    pub to: NodeId,
}

impl Edge {
    /// Is this a *unit-key* edge (`{} -[ψ]-> v`)? Such a map holds at most
    /// one entry, so backends may collapse the container to a plain
    /// optional slot reference regardless of `ψ`.
    pub fn is_unit_key(&self) -> bool {
        self.key.is_empty()
    }
}

/// A node body: the primitive `pˆ` on the right-hand side of a let binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// `unit C` — a single tuple with columns `C` (possibly empty).
    Unit(ColSet),
    /// A map primitive, stored in the edge table.
    Map(EdgeId),
    /// A natural join `pˆ₁ ⋈ pˆ₂` of two sub-bodies.
    Join(Box<Body>, Box<Body>),
}

impl Body {
    /// Iterates the body's leaves in left-to-right order.
    pub fn leaves(&self) -> Vec<&Body> {
        let mut out = Vec::new();
        fn walk<'a>(b: &'a Body, out: &mut Vec<&'a Body>) {
            match b {
                Body::Join(l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
                leaf => out.push(leaf),
            }
        }
        walk(self, &mut out);
        out
    }

    /// The edges mentioned in this body, left-to-right.
    pub fn edges(&self) -> Vec<EdgeId> {
        self.leaves()
            .into_iter()
            .filter_map(|l| match l {
                Body::Map(e) => Some(*e),
                _ => None,
            })
            .collect()
    }
}

/// A let-bound decomposition node `v : B ▷ C`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The variable name.
    pub name: String,
    /// `B`: columns bound on any path from the root to this node. Every
    /// instance of the node corresponds to a distinct valuation of `B`.
    pub bound: ColSet,
    /// `C`: columns represented by the subgraph rooted here.
    pub cols: ColSet,
    /// The node's body `pˆ`.
    pub body: Body,
}

/// A decomposition: a rooted DAG of nodes and map edges (paper §3.1).
///
/// Nodes are stored in *let order* — every edge points from a later node to
/// an earlier one, and the root is the last node. Construct with
/// [`DecompBuilder`] or [`crate::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    incoming: Vec<Vec<EdgeId>>,
}

impl Decomposition {
    /// The root node (always the last in let order).
    pub fn root(&self) -> NodeId {
        NodeId((self.nodes.len() - 1) as u16)
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Edge lookup.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// All nodes in let order (targets before sources; root last).
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u16), n))
    }

    /// All edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u16), e))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of map edges — the paper's decomposition "size" (§5, §6).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edges whose target is `id`.
    pub fn incoming_edges(&self, id: NodeId) -> &[EdgeId] {
        &self.incoming[id.index()]
    }

    /// Nodes in topological order, root first (parents before children) —
    /// the traversal order of `dinsert` (§4.4).
    pub fn topo_root_first(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).rev().map(|i| NodeId(i as u16))
    }

    /// Looks a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u16))
    }

    /// Renders the decomposition in the concrete let-notation accepted by
    /// [`crate::parse`].
    pub fn to_let_notation(&self, cat: &Catalog) -> String {
        let mut out = String::new();
        for (_, n) in self.nodes() {
            out.push_str(&format!(
                "let {} : {} . {} = {} in\n",
                n.name,
                n.bound.display(cat),
                n.cols.display(cat),
                self.body_to_string(&n.body, cat)
            ));
        }
        out.push_str(&self.nodes.last().unwrap().name);
        out
    }

    fn body_to_string(&self, b: &Body, cat: &Catalog) -> String {
        match b {
            Body::Unit(c) => format!("unit {}", c.display(cat)),
            Body::Map(e) => {
                let e = self.edge(*e);
                format!(
                    "{} -[{}]-> {}",
                    e.key.display(cat),
                    e.ds,
                    self.node(e.to).name
                )
            }
            Body::Join(l, r) => {
                let ls = match **l {
                    Body::Join(..) => format!("({})", self.body_to_string(l, cat)),
                    _ => format!("({})", self.body_to_string(l, cat)),
                };
                let rs = format!("({})", self.body_to_string(r, cat));
                format!("{ls} join {rs}")
            }
        }
    }

    /// A canonical serialization of the decomposition *shape*: node names are
    /// normalized by first-visit order from the root, join branches are
    /// sorted, and data-structure kinds are included iff `with_ds`. Two
    /// decompositions are isomorphic (in the paper's Fig. 11 sense, "up to
    /// the choice of data structures") iff their `with_ds = false` forms
    /// agree.
    pub fn canonical_string(&self, with_ds: bool) -> String {
        let mut names: HashMap<NodeId, usize> = HashMap::new();
        let mut counter = 0usize;
        let mut memo: HashMap<NodeId, String> = HashMap::new();
        self.canon_node(self.root(), with_ds, &mut names, &mut counter, &mut memo)
    }

    fn canon_node(
        &self,
        id: NodeId,
        with_ds: bool,
        names: &mut HashMap<NodeId, usize>,
        counter: &mut usize,
        memo: &mut HashMap<NodeId, String>,
    ) -> String {
        if let Some(&n) = names.get(&id) {
            // Shared node: refer back by normalized name.
            return format!("@{n}");
        }
        names.insert(id, *counter);
        let my_name = *counter;
        *counter += 1;
        let body = self.canon_body(&self.node(id).body, with_ds, names, counter, memo);
        let s = format!("#{my_name}:{}", body);
        memo.insert(id, s.clone());
        s
    }

    fn canon_body(
        &self,
        b: &Body,
        with_ds: bool,
        names: &mut HashMap<NodeId, usize>,
        counter: &mut usize,
        memo: &mut HashMap<NodeId, String>,
    ) -> String {
        match b {
            Body::Unit(c) => format!("u{:x}", c.iter().fold(0u64, |a, c| a | (1 << c.index()))),
            Body::Map(e) => {
                let e = self.edge(*e);
                let key: u64 = e.key.iter().fold(0u64, |a, c| a | (1 << c.index()));
                let child = self.canon_node(e.to, with_ds, names, counter, memo);
                if with_ds {
                    format!("m{key:x}[{}]({child})", e.ds)
                } else {
                    format!("m{key:x}({child})")
                }
            }
            Body::Join(l, r) => {
                // Decide branch order *before* committing normalized names:
                // serialize each side against a throwaway copy of the naming
                // state, compare, then serialize in that order for real.
                // Both probes start from identical state, so the order is
                // independent of the original left/right arrangement.
                let probe = |b: &Body| {
                    let mut names2 = names.clone();
                    let mut counter2 = *counter;
                    let mut memo2 = memo.clone();
                    self.canon_body(b, with_ds, &mut names2, &mut counter2, &mut memo2)
                };
                let (first, second) = if probe(l) <= probe(r) { (l, r) } else { (r, l) };
                let a = self.canon_body(first, with_ds, names, counter, memo);
                let b = self.canon_body(second, with_ds, names, counter, memo);
                format!("j({a},{b})")
            }
        }
    }
}

/// A body specification used when building nodes (the user-facing analog of
/// [`Body`], with node references instead of edge ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Prim {
    /// `unit C`.
    Unit(ColSet),
    /// `C -[ψ]-> v`.
    Map(ColSet, DsKind, NodeId),
    /// `pˆ₁ ⋈ pˆ₂`.
    Join(Box<Prim>, Box<Prim>),
}

impl Prim {
    /// Convenience constructor for a join.
    pub fn join(l: Prim, r: Prim) -> Prim {
        Prim::Join(Box::new(l), Box::new(r))
    }
}

/// Builds a [`Decomposition`] bottom-up, one let binding at a time.
///
/// # Example
///
/// The chain decomposition `x = {src} -> y = {dst} -> unit {weight}`:
///
/// ```
/// use relic_spec::Catalog;
/// use relic_decomp::{DecompBuilder, DsKind, Prim};
///
/// let mut cat = Catalog::new();
/// let (src, dst, weight) = (cat.intern("src"), cat.intern("dst"), cat.intern("weight"));
/// let mut b = DecompBuilder::new();
/// let z = b.node("z", src | dst, Prim::Unit(weight.into()))?;
/// let y = b.node("y", src.into(), Prim::Map(dst.into(), DsKind::HashTable, z))?;
/// let _x = b.node("x", Default::default(), Prim::Map(src.into(), DsKind::HashTable, y))?;
/// let d = b.finish()?;
/// assert_eq!(d.edge_count(), 2);
/// # Ok::<(), relic_decomp::DecompError>(())
/// ```
#[derive(Debug, Default)]
pub struct DecompBuilder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    names: HashMap<String, NodeId>,
}

impl DecompBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        DecompBuilder::default()
    }

    /// Adds the binding `let name : bound ▷ C = prim`, where `C` is computed
    /// from the body. Targets of map primitives must already be bound
    /// (decompositions are built bottom-up), which enforces acyclicity.
    ///
    /// # Errors
    ///
    /// Returns [`DecompError::DuplicateName`] if `name` is already bound and
    /// [`DecompError::UnknownNode`] if a map target has not been added.
    pub fn node(&mut self, name: &str, bound: ColSet, prim: Prim) -> Result<NodeId, DecompError> {
        if self.names.contains_key(name) {
            return Err(DecompError::DuplicateName(name.to_string()));
        }
        let id = NodeId(self.nodes.len() as u16);
        let (body, cols) = self.lower(id, prim)?;
        self.nodes.push(Node {
            name: name.to_string(),
            bound,
            cols,
            body,
        });
        self.names.insert(name.to_string(), id);
        Ok(id)
    }

    fn lower(&mut self, from: NodeId, prim: Prim) -> Result<(Body, ColSet), DecompError> {
        match prim {
            Prim::Unit(c) => Ok((Body::Unit(c), c)),
            Prim::Map(key, ds, to) => {
                if to.index() >= self.nodes.len() {
                    return Err(DecompError::UnknownNode(format!("node #{}", to.0)));
                }
                let eid = EdgeId(self.edges.len() as u16);
                self.edges.push(Edge { from, key, ds, to });
                let cols = key | self.nodes[to.index()].cols;
                Ok((Body::Map(eid), cols))
            }
            Prim::Join(l, r) => {
                let (lb, lc) = self.lower(from, *l)?;
                let (rb, rc) = self.lower(from, *r)?;
                Ok((Body::Join(Box::new(lb), Box::new(rb)), lc | rc))
            }
        }
    }

    /// Resolves a previously added node by name.
    pub fn get(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// The computed columns `C` of a node already added to the builder.
    pub fn node_cols(&self, id: NodeId) -> ColSet {
        self.nodes[id.index()].cols
    }

    /// Finalizes the decomposition. The last node added becomes the root.
    ///
    /// # Errors
    ///
    /// * [`DecompError::Empty`] — no nodes were added.
    /// * [`DecompError::RootBound`] — the root's bound columns are not `∅`.
    /// * [`DecompError::UnreachableNode`] — a non-root node has no incoming
    ///   edge (the paper requires every let-bound variable to appear in the
    ///   rest of the decomposition).
    /// * [`DecompError::BindingMismatch`] — some node's declared `B` differs
    ///   from the union of `B_parent ∪ K` over its incoming edges.
    pub fn finish(self) -> Result<Decomposition, DecompError> {
        if self.nodes.is_empty() {
            return Err(DecompError::Empty);
        }
        let root = NodeId((self.nodes.len() - 1) as u16);
        if !self.nodes[root.index()].bound.is_empty() {
            return Err(DecompError::RootBound(
                self.nodes[root.index()].name.clone(),
            ));
        }
        let mut incoming: Vec<Vec<EdgeId>> = vec![Vec::new(); self.nodes.len()];
        for (i, e) in self.edges.iter().enumerate() {
            incoming[e.to.index()].push(EdgeId(i as u16));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u16);
            if id != root && incoming[i].is_empty() {
                return Err(DecompError::UnreachableNode(node.name.clone()));
            }
            let derived: ColSet = incoming[i]
                .iter()
                .map(|e| {
                    let e = &self.edges[e.index()];
                    self.nodes[e.from.index()].bound | e.key
                })
                .fold(ColSet::EMPTY, ColSet::union);
            if id != root && derived != node.bound {
                return Err(DecompError::BindingMismatch {
                    node: node.name.clone(),
                    declared: node.bound,
                    derived,
                });
            }
        }
        Ok(Decomposition {
            nodes: self.nodes,
            edges: self.edges,
            incoming,
        })
    }
}

impl fmt::Display for Decomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.canonical_string(true))
    }
}

/// Renders the decomposition as a Graphviz `dot` digraph: solid edges for
/// hash tables / trees, dashed for lists, dotted for vectors — following the
/// paper's Fig. 2 conventions.
pub fn to_dot(d: &Decomposition, cat: &Catalog) -> String {
    let mut out = String::from("digraph decomposition {\n  rankdir=TB;\n");
    for (id, n) in d.nodes() {
        let unit = n
            .body
            .leaves()
            .iter()
            .find_map(|l| match l {
                Body::Unit(c) => Some(format!("\\nunit {}", c.display(cat))),
                _ => None,
            })
            .unwrap_or_default();
        out.push_str(&format!(
            "  n{} [label=\"{}: {} . {}{}\"];\n",
            id.0,
            n.name,
            n.bound.display(cat),
            n.cols.display(cat),
            unit
        ));
    }
    for (_, e) in d.edges() {
        let style = match e.ds {
            DsKind::HashTable | DsKind::AvlTree => "solid",
            DsKind::DList | DsKind::IntrusiveList => "dashed",
            DsKind::AssocVec | DsKind::SortedVec => "dotted",
        };
        out.push_str(&format!(
            "  n{} -> n{} [label=\"{} ({})\", style={}];\n",
            e.from.0,
            e.to.0,
            e.key.display(cat),
            e.ds,
            style
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relic_spec::Catalog;

    fn scheduler() -> (Catalog, Decomposition) {
        let mut cat = Catalog::new();
        let ns = cat.intern("ns");
        let pid = cat.intern("pid");
        let state = cat.intern("state");
        let cpu = cat.intern("cpu");
        let mut b = DecompBuilder::new();
        let w = b
            .node("w", ns | pid | state, Prim::Unit(cpu.into()))
            .unwrap();
        let y = b
            .node("y", ns.into(), Prim::Map(pid.into(), DsKind::HashTable, w))
            .unwrap();
        let z = b
            .node("z", state.into(), Prim::Map(ns | pid, DsKind::DList, w))
            .unwrap();
        b.node(
            "x",
            ColSet::EMPTY,
            Prim::join(
                Prim::Map(ns.into(), DsKind::HashTable, y),
                Prim::Map(state.into(), DsKind::AssocVec, z),
            ),
        )
        .unwrap();
        (cat, b.finish().unwrap())
    }

    #[test]
    fn builder_constructs_paper_decomposition() {
        let (cat, d) = scheduler();
        assert_eq!(d.node_count(), 4);
        assert_eq!(d.edge_count(), 4);
        assert_eq!(d.node(d.root()).name, "x");
        assert_eq!(d.node(d.root()).cols, cat.all());
        let w = d.node_by_name("w").unwrap();
        assert_eq!(d.incoming_edges(w).len(), 2, "w is shared");
    }

    #[test]
    fn topo_order_is_root_first() {
        let (_, d) = scheduler();
        let order: Vec<&str> = d
            .topo_root_first()
            .map(|id| d.node(id).name.as_str())
            .collect();
        assert_eq!(order, vec!["x", "z", "y", "w"]);
        // Every edge goes from earlier to later in this order.
        let pos = |id: NodeId| order.iter().position(|n| *n == d.node(id).name).unwrap();
        for (_, e) in d.edges() {
            assert!(pos(e.from) < pos(e.to));
        }
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut cat = Catalog::new();
        let a = cat.intern("a");
        let mut b = DecompBuilder::new();
        b.node("v", a.into(), Prim::Unit(ColSet::EMPTY)).unwrap();
        let err = b
            .node("v", a.into(), Prim::Unit(ColSet::EMPTY))
            .unwrap_err();
        assert!(matches!(err, DecompError::DuplicateName(_)));
    }

    #[test]
    fn root_must_be_unbound() {
        let mut cat = Catalog::new();
        let a = cat.intern("a");
        let mut b = DecompBuilder::new();
        b.node("x", a.into(), Prim::Unit(ColSet::EMPTY)).unwrap();
        assert!(matches!(b.finish(), Err(DecompError::RootBound(_))));
    }

    #[test]
    fn unreachable_node_rejected() {
        let mut cat = Catalog::new();
        let a = cat.intern("a");
        let mut b = DecompBuilder::new();
        b.node("orphan", a.into(), Prim::Unit(ColSet::EMPTY))
            .unwrap();
        b.node("x", ColSet::EMPTY, Prim::Unit(a.into())).unwrap();
        assert!(matches!(b.finish(), Err(DecompError::UnreachableNode(_))));
    }

    #[test]
    fn binding_mismatch_rejected() {
        let mut cat = Catalog::new();
        let a = cat.intern("a");
        let b_ = cat.intern("b");
        let mut b = DecompBuilder::new();
        // Child claims bound = {a, b} but only {a} is bound on its path.
        let y = b.node("y", a | b_, Prim::Unit(ColSet::EMPTY)).unwrap();
        b.node(
            "x",
            ColSet::EMPTY,
            Prim::Map(a.into(), DsKind::HashTable, y),
        )
        .unwrap();
        assert!(matches!(
            b.finish(),
            Err(DecompError::BindingMismatch { .. })
        ));
    }

    #[test]
    fn empty_builder_rejected() {
        assert!(matches!(
            DecompBuilder::new().finish(),
            Err(DecompError::Empty)
        ));
    }

    #[test]
    fn let_notation_mentions_all_nodes() {
        let (cat, d) = scheduler();
        let s = d.to_let_notation(&cat);
        for name in ["w", "y", "z", "x"] {
            assert!(s.contains(&format!("let {name} ")), "missing {name} in {s}");
        }
        assert!(s.contains("join"));
        assert!(s.contains("-[htable]->"));
    }

    #[test]
    fn canonical_string_distinguishes_ds_only_when_asked() {
        let (_, d1) = scheduler();
        // Same shape, different data structure on one edge.
        let mut cat = Catalog::new();
        let ns = cat.intern("ns");
        let pid = cat.intern("pid");
        let state = cat.intern("state");
        let cpu = cat.intern("cpu");
        let mut b = DecompBuilder::new();
        let w = b
            .node("w", ns | pid | state, Prim::Unit(cpu.into()))
            .unwrap();
        let y = b
            .node("y", ns.into(), Prim::Map(pid.into(), DsKind::AvlTree, w))
            .unwrap();
        let z = b
            .node("z", state.into(), Prim::Map(ns | pid, DsKind::DList, w))
            .unwrap();
        b.node(
            "x",
            ColSet::EMPTY,
            Prim::join(
                Prim::Map(ns.into(), DsKind::HashTable, y),
                Prim::Map(state.into(), DsKind::AssocVec, z),
            ),
        )
        .unwrap();
        let d2 = b.finish().unwrap();
        assert_eq!(d1.canonical_string(false), d2.canonical_string(false));
        assert_ne!(d1.canonical_string(true), d2.canonical_string(true));
    }

    #[test]
    fn join_order_does_not_change_canonical_shape() {
        let mut cat = Catalog::new();
        let a = cat.intern("a");
        let b_ = cat.intern("b");
        let build = |flip: bool| {
            let mut bld = DecompBuilder::new();
            let u1 = bld.node("u1", a.into(), Prim::Unit(ColSet::EMPTY)).unwrap();
            let u2 = bld
                .node("u2", b_.into(), Prim::Unit(ColSet::EMPTY))
                .unwrap();
            let l = Prim::Map(a.into(), DsKind::HashTable, u1);
            let r = Prim::Map(b_.into(), DsKind::HashTable, u2);
            let body = if flip {
                Prim::join(r, l)
            } else {
                Prim::join(l, r)
            };
            bld.node("x", ColSet::EMPTY, body).unwrap();
            bld.finish().unwrap()
        };
        assert_eq!(
            build(false).canonical_string(true),
            build(true).canonical_string(true)
        );
    }

    #[test]
    fn dot_export_contains_nodes_and_styles() {
        let (cat, d) = scheduler();
        let dot = to_dot(&d, &cat);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("style=dashed")); // dlist edge
        assert!(dot.contains("style=solid")); // htable edge
        assert!(dot.contains("style=dotted")); // vec edge
    }

    #[test]
    fn body_leaves_and_edges() {
        let (_, d) = scheduler();
        let root = d.node(d.root());
        assert_eq!(root.body.leaves().len(), 2);
        assert_eq!(root.body.edges().len(), 2);
        let w = d.node(d.node_by_name("w").unwrap());
        assert_eq!(w.body.edges().len(), 0);
        assert_eq!(w.body.leaves().len(), 1);
    }
}
