//! Exhaustive enumeration of adequate decompositions (paper §5).
//!
//! The autotuner "exhaustively constructs all decompositions for [a] relation
//! up to a given bound on the number of edges". We enumerate in three stages:
//!
//! 1. **Tree shapes.** Every node body is either `unit C` (all remaining
//!    columns) or a multiset of map branches (a join when there is more than
//!    one). Branch keys and per-branch column coverage range over all
//!    subsets; canonical branch ordering avoids permutation duplicates.
//! 2. **Sharing.** For every tree, nodes with structurally identical subtrees
//!    form merge classes; every subset of classes is merged, yielding DAGs
//!    with shared nodes (e.g. Fig. 12's decomposition 5 vs 9).
//! 3. **Filtering.** Every candidate is run through the real adequacy checker
//!    ([`crate::check_adequacy`]) and deduplicated by canonical form; only
//!    adequate decompositions survive.
//!
//! Data-structure assignment is a separate, final stage
//! ([`enumerate_decompositions`]): the cartesian product of a palette over
//! the shape's edges, mirroring the paper's treatment of decompositions that
//! are "isomorphic up to the choice of data structures" as one shape.

use crate::{check_adequacy, Body, DecompBuilder, Decomposition, DsKind, EdgeId, NodeId, Prim};
use relic_spec::{ColId, ColSet, FdSet, RelSpec};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Options controlling enumeration.
#[derive(Debug, Clone)]
pub struct EnumerateOptions {
    /// Maximum number of map edges (the paper's decomposition "size").
    pub max_edges: usize,
    /// Maximum number of map branches joined in a single node body.
    pub max_branches: usize,
    /// Whether to enumerate shared-node variants (stage 2).
    pub sharing: bool,
    /// Data-structure palette for [`enumerate_decompositions`]. Shapes are
    /// expanded into every assignment of these kinds to their edges.
    pub structures: Vec<DsKind>,
}

impl Default for EnumerateOptions {
    fn default() -> Self {
        EnumerateOptions {
            max_edges: 4,
            max_branches: 3,
            sharing: true,
            structures: vec![DsKind::HashTable],
        }
    }
}

fn bits(c: ColSet) -> u64 {
    c.iter().fold(0u64, |a, c| a | (1u64 << c.index()))
}

fn unbits(b: u64) -> ColSet {
    (0..64)
        .filter(|i| b & (1u64 << i) != 0)
        .map(ColId::from_index)
        .collect()
}

/// A node subtree shape annotated with the columns it represents.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Shape {
    /// Bitset of the columns this subtree represents.
    cols: u64,
    body: ShapeBody,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum ShapeBody {
    /// `unit C` where `C` is the subtree's columns.
    Unit,
    /// A multiset of map branches `(key bits, child shape)`, kept sorted.
    Branches(Vec<(u64, Shape)>),
}

fn shape_edges(s: &Shape) -> usize {
    match &s.body {
        ShapeBody::Unit => 0,
        ShapeBody::Branches(bs) => bs.iter().map(|(_, c)| 1 + shape_edges(c)).sum(),
    }
}

struct Gen<'a> {
    fds: &'a FdSet,
    max_branches: usize,
    memo: HashMap<(u64, u64, usize), Vec<Shape>>,
}

impl<'a> Gen<'a> {
    /// All shapes for a node with bound columns `bound` representing exactly
    /// `need`, using at most `budget` edges.
    fn node_shapes(&mut self, bound: ColSet, need: ColSet, budget: usize) -> Vec<Shape> {
        let key = (bits(bound), bits(need), budget);
        if let Some(s) = self.memo.get(&key) {
            return s.clone();
        }
        let mut out: BTreeSet<Shape> = BTreeSet::new();
        // unit: represent all remaining columns in place. Adequacy ((AUNIT))
        // demands a non-empty bound context and ∆ ⊢ bound → need.
        if !bound.is_empty() && self.fds.implies(bound, need) {
            out.insert(Shape {
                cols: bits(need),
                body: ShapeBody::Unit,
            });
        }
        if budget >= 1 && !need.is_empty() {
            let mut acc = Vec::new();
            self.branches(bound, need, ColSet::EMPTY, budget, None, &mut acc, &mut out);
        }
        let v: Vec<Shape> = out.into_iter().collect();
        self.memo.insert(key, v.clone());
        v
    }

    /// Recursively chooses the next branch `(key, child)` in non-decreasing
    /// canonical order; emits a shape whenever accumulated branches cover
    /// `need`.
    #[allow(clippy::too_many_arguments)]
    fn branches(
        &mut self,
        bound: ColSet,
        need: ColSet,
        covered: ColSet,
        budget: usize,
        min_branch: Option<&(u64, Shape)>,
        acc: &mut Vec<(u64, Shape)>,
        out: &mut BTreeSet<Shape>,
    ) {
        if !acc.is_empty() && covered == need {
            out.insert(Shape {
                cols: bits(need),
                body: ShapeBody::Branches(acc.clone()),
            });
            // Note: branches with *redundant column coverage* are still
            // enumerated below — a join of two access paths over the same
            // columns (the paper's forward + backward graph indexes) changes
            // the physical representation even though it adds no columns.
        }
        if acc.len() >= self.max_branches || budget == 0 {
            return;
        }
        let need_bits = bits(need);
        for kbits in 1..=need_bits {
            if kbits & !need_bits != 0 {
                continue;
            }
            let k = unbits(kbits);
            let rest = need - k;
            for d in rest.subsets() {
                for child in self.node_shapes(bound | k, d, budget - 1) {
                    let edges = 1 + shape_edges(&child);
                    if edges > budget {
                        continue;
                    }
                    let branch = (kbits, child);
                    if let Some(min) = min_branch {
                        // Strictly increasing branch order: canonical and
                        // excludes exactly-duplicated branches.
                        if &branch <= min {
                            continue;
                        }
                    }
                    acc.push(branch.clone());
                    self.branches(
                        bound,
                        need,
                        covered | k | d,
                        budget - edges,
                        Some(&branch),
                        acc,
                        out,
                    );
                    acc.pop();
                }
            }
        }
    }
}

/// Builds a (tree) [`Decomposition`] from a shape with every edge using `ds`.
fn build_shape(shape: &Shape, ds: DsKind) -> Decomposition {
    fn add(
        b: &mut DecompBuilder,
        shape: &Shape,
        bound: ColSet,
        ds: DsKind,
        counter: &mut usize,
    ) -> NodeId {
        let prim = match &shape.body {
            ShapeBody::Unit => Prim::Unit(unbits(shape.cols)),
            ShapeBody::Branches(bs) => {
                let mut prims: Vec<Prim> = Vec::new();
                for (kbits, child) in bs {
                    let k = unbits(*kbits);
                    let target = add(b, child, bound | k, ds, counter);
                    prims.push(Prim::Map(k, ds, target));
                }
                let mut it = prims.into_iter();
                let first = it.next().unwrap();
                it.fold(first, Prim::join)
            }
        };
        let name = format!("n{}", *counter);
        *counter += 1;
        b.node(&name, bound, prim).expect("tree build cannot fail")
    }
    let mut b = DecompBuilder::new();
    let mut counter = 0usize;
    add(&mut b, shape, ColSet::EMPTY, ds, &mut counter);
    b.finish().expect("enumerated trees are structurally valid")
}

/// Enumerates all adequate decomposition *shapes* (one representative per
/// isomorphism class, all edges using `DsKind::HashTable`) with at most
/// `opts.max_edges` map edges.
///
/// The result is deterministic: sorted by (edge count, canonical string).
pub fn enumerate_shapes(spec: &RelSpec, opts: &EnumerateOptions) -> Vec<Decomposition> {
    let mut gen = Gen {
        fds: spec.fds(),
        max_branches: opts.max_branches,
        memo: HashMap::new(),
    };
    let shapes = gen.node_shapes(ColSet::EMPTY, spec.cols(), opts.max_edges);
    let mut seen: HashSet<String> = HashSet::new();
    let mut out: Vec<Decomposition> = Vec::new();
    for s in shapes {
        let tree = build_shape(&s, DsKind::HashTable);
        let mut candidates = vec![tree.clone()];
        if opts.sharing {
            candidates.extend(sharing_variants(&tree));
        }
        for d in candidates {
            if check_adequacy(&d, spec).is_err() {
                continue;
            }
            let canon = d.canonical_string(false);
            if seen.insert(canon) {
                out.push(d);
            }
        }
    }
    out.sort_by(|a, b| {
        (a.edge_count(), a.canonical_string(false))
            .cmp(&(b.edge_count(), b.canonical_string(false)))
    });
    out
}

/// Enumerates adequate decompositions with data structures assigned: every
/// shape from [`enumerate_shapes`] expanded by the cartesian product of
/// `opts.structures` over its edges.
pub fn enumerate_decompositions(spec: &RelSpec, opts: &EnumerateOptions) -> Vec<Decomposition> {
    let shapes = enumerate_shapes(spec, opts);
    let palette = if opts.structures.is_empty() {
        vec![DsKind::HashTable]
    } else {
        opts.structures.clone()
    };
    let mut seen: HashSet<String> = HashSet::new();
    let mut out = Vec::new();
    for shape in &shapes {
        let ne = shape.edge_count();
        let combos = palette.len().pow(ne as u32);
        for idx in 0..combos {
            let mut assignment = Vec::with_capacity(ne);
            let mut rem = idx;
            for _ in 0..ne {
                assignment.push(palette[rem % palette.len()]);
                rem /= palette.len();
            }
            let d = reassign_structures(shape, &assignment);
            if check_adequacy(&d, spec).is_err() {
                continue;
            }
            let canon = d.canonical_string(true);
            if seen.insert(canon) {
                out.push(d);
            }
        }
    }
    out.sort_by(|a, b| {
        (a.edge_count(), a.canonical_string(true)).cmp(&(b.edge_count(), b.canonical_string(true)))
    });
    out
}

/// Rebuilds `d` with the `i`-th edge (in edge order) using `assignment[i]`.
///
/// # Panics
///
/// Panics if `assignment.len() != d.edge_count()`.
pub fn reassign_structures(d: &Decomposition, assignment: &[DsKind]) -> Decomposition {
    assert_eq!(assignment.len(), d.edge_count(), "one kind per edge");
    let mut b = DecompBuilder::new();
    let mut newid: HashMap<NodeId, NodeId> = HashMap::new();
    for (v, node) in d.nodes() {
        let prim = prim_of(d, &node.body, &|t| t, &newid, Some(assignment));
        let id = b
            .node(&node.name, node.bound, prim)
            .expect("structure-preserving rebuild cannot fail");
        newid.insert(v, id);
    }
    b.finish()
        .expect("structure-preserving rebuild cannot fail")
}

/// All sharing variants of a tree decomposition: for every non-empty subset
/// of merge classes (groups of non-root nodes with identical subtree
/// structure), merge each selected class into a single shared node.
fn sharing_variants(d: &Decomposition) -> Vec<Decomposition> {
    let mut keys: HashMap<NodeId, String> = HashMap::new();
    let mut classes: HashMap<String, Vec<NodeId>> = HashMap::new();
    for (id, _) in d.nodes() {
        let key = subtree_key(d, id, &mut keys);
        if id != d.root() {
            classes.entry(key).or_default().push(id);
        }
    }
    let mut classes: Vec<Vec<NodeId>> = classes.into_values().filter(|v| v.len() >= 2).collect();
    classes.sort();
    if classes.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for mask in 1..(1usize << classes.len()) {
        let mut rep: HashMap<NodeId, NodeId> = HashMap::new();
        for (i, class) in classes.iter().enumerate() {
            if mask & (1 << i) != 0 {
                for &m in &class[1..] {
                    rep.insert(m, class[0]);
                }
            }
        }
        if let Some(merged) = merge(d, &rep) {
            out.push(merged);
        }
    }
    out
}

fn subtree_key(d: &Decomposition, id: NodeId, memo: &mut HashMap<NodeId, String>) -> String {
    if let Some(s) = memo.get(&id) {
        return s.clone();
    }
    let body = body_key(d, &d.node(id).body, memo);
    let key = format!("[{:x}]{}", bits(d.node(id).cols), body);
    memo.insert(id, key.clone());
    key
}

fn body_key(d: &Decomposition, b: &Body, memo: &mut HashMap<NodeId, String>) -> String {
    match b {
        Body::Unit(c) => format!("u{:x}", bits(*c)),
        Body::Map(e) => {
            let e = d.edge(*e);
            format!(
                "m{:x}[{}]({})",
                bits(e.key),
                e.ds,
                subtree_key(d, e.to, memo)
            )
        }
        Body::Join(l, r) => {
            let mut parts = [body_key(d, l, memo), body_key(d, r, memo)];
            parts.sort();
            format!("j({},{})", parts[0], parts[1])
        }
    }
}

/// Rebuilds `d` with node targets redirected through `rep` and bound columns
/// recomputed. Returns `None` if the merged graph is structurally invalid.
fn merge(d: &Decomposition, rep: &HashMap<NodeId, NodeId>) -> Option<Decomposition> {
    let resolve = |v: NodeId| *rep.get(&v).unwrap_or(&v);
    // 1. Reachability from the root through resolved targets.
    let mut reachable = vec![false; d.node_count()];
    let mut stack = vec![d.root()];
    while let Some(v) = stack.pop() {
        if reachable[v.index()] {
            continue;
        }
        reachable[v.index()] = true;
        for e in d.node(v).body.edges() {
            stack.push(resolve(d.edge(e).to));
        }
    }
    // 2. Recompute bound columns root-first (decreasing index ⇒ parents
    //    first, since nodes are stored in let order).
    let mut bound = vec![ColSet::EMPTY; d.node_count()];
    for i in (0..d.node_count()).rev() {
        if !reachable[i] {
            continue;
        }
        let v = NodeId(i as u16);
        for e in d.node(v).body.edges() {
            let edge = d.edge(e);
            let t = resolve(edge.to);
            bound[t.index()] = bound[t.index()] | bound[i] | edge.key;
        }
    }
    // 3. Rebuild child-first through the public builder.
    let mut b = DecompBuilder::new();
    let mut newid: HashMap<NodeId, NodeId> = HashMap::new();
    for i in 0..d.node_count() {
        if !reachable[i] {
            continue;
        }
        let v = NodeId(i as u16);
        let prim = prim_of(d, &d.node(v).body, &resolve, &newid, None);
        let id = b.node(&d.node(v).name, bound[i], prim).ok()?;
        newid.insert(v, id);
    }
    b.finish().ok()
}

/// Converts a stored body back to a builder [`Prim`], redirecting targets
/// through `resolve`/`newid` and optionally reassigning data structures.
fn prim_of(
    d: &Decomposition,
    body: &Body,
    resolve: &impl Fn(NodeId) -> NodeId,
    newid: &HashMap<NodeId, NodeId>,
    ds_assignment: Option<&[DsKind]>,
) -> Prim {
    match body {
        Body::Unit(c) => Prim::Unit(*c),
        Body::Map(e) => {
            let edge = d.edge(*e);
            let t = resolve(edge.to);
            let ds = match ds_assignment {
                Some(a) => a[EdgeId::index(*e)],
                None => edge.ds,
            };
            Prim::Map(edge.key, ds, newid[&t])
        }
        Body::Join(l, r) => Prim::join(
            prim_of(d, l, resolve, newid, ds_assignment),
            prim_of(d, r, resolve, newid, ds_assignment),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relic_spec::Catalog;

    fn graph_spec() -> (Catalog, RelSpec) {
        let mut cat = Catalog::new();
        let src = cat.intern("src");
        let dst = cat.intern("dst");
        let weight = cat.intern("weight");
        let spec = RelSpec::new(src | dst | weight).with_fd(src | dst, weight.into());
        (cat, spec)
    }

    #[test]
    fn enumerates_adequate_shapes_only() {
        let (_, spec) = graph_spec();
        let shapes = enumerate_shapes(&spec, &EnumerateOptions::default());
        assert!(!shapes.is_empty());
        for d in &shapes {
            check_adequacy(d, &spec).unwrap();
            assert!(d.edge_count() <= 4);
        }
    }

    #[test]
    fn shapes_are_distinct() {
        let (_, spec) = graph_spec();
        let shapes = enumerate_shapes(&spec, &EnumerateOptions::default());
        let canon: HashSet<String> = shapes.iter().map(|d| d.canonical_string(false)).collect();
        assert_eq!(canon.len(), shapes.len());
    }

    #[test]
    fn includes_fig12_decompositions() {
        // Fig. 12 #1: src -> dst -> unit{weight} (a 2-edge chain);
        // Fig. 12 #9: (src -> dst -> unit) join (dst -> src -> unit);
        // Fig. 12 #5: same with the two units shared.
        let (mut cat, spec) = graph_spec();
        let shapes = enumerate_shapes(&spec, &EnumerateOptions::default());
        let canon: HashSet<String> = shapes.iter().map(|d| d.canonical_string(false)).collect();

        let chain = crate::parse(
            &mut cat,
            "let z : {src,dst} . {weight} = unit {weight} in
             let y : {src} . {dst,weight} = {dst} -[htable]-> z in
             let x : {} . {src,dst,weight} = {src} -[htable]-> y in x",
        )
        .unwrap();
        assert!(
            canon.contains(&chain.canonical_string(false)),
            "missing chain"
        );

        let unshared = crate::parse(
            &mut cat,
            "let l : {src,dst} . {weight} = unit {weight} in
             let r : {src,dst} . {weight} = unit {weight} in
             let y : {src} . {dst,weight} = {dst} -[htable]-> l in
             let z : {dst} . {src,weight} = {src} -[htable]-> r in
             let x : {} . {src,dst,weight} =
               ({src} -[htable]-> y) join ({dst} -[htable]-> z) in x",
        )
        .unwrap();
        assert!(
            canon.contains(&unshared.canonical_string(false)),
            "missing unshared join"
        );

        let shared = crate::parse(
            &mut cat,
            "let w : {src,dst} . {weight} = unit {weight} in
             let y : {src} . {dst,weight} = {dst} -[htable]-> w in
             let z : {dst} . {src,weight} = {src} -[htable]-> w in
             let x : {} . {src,dst,weight} =
               ({src} -[htable]-> y) join ({dst} -[htable]-> z) in x",
        )
        .unwrap();
        assert!(
            canon.contains(&shared.canonical_string(false)),
            "missing shared join"
        );
    }

    #[test]
    fn sharing_toggle_changes_count() {
        let (_, spec) = graph_spec();
        let with = enumerate_shapes(&spec, &EnumerateOptions::default());
        let without = enumerate_shapes(
            &spec,
            &EnumerateOptions {
                sharing: false,
                ..Default::default()
            },
        );
        assert!(with.len() > without.len());
    }

    #[test]
    fn ds_assignment_expands_shapes() {
        let (_, spec) = graph_spec();
        let opts = EnumerateOptions {
            max_edges: 2,
            structures: vec![DsKind::HashTable, DsKind::AvlTree],
            ..Default::default()
        };
        let shapes = enumerate_shapes(&spec, &opts);
        let ds = enumerate_decompositions(&spec, &opts);
        assert!(ds.len() > shapes.len());
        let shape_canon: HashSet<String> =
            shapes.iter().map(|d| d.canonical_string(false)).collect();
        for d in &ds {
            assert!(shape_canon.contains(&d.canonical_string(false)));
        }
    }

    #[test]
    fn reassign_structures_changes_only_ds() {
        let (_, spec) = graph_spec();
        let shapes = enumerate_shapes(
            &spec,
            &EnumerateOptions {
                max_edges: 2,
                ..Default::default()
            },
        );
        let d = &shapes[0];
        let all_avl: Vec<DsKind> = vec![DsKind::AvlTree; d.edge_count()];
        let d2 = reassign_structures(d, &all_avl);
        assert_eq!(d.canonical_string(false), d2.canonical_string(false));
        assert!(d2.edges().all(|(_, e)| e.ds == DsKind::AvlTree));
    }

    #[test]
    fn single_column_set_relation() {
        let mut cat = Catalog::new();
        let id = cat.intern("id");
        let spec = RelSpec::new(id.into());
        let shapes = enumerate_shapes(
            &spec,
            &EnumerateOptions {
                max_edges: 2,
                ..Default::default()
            },
        );
        assert!(!shapes.is_empty());
        for d in &shapes {
            check_adequacy(d, &spec).unwrap();
        }
    }

    #[test]
    fn edge_budget_is_respected() {
        let (_, spec) = graph_spec();
        for max in 1..=4 {
            let shapes = enumerate_shapes(
                &spec,
                &EnumerateOptions {
                    max_edges: max,
                    ..Default::default()
                },
            );
            assert!(shapes.iter().all(|d| d.edge_count() <= max));
        }
    }

    #[test]
    fn shape_counts_grow_with_budget() {
        let (_, spec) = graph_spec();
        let counts: Vec<usize> = (1..=4)
            .map(|max| {
                enumerate_shapes(
                    &spec,
                    &EnumerateOptions {
                        max_edges: max,
                        ..Default::default()
                    },
                )
                .len()
            })
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }
}
