//! Decomposition cuts (paper §4.5).
//!
//! Given a tuple pattern with domain `C`, a *cut* partitions the nodes of a
//! decomposition into `X` (nodes that may represent tuples **not** matching
//! the pattern) and `Y` (nodes that can only represent matching tuples):
//! `v ∈ Y ⟺ ∆ ⊢fd B_v → C`. Removal breaks exactly the edges crossing from
//! `X` into `Y`; everything below becomes unreachable and is reclaimed.

use crate::{Decomposition, EdgeId, NodeId};
use relic_spec::{ColSet, FdSet};

/// The cut of a decomposition for a pattern domain (paper Fig. 10).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    /// The pattern columns `C` the cut was computed for.
    pub cols: ColSet,
    /// `below[v]` is true iff node `v ∈ Y` (only represents matching tuples).
    pub below: Vec<bool>,
    /// The edges crossing from `X` to `Y`, in edge order.
    pub crossing: Vec<EdgeId>,
}

impl Cut {
    /// Is node `v` below the cut (in `Y`)?
    pub fn is_below(&self, v: NodeId) -> bool {
        self.below[v.index()]
    }
}

/// Computes the cut of `d` for pattern columns `cols` under dependencies
/// `fds`.
///
/// The cut always exists and is unique (a consequence of adequacy, per the
/// paper); for structurally valid decompositions no edge points from `Y`
/// back into `X`, which this function asserts in debug builds.
pub fn cut(d: &Decomposition, fds: &FdSet, cols: ColSet) -> Cut {
    let below: Vec<bool> = d
        .nodes()
        .map(|(_, n)| cols.is_subset(fds.closure(n.bound)))
        .collect();
    let mut crossing = Vec::new();
    for (id, e) in d.edges() {
        let from_below = below[e.from.index()];
        let to_below = below[e.to.index()];
        debug_assert!(
            !from_below || to_below,
            "cut direction violated: edge from Y into X"
        );
        if !from_below && to_below {
            crossing.push(id);
        }
    }
    Cut {
        cols,
        below,
        crossing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DecompBuilder, DsKind, Prim};
    use relic_spec::{Catalog, ColId, RelSpec};

    fn scheduler() -> (Catalog, RelSpec, Decomposition, [ColId; 4]) {
        let mut cat = Catalog::new();
        let ns = cat.intern("ns");
        let pid = cat.intern("pid");
        let state = cat.intern("state");
        let cpu = cat.intern("cpu");
        let spec = RelSpec::new(ns | pid | state | cpu).with_fd(ns | pid, state | cpu);
        let mut b = DecompBuilder::new();
        let w = b
            .node("w", ns | pid | state, Prim::Unit(cpu.into()))
            .unwrap();
        let y = b
            .node("y", ns.into(), Prim::Map(pid.into(), DsKind::HashTable, w))
            .unwrap();
        let z = b
            .node("z", state.into(), Prim::Map(ns | pid, DsKind::DList, w))
            .unwrap();
        b.node(
            "x",
            ColSet::EMPTY,
            Prim::join(
                Prim::Map(ns.into(), DsKind::HashTable, y),
                Prim::Map(state.into(), DsKind::AssocVec, z),
            ),
        )
        .unwrap();
        (cat, spec, b.finish().unwrap(), [ns, pid, state, cpu])
    }

    #[test]
    fn fig10a_cut_for_ns_pid() {
        // Fig. 10(a): cutting on {ns, pid} puts only w below the cut; both
        // edges into w cross.
        let (_, spec, d, [ns, pid, _, _]) = scheduler();
        let c = cut(&d, spec.fds(), ns | pid);
        let w = d.node_by_name("w").unwrap();
        let x = d.node_by_name("x").unwrap();
        let y = d.node_by_name("y").unwrap();
        let z = d.node_by_name("z").unwrap();
        assert!(c.is_below(w));
        assert!(!c.is_below(x) && !c.is_below(y) && !c.is_below(z));
        assert_eq!(c.crossing.len(), 2);
        for e in &c.crossing {
            assert_eq!(d.edge(*e).to, w);
        }
    }

    #[test]
    fn fig10b_cut_for_state() {
        // Fig. 10(b): cutting on {state} puts z and w below the cut; the
        // crossing edges are x→z and y→w.
        let (_, spec, d, [_, _, state, _]) = scheduler();
        let c = cut(&d, spec.fds(), state.into());
        let w = d.node_by_name("w").unwrap();
        let z = d.node_by_name("z").unwrap();
        let y = d.node_by_name("y").unwrap();
        assert!(c.is_below(w) && c.is_below(z));
        assert!(!c.is_below(y));
        let crossing_targets: Vec<_> = c.crossing.iter().map(|e| d.edge(*e).to).collect();
        assert!(crossing_targets.contains(&w));
        assert!(crossing_targets.contains(&z));
        assert_eq!(c.crossing.len(), 2);
    }

    #[test]
    fn full_tuple_cut_only_excludes_root_region() {
        let (_, spec, d, [ns, pid, state, cpu]) = scheduler();
        let c = cut(&d, spec.fds(), ns | pid | state | cpu);
        // Only w (bound {ns,pid,state} whose closure adds cpu) is below.
        let w = d.node_by_name("w").unwrap();
        assert!(c.is_below(w));
        assert_eq!(c.below.iter().filter(|b| **b).count(), 1);
    }

    #[test]
    fn empty_pattern_puts_everything_below() {
        // Removing with an empty pattern clears the relation: every node's
        // bound closure contains ∅, so all nodes (even the root) are in Y.
        let (_, spec, d, _) = scheduler();
        let c = cut(&d, spec.fds(), ColSet::EMPTY);
        assert!(c.below.iter().all(|b| *b));
        assert!(c.crossing.is_empty());
    }

    #[test]
    fn closure_extends_cut_membership() {
        // Cutting on {cpu}: w's bound {ns,pid,state} determines cpu via the
        // FD, so w is below even though cpu ∉ B_w.
        let (_, spec, d, [_, _, _, cpu]) = scheduler();
        let c = cut(&d, spec.fds(), cpu.into());
        let w = d.node_by_name("w").unwrap();
        assert!(c.is_below(w));
        let x = d.node_by_name("x").unwrap();
        assert!(!c.is_below(x));
    }
}
