//! A hand-written lexer and recursive-descent parser for the let-notation
//! concrete syntax of decompositions.
//!
//! ```text
//! decomp  := { "let" IDENT ":" colset "." colset "=" prim "in" } IDENT
//! prim    := term { "join" term }
//! term    := "unit" colset
//!          | colset "-[" IDENT "]->" IDENT
//!          | "(" prim ")"
//! colset  := "{" [ IDENT { "," IDENT } ] "}"
//! ```
//!
//! Line comments start with `//`. Column names are interned into the caller's
//! [`Catalog`] on sight.

use crate::{DecompBuilder, Decomposition, DsKind, ParseError, Prim};
use relic_spec::{Catalog, ColSet};

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Let,
    In,
    Unit,
    Join,
    Ident(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Colon,
    Dot,
    Eq,
    /// `-[`
    ArrowOpen,
    /// `]->`
    ArrowClose,
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Let => write!(f, "`let`"),
            Tok::In => write!(f, "`in`"),
            Tok::Unit => write!(f, "`unit`"),
            Tok::Join => write!(f, "`join`"),
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::ArrowOpen => write!(f, "`-[`"),
            Tok::ArrowClose => write!(f, "`]->`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = *self.src.get(self.pos)?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<(Tok, usize, usize), ParseError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok((Tok::Eof, line, col));
        };
        let tok = match c {
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b':' => {
                self.bump();
                Tok::Colon
            }
            b'.' => {
                self.bump();
                Tok::Dot
            }
            b'=' => {
                self.bump();
                Tok::Eq
            }
            b'-' => {
                self.bump();
                if self.peek() == Some(b'[') {
                    self.bump();
                    Tok::ArrowOpen
                } else {
                    return Err(ParseError::new(line, col, "expected `-[`"));
                }
            }
            b']' => {
                self.bump();
                if self.peek() == Some(b'-') && self.peek2() == Some(b'>') {
                    self.bump();
                    self.bump();
                    Tok::ArrowClose
                } else {
                    return Err(ParseError::new(line, col, "expected `]->`"));
                }
            }
            c if c.is_ascii_alphanumeric() || c == b'_' => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                // The loop above only accepts ASCII identifier bytes, so the
                // slice is valid UTF-8 by construction — but the tokenizer
                // runs over untrusted input, so decode failure is a typed
                // diagnostic, never a panic.
                let word = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| ParseError::new(line, col, "identifier is not valid UTF-8"))?;
                match word {
                    "let" => Tok::Let,
                    "in" => Tok::In,
                    "unit" => Tok::Unit,
                    "join" => Tok::Join,
                    _ => Tok::Ident(word.to_string()),
                }
            }
            other => {
                return Err(ParseError::new(
                    line,
                    col,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        };
        Ok((tok, line, col))
    }
}

struct Parser<'a> {
    toks: Vec<(Tok, usize, usize)>,
    pos: usize,
    cat: &'a mut Catalog,
    builder: DecompBuilder,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn here(&self) -> (usize, usize) {
        (self.toks[self.pos].1, self.toks[self.pos].2)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            let (l, c) = self.here();
            Err(ParseError::new(
                l,
                c,
                format!("expected {want}, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => {
                let (l, c) = self.here();
                Err(ParseError::new(
                    l,
                    c,
                    format!("expected identifier, found {other}"),
                ))
            }
        }
    }

    fn colset(&mut self) -> Result<ColSet, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut cols = ColSet::EMPTY;
        if *self.peek() != Tok::RBrace {
            loop {
                let name = self.ident()?;
                cols = cols | self.cat.intern(&name);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(cols)
    }

    fn term(&mut self) -> Result<Prim, ParseError> {
        match self.peek().clone() {
            Tok::Unit => {
                self.bump();
                Ok(Prim::Unit(self.colset()?))
            }
            Tok::LParen => {
                self.bump();
                let p = self.prim()?;
                self.expect(Tok::RParen)?;
                Ok(p)
            }
            Tok::LBrace => {
                let key = self.colset()?;
                self.expect(Tok::ArrowOpen)?;
                let (l, c) = self.here();
                let ds_name = self.ident()?;
                let ds = DsKind::from_name(&ds_name).ok_or_else(|| {
                    ParseError::new(l, c, format!("unknown data structure `{ds_name}`"))
                })?;
                self.expect(Tok::ArrowClose)?;
                let (l, c) = self.here();
                let target = self.ident()?;
                let node = self.builder.get(&target).ok_or_else(|| {
                    ParseError::new(
                        l,
                        c,
                        format!("unknown node `{target}` (nodes must be let-bound before use)"),
                    )
                })?;
                Ok(Prim::Map(key, ds, node))
            }
            other => {
                let (l, c) = self.here();
                Err(ParseError::new(
                    l,
                    c,
                    format!("expected `unit`, `{{` or `(`, found {other}"),
                ))
            }
        }
    }

    fn prim(&mut self) -> Result<Prim, ParseError> {
        let mut acc = self.term()?;
        while *self.peek() == Tok::Join {
            self.bump();
            let rhs = self.term()?;
            acc = Prim::join(acc, rhs);
        }
        Ok(acc)
    }

    fn decomp(mut self) -> Result<Decomposition, ParseError> {
        while *self.peek() == Tok::Let {
            self.bump();
            let name = self.ident()?;
            self.expect(Tok::Colon)?;
            let bound = self.colset()?;
            self.expect(Tok::Dot)?;
            let declared_cols = self.colset()?;
            self.expect(Tok::Eq)?;
            let prim = self.prim()?;
            self.expect(Tok::In)?;
            let (l, c) = self.here();
            let id = self
                .builder
                .node(&name, bound, prim)
                .map_err(|e| ParseError::new(l, c, e.to_string()))?;
            // The declared `C` must agree with the body-derived columns.
            let computed = self.builder.node_cols(id);
            if computed != declared_cols {
                return Err(ParseError::new(
                    l,
                    c,
                    format!(
                        "node `{name}` declares columns {declared_cols:?} but its body represents {computed:?}"
                    ),
                ));
            }
        }
        let (l, c) = self.here();
        let root = self.ident()?;
        match self.builder.get(&root) {
            Some(_) => {}
            None => {
                return Err(ParseError::new(l, c, format!("unknown root node `{root}`")));
            }
        }
        self.expect(Tok::Eof)?;
        let d = self
            .builder
            .finish()
            .map_err(|e| ParseError::new(l, c, e.to_string()))?;
        if d.node(d.root()).name != root {
            return Err(ParseError::new(
                l,
                c,
                format!(
                    "root must be the last binding `{}`, found `{root}`",
                    d.node(d.root()).name
                ),
            ));
        }
        Ok(d)
    }
}

/// Parses a decomposition in let-notation, interning column names into `cat`.
///
/// # Errors
///
/// Returns a [`ParseError`] with a 1-based source position on syntax errors,
/// unknown data-structure names, references to unbound nodes, structural
/// errors (duplicate names, binding mismatches) and `C`-annotation mismatches.
pub fn parse(cat: &mut Catalog, src: &str) -> Result<Decomposition, ParseError> {
    let mut lexer = Lexer::new(src);
    let mut toks = Vec::new();
    loop {
        let t = lexer.next_token()?;
        let eof = t.0 == Tok::Eof;
        toks.push(t);
        if eof {
            break;
        }
    }
    Parser {
        toks,
        pos: 0,
        cat,
        builder: DecompBuilder::new(),
    }
    .decomp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_adequacy;
    use relic_spec::RelSpec;

    const SCHEDULER: &str = "
        // The running example of Fig. 2(a).
        let w : {ns,pid,state} . {cpu} = unit {cpu} in
        let y : {ns} . {pid,cpu} = {pid} -[htable]-> w in
        let z : {state} . {ns,pid,cpu} = {ns,pid} -[dlist]-> w in
        let x : {} . {ns,pid,state,cpu} =
          ({ns} -[htable]-> y) join ({state} -[vec]-> z) in
        x";

    #[test]
    fn parses_the_paper_example() {
        let mut cat = Catalog::new();
        let d = parse(&mut cat, SCHEDULER).unwrap();
        assert_eq!(d.node_count(), 4);
        assert_eq!(d.edge_count(), 4);
        let w = d.node_by_name("w").unwrap();
        assert_eq!(d.incoming_edges(w).len(), 2);
        let spec = RelSpec::new(cat.all()).with_fd(
            cat.col("ns").unwrap() | cat.col("pid").unwrap(),
            cat.col("state").unwrap() | cat.col("cpu").unwrap(),
        );
        check_adequacy(&d, &spec).unwrap();
    }

    #[test]
    fn round_trips_through_pretty_printer() {
        let mut cat = Catalog::new();
        let d = parse(&mut cat, SCHEDULER).unwrap();
        let printed = d.to_let_notation(&cat);
        let mut cat2 = cat.clone();
        let d2 = parse(&mut cat2, &printed).unwrap();
        assert_eq!(d.canonical_string(true), d2.canonical_string(true));
    }

    #[test]
    fn reports_unknown_node() {
        let mut cat = Catalog::new();
        let err = parse(&mut cat, "let x : {} . {a} = {a} -[htable]-> ghost in x").unwrap_err();
        assert!(err.message.contains("unknown node `ghost`"), "{err}");
    }

    #[test]
    fn reports_unknown_data_structure() {
        let mut cat = Catalog::new();
        let err = parse(
            &mut cat,
            "let u : {a} . {} = unit {} in let x : {} . {a} = {a} -[btree99]-> u in x",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown data structure"), "{err}");
    }

    #[test]
    fn reports_cols_annotation_mismatch() {
        let mut cat = Catalog::new();
        let err = parse(
            &mut cat,
            "let u : {a} . {} = unit {} in let x : {} . {a,b} = {a} -[htable]-> u in x",
        )
        .unwrap_err();
        assert!(err.message.contains("declares columns"), "{err}");
    }

    #[test]
    fn reports_syntax_error_with_position() {
        let mut cat = Catalog::new();
        let err = parse(&mut cat, "let x : {} . {a} = = in x").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.col > 1);
    }

    #[test]
    fn reports_wrong_root() {
        let mut cat = Catalog::new();
        let err = parse(
            &mut cat,
            "let u : {a} . {} = unit {} in let x : {} . {a} = {a} -[htable]-> u in u",
        )
        .unwrap_err();
        assert!(
            err.message.contains("root") || err.message.contains("bound"),
            "{err}"
        );
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let mut cat = Catalog::new();
        let d = parse(
            &mut cat,
            "// heading\nlet u : {a} . {} = unit {} in // trailing\nlet x : {} . {a} = {a} -[avl]-> u in x",
        )
        .unwrap();
        assert_eq!(d.edge_count(), 1);
        assert_eq!(d.edge(crate::EdgeId(0)).ds, DsKind::AvlTree);
    }

    #[test]
    fn empty_input_is_an_error() {
        let mut cat = Catalog::new();
        assert!(parse(&mut cat, "").is_err());
        assert!(parse(&mut cat, "   // nothing\n").is_err());
    }

    #[test]
    fn all_ds_names_parse() {
        for ds in DsKind::ALL {
            let mut cat = Catalog::new();
            let src = format!(
                "let u : {{a}} . {{}} = unit {{}} in let x : {{}} . {{a}} = {{a}} -[{}]-> u in x",
                ds.name()
            );
            let d = parse(&mut cat, &src).unwrap();
            assert_eq!(d.edge(crate::EdgeId(0)).ds, ds);
        }
    }
}
