//! Error types for the decomposition layer.

use relic_spec::ColSet;
use std::error::Error;
use std::fmt;

/// Structural errors raised while building a decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecompError {
    /// A let binding reused an existing variable name.
    DuplicateName(String),
    /// A map primitive referenced a variable that is not (yet) bound.
    UnknownNode(String),
    /// The builder was finalized without any nodes.
    Empty,
    /// The root node's bound column set must be `∅`.
    RootBound(String),
    /// A non-root node is the target of no map edge.
    UnreachableNode(String),
    /// A node's declared bound columns disagree with the union of
    /// `B_parent ∪ K` over its incoming edges.
    BindingMismatch {
        /// The offending node.
        node: String,
        /// The declared `B`.
        declared: ColSet,
        /// The bound set derived from incoming edges.
        derived: ColSet,
    },
}

impl fmt::Display for DecompError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompError::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            DecompError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            DecompError::Empty => write!(f, "decomposition has no nodes"),
            DecompError::RootBound(n) => {
                write!(f, "root node `{n}` must have empty bound columns")
            }
            DecompError::BindingMismatch {
                node,
                declared,
                derived,
            } => write!(
                f,
                "node `{node}` declares bound columns {declared:?} but its incoming edges bind {derived:?}"
            ),
            DecompError::UnreachableNode(n) => {
                write!(f, "node `{n}` is not referenced by any map edge")
            }
        }
    }
}

impl Error for DecompError {}

/// Violations of the adequacy judgment (paper Fig. 6). Each variant names the
/// rule whose premise failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdequacyError {
    /// (AUNIT) A unit primitive appears where the bound context is `∅`
    /// (e.g. at the root) — the empty relation could not be represented.
    UnitAtRoot {
        /// The node containing the unit.
        node: String,
    },
    /// (AUNIT) The bound context does not functionally determine the unit's
    /// columns: `∆ ⊬ A → C`.
    UnitNotDetermined {
        /// The node containing the unit.
        node: String,
        /// The context columns `A`.
        context: ColSet,
        /// The unit columns `C`.
        unit: ColSet,
    },
    /// (AMAP) The map's context and key do not functionally determine the
    /// target's bound columns: `∆ ⊬ B ∪ C → A`.
    MapNotDetermined {
        /// The source node.
        node: String,
        /// The target node.
        target: String,
        /// `B ∪ C` (context plus key).
        from: ColSet,
        /// The target's bound columns `A`.
        to: ColSet,
    },
    /// (AMAP) The shared target's bound columns do not include this path's
    /// bound columns: `A ⊉ B ∪ C`.
    MapBindingTooNarrow {
        /// The source node.
        node: String,
        /// The target node.
        target: String,
        /// `B ∪ C` on this path.
        path: ColSet,
        /// The target's bound columns `A`.
        to: ColSet,
    },
    /// (AJOIN) The join sides cannot be matched without anomalies:
    /// `∆ ⊬ A ∪ (B ∩ C) → B ⊖ C`.
    JoinAmbiguous {
        /// The node containing the join.
        node: String,
        /// Left branch columns `B`.
        left: ColSet,
        /// Right branch columns `C`.
        right: ColSet,
    },
    /// (AVAR) The root does not represent exactly the relation's columns.
    WrongColumns {
        /// Columns required by the specification.
        expected: ColSet,
        /// Columns represented by the decomposition.
        actual: ColSet,
    },
    /// The decomposition mentions columns outside the specification.
    ForeignColumns {
        /// The offending columns.
        cols: ColSet,
    },
}

impl fmt::Display for AdequacyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdequacyError::UnitAtRoot { node } => write!(
                f,
                "(AUNIT) unit primitive in node `{node}` has empty bound context; \
                 the empty relation would be unrepresentable"
            ),
            AdequacyError::UnitNotDetermined {
                node,
                context,
                unit,
            } => write!(
                f,
                "(AUNIT) in node `{node}`, bound context {context:?} does not determine unit columns {unit:?}"
            ),
            AdequacyError::MapNotDetermined {
                node,
                target,
                from,
                to,
            } => write!(
                f,
                "(AMAP) edge `{node}` -> `{target}`: {from:?} does not determine target binding {to:?}"
            ),
            AdequacyError::MapBindingTooNarrow {
                node,
                target,
                path,
                to,
            } => write!(
                f,
                "(AMAP) edge `{node}` -> `{target}`: target binding {to:?} does not include path columns {path:?}"
            ),
            AdequacyError::JoinAmbiguous { node, left, right } => write!(
                f,
                "(AJOIN) join in node `{node}` of branches {left:?} and {right:?} may produce anomalies"
            ),
            AdequacyError::WrongColumns { expected, actual } => write!(
                f,
                "(AVAR) decomposition represents {actual:?} but the relation has columns {expected:?}"
            ),
            AdequacyError::ForeignColumns { cols } => {
                write!(f, "decomposition mentions foreign columns {cols:?}")
            }
        }
    }
}

impl Error for AdequacyError {}

/// Errors from the let-notation parser, with 1-based line/column positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_rule() {
        let e = AdequacyError::UnitAtRoot {
            node: "x".to_string(),
        };
        assert!(e.to_string().contains("(AUNIT)"));
        let e = AdequacyError::JoinAmbiguous {
            node: "x".to_string(),
            left: ColSet::EMPTY,
            right: ColSet::EMPTY,
        };
        assert!(e.to_string().contains("(AJOIN)"));
    }

    #[test]
    fn parse_error_position() {
        let e = ParseError::new(3, 7, "expected `in`");
        assert_eq!(e.to_string(), "parse error at 3:7: expected `in`");
    }
}
