//! The adequacy judgment of Fig. 6.
//!
//! A decomposition `dˆ` is *adequate* for relations with columns `C`
//! satisfying FDs `∆` when `·; ∅ ⊢a,∆ dˆ; C` is derivable. Adequacy is a
//! sufficient condition for the decomposition to represent **every** relation
//! conforming to the specification (Lemma 1); the runtime refuses to
//! instantiate inadequate decompositions.

use crate::{AdequacyError, Body, Decomposition, NodeId};
use relic_spec::{ColSet, RelSpec};

/// Checks `·; ∅ ⊢a,∆ dˆ; C` for the given decomposition and specification.
///
/// The implementation walks nodes in let order (rule (ALET)), checking each
/// node's body under its bound context (rules (AUNIT)/(AMAP)/(AJOIN)) and
/// finally checks the root (rule (AVAR)).
///
/// # Errors
///
/// Returns the first rule violation found, naming the offending nodes and
/// column sets (see [`AdequacyError`]).
pub fn check_adequacy(d: &Decomposition, spec: &RelSpec) -> Result<(), AdequacyError> {
    // All mentioned columns must belong to the specification.
    let mut mentioned = ColSet::EMPTY;
    for (_, n) in d.nodes() {
        mentioned = mentioned | n.bound | n.cols;
    }
    if !mentioned.is_subset(spec.cols()) {
        return Err(AdequacyError::ForeignColumns {
            cols: mentioned - spec.cols(),
        });
    }

    // (ALET): check each binding in order.
    for (id, node) in d.nodes() {
        check_body(d, spec, id, &node.body, node.bound)?;
    }

    // (AVAR): the root must be bound by ∅ (enforced structurally by the
    // builder) and must represent exactly the relation's columns.
    let root = d.node(d.root());
    if root.cols != spec.cols() {
        return Err(AdequacyError::WrongColumns {
            expected: spec.cols(),
            actual: root.cols,
        });
    }
    Ok(())
}

/// Checks `Σ; A ⊢a,∆ pˆ; B`, returning the represented columns `B`.
fn check_body(
    d: &Decomposition,
    spec: &RelSpec,
    node: NodeId,
    body: &Body,
    context: ColSet,
) -> Result<ColSet, AdequacyError> {
    let fds = spec.fds();
    match body {
        // (AUNIT): A ≠ ∅ and ∆ ⊢ A → C.
        Body::Unit(c) => {
            if context.is_empty() {
                return Err(AdequacyError::UnitAtRoot {
                    node: d.node(node).name.clone(),
                });
            }
            if !fds.implies(context, *c) {
                return Err(AdequacyError::UnitNotDetermined {
                    node: d.node(node).name.clone(),
                    context,
                    unit: *c,
                });
            }
            Ok(*c)
        }
        // (AMAP): with (v: A ▷ D) ∈ Σ, require ∆ ⊢ B ∪ C → A and A ⊇ B ∪ C.
        Body::Map(eid) => {
            let e = d.edge(*eid);
            let target = d.node(e.to);
            let path = context | e.key;
            if !fds.implies(path, target.bound) {
                return Err(AdequacyError::MapNotDetermined {
                    node: d.node(node).name.clone(),
                    target: target.name.clone(),
                    from: path,
                    to: target.bound,
                });
            }
            if !path.is_subset(target.bound) {
                return Err(AdequacyError::MapBindingTooNarrow {
                    node: d.node(node).name.clone(),
                    target: target.name.clone(),
                    path,
                    to: target.bound,
                });
            }
            Ok(e.key | target.cols)
        }
        // (AJOIN): ∆ ⊢ A ∪ (B ∩ C) → B ⊖ C.
        Body::Join(l, r) => {
            let b = check_body(d, spec, node, l, context)?;
            let c = check_body(d, spec, node, r, context)?;
            let premise = context | (b & c);
            let anomaly = b.symmetric_difference(c);
            if !fds.implies(premise, anomaly) {
                return Err(AdequacyError::JoinAmbiguous {
                    node: d.node(node).name.clone(),
                    left: b,
                    right: c,
                });
            }
            Ok(b | c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DecompBuilder, DsKind, Prim};
    use relic_spec::{Catalog, ColId};

    struct Sched {
        ns: ColId,
        pid: ColId,
        state: ColId,
        cpu: ColId,
    }

    fn sched() -> Sched {
        let mut cat = Catalog::new();
        let ns = cat.intern("ns");
        let pid = cat.intern("pid");
        let state = cat.intern("state");
        let cpu = cat.intern("cpu");
        Sched {
            ns,
            pid,
            state,
            cpu,
        }
    }

    fn sched_spec(s: &Sched) -> RelSpec {
        RelSpec::new(s.ns | s.pid | s.state | s.cpu).with_fd(s.ns | s.pid, s.state | s.cpu)
    }

    fn paper_decomposition(s: &Sched) -> Decomposition {
        let mut b = DecompBuilder::new();
        let w = b
            .node("w", s.ns | s.pid | s.state, Prim::Unit(s.cpu.into()))
            .unwrap();
        let y = b
            .node(
                "y",
                s.ns.into(),
                Prim::Map(s.pid.into(), DsKind::HashTable, w),
            )
            .unwrap();
        let z = b
            .node(
                "z",
                s.state.into(),
                Prim::Map(s.ns | s.pid, DsKind::DList, w),
            )
            .unwrap();
        b.node(
            "x",
            ColSet::EMPTY,
            Prim::join(
                Prim::Map(s.ns.into(), DsKind::HashTable, y),
                Prim::Map(s.state.into(), DsKind::AssocVec, z),
            ),
        )
        .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn paper_decomposition_is_adequate() {
        let s = sched();
        let d = paper_decomposition(&s);
        check_adequacy(&d, &sched_spec(&s)).unwrap();
    }

    #[test]
    fn adequacy_requires_fd() {
        // Without ns,pid → state,cpu the shared node w is no longer
        // determined by either access path, and the unit fails (AUNIT).
        let s = sched();
        let d = paper_decomposition(&s);
        let no_fds = RelSpec::new(s.ns | s.pid | s.state | s.cpu);
        let err = check_adequacy(&d, &no_fds).unwrap_err();
        assert!(
            matches!(
                err,
                AdequacyError::UnitNotDetermined { .. } | AdequacyError::MapNotDetermined { .. }
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn unit_at_root_rejected() {
        // A root-level unit cannot represent the empty relation.
        let s = sched();
        let mut b = DecompBuilder::new();
        b.node(
            "x",
            ColSet::EMPTY,
            Prim::Unit(s.ns | s.pid | s.state | s.cpu),
        )
        .unwrap();
        let d = b.finish().unwrap();
        let err = check_adequacy(&d, &sched_spec(&s)).unwrap_err();
        assert!(matches!(err, AdequacyError::UnitAtRoot { .. }));
    }

    #[test]
    fn missing_columns_rejected() {
        // A decomposition that never stores `cpu`.
        let s = sched();
        let mut b = DecompBuilder::new();
        let w = b
            .node("w", s.ns | s.pid, Prim::Unit(s.state.into()))
            .unwrap();
        b.node(
            "x",
            ColSet::EMPTY,
            Prim::Map(s.ns | s.pid, DsKind::HashTable, w),
        )
        .unwrap();
        let d = b.finish().unwrap();
        let err = check_adequacy(&d, &sched_spec(&s)).unwrap_err();
        assert!(matches!(err, AdequacyError::WrongColumns { .. }));
    }

    #[test]
    fn join_without_matching_fd_rejected() {
        // Splitting {a, b} into two independent maps loses the association
        // between a and b unless one determines the other.
        let mut cat = Catalog::new();
        let a = cat.intern("a");
        let b_ = cat.intern("b");
        let spec = RelSpec::new(a | b_); // no FDs
        let mut bld = DecompBuilder::new();
        let ua = bld.node("ua", a.into(), Prim::Unit(ColSet::EMPTY)).unwrap();
        let ub = bld
            .node("ub", b_.into(), Prim::Unit(ColSet::EMPTY))
            .unwrap();
        bld.node(
            "x",
            ColSet::EMPTY,
            Prim::join(
                Prim::Map(a.into(), DsKind::HashTable, ua),
                Prim::Map(b_.into(), DsKind::HashTable, ub),
            ),
        )
        .unwrap();
        let d = bld.finish().unwrap();
        let err = check_adequacy(&d, &spec).unwrap_err();
        assert!(matches!(err, AdequacyError::JoinAmbiguous { .. }));
    }

    #[test]
    fn join_with_key_overlap_accepted() {
        // The graph join decomposition: both branches bind {src, dst}, so the
        // symmetric difference is determined trivially.
        let mut cat = Catalog::new();
        let src = cat.intern("src");
        let dst = cat.intern("dst");
        let weight = cat.intern("weight");
        let spec = RelSpec::new(src | dst | weight).with_fd(src | dst, weight.into());
        let mut bld = DecompBuilder::new();
        let l = bld.node("l", src | dst, Prim::Unit(weight.into())).unwrap();
        let r = bld.node("r", src | dst, Prim::Unit(weight.into())).unwrap();
        let y = bld
            .node("y", src.into(), Prim::Map(dst.into(), DsKind::HashTable, l))
            .unwrap();
        let z = bld
            .node("z", dst.into(), Prim::Map(src.into(), DsKind::HashTable, r))
            .unwrap();
        bld.node(
            "x",
            ColSet::EMPTY,
            Prim::join(
                Prim::Map(src.into(), DsKind::HashTable, y),
                Prim::Map(dst.into(), DsKind::HashTable, z),
            ),
        )
        .unwrap();
        let d = bld.finish().unwrap();
        check_adequacy(&d, &spec).unwrap();
    }

    #[test]
    fn shared_node_requires_path_determinacy() {
        // Sharing w between a {ns}-path and a {state}-path is only adequate
        // because ns,pid → state holds; dropping state from w's binding is a
        // structural error, but weakening the FD to ns,pid → cpu only should
        // break (AMAP)/(AUNIT).
        let s = sched();
        let d = paper_decomposition(&s);
        let weak = RelSpec::new(s.ns | s.pid | s.state | s.cpu).with_fd(s.ns | s.pid, s.cpu.into());
        assert!(check_adequacy(&d, &weak).is_err());
    }

    #[test]
    fn foreign_columns_rejected() {
        let s = sched();
        let d = paper_decomposition(&s);
        // Specification missing `cpu` entirely.
        let narrow = RelSpec::new(s.ns | s.pid | s.state);
        let err = check_adequacy(&d, &narrow).unwrap_err();
        assert!(matches!(err, AdequacyError::ForeignColumns { .. }));
    }

    #[test]
    fn chain_decomposition_adequate_for_graph() {
        // Fig. 12 decomposition 1.
        let mut cat = Catalog::new();
        let src = cat.intern("src");
        let dst = cat.intern("dst");
        let weight = cat.intern("weight");
        let spec = RelSpec::new(src | dst | weight).with_fd(src | dst, weight.into());
        let mut bld = DecompBuilder::new();
        let z = bld.node("z", src | dst, Prim::Unit(weight.into())).unwrap();
        let y = bld
            .node("y", src.into(), Prim::Map(dst.into(), DsKind::AvlTree, z))
            .unwrap();
        bld.node(
            "x",
            ColSet::EMPTY,
            Prim::Map(src.into(), DsKind::AvlTree, y),
        )
        .unwrap();
        let d = bld.finish().unwrap();
        check_adequacy(&d, &spec).unwrap();
    }

    #[test]
    fn empty_unit_leaf_makes_sets_representable() {
        // A set relation {id} as id -> unit {}.
        let mut cat = Catalog::new();
        let id = cat.intern("id");
        let spec = RelSpec::new(id.into());
        let mut bld = DecompBuilder::new();
        let u = bld.node("u", id.into(), Prim::Unit(ColSet::EMPTY)).unwrap();
        bld.node(
            "x",
            ColSet::EMPTY,
            Prim::Map(id.into(), DsKind::HashTable, u),
        )
        .unwrap();
        let d = bld.finish().unwrap();
        check_adequacy(&d, &spec).unwrap();
    }
}
