//! Primitive data-structure kinds available to map edges.

use std::fmt;

/// The data structure `ψ` implementing a map edge `C -[ψ]-> v`.
///
/// The set is extensible in principle (the paper wraps STL/Boost containers);
/// here it enumerates the containers of `relic-containers` plus the intrusive
/// list implemented by the runtime. Each kind carries the cost shape
/// `m_ψ(n)` used by the query planner (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DsKind {
    /// Separate-chaining hash table: expected O(1) lookup.
    HashTable,
    /// AVL tree: O(log n) lookup, ordered iteration.
    AvlTree,
    /// Sorted vector: O(log n) lookup, O(n) mutation.
    SortedVec,
    /// Unsorted association vector: O(n) everything, tiny constants.
    AssocVec,
    /// Non-intrusive doubly-linked list: O(n) lookup, O(1) insert.
    DList,
    /// Intrusive doubly-linked list: links live in the child instances, so
    /// the runtime can unlink a child in O(1) given only its handle
    /// (cf. `boost::intrusive::list` in the paper's Fig. 12 discussion).
    IntrusiveList,
}

impl DsKind {
    /// All kinds, in display order.
    pub const ALL: [DsKind; 6] = [
        DsKind::HashTable,
        DsKind::AvlTree,
        DsKind::SortedVec,
        DsKind::AssocVec,
        DsKind::DList,
        DsKind::IntrusiveList,
    ];

    /// The concrete-syntax name (`-[name]->`).
    pub fn name(self) -> &'static str {
        match self {
            DsKind::HashTable => "htable",
            DsKind::AvlTree => "avl",
            DsKind::SortedVec => "sortedvec",
            DsKind::AssocVec => "vec",
            DsKind::DList => "dlist",
            DsKind::IntrusiveList => "ilist",
        }
    }

    /// Parses a concrete-syntax name.
    pub fn from_name(s: &str) -> Option<DsKind> {
        DsKind::ALL.iter().copied().find(|d| d.name() == s)
    }

    /// The expected number of memory accesses to look up a key among `n`
    /// entries — the paper's `m_ψ(n)` (§4.3). `m_btree(n) = log₂ n`,
    /// `m_dlist(n) = n`, hash tables are treated as a small constant.
    pub fn lookup_cost(self, n: f64) -> f64 {
        let n = n.max(1.0);
        match self {
            DsKind::HashTable => 1.5,
            DsKind::AvlTree | DsKind::SortedVec => n.log2().max(1.0),
            DsKind::AssocVec => (n / 2.0).max(1.0),
            DsKind::DList | DsKind::IntrusiveList => n,
        }
    }

    /// Whether links are stored in the child instances (enabling O(1)
    /// unlink-by-handle during removal).
    pub fn is_intrusive(self) -> bool {
        matches!(self, DsKind::IntrusiveList)
    }

    /// Whether iteration yields keys in sorted order.
    pub fn is_ordered(self) -> bool {
        matches!(self, DsKind::AvlTree | DsKind::SortedVec)
    }
}

impl fmt::Display for DsKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for d in DsKind::ALL {
            assert_eq!(DsKind::from_name(d.name()), Some(d));
        }
        assert_eq!(DsKind::from_name("zipper"), None);
    }

    #[test]
    fn cost_shapes() {
        // Hash lookup is flat; list lookup is linear; tree is logarithmic.
        assert_eq!(
            DsKind::HashTable.lookup_cost(10.0),
            DsKind::HashTable.lookup_cost(10_000.0)
        );
        assert!(DsKind::DList.lookup_cost(1000.0) > DsKind::AvlTree.lookup_cost(1000.0));
        assert!(DsKind::AvlTree.lookup_cost(1000.0) > DsKind::HashTable.lookup_cost(1000.0));
        // Costs are at least one access, even for tiny n.
        for d in DsKind::ALL {
            assert!(d.lookup_cost(0.0) >= 1.0);
        }
    }

    #[test]
    fn intrusive_flags() {
        assert!(DsKind::IntrusiveList.is_intrusive());
        assert!(!DsKind::DList.is_intrusive());
        assert!(DsKind::AvlTree.is_ordered());
        assert!(!DsKind::HashTable.is_ordered());
    }
}
