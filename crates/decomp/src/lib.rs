//! The decomposition language of "Data Representation Synthesis" (§3).
//!
//! A *decomposition* is a rooted DAG describing how to represent a relation
//! as a combination of primitive data structures:
//!
//! ```text
//! pˆ ::= unit C  |  C -[ψ]-> v  |  pˆ₁ ⋈ pˆ₂      (primitives)
//! dˆ ::= let v : B ▷ C = pˆ in dˆ  |  v             (decompositions)
//! ψ  ::= htable | avl | sortedvec | vec | dlist | ilist
//! ```
//!
//! This crate provides:
//!
//! * [`Decomposition`] / [`DecompBuilder`] — the graph AST with structural
//!   validation (distinct names, acyclicity, binding consistency),
//! * [`parse`] / [`Decomposition::to_let_notation`] — a concrete let-notation
//!   syntax with a hand-written lexer/parser and pretty-printer,
//! * [`check_adequacy`] — the adequacy judgment of Fig. 6, which guarantees a
//!   decomposition can represent *every* relation satisfying the
//!   specification's functional dependencies (Lemma 1),
//! * [`cut`] — decomposition cuts (§4.5), the basis of `remove`/`update`,
//! * `enumerate` — exhaustive enumeration of adequate decompositions up to
//!   an edge bound, used by the autotuner (§5).
//!
//! # Example
//!
//! The scheduler decomposition of Fig. 2(a):
//!
//! ```
//! use relic_spec::{Catalog, RelSpec};
//! use relic_decomp::{parse, check_adequacy};
//!
//! let mut cat = Catalog::new();
//! let d = parse(
//!     &mut cat,
//!     "let w : {ns,pid,state} . {cpu} = unit {cpu} in
//!      let y : {ns} . {pid,cpu} = {pid} -[htable]-> w in
//!      let z : {state} . {ns,pid,cpu} = {ns,pid} -[dlist]-> w in
//!      let x : {} . {ns,pid,state,cpu} =
//!        ({ns} -[htable]-> y) join ({state} -[vec]-> z) in
//!      x",
//! )?;
//! let cols = cat.all();
//! let key = cat.intern_set(&["ns", "pid"]);
//! let rest = cat.intern_set(&["state", "cpu"]);
//! let spec = RelSpec::new(cols).with_fd(key, rest);
//! check_adequacy(&d, &spec)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adequacy;
mod cut;
mod ds;
mod enumerate;
mod error;
mod graph;
mod parse;

pub use adequacy::check_adequacy;
pub use cut::{cut, Cut};
pub use ds::DsKind;
pub use enumerate::{enumerate_decompositions, enumerate_shapes, EnumerateOptions};
pub use error::{AdequacyError, DecompError, ParseError};
pub use graph::{to_dot, Body, DecompBuilder, Decomposition, Edge, EdgeId, Node, NodeId, Prim};
pub use parse::parse;
