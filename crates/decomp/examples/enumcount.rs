use relic_decomp::{enumerate_shapes, EnumerateOptions};
use relic_spec::{Catalog, RelSpec};
fn main() {
    let mut cat = Catalog::new();
    let src = cat.intern("src");
    let dst = cat.intern("dst");
    let weight = cat.intern("weight");
    let spec = RelSpec::new(src | dst | weight).with_fd(src | dst, weight.into());
    for max in 1..=4 {
        for br in [2usize, 3, 4] {
            let n = enumerate_shapes(
                &spec,
                &EnumerateOptions {
                    max_edges: max,
                    max_branches: br,
                    ..Default::default()
                },
            )
            .len();
            print!("edges<={max} branches<={br}: {n}   ");
        }
        println!();
    }
}
