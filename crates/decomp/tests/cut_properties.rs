//! Properties of decomposition cuts (§4.5) over *enumerated* adequate
//! decompositions: the paper states the cut for a decomposition and a
//! column set always exists, is unique, and crossing edges point only from
//! X (above) into Y (below).

use proptest::prelude::*;
use relic_decomp::{cut, enumerate_decompositions, DsKind, EnumerateOptions};
use relic_spec::{Catalog, ColSet, RelSpec};

fn graph_setup() -> (Catalog, RelSpec, Vec<relic_decomp::Decomposition>) {
    let mut cat = Catalog::new();
    let src = cat.intern("src");
    let dst = cat.intern("dst");
    let weight = cat.intern("weight");
    let spec = RelSpec::new(src | dst | weight).with_fd(src | dst, weight.into());
    let opts = EnumerateOptions {
        max_edges: 3,
        structures: vec![DsKind::HashTable],
        ..Default::default()
    };
    let ds = enumerate_decompositions(&spec, &opts);
    assert!(!ds.is_empty());
    (cat, spec, ds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every decomposition and every pattern column set: Y is exactly
    /// the set of nodes whose bound columns determine the pattern columns,
    /// and no edge points from Y back into X.
    #[test]
    fn cut_membership_and_direction(which in 0usize..1000, subset_bits in 0u64..8) {
        let (cat, spec, ds) = graph_setup();
        let d = &ds[which % ds.len()];
        // Map the three low bits onto the three columns.
        let all: Vec<_> = cat.all().iter().collect();
        let mut cols = ColSet::EMPTY;
        for (i, c) in all.iter().enumerate() {
            if subset_bits & (1 << i) != 0 {
                cols = cols | *c;
            }
        }
        let k = cut(d, spec.fds(), cols);
        for (id, node) in d.nodes() {
            let below = spec.fds().implies(node.bound, cols);
            prop_assert_eq!(
                k.is_below(id),
                below,
                "node {} bound {:?} vs pattern {:?}",
                node.name,
                node.bound,
                cols
            );
        }
        for (eid, e) in d.edges() {
            // Never from below (Y) into above (X).
            prop_assert!(
                !k.is_below(e.from) || k.is_below(e.to),
                "edge {eid:?} crosses upward"
            );
        }
    }

    /// Determinism/uniqueness: recomputing the cut yields the same
    /// partition, and crossing edges are exactly the X→Y edges.
    #[test]
    fn cut_is_deterministic_and_crossings_complete(which in 0usize..1000) {
        let (cat, spec, ds) = graph_setup();
        let d = &ds[which % ds.len()];
        let cols = cat.col("src").unwrap() | cat.col("dst").unwrap();
        let k1 = cut(d, spec.fds(), cols);
        let k2 = cut(d, spec.fds(), cols);
        let mut want = Vec::new();
        for (eid, e) in d.edges() {
            prop_assert_eq!(k1.is_below(e.from), k2.is_below(e.from));
            if !k1.is_below(e.from) && k1.is_below(e.to) {
                want.push(eid);
            }
        }
        prop_assert_eq!(k1.crossing.clone(), want);
        prop_assert_eq!(k1.crossing, k2.crossing);
    }

    /// The full-tuple cut puts every non-root-determined node below; the
    /// empty-pattern cut puts every node below (∅ → ∅ holds trivially).
    #[test]
    fn cut_boundary_cases(which in 0usize..1000) {
        let (cat, spec, ds) = graph_setup();
        let d = &ds[which % ds.len()];
        let empty = cut(d, spec.fds(), ColSet::EMPTY);
        for (id, _) in d.nodes() {
            prop_assert!(empty.is_below(id), "∅ is determined by anything");
        }
        let full = cut(d, spec.fds(), cat.all());
        // The root (bound = ∅) determines all columns only if the relation
        // is a singleton, which the FD set does not imply here.
        prop_assert!(!full.is_below(d.root()));
    }
}
