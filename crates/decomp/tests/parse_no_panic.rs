//! No-panic properties for the let-notation parser: arbitrary garbage —
//! including non-UTF-8 byte soup (lossily decoded) and multibyte
//! characters landing mid-identifier — produces a typed [`ParseError`]
//! with a source position, never a panic. This mirrors the PR 9
//! `pattern_parse` sweep for the decomposition tokenizer (the
//! `from_utf8(..).unwrap()` it replaced sat on the identifier path).

use proptest::prelude::*;
use relic_decomp::parse;
use relic_spec::Catalog;

/// Tokens that keep random inputs *near* the let-notation grammar, so the
/// generator reaches deep parser states (edge arrows, colsets, joins)
/// instead of dying at the first lexer error.
const TOKENS: &[&str] = &[
    "let", "in", "unit", "join", "x", "w", "ghost", "{", "}", "(", ")", ",", ":", ".", "=", "-[",
    "]->", "-", "]", "htable", "avl", "btree99", "//", "\n", "é", "𝕏", "\u{0}",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup (lossily decoded) never panics the parser.
    #[test]
    fn parse_never_panics_on_arbitrary_strings(
        bytes in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..128),
    ) {
        let mut cat = Catalog::new();
        let _ = parse(&mut cat, &String::from_utf8_lossy(&bytes));
    }

    /// Near-grammar token salad never panics either; it reaches the deep
    /// states (builder errors, annotation mismatches) the byte soup can't.
    #[test]
    fn parse_never_panics_on_token_salad(
        picks in proptest::collection::vec(0..TOKENS.len(), 0..48),
    ) {
        let mut src = String::new();
        for (n, i) in picks.iter().enumerate() {
            if n > 0 {
                src.push(' ');
            }
            src.push_str(TOKENS[*i]);
        }
        let mut cat = Catalog::new();
        let _ = parse(&mut cat, &src);
    }
}

/// Multibyte input mid-identifier is a positioned diagnostic, not a panic.
#[test]
fn multibyte_identifier_bytes_are_typed_errors() {
    for src in [
        "let é : {} . {a} = unit {a} in é",
        "let x𝕏 : {} . {a} = unit {a} in x",
        "let x : {} . {a} = unit {a} in x\u{feff}",
        "лет x : {} . {a} = unit {a} in x",
    ] {
        let mut cat = Catalog::new();
        let err = parse(&mut cat, src).unwrap_err();
        assert!(err.line >= 1 && err.col >= 1, "{src:?}: {err}");
    }
}
