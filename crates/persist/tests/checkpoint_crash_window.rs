//! The checkpoint sidecar's crash window: a kill landing **between the
//! sidecar write and the atomic rename** leaves an orphaned
//! `checkpoint.tmp` next to (or instead of) the real `checkpoint.bin`.
//! Recovery must never consult the orphan — even when it is a complete,
//! checksummed image — and must clean it up on open so a later crash
//! cannot resurrect it.

use relic_persist::checkpoint::{CHECKPOINT_FILE, CHECKPOINT_TMP};
use relic_persist::{Checkpoint, DurableRelation, GroupCommitPolicy};
use relic_spec::{Catalog, ColId, RelSpec, Tuple, Value};
use std::path::{Path, PathBuf};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("relic_ckwindow_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn setup(dir: &Path) -> (ColId, ColId, DurableRelation) {
    let mut cat = Catalog::new();
    let (k, v) = (cat.intern("k"), cat.intern("v"));
    let spec = RelSpec::new(k | v).with_fd(k.set(), v.set());
    let d = relic_decomp::parse(
        &mut cat,
        "let u : {k} . {v} = unit {v} in
         let x : {} . {k,v} = {k} -[htable]-> u in x",
    )
    .unwrap();
    let rel = DurableRelation::create(
        dir,
        &cat,
        spec,
        d,
        k.set(),
        2,
        true,
        GroupCommitPolicy::manual(),
    )
    .unwrap();
    (k, v, rel)
}

fn ins(rel: &DurableRelation, k: ColId, v: ColId, key: i64, val: i64) {
    rel.insert(Tuple::from_pairs([
        (k, Value::from(key)),
        (v, Value::from(val)),
    ]))
    .unwrap();
}

/// The crash window *after* a first successful checkpoint: the orphaned
/// tmp is a complete valid image of a newer state, but the rename never
/// happened, so recovery must use the old checkpoint + log tail — which
/// reconstructs the same committed state — and delete the orphan.
#[test]
fn orphaned_tmp_next_to_a_real_checkpoint_is_ignored_and_cleaned() {
    let dir = tmpdir("beside");
    let (k, v, rel) = setup(&dir);
    ins(&rel, k, v, 1, 10);
    ins(&rel, k, v, 2, 20);
    rel.commit().unwrap();
    rel.checkpoint().unwrap();
    ins(&rel, k, v, 3, 30);
    rel.commit().unwrap();
    let committed = rel.to_relation();
    drop(rel);

    // Simulate the kill mid-checkpoint: a complete, checksummed sidecar
    // that was never renamed. (A *real* interrupted write is a prefix of
    // this; the complete image is the adversarial extreme — the one case
    // a naive "is the tmp readable?" recovery would wrongly trust.)
    let real = std::fs::read(dir.join(CHECKPOINT_FILE)).unwrap();
    let parsed = Checkpoint::from_bytes(&real).unwrap();
    std::fs::write(dir.join(CHECKPOINT_TMP), parsed.to_bytes()).unwrap();

    let recovered = DurableRelation::open(&dir, GroupCommitPolicy::manual()).unwrap();
    assert_eq!(recovered.to_relation(), committed);
    assert!(
        !dir.join(CHECKPOINT_TMP).exists(),
        "recovery cleans the orphaned sidecar"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The crash window on the *first ever* checkpoint: no `checkpoint.bin`
/// exists yet, only the orphan. Recovery replays the full log from
/// scratch exactly as if the checkpoint had never been attempted.
#[test]
fn orphaned_tmp_without_any_checkpoint_is_ignored_and_cleaned() {
    let dir = tmpdir("alone");
    let (k, v, rel) = setup(&dir);
    ins(&rel, k, v, 7, 70);
    ins(&rel, k, v, 8, 80);
    rel.commit().unwrap();
    let committed = rel.to_relation();
    drop(rel);

    assert!(!dir.join(CHECKPOINT_FILE).exists());
    std::fs::write(dir.join(CHECKPOINT_TMP), b"partial checkpoint image").unwrap();

    let recovered = DurableRelation::open(&dir, GroupCommitPolicy::manual()).unwrap();
    assert_eq!(recovered.to_relation(), committed);
    assert!(
        !dir.join(CHECKPOINT_TMP).exists(),
        "recovery cleans the orphaned sidecar"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn (prefix) tmp — the likeliest real crash artifact — is equally
/// ignored, and the cleanup-then-recover sequence is idempotent across a
/// second crash-reopen.
#[test]
fn torn_tmp_is_cleaned_idempotently() {
    let dir = tmpdir("torn");
    let (k, v, rel) = setup(&dir);
    ins(&rel, k, v, 4, 40);
    rel.commit().unwrap();
    rel.checkpoint().unwrap();
    let committed = rel.to_relation();
    drop(rel);

    let real = std::fs::read(dir.join(CHECKPOINT_FILE)).unwrap();
    std::fs::write(dir.join(CHECKPOINT_TMP), &real[..real.len() / 2]).unwrap();

    for _ in 0..2 {
        let recovered = DurableRelation::open(&dir, GroupCommitPolicy::manual()).unwrap();
        assert_eq!(recovered.to_relation(), committed);
        assert!(!dir.join(CHECKPOINT_TMP).exists());
        drop(recovered);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
