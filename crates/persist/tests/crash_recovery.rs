//! Crash-injection recovery tests: drive randomized op mixes through a
//! [`DurableRelation`], then simulate a crash by truncating (or
//! corrupting) the write-ahead log at **every byte boundary of the final
//! record** — and at every record boundary of the whole log — and assert
//! the recovered relation exactly equals the reference model at the last
//! durable prefix.
//!
//! The reference model replays the *log records* (not the driver's
//! intentions) with the engine's documented semantics: exact-duplicate
//! inserts are no-ops, an FD-conflicting insert is rejected, a batch stops
//! at its first error with the fold prefix applied, removals are
//! pattern-matched, and migration markers leave the tuple set unchanged.
//! Records are logged *before* they apply, so a record whose operation
//! failed live fails identically in the model — the model and the engine
//! agree at every prefix, which the test verifies wholesale before
//! injecting any crash.

use relic_persist::{read_wal, DurableRelation, GroupCommitPolicy, WalRecord};
use relic_spec::{Catalog, ColSet, Relation, Tuple, Value};
use std::path::{Path, PathBuf};

/// A deterministic splitmix64 stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Cols {
    host: relic_spec::ColId,
    ts: relic_spec::ColId,
    bytes: relic_spec::ColId,
}

fn schema_parts() -> (
    Catalog,
    Cols,
    relic_spec::RelSpec,
    relic_decomp::Decomposition,
) {
    let mut cat = Catalog::new();
    let d = relic_decomp::parse(
        &mut cat,
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
         let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
    )
    .unwrap();
    let cols = Cols {
        host: cat.col("host").unwrap(),
        ts: cat.col("ts").unwrap(),
        bytes: cat.col("bytes").unwrap(),
    };
    let spec = relic_spec::RelSpec::new(cat.all()).with_fd(cols.host | cols.ts, cols.bytes.set());
    (cat, cols, spec, d)
}

fn tup(cols: &Cols, h: i64, t: i64, b: i64) -> Tuple {
    Tuple::from_pairs([
        (cols.host, Value::from(h)),
        (cols.ts, Value::from(t)),
        (cols.bytes, Value::from(b)),
    ])
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("relic_crash_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Applies one logged record to the reference model with the engine's
/// semantics (`key` is the relation's minimal key, for FD screening).
fn model_apply(model: &mut Relation, key: ColSet, rec: &WalRecord) {
    let insert_one = |model: &mut Relation, t: &Tuple| {
        if model.contains(t) {
            return true; // exact duplicate: no-op, fold continues
        }
        if !model.query(&t.project(key), ColSet::EMPTY).is_empty() {
            return false; // FD conflict: rejected, a batch fold stops here
        }
        model.insert(t.clone());
        true
    };
    match rec {
        WalRecord::Meta { .. } | WalRecord::TermBump(_) => {}
        WalRecord::Insert(t) => {
            let _ = insert_one(model, t);
        }
        WalRecord::Remove(pat) => {
            model.remove(pat);
        }
        WalRecord::InsertMany(ts) | WalRecord::BulkLoad(ts) => {
            for t in ts {
                if !insert_one(model, t) {
                    break;
                }
            }
        }
        WalRecord::RemoveMany(pats) => {
            for p in pats {
                model.remove(p);
            }
        }
        WalRecord::Txn(ops) => {
            for op in ops {
                model_apply(model, key, op);
            }
        }
        WalRecord::MigrationEpoch(_) => {}
    }
}

/// Drives `ops` randomized operations (seeded) through `r`, exercising
/// every record kind: singles, batches, pinned/unpinned removes,
/// remove_many, partition read-modify-writes, and representation
/// migrations.
fn drive(r: &DurableRelation, cols: &Cols, seed: u64, ops: usize) {
    let mut rng = Rng(seed);
    let mut cat = r.catalog().clone();
    let d_nested = relic_decomp::parse(
        &mut cat,
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
         let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
    )
    .unwrap();
    let d_flat = relic_decomp::parse(
        &mut cat,
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let x : {} . {host,ts,bytes} = {host,ts} -[avl]-> u in x",
    )
    .unwrap();
    const HOSTS: u64 = 8;
    const TS: u64 = 6;
    for _ in 0..ops {
        let h = rng.below(HOSTS) as i64;
        let t = rng.below(TS) as i64;
        match rng.below(12) {
            0..=4 => {
                // Single insert; small value domain forces duplicates and
                // FD conflicts (both logged, both deterministic).
                let b = (t % 3) + rng.below(2) as i64 * 100;
                let _ = r.insert(tup(cols, h, t, b));
            }
            5 => {
                let n = 2 + rng.below(5);
                let batch: Vec<Tuple> = (0..n)
                    .map(|i| {
                        let tt = (t + i as i64) % TS as i64;
                        tup(cols, h, tt, tt % 3)
                    })
                    .collect();
                let _ = r.insert_many(batch);
            }
            6 => {
                let n = 2 + rng.below(5);
                let batch: Vec<Tuple> = (0..n)
                    .map(|i| tup(cols, (h + i as i64) % HOSTS as i64, t, t % 3))
                    .collect();
                let _ = r.bulk_load(batch);
            }
            7 => {
                // Pinned remove: full key or whole host.
                let pat = if rng.below(2) == 0 {
                    Tuple::from_pairs([(cols.host, Value::from(h)), (cols.ts, Value::from(t))])
                } else {
                    Tuple::from_pairs([(cols.host, Value::from(h))])
                };
                r.remove(&pat).unwrap();
            }
            8 => {
                // Unpinned remove crosses every shard.
                r.remove(&Tuple::from_pairs([(cols.ts, Value::from(t))]))
                    .unwrap();
            }
            9 => {
                let pats = vec![
                    Tuple::from_pairs([(cols.ts, Value::from(t))]),
                    Tuple::from_pairs([(cols.host, Value::from(h))]),
                ];
                r.remove_many(&pats).unwrap();
            }
            10 => {
                // Atomic read-modify-write in the owning partition: the
                // ipcap accounting idiom (read counter, replace tuple).
                let key =
                    Tuple::from_pairs([(cols.host, Value::from(h)), (cols.ts, Value::from(t))]);
                r.with_partition_mut(&key, |p| {
                    let cur = p
                        .query(&key, cols.bytes.set())
                        .unwrap()
                        .first()
                        .and_then(|row| row.get(cols.bytes).and_then(Value::as_int));
                    if cur.is_some() {
                        p.remove(&key).unwrap();
                    }
                    p.insert(tup(cols, h, t, cur.unwrap_or(0) + 1)).unwrap();
                })
                .unwrap();
            }
            _ => {
                let target = if rng.below(2) == 0 {
                    &d_flat
                } else {
                    &d_nested
                };
                r.migrate_to(target.clone()).unwrap();
            }
        }
    }
}

/// Recovers `dir`'s state with the log file replaced by `wal_bytes`.
fn recover_with_log(dir: &Path, scratch: &Path, wal_bytes: &[u8]) -> DurableRelation {
    let _ = std::fs::remove_dir_all(scratch);
    std::fs::create_dir_all(scratch).unwrap();
    let ckpt = dir.join("checkpoint.bin");
    if ckpt.exists() {
        std::fs::copy(&ckpt, scratch.join("checkpoint.bin")).unwrap();
    }
    std::fs::write(scratch.join("wal.log"), wal_bytes).unwrap();
    DurableRelation::open(scratch, GroupCommitPolicy::manual()).unwrap()
}

/// The core harness: drive a seeded op mix, then recover from the log
/// truncated at every record boundary and at every byte boundary of the
/// final record (plus corrupted variants), asserting exact equality with
/// the model at the last durable prefix. `checkpoint_at` optionally takes
/// a checkpoint (and therefore a log truncation) mid-run.
fn crash_injection_case(seed: u64, ops: usize, checkpoint_at: Option<usize>) {
    let name = format!("case_{seed}_{}", checkpoint_at.map_or(0, |c| c + 1));
    let dir = tmpdir(&name);
    let scratch = tmpdir(&format!("{name}_scratch"));
    let (cat, cols, spec, d) = schema_parts();
    let key = cols.host | cols.ts;
    let r = DurableRelation::create(
        &dir,
        &cat,
        spec,
        d,
        cols.host.set(),
        4,
        true,
        GroupCommitPolicy::manual(),
    )
    .unwrap();
    match checkpoint_at {
        Some(at) => {
            drive(&r, &cols, seed, at);
            r.checkpoint().unwrap();
            drive(&r, &cols, seed.wrapping_add(1), ops - at);
        }
        None => drive(&r, &cols, seed, ops),
    }
    r.commit().unwrap();
    let live = r.to_relation();
    drop(r);

    // Model every durable prefix by replaying the log records, and verify
    // the model agrees with the live engine at the full log first. With a
    // checkpoint, the replayable file only holds the tail; the prefix
    // state is the checkpoint image, whose own watermarks cover every
    // pre-checkpoint record — so the model starts from the recovered
    // checkpoint-only state and injection points stay past the highest
    // watermark (where every shard replays uniformly).
    let wal_path = dir.join("wal.log");
    let full = std::fs::read(&wal_path).unwrap();
    let scanned = read_wal(&wal_path).unwrap();
    assert_eq!(scanned.valid_len, full.len() as u64, "log must be clean");
    let max_stamp = match checkpoint_at {
        None => 0,
        Some(_) => relic_persist::read_checkpoint(&dir)
            .unwrap()
            .expect("checkpoint written")
            .shard_stamps
            .iter()
            .copied()
            .max()
            .unwrap(),
    };
    let base_state = if checkpoint_at.is_some() {
        // The checkpoint image alone (tail cut at the first record):
        // recovery must reproduce it exactly for records <= max_stamp.
        let first_past = scanned
            .entries
            .iter()
            .find(|e| e.seq > max_stamp)
            .map_or(full.len() as u64, |e| e.start);
        let rec = recover_with_log(&dir, &scratch, &full[..first_past as usize]);
        rec.relation().validate().unwrap();
        rec.to_relation()
    } else {
        Relation::empty(cat.all())
    };
    // states[k] = expected relation once entries[..=k] (past the stamp
    // horizon) are durable.
    let mut model = base_state.clone();
    let mut states: Vec<Relation> = Vec::with_capacity(scanned.entries.len());
    for e in &scanned.entries {
        if e.seq > max_stamp {
            model_apply(&mut model, key, &e.record);
        }
        states.push(model.clone());
    }
    assert_eq!(
        model, live,
        "model replay of the full log must equal the live relation (seed {seed})"
    );

    let state_at = |cut: u64| -> &Relation {
        let mut last: Option<usize> = None;
        for (k, e) in scanned.entries.iter().enumerate() {
            if e.end <= cut {
                last = Some(k);
            }
        }
        last.map_or(&base_state, |k| &states[k])
    };

    // Every record boundary of the whole log.
    for e in &scanned.entries {
        if e.seq <= max_stamp {
            continue;
        }
        let rec = recover_with_log(&dir, &scratch, &full[..e.end as usize]);
        assert_eq!(
            rec.to_relation(),
            *state_at(e.end),
            "record-boundary cut at seq {} diverged (seed {seed})",
            e.seq
        );
        rec.relation().validate().unwrap();
    }

    // Every byte boundary of the final record: recovery succeeds and
    // equals the model with the final record excluded.
    let last = scanned.entries.last().expect("ops were logged");
    assert!(last.seq > max_stamp);
    let expect_without_last = state_at(last.start);
    for cut in last.start..last.end {
        let rec = recover_with_log(&dir, &scratch, &full[..cut as usize]);
        assert_eq!(
            rec.to_relation(),
            *expect_without_last,
            "byte cut at {cut} of final record diverged (seed {seed})"
        );
    }
    // And the whole file recovers to the full model.
    let rec = recover_with_log(&dir, &scratch, &full);
    assert_eq!(rec.to_relation(), live);
    rec.relation().validate().unwrap();

    // Corruption (not truncation): flipping any byte of the final record
    // is caught by the checksum, recovering the same prefix state.
    for delta in [0u64, (last.end - last.start) / 2, last.end - last.start - 1] {
        let mut bad = full.clone();
        bad[(last.start + delta) as usize] ^= 0x5A;
        let rec = recover_with_log(&dir, &scratch, &bad);
        assert_eq!(
            rec.to_relation(),
            *expect_without_last,
            "byte flip at +{delta} of final record diverged (seed {seed})"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn crash_injection_without_checkpoint() {
    for seed in [0xA11CE, 0xB0B, 0xCAFE] {
        crash_injection_case(seed, 70, None);
    }
}

#[test]
fn crash_injection_with_mid_run_checkpoint() {
    for seed in [0xD00D, 0xFEED] {
        crash_injection_case(seed, 70, Some(35));
    }
}

/// A partition read-modify-write is one compound log frame: truncating the
/// log anywhere inside it drops the **whole** sequence — recovery can
/// never observe the remove without its re-insert (the torn-counter bug a
/// two-frame encoding would allow).
#[test]
fn partition_rmw_is_crash_atomic_in_the_log() {
    let dir = tmpdir("rmw_atomic");
    let scratch = tmpdir("rmw_atomic_scratch");
    let (cat, cols, spec, d) = schema_parts();
    let r = DurableRelation::create(
        &dir,
        &cat,
        spec,
        d,
        cols.host.set(),
        4,
        true,
        GroupCommitPolicy::manual(),
    )
    .unwrap();
    let key = Tuple::from_pairs([(cols.host, Value::from(1)), (cols.ts, Value::from(1))]);
    r.insert(tup(&cols, 1, 1, 5)).unwrap();
    // The RMW: read the counter, remove, re-insert incremented.
    r.with_partition_mut(&key, |p| {
        let cur = p
            .query(&key, cols.bytes.set())
            .unwrap()
            .first()
            .and_then(|row| row.get(cols.bytes).and_then(Value::as_int))
            .unwrap();
        p.remove(&key).unwrap();
        p.insert(tup(&cols, 1, 1, cur + 1)).unwrap();
    })
    .unwrap();
    r.commit().unwrap();
    drop(r);
    let wal_path = dir.join("wal.log");
    let full = std::fs::read(&wal_path).unwrap();
    let scanned = read_wal(&wal_path).unwrap();
    let last = scanned.entries.last().unwrap();
    assert!(
        matches!(last.record, WalRecord::Txn(ref ops) if ops.len() == 2),
        "the RMW must be one compound record, got {:?}",
        last.record
    );
    let before = tup(&cols, 1, 1, 5);
    let after = tup(&cols, 1, 1, 6);
    // Any cut inside the Txn frame keeps the pre-RMW tuple intact; the
    // full file holds the post-RMW tuple; no cut anywhere loses both.
    for cut in last.start..=last.end {
        let rec = recover_with_log(&dir, &scratch, &full[..cut as usize]);
        let state = rec.to_relation();
        if cut < last.end {
            assert!(state.contains(&before), "cut {cut} tore the RMW apart");
        } else {
            assert!(state.contains(&after));
        }
        assert_eq!(state.len(), 1, "cut {cut} must never lose the tuple");
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&scratch);
}

/// A recovered relation is a full citizen: it keeps serving, logging,
/// checkpointing and recovering again.
#[test]
fn recovery_chains() {
    let dir = tmpdir("chain");
    let (cat, cols, spec, d) = schema_parts();
    {
        let r = DurableRelation::create(
            &dir,
            &cat,
            spec,
            d,
            cols.host.set(),
            4,
            true,
            GroupCommitPolicy::manual(),
        )
        .unwrap();
        drive(&r, &cols, 7, 40);
        r.commit().unwrap();
    }
    let mut previous_len = None;
    for round in 0..4u64 {
        let r = DurableRelation::open(&dir, GroupCommitPolicy::manual()).unwrap();
        if let Some(n) = previous_len {
            assert_eq!(r.len(), n, "round {round} lost state");
        }
        drive(&r, &cols, 100 + round, 25);
        if round % 2 == 0 {
            r.checkpoint().unwrap();
        }
        r.commit().unwrap();
        r.relation().validate().unwrap();
        previous_len = Some(r.len());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
