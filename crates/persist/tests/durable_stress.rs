//! Concurrent durability stress (the `concurrent_stress.rs` pattern with a
//! [`DurableRelation`] arm): multi-writer randomized batches on disjoint
//! pinned keyspaces, group commits and **checkpoints taken mid-churn**
//! (off published snapshots — no shard write lock held while the
//! checkpoint serializes, so writers keep committing throughout), then a
//! crash (drop), a recovery, and an exact replay of the committed history
//! against the single-threaded reference model.
//!
//! As in the concurrent stress harness, each writer owns a disjoint slice
//! of the `host` keyspace and every operation pins `host`, so the
//! per-thread committed histories commute and replaying them thread by
//! thread must land on exactly the recovered state.

use relic_persist::{DurableRelation, GroupCommitPolicy};
use relic_spec::{Catalog, Relation, Tuple, Value};
use std::sync::atomic::{AtomicBool, Ordering};

/// A deterministic splitmix64 stream, seeded per thread.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Cols {
    host: relic_spec::ColId,
    ts: relic_spec::ColId,
    bytes: relic_spec::ColId,
}

fn setup(dir: &std::path::Path, shards: usize) -> (Catalog, Cols, DurableRelation) {
    let mut cat = Catalog::new();
    let d = relic_decomp::parse(
        &mut cat,
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
         let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
    )
    .unwrap();
    let cols = Cols {
        host: cat.col("host").unwrap(),
        ts: cat.col("ts").unwrap(),
        bytes: cat.col("bytes").unwrap(),
    };
    let spec = relic_spec::RelSpec::new(cat.all()).with_fd(cols.host | cols.ts, cols.bytes.set());
    let r = DurableRelation::create(
        dir,
        &cat,
        spec,
        d,
        cols.host.set(),
        shards,
        true,
        GroupCommitPolicy::default(),
    )
    .unwrap();
    (cat, cols, r)
}

fn tup(cols: &Cols, h: i64, t: i64, b: i64) -> Tuple {
    Tuple::from_pairs([
        (cols.host, Value::from(h)),
        (cols.ts, Value::from(t)),
        (cols.bytes, Value::from(b)),
    ])
}

/// One committed operation, as logged by a writer thread.
enum Op {
    /// `insert` returned `Ok(inserted)`.
    Insert(Tuple, bool),
    /// `insert_many` over the batch; `accepted` is the returned count on
    /// success, `None` on an FD error (the replay reconstructs the fold
    /// prefix).
    InsertMany(Vec<Tuple>, Option<usize>),
    /// A pinned `remove` returned `Ok(n)`.
    Remove(Tuple, usize),
    /// A partition read-modify-write replaced the tuple at `key` with the
    /// given payload (remove + insert inside one logged critical section).
    Replace(Tuple, i64),
}

/// Replays a committed op against the reference model, asserting the
/// logged outcome.
fn replay(model: &mut Relation, cols: &Cols, op: &Op) {
    match op {
        Op::Insert(t, inserted) => {
            let had = model.contains(t);
            if *inserted {
                assert!(!had, "insert reported new but model already held it");
                model.insert(t.clone());
            } else {
                assert!(had, "no-op insert must be an exact duplicate");
            }
        }
        Op::InsertMany(batch, accepted) => {
            let mut n = 0usize;
            for t in batch {
                if model.contains(t) {
                    continue;
                }
                let key = t.project(cols.host | cols.ts);
                if !model.query(&key, cols.bytes.set()).is_empty() {
                    break;
                }
                model.insert(t.clone());
                n += 1;
            }
            if let Some(accepted) = accepted {
                assert_eq!(n, *accepted, "insert_many accepted-count diverged");
            }
        }
        Op::Remove(pat, removed) => {
            assert_eq!(model.remove(pat), *removed, "remove count diverged");
        }
        Op::Replace(key, b) => {
            model.remove(key);
            model.insert(key.merge(&Tuple::from_pairs([(cols.bytes, Value::from(*b))])));
        }
    }
}

/// 4 durable writers on disjoint host slices, one checkpointer committing
/// and checkpointing mid-churn, then crash + recover + exact model replay.
#[test]
fn durable_multi_writer_checkpoint_mid_churn_recovers_exactly() {
    const WRITERS: usize = 4;
    const OPS: usize = 220;
    const HOSTS_PER_WRITER: i64 = 6;
    const TS_DOM: u64 = 10;
    let dir = std::env::temp_dir().join(format!("relic_durstress_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (cat, cols, rel) = setup(&dir, 8);
    let r = &rel;
    let cols = &cols;
    let done = AtomicBool::new(false);
    let logs: Vec<Vec<Op>> = std::thread::scope(|s| {
        // The checkpointer: group commits and full checkpoints while the
        // writers churn. Checkpoint serialization reads only published
        // snapshots, so the writers never stall on it.
        let checkpointer = {
            let done = &done;
            s.spawn(move || {
                let mut rounds = 0usize;
                while !done.load(Ordering::Acquire) {
                    r.commit().unwrap();
                    r.checkpoint().unwrap();
                    rounds += 1;
                    std::thread::yield_now();
                }
                rounds
            })
        };
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                s.spawn(move || {
                    let mut rng = Rng(0x5EED + w as u64);
                    let mut log: Vec<Op> = Vec::with_capacity(OPS);
                    let base = w as i64 * HOSTS_PER_WRITER;
                    let host = |rng: &mut Rng| base + rng.below(HOSTS_PER_WRITER as u64) as i64;
                    for _ in 0..OPS {
                        match rng.below(10) {
                            0..=4 => {
                                let (h, t) = (host(&mut rng), rng.below(TS_DOM) as i64);
                                let b = (t * 7) % 5 + rng.below(2) as i64 * 1000;
                                let tu = tup(cols, h, t, b);
                                // An FD conflict is rejected and not
                                // committed; the record replays to the
                                // same rejection.
                                if let Ok(ins) = r.insert(tu.clone()) {
                                    log.push(Op::Insert(tu, ins));
                                }
                            }
                            5 | 6 => {
                                let n = 2 + rng.below(6) as i64;
                                let h = host(&mut rng);
                                let t0 = rng.below(TS_DOM) as i64;
                                let batch: Vec<Tuple> = (0..n)
                                    .map(|i| {
                                        let t = (t0 + i) % TS_DOM as i64;
                                        tup(cols, h, t, (t * 7) % 5)
                                    })
                                    .collect();
                                match r.insert_many(batch.clone()) {
                                    Ok(acc) => log.push(Op::InsertMany(batch, Some(acc))),
                                    Err(_) => log.push(Op::InsertMany(batch, None)),
                                }
                            }
                            7 | 8 => {
                                let h = host(&mut rng);
                                let pat = if rng.below(2) == 0 {
                                    Tuple::from_pairs([
                                        (cols.host, Value::from(h)),
                                        (cols.ts, Value::from(rng.below(TS_DOM) as i64)),
                                    ])
                                } else {
                                    Tuple::from_pairs([(cols.host, Value::from(h))])
                                };
                                let n = r.remove(&pat).unwrap();
                                log.push(Op::Remove(pat, n));
                            }
                            _ => {
                                // Durable RMW: read the counter, replace
                                // the tuple inside one logged partition
                                // critical section.
                                let h = host(&mut rng);
                                let t = rng.below(TS_DOM) as i64;
                                let key = Tuple::from_pairs([
                                    (cols.host, Value::from(h)),
                                    (cols.ts, Value::from(t)),
                                ]);
                                let b = r
                                    .with_partition_mut(&key, |p| {
                                        let cur = p
                                            .query(&key, cols.bytes.set())
                                            .unwrap()
                                            .first()
                                            .and_then(|row| {
                                                row.get(cols.bytes).and_then(Value::as_int)
                                            });
                                        if cur.is_some() {
                                            p.remove(&key).unwrap();
                                        }
                                        let b = cur.unwrap_or(0) + 1;
                                        p.insert(key.merge(&Tuple::from_pairs([(
                                            cols.bytes,
                                            Value::from(b),
                                        )])))
                                        .unwrap();
                                        b
                                    })
                                    .unwrap();
                                log.push(Op::Replace(key, b));
                            }
                        }
                    }
                    log
                })
            })
            .collect();
        let logs: Vec<Vec<Op>> = writers
            .into_iter()
            .map(|h| h.join().expect("writer thread"))
            .collect();
        done.store(true, Ordering::Release);
        let rounds = checkpointer.join().expect("checkpointer thread");
        assert!(rounds > 0, "the checkpointer must have run mid-churn");
        logs
    });
    // Make everything durable, then crash.
    r.commit().unwrap();
    let live = r.to_relation();
    r.relation().validate().unwrap();
    // Model replay: thread by thread (disjoint pinned keyspaces commute).
    let mut model = Relation::empty(cat.all());
    for log in &logs {
        for op in log {
            replay(&mut model, cols, op);
        }
    }
    assert_eq!(live, model, "live state diverged from the committed model");
    drop(logs);
    // Crash: drop the live relation (its uncommitted in-memory segment —
    // empty here, after the final commit — would be lost).
    drop(rel);
    // Recover: the committed history must be intact, bit for bit.
    let rec = DurableRelation::open(&dir, GroupCommitPolicy::default()).unwrap();
    assert_eq!(
        rec.to_relation(),
        model,
        "recovered state diverged from the committed model"
    );
    rec.relation().validate().unwrap();
    // The recovered relation keeps serving durably.
    rec.insert(tup(cols, 999, 0, 0)).unwrap();
    rec.commit().unwrap();
    let n = rec.len();
    drop(rec);
    let rec2 = DurableRelation::open(&dir, GroupCommitPolicy::default()).unwrap();
    assert_eq!(rec2.len(), n);
    drop(rec2);
    let _ = std::fs::remove_dir_all(&dir);
}
