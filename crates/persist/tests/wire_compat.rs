//! Wire forward-compatibility: a frame written by a *newer* (or just
//! different) version of the format must fail as a **typed error**, never a
//! panic and never a silent misread.
//!
//! The cases are property-tested over mutations of genuinely valid frames
//! (taken from a live durable relation's log): an unknown record kind with
//! a fixed-up checksum, trailing garbage with a fixed-up length and
//! checksum, and arbitrary byte flips anywhere in the frame. Replication
//! ships these exact bytes between processes, so this is also the
//! contract that a malicious or version-skewed peer cannot crash a
//! follower.

use proptest::prelude::*;
use relic_core::wire::WireError;
use relic_persist::{crc32, decode_frame, DurableRelation, GroupCommitPolicy, PersistError};
use relic_spec::{Catalog, RelSpec, Tuple, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn case_dir(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("relic_wirecompat_{tag}_{}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A pile of valid committed frames from a real log — meta, inserts, a
/// remove, and a term bump — fetched through the same tail API replication
/// ships with.
fn shipped_frames() -> Vec<Vec<u8>> {
    let mut cat = Catalog::new();
    let (k, v) = (cat.intern("k"), cat.intern("v"));
    let spec = RelSpec::new(k | v).with_fd(k.set(), v.set());
    let d = relic_decomp::parse(
        &mut cat,
        "let u : {k} . {v} = unit {v} in
         let x : {} . {k,v} = {k} -[htable]-> u in x",
    )
    .unwrap();
    let dir = case_dir("source");
    let rel = DurableRelation::create(
        &dir,
        &cat,
        spec,
        d,
        k.set(),
        2,
        true,
        GroupCommitPolicy::manual(),
    )
    .unwrap();
    for i in 0..6i64 {
        rel.insert(Tuple::from_pairs([
            (k, Value::from(i)),
            (v, Value::from(i * 10)),
        ]))
        .unwrap();
    }
    rel.remove(&Tuple::from_pairs([(k, Value::from(2i64))]))
        .unwrap();
    rel.bump_term(3).unwrap();
    rel.commit().unwrap();
    let frames = match rel.committed_frames_after(0, usize::MAX).unwrap() {
        relic_persist::TailRead::Frames(frames) => frames,
        other => panic!("expected frames, got {other:?}"),
    };
    let _ = std::fs::remove_dir_all(&dir);
    frames
}

/// Re-seals a mutated payload into a well-formed envelope: correct length
/// field and correct checksum, so only the *content* is foreign.
fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An unknown record kind — what a future format version would write —
    /// decodes to a typed `Wire(BadTag)` error even under a valid checksum.
    #[test]
    fn unknown_record_kind_is_a_typed_error(
        frame_ix in 0usize..8,
        kind in 9u8..=255,
    ) {
        let frames = shipped_frames();
        let frame = &frames[frame_ix % frames.len()];
        let mut payload = frame[8..].to_vec();
        payload[8] = kind; // seq:u64 then kind:u8
        let sealed = seal(&payload);
        match decode_frame(&sealed) {
            Err(PersistError::Wire(WireError::BadTag(t))) => prop_assert_eq!(t, kind),
            other => return Err(TestCaseError::fail(format!(
                "unknown kind {kind} must be BadTag, got {other:?}"
            ))),
        }
    }

    /// Trailing bytes after a fully decoded record — a future version's
    /// extension fields — are refused as a typed error, not ignored: a
    /// reader that cannot understand the whole record must not apply it.
    #[test]
    fn trailing_bytes_are_a_typed_error(
        frame_ix in 0usize..8,
        extra in proptest::collection::vec(any::<u8>(), 1..24),
    ) {
        let frames = shipped_frames();
        let frame = &frames[frame_ix % frames.len()];
        let mut payload = frame[8..].to_vec();
        payload.extend_from_slice(&extra);
        let sealed = seal(&payload);
        match decode_frame(&sealed) {
            Err(PersistError::Wire(WireError::Trailing { .. })) => {}
            other => return Err(TestCaseError::fail(format!(
                "trailing bytes must be a typed Trailing error, got {other:?}"
            ))),
        }
    }

    /// Arbitrary single-byte corruption anywhere in a valid frame either
    /// still decodes to the original record (flips in dead space cannot
    /// exist: every byte is load-bearing) or fails typed — never panics,
    /// never returns a *different* record.
    #[test]
    fn byte_flips_never_panic_and_never_misread(
        frame_ix in 0usize..8,
        at in 0usize..256,
        flip in 1u8..=255,
    ) {
        let frames = shipped_frames();
        let frame = &frames[frame_ix % frames.len()];
        let original = decode_frame(frame).expect("source frame is valid");
        let mut mutated = frame.clone();
        let at = at % mutated.len();
        mutated[at] ^= flip;
        match decode_frame(&mutated) {
            Ok(decoded) => prop_assert_eq!(
                decoded, original,
                "a surviving decode must reproduce the original record"
            ),
            Err(PersistError::Wire(_) | PersistError::Corrupt(_)) => {}
            Err(other) => return Err(TestCaseError::fail(format!(
                "unexpected error class: {other:?}"
            ))),
        }
    }

    /// Truncating a valid frame at any boundary is typed corruption.
    #[test]
    fn truncation_is_a_typed_error(frame_ix in 0usize..8, keep_frac in 0usize..1000) {
        let frames = shipped_frames();
        let frame = &frames[frame_ix % frames.len()];
        let keep = (frame.len() - 1) * keep_frac / 1000;
        match decode_frame(&frame[..keep]) {
            Err(PersistError::Wire(_) | PersistError::Corrupt(_)) => {}
            other => return Err(TestCaseError::fail(format!(
                "truncated frame must fail typed, got {other:?}"
            ))),
        }
    }
}
