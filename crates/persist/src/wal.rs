//! The write-ahead log: append-only, checksummed, length-prefixed records
//! with batched group commit.
//!
//! # On-disk format
//!
//! The log is a single file of *frames*:
//!
//! ```text
//! ┌──────────┬──────────┬─────────────────────────────┐
//! │ len: u32 │ crc: u32 │ payload (len bytes)          │
//! └──────────┴──────────┴─────────────────────────────┘
//! payload = seq: u64 │ kind: u8 │ body (record-specific)
//! ```
//!
//! `crc` is the IEEE CRC-32 of the payload. Sequence numbers are assigned
//! by the log's single counter and are strictly consecutive in the file
//! (rotation keeps a suffix, so the invariant survives truncation). The
//! first frame is always a [`WalRecord::Meta`] carrying the relation's
//! [`DurableSchema`] and the log's base sequence number, so a log file is
//! self-describing.
//!
//! # Torn-write tolerance
//!
//! The scan ([`read_wal`]) accepts the longest valid prefix: it stops at
//! the first frame whose header is short, whose length runs past the file,
//! whose checksum fails, or whose sequence number breaks the consecutive
//! run. A crash mid-write therefore costs at most the records that had not
//! reached a completed frame — exactly the records a caller had not yet
//! [`commit`](Wal::commit)ted.
//!
//! # Group commit
//!
//! [`Wal::append`] only appends to an in-memory segment under the log's
//! mutex — it never touches the file, so it is safe (and cheap) to call
//! inside a shard's write-lock critical section. The segment reaches disk
//! as **one contiguous write followed by one fsync** when
//! [`commit`](Wal::commit) is called or when [`maybe_commit`](Wal::maybe_commit)
//! finds the [`GroupCommitPolicy`] thresholds exceeded. A policy of
//! [`GroupCommitPolicy::per_record`] degenerates to fsync-per-record — the
//! baseline BENCH_5's `wal_commit` family measures group commit against.

use crate::{DurableSchema, PersistError};
use relic_core::wire::{self, Reader};
use relic_spec::Tuple;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`), table-driven.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// The IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// An incremental IEEE CRC-32: feed slices with [`update`](Crc32::update),
/// read the digest with [`finish`](Crc32::finish). Lets the append path
/// checksum a frame's seq prefix and pre-encoded body without first
/// concatenating them.
#[derive(Debug, Clone)]
pub struct Crc32 {
    c: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh digest (equal to `crc32(b"")` if finished immediately).
    pub fn new() -> Crc32 {
        Crc32 { c: !0 }
    }

    /// Feeds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.c = CRC_TABLE[((self.c ^ b as u32) & 0xFF) as usize] ^ (self.c >> 8);
        }
    }

    /// The digest of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.c
    }
}

/// Frame header size: `len: u32` + `crc: u32`.
const HEADER: usize = 8;
/// Payload prefix: `seq: u64` + `kind: u8`.
const PAYLOAD_PREFIX: usize = 9;
/// Upper bound on a single frame's payload — anything larger is treated as
/// corruption by the scan (a real batch record tops out far below this).
///
/// The bound is enforced symmetrically: writers *refuse* to frame a larger
/// payload ([`PersistError::FrameTooLarge`]) and readers treat a larger
/// length prefix as corruption. Before the write-side check existed, a
/// payload past `u32::MAX` silently truncated its own length prefix (`as
/// u32`) and everything after it in the stream misparsed.
pub const MAX_PAYLOAD: u32 = 1 << 30;

/// Checks that a frame payload of `len` bytes is frameable (fits the `u32`
/// length prefix *and* the scanner's sanity cap).
///
/// # Errors
///
/// [`PersistError::FrameTooLarge`] when it is not.
pub(crate) fn check_payload_len(len: usize) -> Result<u32, PersistError> {
    match u32::try_from(len) {
        Ok(l) if l <= MAX_PAYLOAD => Ok(l),
        _ => Err(PersistError::FrameTooLarge {
            len,
            max: MAX_PAYLOAD as usize,
        }),
    }
}

/// Checks that an element count fits its `u32` wire prefix.
///
/// # Errors
///
/// [`PersistError::FrameTooLarge`] when it does not (the error's `len` is
/// the element count — far past the byte cap anyway, since every element
/// encodes to at least one byte).
fn check_count(n: usize) -> Result<u32, PersistError> {
    u32::try_from(n).map_err(|_| PersistError::FrameTooLarge {
        len: n,
        max: u32::MAX as usize,
    })
}

const KIND_META: u8 = 0;
const KIND_INSERT: u8 = 1;
const KIND_REMOVE: u8 = 2;
const KIND_INSERT_MANY: u8 = 3;
const KIND_BULK_LOAD: u8 = 4;
const KIND_REMOVE_MANY: u8 = 5;
const KIND_MIGRATION: u8 = 6;
const KIND_TXN: u8 = 7;
const KIND_TERM: u8 = 8;

/// One logged operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// The log's leading record: the relation's schema and the sequence
    /// number the log starts after (0 for a fresh log; the checkpoint's
    /// truncation point after a rotation).
    Meta {
        /// The relation's rebuild description.
        schema: DurableSchema,
        /// Records in this file have sequence numbers strictly greater
        /// than this.
        base_seq: u64,
        /// The replication term the log was sealed under (0 for an
        /// unreplicated relation). Rotation re-stamps the current term so
        /// it survives prefix truncation even when the
        /// [`TermBump`](WalRecord::TermBump) record that set it is dropped.
        term: u64,
    },
    /// One full-tuple insert.
    Insert(Tuple),
    /// One remove-by-pattern (the pattern tuple of
    /// [`SynthRelation::remove`](relic_core::SynthRelation::remove)).
    Remove(Tuple),
    /// A per-shard `insert_many` batch (every tuple routes to one shard).
    InsertMany(Vec<Tuple>),
    /// A per-shard `bulk_load` batch (every tuple routes to one shard).
    BulkLoad(Vec<Tuple>),
    /// A `remove_many` pattern batch (applied to every shard).
    RemoveMany(Vec<Tuple>),
    /// A migration epoch marker: the new decomposition identity in
    /// let-notation.
    MigrationEpoch(String),
    /// One partition read-modify-write critical section's writes
    /// ([`Insert`](WalRecord::Insert) / [`Remove`](WalRecord::Remove) only,
    /// all pinned to one shard), logged as **one frame** so the whole
    /// sequence is crash-atomic: a torn tail drops the entire RMW or none
    /// of it, never a remove without its re-insert.
    Txn(Vec<WalRecord>),
    /// A replication term bump: written by a promoted follower when it
    /// seals its log and starts accepting writes. Replay treats it as a
    /// state no-op but remembers the new term; shipping it in sequence is
    /// how followers learn — durably and in frame order — that leadership
    /// changed, which is what fences stale primaries at apply time.
    TermBump(u64),
}

impl WalRecord {
    fn kind(&self) -> u8 {
        match self {
            WalRecord::Meta { .. } => KIND_META,
            WalRecord::Insert(_) => KIND_INSERT,
            WalRecord::Remove(_) => KIND_REMOVE,
            WalRecord::InsertMany(_) => KIND_INSERT_MANY,
            WalRecord::BulkLoad(_) => KIND_BULK_LOAD,
            WalRecord::RemoveMany(_) => KIND_REMOVE_MANY,
            WalRecord::MigrationEpoch(_) => KIND_MIGRATION,
            WalRecord::Txn(_) => KIND_TXN,
            WalRecord::TermBump(_) => KIND_TERM,
        }
    }

    fn encode_body(&self, out: &mut Vec<u8>) -> Result<(), PersistError> {
        match self {
            WalRecord::Meta {
                schema,
                base_seq,
                term,
            } => {
                wire::put_u64(out, *base_seq);
                wire::put_u64(out, *term);
                schema.encode(out);
            }
            WalRecord::Insert(t) | WalRecord::Remove(t) => wire::put_tuple(out, t),
            WalRecord::InsertMany(ts) | WalRecord::BulkLoad(ts) | WalRecord::RemoveMany(ts) => {
                // The count prefix is a `u32`: a larger batch must be
                // refused, not silently truncated (`as u32`) into a frame
                // whose count disagrees with its contents.
                check_count(ts.len())?;
                wire::put_tuples(out, ts);
            }
            WalRecord::MigrationEpoch(src) => wire::put_str(out, src),
            WalRecord::Txn(ops) => {
                wire::put_u32(out, check_count(ops.len())?);
                for op in ops {
                    debug_assert!(
                        matches!(op, WalRecord::Insert(_) | WalRecord::Remove(_)),
                        "transactions hold only single-tuple writes"
                    );
                    out.push(op.kind());
                    op.encode_body(out)?;
                }
            }
            WalRecord::TermBump(term) => wire::put_u64(out, *term),
        }
        Ok(())
    }

    fn decode(kind: u8, r: &mut Reader<'_>) -> Result<WalRecord, wire::WireError> {
        Ok(match kind {
            KIND_META => {
                let base_seq = r.take_u64()?;
                let term = r.take_u64()?;
                let schema = DurableSchema::decode(r)?;
                WalRecord::Meta {
                    schema,
                    base_seq,
                    term,
                }
            }
            KIND_INSERT => WalRecord::Insert(wire::take_tuple(r)?),
            KIND_REMOVE => WalRecord::Remove(wire::take_tuple(r)?),
            KIND_INSERT_MANY => WalRecord::InsertMany(wire::take_tuples(r)?),
            KIND_BULK_LOAD => WalRecord::BulkLoad(wire::take_tuples(r)?),
            KIND_REMOVE_MANY => WalRecord::RemoveMany(wire::take_tuples(r)?),
            KIND_MIGRATION => WalRecord::MigrationEpoch(r.take_str()?.to_string()),
            KIND_TXN => {
                let n = r.take_u32()? as usize;
                let mut ops = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    let op = match r.take_u8()? {
                        KIND_INSERT => WalRecord::Insert(wire::take_tuple(r)?),
                        KIND_REMOVE => WalRecord::Remove(wire::take_tuple(r)?),
                        t => return Err(wire::WireError::BadTag(t)),
                    };
                    ops.push(op);
                }
                WalRecord::Txn(ops)
            }
            KIND_TERM => WalRecord::TermBump(r.take_u64()?),
            t => return Err(wire::WireError::BadTag(t)),
        })
    }
}

/// Encodes one complete frame (header + payload) for `rec` at `seq`.
///
/// # Errors
///
/// [`PersistError::FrameTooLarge`] if the payload exceeds the frame cap —
/// the unchecked cast this replaces wrote a wrapped length prefix instead,
/// corrupting every frame after it.
fn encode_frame(out: &mut Vec<u8>, seq: u64, rec: &WalRecord) -> Result<(), PersistError> {
    let mut payload = Vec::with_capacity(64);
    wire::put_u64(&mut payload, seq);
    payload.push(rec.kind());
    rec.encode_body(&mut payload)?;
    wire::put_u32(out, check_payload_len(payload.len())?);
    wire::put_u32(out, crc32(&payload));
    out.extend_from_slice(&payload);
    Ok(())
}

/// A record pre-encoded (`kind` byte + body) and length-validated, ready
/// for an **infallible** append inside a shard's critical section.
///
/// Encoding and the [`MAX_PAYLOAD`] check both happen in
/// [`Wal::encode_record`] / [`Wal::encode_insert_batch`], *outside* any
/// lock — so an oversized record is refused before any shard state
/// changes, and the append under the lock is pure memory movement.
#[derive(Debug)]
pub struct EncodedRecord {
    /// `kind` byte followed by the record body (everything after the
    /// payload's seq prefix).
    bytes: Vec<u8>,
}

impl EncodedRecord {
    /// The record's kind byte.
    fn kind(&self) -> u8 {
        self.bytes[0]
    }
}

/// Incrementally builds the encoded form of a [`WalRecord::Txn`] as a
/// partition critical section runs, enforcing the frame cap **per
/// operation**: [`push`](TxnBuilder::push) refuses the op that would
/// overflow the frame *before* the caller applies it to the shard, so an
/// oversized transaction can never end up applied-but-unloggable.
#[derive(Debug, Default)]
pub struct TxnBuilder {
    count: u32,
    ops: Vec<u8>,
}

impl TxnBuilder {
    /// Encodes `op` into the transaction.
    ///
    /// # Errors
    ///
    /// [`PersistError::FrameTooLarge`] if adding `op` would overflow the
    /// frame cap — the builder is left exactly as it was (the refused op
    /// must not be applied).
    pub fn push(&mut self, op: &WalRecord) -> Result<(), PersistError> {
        let start = self.ops.len();
        self.ops.push(op.kind());
        op.encode_body(&mut self.ops)?;
        // Final payload shape: seq(8) + kind(1) + count(4) + ops.
        match check_payload_len(13 + self.ops.len()) {
            Ok(_) => {
                // Can't overflow: each op adds ≥ 1 byte and the byte cap
                // is far below u32::MAX ops.
                self.count += 1;
                Ok(())
            }
            Err(e) => {
                self.ops.truncate(start);
                Err(e)
            }
        }
    }

    /// Has nothing been pushed?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finishes into an appendable record (encoding-identical to
    /// `Wal::encode_record(&WalRecord::Txn(ops))`).
    pub fn finish(self) -> EncodedRecord {
        let mut bytes = Vec::with_capacity(5 + self.ops.len());
        bytes.push(KIND_TXN);
        bytes.extend_from_slice(&self.count.to_le_bytes());
        bytes.extend_from_slice(&self.ops);
        EncodedRecord { bytes }
    }
}

/// A raw frame located by the scanner (payload not yet decoded).
struct Frame {
    seq: u64,
    kind: u8,
    /// Byte range of the whole frame in the file.
    start: usize,
    end: usize,
}

/// Locates the longest valid frame prefix of `bytes`: every frame has a
/// complete header, an in-bounds sane length, a matching checksum, and a
/// sequence number exactly one past its predecessor's.
fn scan_frames(bytes: &[u8]) -> (Vec<Frame>, usize) {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    let mut prev_seq: Option<u64> = None;
    while bytes.len() - pos >= HEADER {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len < PAYLOAD_PREFIX as u32 || len > MAX_PAYLOAD {
            break;
        }
        let len = len as usize;
        if bytes.len() - pos - HEADER < len {
            break; // truncated final frame
        }
        let payload = &bytes[pos + HEADER..pos + HEADER + len];
        if crc32(payload) != crc {
            break; // torn or corrupted frame: stop at the first bad checksum
        }
        let seq = u64::from_le_bytes(payload[..8].try_into().unwrap());
        if prev_seq.is_some_and(|p| seq != p + 1) {
            break; // a gap can only come from corruption
        }
        prev_seq = Some(seq);
        frames.push(Frame {
            seq,
            kind: payload[8],
            start: pos,
            end: pos + HEADER + len,
        });
        pos += HEADER + len;
    }
    let valid_len = frames.last().map_or(0, |f| f.end);
    (frames, valid_len)
}

/// One decoded log entry (excluding the leading meta record).
#[derive(Debug)]
pub struct WalEntry {
    /// The record's sequence number.
    pub seq: u64,
    /// The operation.
    pub record: WalRecord,
    /// Byte offset of the frame's first byte (for crash-injection tests).
    pub start: u64,
    /// Byte offset one past the frame's last byte.
    pub end: u64,
}

/// The result of scanning a log file: the leading schema record, the valid
/// entries in sequence order, and the byte length of the valid prefix.
#[derive(Debug)]
pub struct ScannedWal {
    /// The log's schema + base sequence, if the leading meta record is
    /// intact.
    pub meta: Option<(DurableSchema, u64)>,
    /// The replication term in force at the end of the valid prefix: the
    /// meta record's term, superseded by any
    /// [`WalRecord::TermBump`] further in.
    pub term: u64,
    /// The decoded operation records of the valid prefix.
    pub entries: Vec<WalEntry>,
    /// Bytes of the longest valid frame prefix (everything after is torn
    /// or corrupt and is discarded on the next append).
    pub valid_len: u64,
}

/// Scans a log file, accepting the longest valid prefix (the scan stops at
/// the first bad checksum, short frame, or sequence gap — a torn final
/// record is expected after a crash, not an error).
///
/// # Errors
///
/// [`PersistError::Io`] if the file cannot be read;
/// [`PersistError::Wire`] if a checksum-valid frame fails to decode (true
/// corruption, distinct from a torn tail).
pub fn read_wal(path: &Path) -> Result<ScannedWal, PersistError> {
    let bytes = std::fs::read(path)?;
    let (frames, valid_len) = scan_frames(&bytes);
    let mut meta = None;
    let mut term = 0u64;
    let mut entries = Vec::with_capacity(frames.len());
    for f in &frames {
        let payload = &bytes[f.start + HEADER + 8..f.end];
        let mut r = Reader::new(payload);
        let kind = r.take_u8().expect("scanner verified the prefix");
        let record = WalRecord::decode(kind, &mut r)?;
        // A checksum-valid frame with leftover bytes is corruption (or a
        // newer writer), not slack to ignore — fail with a typed error.
        r.expect_end()?;
        match record {
            WalRecord::Meta {
                schema,
                base_seq,
                term: t,
            } if f.start == 0 => {
                term = term.max(t);
                meta = Some((schema, base_seq));
            }
            WalRecord::Meta { .. } => {
                return Err(PersistError::Corrupt(
                    "meta record not at the start of the log".into(),
                ))
            }
            record => {
                if let WalRecord::TermBump(t) = &record {
                    term = term.max(*t);
                }
                entries.push(WalEntry {
                    seq: f.seq,
                    record,
                    start: f.start as u64,
                    end: f.end as u64,
                });
            }
        }
    }
    Ok(ScannedWal {
        meta,
        term,
        entries,
        valid_len: valid_len as u64,
    })
}

/// Decodes one complete shipped frame (`len | crc | payload`) into its
/// sequence number and record, validating the length, the checksum, and
/// that the payload has no trailing bytes.
///
/// This is the follower-side twin of the scanner: replication transports
/// hand frames around as opaque byte blobs, and every blob is re-verified
/// here before it is applied or appended to a local log.
///
/// # Errors
///
/// [`PersistError::Corrupt`] for a short frame, length mismatch, or
/// checksum failure; [`PersistError::Wire`] if the payload fails to decode
/// or has trailing bytes.
pub fn decode_frame(bytes: &[u8]) -> Result<(u64, WalRecord), PersistError> {
    if bytes.len() < HEADER + PAYLOAD_PREFIX {
        return Err(PersistError::Corrupt("frame shorter than header".into()));
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if len != bytes.len() - HEADER {
        return Err(PersistError::Corrupt(format!(
            "frame length {} disagrees with payload size {}",
            len,
            bytes.len() - HEADER
        )));
    }
    let payload = &bytes[HEADER..];
    if crc32(payload) != crc {
        return Err(PersistError::Corrupt("frame checksum mismatch".into()));
    }
    let mut r = Reader::new(payload);
    let seq = r.take_u64().map_err(PersistError::Wire)?;
    let kind = r.take_u8().map_err(PersistError::Wire)?;
    let record = WalRecord::decode(kind, &mut r)?;
    r.expect_end()?;
    Ok((seq, record))
}

/// When the in-memory segment is flushed without an explicit
/// [`commit`](Wal::commit): at `max_records` pending records or
/// `max_bytes` pending bytes, whichever comes first.
#[derive(Debug, Clone, Copy)]
pub struct GroupCommitPolicy {
    /// Flush when this many records are pending.
    pub max_records: usize,
    /// Flush when this many payload bytes are pending.
    pub max_bytes: usize,
}

impl Default for GroupCommitPolicy {
    fn default() -> Self {
        GroupCommitPolicy {
            max_records: 128,
            max_bytes: 256 * 1024,
        }
    }
}

impl GroupCommitPolicy {
    /// Fsync after every record — the no-batching baseline.
    pub fn per_record() -> Self {
        GroupCommitPolicy {
            max_records: 1,
            max_bytes: 0,
        }
    }

    /// Never auto-flush: records reach disk only on an explicit
    /// [`commit`](Wal::commit) (used by tests that control durability
    /// points exactly).
    pub fn manual() -> Self {
        GroupCommitPolicy {
            max_records: usize::MAX,
            max_bytes: usize::MAX,
        }
    }
}

/// The byte range of one frame in the log file, kept in memory so shipping
/// reads never rescan the file.
#[derive(Debug, Clone, Copy)]
struct FrameLoc {
    seq: u64,
    kind: u8,
    start: u64,
    end: u64,
}

/// Committed frames fetched for shipping ([`Wal::committed_frames_after`]).
#[derive(Debug)]
pub enum TailRead {
    /// The raw bytes of each frame with sequence numbers consecutively
    /// following the requested cursor (possibly empty: caught up).
    Frames(Vec<Vec<u8>>),
    /// The cursor predates this log's base — rotation discarded the prefix.
    /// The fetcher must catch up from a checkpoint at or past `base_seq`.
    Truncated {
        /// The current log segment's base sequence number.
        base_seq: u64,
    },
}

#[derive(Debug)]
struct WalInner {
    file: File,
    /// The in-memory segment: encoded frames not yet written.
    buf: Vec<u8>,
    /// Records in `buf`.
    pending: usize,
    next_seq: u64,
    /// Highest sequence number synced to disk.
    durable_seq: u64,
    /// The current replication term (see [`WalRecord::TermBump`]).
    term: u64,
    /// The current segment's base: frames in the file have `seq > base_seq`
    /// except the leading meta frame (whose seq *is* `base_seq`).
    base_seq: u64,
    /// Durable bytes in the file (pending buffered frames sit past this).
    file_len: u64,
    /// Byte locations of every frame, durable or pending (pending entries
    /// describe where the frame *will* land once flushed). Rebuilt on
    /// rotation.
    index: Vec<FrameLoc>,
}

/// The write-ahead log handle. All methods are `&self`; the single
/// internal mutex orders sequence assignment, buffering, flushing and
/// rotation (appends are pure memory operations — I/O happens only in
/// flushes and rotations).
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    policy: GroupCommitPolicy,
    inner: Mutex<WalInner>,
}

impl Wal {
    /// Locks the log state, recovering from a poisoned mutex: every
    /// critical section leaves `inner` structurally consistent before any
    /// fallible step (I/O errors are returned, not panicked), and the
    /// frame checksums catch anything a panicking writer could have left
    /// half-framed — so a serving loop degrades to an I/O error instead of
    /// cascading panics across threads.
    fn lock(&self) -> MutexGuard<'_, WalInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Creates a fresh log at `path` (truncating any existing file) whose
    /// leading meta record carries `schema`, `base_seq` and `term`. The
    /// meta record is written and synced immediately, so the log is
    /// self-describing from the first byte.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on file creation or the initial write.
    pub fn create(
        path: &Path,
        policy: GroupCommitPolicy,
        schema: &DurableSchema,
        base_seq: u64,
        term: u64,
    ) -> Result<Wal, PersistError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut buf = Vec::new();
        encode_frame(
            &mut buf,
            base_seq,
            &WalRecord::Meta {
                schema: schema.clone(),
                base_seq,
                term,
            },
        )?;
        file.write_all(&buf)?;
        file.sync_data()?;
        let index = vec![FrameLoc {
            seq: base_seq,
            kind: KIND_META,
            start: 0,
            end: buf.len() as u64,
        }];
        Ok(Wal {
            path: path.to_path_buf(),
            policy,
            inner: Mutex::new(WalInner {
                file,
                buf: Vec::new(),
                pending: 0,
                next_seq: base_seq + 1,
                durable_seq: base_seq,
                term,
                base_seq,
                file_len: index[0].end,
                index,
            }),
        })
    }

    /// Opens an existing log for appending: the file is truncated to
    /// `valid_len` (discarding any torn tail found by [`read_wal`]) and
    /// appends continue at `next_seq` under `term`.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] on open/truncate/seek.
    pub fn open_for_append(
        path: &Path,
        policy: GroupCommitPolicy,
        next_seq: u64,
        valid_len: u64,
        term: u64,
    ) -> std::io::Result<Wal> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::with_capacity(valid_len as usize);
        file.read_to_end(&mut bytes)?;
        let (frames, _) = scan_frames(&bytes);
        let index: Vec<FrameLoc> = frames
            .iter()
            .map(|f| FrameLoc {
                seq: f.seq,
                kind: f.kind,
                start: f.start as u64,
                end: f.end as u64,
            })
            .collect();
        let base_seq = index
            .iter()
            .find(|l| l.kind == KIND_META)
            .map(|l| l.seq)
            .unwrap_or_else(|| {
                index
                    .first()
                    .map_or(next_seq.saturating_sub(1), |l| l.seq.saturating_sub(1))
            });
        file.seek(SeekFrom::End(0))?;
        file.sync_data()?;
        Ok(Wal {
            path: path.to_path_buf(),
            policy,
            inner: Mutex::new(WalInner {
                file,
                buf: Vec::new(),
                pending: 0,
                next_seq,
                durable_seq: next_seq.saturating_sub(1),
                term,
                base_seq,
                file_len: valid_len,
                index,
            }),
        })
    }

    /// Encodes and length-validates `rec` for a later
    /// [`append_encoded`](Wal::append_encoded) — call this *outside* any
    /// shard critical section, so oversized records are refused before any
    /// state changes and no serialization work happens under a lock.
    ///
    /// # Errors
    ///
    /// [`PersistError::FrameTooLarge`] if the record would not fit a frame.
    pub fn encode_record(rec: &WalRecord) -> Result<EncodedRecord, PersistError> {
        let mut bytes = Vec::with_capacity(64);
        bytes.push(rec.kind());
        rec.encode_body(&mut bytes)?;
        // The framed payload carries an 8-byte seq prefix ahead of these
        // bytes; validate the final size now so the append cannot fail.
        check_payload_len(8 + bytes.len())?;
        Ok(EncodedRecord { bytes })
    }

    /// Encodes a per-shard batch record ([`WalRecord::BulkLoad`] when
    /// `bulk`, [`WalRecord::InsertMany`] otherwise) serialized straight
    /// from the borrowed slice — the zero-clone path for the bulk-ingest
    /// hot loop, where building an owned record would double peak memory.
    ///
    /// # Errors
    ///
    /// [`PersistError::FrameTooLarge`] if the batch would not fit a frame.
    pub fn encode_insert_batch(
        bulk: bool,
        tuples: &[Tuple],
    ) -> Result<EncodedRecord, PersistError> {
        check_count(tuples.len())?;
        let mut bytes = Vec::with_capacity(64);
        bytes.push(if bulk {
            KIND_BULK_LOAD
        } else {
            KIND_INSERT_MANY
        });
        wire::put_tuples(&mut bytes, tuples);
        check_payload_len(8 + bytes.len())?;
        Ok(EncodedRecord { bytes })
    }

    /// Appends `rec` to the in-memory segment and returns its sequence
    /// number.
    ///
    /// # Errors
    ///
    /// [`PersistError::FrameTooLarge`] if the record would not fit a
    /// frame. Callers that append inside a shard critical section should
    /// [`encode_record`](Wal::encode_record) first and use the infallible
    /// [`append_encoded`](Wal::append_encoded) under the lock instead.
    pub fn append(&self, rec: &WalRecord) -> Result<u64, PersistError> {
        Ok(self.append_encoded(&Self::encode_record(rec)?))
    }

    /// Appends a pre-validated record to the in-memory segment and returns
    /// its sequence number. Infallible and I/O-free: safe to call inside a
    /// shard critical section. The record reaches disk at the next flush
    /// ([`commit`](Wal::commit), or [`maybe_commit`](Wal::maybe_commit)
    /// past the policy thresholds).
    pub fn append_encoded(&self, rec: &EncodedRecord) -> u64 {
        let mut inner = self.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let payload_len = 8 + rec.bytes.len();
        let mut header = [0u8; HEADER];
        // Validated by encode_record/encode_insert_batch: fits u32 and the
        // scanner's cap.
        header[..4].copy_from_slice(&(payload_len as u32).to_le_bytes());
        let mut crc = Crc32::new();
        crc.update(&seq.to_le_bytes());
        crc.update(&rec.bytes);
        header[4..].copy_from_slice(&crc.finish().to_le_bytes());
        let start = inner.file_len + inner.buf.len() as u64;
        inner.index.push(FrameLoc {
            seq,
            kind: rec.kind(),
            start,
            end: start + (HEADER + payload_len) as u64,
        });
        inner.buf.extend_from_slice(&header);
        inner.buf.extend_from_slice(&seq.to_le_bytes());
        inner.buf.extend_from_slice(&rec.bytes);
        inner.pending += 1;
        seq
    }

    fn flush_locked(inner: &mut WalInner) -> std::io::Result<u64> {
        if inner.pending > 0 {
            inner.file.write_all(&inner.buf)?;
            inner.file.sync_data()?;
            inner.file_len += inner.buf.len() as u64;
            inner.buf.clear();
            inner.pending = 0;
            inner.durable_seq = inner.next_seq - 1;
        }
        Ok(inner.durable_seq)
    }

    /// Flushes the pending segment iff the group-commit thresholds are
    /// exceeded; returns the new durable sequence number if it flushed.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] from the write or fsync.
    pub fn maybe_commit(&self) -> std::io::Result<Option<u64>> {
        let mut inner = self.lock();
        if inner.pending >= self.policy.max_records || inner.buf.len() >= self.policy.max_bytes {
            return Self::flush_locked(&mut inner).map(Some);
        }
        Ok(None)
    }

    /// The group commit: writes every pending record as one contiguous
    /// write and fsyncs once. Returns the highest durable sequence number.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] from the write or fsync.
    pub fn commit(&self) -> std::io::Result<u64> {
        let mut inner = self.lock();
        Self::flush_locked(&mut inner)
    }

    /// The highest sequence number known durable (synced).
    pub fn durable_seq(&self) -> u64 {
        self.lock().durable_seq
    }

    /// The next sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.lock().next_seq
    }

    /// Bytes sitting in the in-memory segment, appended but not yet
    /// flushed — the WAL flush lag. A serving front end uses this (plus
    /// [`pending_records`](Wal::pending_records)) for admission control:
    /// when the lag crosses a threshold, new mutation frames are delayed
    /// or shed instead of growing the unflushed window without bound.
    pub fn pending_bytes(&self) -> usize {
        self.lock().buf.len()
    }

    /// Records sitting in the in-memory segment, appended but not yet
    /// flushed.
    pub fn pending_records(&self) -> usize {
        self.lock().pending
    }

    /// The current segment's base sequence number (frames in the file have
    /// strictly greater sequence numbers).
    pub fn base_seq(&self) -> u64 {
        self.lock().base_seq
    }

    /// The current replication term.
    pub fn term(&self) -> u64 {
        self.lock().term
    }

    /// Appends a [`WalRecord::TermBump`] to `new_term` and adopts it,
    /// returning the record's sequence number. `new_term` must exceed the
    /// current term (promotion only moves forward). The record is *not*
    /// flushed — callers commit before acting on the new term, so a
    /// promoted primary's fencing bump is durable before it accepts writes.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] if `new_term` does not exceed the current
    /// term (a stale promoter lost the race).
    pub fn bump_term(&self, new_term: u64) -> Result<u64, PersistError> {
        let mut inner = self.lock();
        if new_term <= inner.term {
            return Err(PersistError::Corrupt(format!(
                "term bump to {new_term} does not exceed current term {}",
                inner.term
            )));
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let mut frame = Vec::with_capacity(HEADER + PAYLOAD_PREFIX + 8);
        encode_frame(&mut frame, seq, &WalRecord::TermBump(new_term))?;
        let start = inner.file_len + inner.buf.len() as u64;
        inner.index.push(FrameLoc {
            seq,
            kind: KIND_TERM,
            start,
            end: start + frame.len() as u64,
        });
        inner.buf.extend_from_slice(&frame);
        inner.pending += 1;
        inner.term = new_term;
        Ok(seq)
    }

    /// Reads the raw bytes of committed frames with sequence numbers in
    /// `(after, durable_seq]`, at most `max_bytes` of frames per call
    /// (always at least one frame when any is due) — the shipping read used
    /// by replication. The frames come back in sequence order, each blob a
    /// complete checksummed frame.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] if the log file cannot be re-opened or read.
    pub fn committed_frames_after(
        &self,
        after: u64,
        max_bytes: usize,
    ) -> std::io::Result<TailRead> {
        let inner = self.lock();
        if after < inner.base_seq {
            return Ok(TailRead::Truncated {
                base_seq: inner.base_seq,
            });
        }
        let due: Vec<FrameLoc> = inner
            .index
            .iter()
            .filter(|l| l.kind != KIND_META && l.seq > after && l.seq <= inner.durable_seq)
            .copied()
            .collect();
        if due.is_empty() {
            return Ok(TailRead::Frames(Vec::new()));
        }
        let mut take = Vec::new();
        let mut total = 0usize;
        for l in &due {
            let sz = (l.end - l.start) as usize;
            if !take.is_empty() && total + sz > max_bytes {
                break;
            }
            take.push(*l);
            total += sz;
        }
        // Consecutive seqs are contiguous bytes, so one read covers the
        // whole batch. A fresh read handle leaves the append cursor alone.
        let (lo, hi) = (take[0].start, take[take.len() - 1].end);
        let mut rf = File::open(&self.path)?;
        rf.seek(SeekFrom::Start(lo))?;
        let mut bytes = vec![0u8; (hi - lo) as usize];
        rf.read_exact(&mut bytes)?;
        drop(inner);
        let frames = take
            .iter()
            .map(|l| bytes[(l.start - lo) as usize..(l.end - lo) as usize].to_vec())
            .collect();
        Ok(TailRead::Frames(frames))
    }

    /// Truncates the log prefix after a checkpoint: keeps only frames with
    /// `seq > keep_after` (plus a fresh meta record with `base_seq =
    /// keep_after`), built as a sidecar file and atomically renamed over
    /// the log. Pending records are flushed first; appends block for the
    /// duration (the tail is small right after a checkpoint, so the hold is
    /// short — and it is the *log* mutex, never a shard lock).
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] from any of the file operations.
    pub fn rotate(&self, keep_after: u64, schema: &DurableSchema) -> Result<(), PersistError> {
        let mut inner = self.lock();
        Self::flush_locked(&mut inner)?;
        let bytes = std::fs::read(&self.path)?;
        let (frames, _) = scan_frames(&bytes);
        let mut out = Vec::with_capacity(bytes.len() / 2 + 128);
        let mut index = Vec::with_capacity(frames.len() + 1);
        encode_frame(
            &mut out,
            keep_after,
            &WalRecord::Meta {
                schema: schema.clone(),
                base_seq: keep_after,
                term: inner.term,
            },
        )?;
        index.push(FrameLoc {
            seq: keep_after,
            kind: KIND_META,
            start: 0,
            end: out.len() as u64,
        });
        for f in frames.iter().filter(|f| f.kind != KIND_META) {
            if f.seq > keep_after {
                let start = out.len() as u64;
                out.extend_from_slice(&bytes[f.start..f.end]);
                index.push(FrameLoc {
                    seq: f.seq,
                    kind: f.kind,
                    start,
                    end: out.len() as u64,
                });
            }
        }
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut tf = File::create(&tmp)?;
            tf.write_all(&out)?;
            tf.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        inner.file = file;
        inner.base_seq = keep_after;
        inner.file_len = out.len() as u64;
        inner.index = index;
        // Make the rename itself durable (best effort: not all platforms
        // allow opening a directory for sync).
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relic_spec::{Catalog, RelSpec, Value};

    fn schema() -> DurableSchema {
        let mut cat = Catalog::new();
        let a = cat.intern("a");
        let v = cat.intern("v");
        let d = relic_decomp::parse(
            &mut cat,
            "let u : {a} . {v} = unit {v} in let x : {} . {a,v} = {a} -[htable]-> u in x",
        )
        .unwrap();
        DurableSchema {
            spec: RelSpec::new(cat.all()).with_fd(a.set(), v.set()),
            shard_cols: a.set(),
            shards: 4,
            decomposition_src: d.to_let_notation(&cat),
            fd_checking: true,
            catalog: cat,
        }
    }

    fn tup(cat: &Catalog, a: i64, v: i64) -> Tuple {
        Tuple::from_pairs([
            (cat.col("a").unwrap(), Value::from(a)),
            (cat.col("v").unwrap(), Value::from(v)),
        ])
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("relic_wal_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc_matches_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn txn_builder_matches_whole_record_encoding() {
        let s = schema();
        let cat = s.catalog.clone();
        let ops = vec![
            WalRecord::Remove(tup(&cat, 4, 40)),
            WalRecord::Insert(tup(&cat, 4, 41)),
        ];
        let mut b = TxnBuilder::default();
        for op in &ops {
            b.push(op).unwrap();
        }
        assert!(!b.is_empty());
        let whole = Wal::encode_record(&WalRecord::Txn(ops)).unwrap();
        assert_eq!(b.finish().bytes, whole.bytes);
    }

    #[test]
    fn oversized_payloads_are_refused_not_truncated() {
        assert!(check_payload_len(MAX_PAYLOAD as usize).is_ok());
        // Both past-the-cap and past-u32 sizes must come back as the typed
        // error — the old `as u32` cast wrapped the second case silently.
        for n in [MAX_PAYLOAD as usize + 1, u32::MAX as usize + 1] {
            match check_payload_len(n) {
                Err(PersistError::FrameTooLarge { len, .. }) => assert_eq!(len, n),
                other => panic!("expected FrameTooLarge, got {other:?}"),
            }
        }
        assert!(check_count(u32::MAX as usize).is_ok());
        assert!(matches!(
            check_count(u32::MAX as usize + 1),
            Err(PersistError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn append_commit_read_round_trip() {
        let dir = tmpdir("round_trip");
        let path = dir.join("wal.log");
        let s = schema();
        let cat = s.catalog.clone();
        let wal = Wal::create(&path, GroupCommitPolicy::manual(), &s, 0, 0).unwrap();
        let recs = vec![
            WalRecord::Insert(tup(&cat, 1, 10)),
            WalRecord::Remove(tup(&cat, 1, 10)),
            WalRecord::InsertMany(vec![tup(&cat, 2, 20), tup(&cat, 3, 30)]),
            WalRecord::BulkLoad(vec![tup(&cat, 4, 40)]),
            WalRecord::RemoveMany(vec![tup(&cat, 2, 20)]),
            WalRecord::MigrationEpoch(s.decomposition_src.clone()),
            WalRecord::Txn(vec![
                WalRecord::Remove(tup(&cat, 4, 40)),
                WalRecord::Insert(tup(&cat, 4, 41)),
            ]),
        ];
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(wal.append(r).unwrap(), i as u64 + 1);
        }
        // Nothing durable until the group commit.
        assert_eq!(wal.durable_seq(), 0);
        assert_eq!(read_wal(&path).unwrap().entries.len(), 0);
        assert_eq!(wal.commit().unwrap(), recs.len() as u64);
        let scanned = read_wal(&path).unwrap();
        let (schema_back, base) = scanned.meta.expect("meta record");
        assert_eq!(base, 0);
        assert_eq!(schema_back, s);
        assert_eq!(scanned.entries.len(), recs.len());
        for (e, r) in scanned.entries.iter().zip(&recs) {
            assert_eq!(&e.record, r);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_stops_at_torn_and_corrupt_tails() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        let s = schema();
        let cat = s.catalog.clone();
        let wal = Wal::create(&path, GroupCommitPolicy::manual(), &s, 0, 0).unwrap();
        for i in 0..5i64 {
            wal.append(&WalRecord::Insert(tup(&cat, i, i * 10)))
                .unwrap();
        }
        wal.commit().unwrap();
        let full = std::fs::read(&path).unwrap();
        let scanned = read_wal(&path).unwrap();
        assert_eq!(scanned.entries.len(), 5);
        assert_eq!(scanned.valid_len, full.len() as u64);
        let last = scanned.entries.last().unwrap();
        // Every truncation point inside the final frame loses exactly that
        // record and nothing else.
        for cut in last.start..last.end {
            std::fs::write(&path, &full[..cut as usize]).unwrap();
            let s2 = read_wal(&path).unwrap();
            assert_eq!(s2.entries.len(), 4, "cut at {cut}");
            assert_eq!(s2.valid_len, last.start, "cut at {cut}");
        }
        // A flipped byte inside the final frame is caught by the checksum.
        for delta in [0, 9, (last.end - last.start - 1)] {
            let mut bad = full.clone();
            bad[(last.start + delta) as usize] ^= 0xA5;
            std::fs::write(&path, &bad).unwrap();
            let s2 = read_wal(&path).unwrap();
            assert_eq!(s2.entries.len(), 4, "flip at +{delta}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_thresholds_flush_automatically() {
        let dir = tmpdir("thresholds");
        let path = dir.join("wal.log");
        let s = schema();
        let cat = s.catalog.clone();
        let wal = Wal::create(
            &path,
            GroupCommitPolicy {
                max_records: 3,
                max_bytes: usize::MAX,
            },
            &s,
            0,
            0,
        )
        .unwrap();
        wal.append(&WalRecord::Insert(tup(&cat, 1, 1))).unwrap();
        assert!(wal.maybe_commit().unwrap().is_none());
        wal.append(&WalRecord::Insert(tup(&cat, 2, 2))).unwrap();
        wal.append(&WalRecord::Insert(tup(&cat, 3, 3))).unwrap();
        assert_eq!(wal.maybe_commit().unwrap(), Some(3));
        assert_eq!(read_wal(&path).unwrap().entries.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_keeps_the_tail_and_stays_scannable() {
        let dir = tmpdir("rotate");
        let path = dir.join("wal.log");
        let s = schema();
        let cat = s.catalog.clone();
        let wal = Wal::create(&path, GroupCommitPolicy::manual(), &s, 0, 0).unwrap();
        for i in 0..10i64 {
            wal.append(&WalRecord::Insert(tup(&cat, i, i))).unwrap();
        }
        // Rotation flushes pending records itself.
        wal.rotate(7, &s).unwrap();
        let scanned = read_wal(&path).unwrap();
        let (_, base) = scanned.meta.expect("rotated meta");
        assert_eq!(base, 7);
        let seqs: Vec<u64> = scanned.entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![8, 9, 10]);
        // Appends continue past rotation with consecutive seqs.
        assert_eq!(
            wal.append(&WalRecord::Insert(tup(&cat, 99, 99))).unwrap(),
            11
        );
        wal.commit().unwrap();
        let scanned = read_wal(&path).unwrap();
        assert_eq!(
            scanned.entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![8, 9, 10, 11]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
