//! Snapshot checkpoints: a sidecar file holding a consistent per-shard
//! image of the relation, paired with per-shard log watermarks.
//!
//! A checkpoint is built from the per-shard snapshot vector of
//! [`read_view`](relic_concurrent::ConcurrentRelation::read_view) — taken
//! **without any shard lock**, so writers keep committing while the
//! checkpoint serializes. Each shard's snapshot carries the writer stamp of
//! its last logged operation ([`ReadView::shard_stamp`]), recorded here as
//! the shard's *watermark*: recovery applies a log record to a shard only
//! if its sequence number exceeds the shard's watermark, which makes
//! replay exact (never fuzzy) even though different shards may be
//! checkpointed at slightly different points of the log.
//!
//! The file is written to a sidecar (`checkpoint.tmp`), fsynced, and
//! atomically renamed over `checkpoint.bin` — a crash mid-checkpoint
//! leaves the previous checkpoint (or none) intact, never a torn one. The
//! body is CRC-guarded like a log frame.
//!
//! [`ReadView::shard_stamp`]: relic_concurrent::ReadView::shard_stamp

use crate::wal::crc32;
use crate::{DurableSchema, PersistError};
use relic_core::wire::{self, Reader};
use relic_spec::Tuple;
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// File magic: `RELICCKP` as little-endian bytes.
const MAGIC: &[u8; 8] = b"RELICCKP";
/// Format version.
const VERSION: u32 = 1;

/// The checkpoint file name inside a durable relation's directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";
/// The sidecar a checkpoint is staged in before the atomic rename. A crash
/// between the sidecar write and the rename leaves this file orphaned;
/// [`read_checkpoint`] ignores and removes it.
pub const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// A decoded checkpoint: the relation's schema (with the decomposition
/// identity *as of the checkpoint*), one watermark per shard, and the
/// tuple image.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The rebuild description (catalog, spec, sharding, decomposition,
    /// FD-checking mode).
    pub schema: DurableSchema,
    /// Per-shard log watermarks: shard `i`'s image contains exactly the
    /// logged operations with `seq <= shard_stamps[i]`.
    pub shard_stamps: Vec<u64>,
    /// The replication term in force when the checkpoint was taken (0 for
    /// an unreplicated relation) — a follower bootstrapping from this image
    /// starts fenced against anything older.
    pub term: u64,
    /// The tuple image (shard routing is recomputed on load — the schema's
    /// shard columns and count make it deterministic).
    pub tuples: Vec<Tuple>,
}

impl Checkpoint {
    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64 + self.tuples.len() * 32);
        self.schema.encode(&mut body);
        wire::put_u64(&mut body, self.term);
        wire::put_u32(&mut body, self.shard_stamps.len() as u32);
        for &s in &self.shard_stamps {
            wire::put_u64(&mut body, s);
        }
        wire::put_u64(&mut body, self.tuples.len() as u64);
        for t in &self.tuples {
            wire::put_tuple(&mut body, t);
        }
        body
    }

    fn decode(body: &[u8]) -> Result<Checkpoint, PersistError> {
        let mut r = Reader::new(body);
        let schema = DurableSchema::decode(&mut r)?;
        let term = r.take_u64()?;
        let nstamps = r.take_u32()? as usize;
        let mut shard_stamps = Vec::with_capacity(nstamps);
        for _ in 0..nstamps {
            shard_stamps.push(r.take_u64()?);
        }
        let n = r.take_u64()? as usize;
        let mut tuples = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            tuples.push(wire::take_tuple(&mut r)?);
        }
        r.expect_end().map_err(PersistError::Wire)?;
        Ok(Checkpoint {
            schema,
            shard_stamps,
            term,
            tuples,
        })
    }

    /// Serializes the checkpoint as a complete self-checking file image
    /// (magic + version + length + CRC + body) — the same bytes
    /// [`write_checkpoint`] stages, reused verbatim as a replication
    /// catch-up payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let body = self.encode();
        let mut out = Vec::with_capacity(body.len() + 24);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(body.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes a complete checkpoint image produced by
    /// [`Checkpoint::to_bytes`] (or read raw from `checkpoint.bin`),
    /// validating magic, version, length and checksum.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] on bad magic/version/length/checksum,
    /// [`PersistError::Wire`] on a body decode failure.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, PersistError> {
        if bytes.len() < 24 || &bytes[..8] != MAGIC {
            return Err(PersistError::Corrupt("checkpoint magic mismatch".into()));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(PersistError::Corrupt(format!(
                "checkpoint version {version} unsupported"
            )));
        }
        let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
        if bytes.len() - 24 < len {
            return Err(PersistError::Corrupt("checkpoint body truncated".into()));
        }
        let body = &bytes[24..24 + len];
        if crc32(body) != crc {
            return Err(PersistError::Corrupt("checkpoint checksum mismatch".into()));
        }
        Checkpoint::decode(body)
    }
}

/// Writes `ck` atomically into `dir`: sidecar + fsync + rename. On return
/// the checkpoint is durable and it is safe to truncate the log prefix it
/// covers.
///
/// # Errors
///
/// [`std::io::Error`] from any file operation.
pub fn write_checkpoint(dir: &Path, ck: &Checkpoint) -> std::io::Result<()> {
    let out = ck.to_bytes();
    let tmp = dir.join(CHECKPOINT_TMP);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&out)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, dir.join(CHECKPOINT_FILE))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Reads the checkpoint from `dir`. `Ok(None)` if none was ever written;
/// an error if one exists but is unreadable (rename atomicity makes this
/// genuine corruption, not a crash artifact).
///
/// A leftover `checkpoint.tmp` — a crash landed between the sidecar write
/// and the atomic rename — is deleted here and never consulted: only the
/// renamed `checkpoint.bin` is ever a source of truth, so the orphan is
/// garbage by construction, and leaving it around would let a *later*
/// crash-recovery sequence mistake a stale image for a fresh one.
///
/// # Errors
///
/// [`PersistError::Corrupt`] on bad magic/version/length/checksum,
/// [`PersistError::Wire`] on a decode failure, [`PersistError::Io`] on
/// read failures other than the file being absent.
pub fn read_checkpoint(dir: &Path) -> Result<Option<Checkpoint>, PersistError> {
    match std::fs::remove_file(dir.join(CHECKPOINT_TMP)) {
        Ok(()) | Err(_) => {} // best effort: absence is the common case
    }
    let path = dir.join(CHECKPOINT_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    Checkpoint::from_bytes(&bytes).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relic_spec::{Catalog, RelSpec, Value};

    fn sample() -> Checkpoint {
        let mut cat = Catalog::new();
        let a = cat.intern("a");
        let v = cat.intern("v");
        let d = relic_decomp::parse(
            &mut cat,
            "let u : {a} . {v} = unit {v} in let x : {} . {a,v} = {a} -[avl]-> u in x",
        )
        .unwrap();
        let tuples = (0..5i64)
            .map(|i| Tuple::from_pairs([(a, Value::from(i)), (v, Value::from(i * 2))]))
            .collect();
        Checkpoint {
            schema: DurableSchema {
                spec: RelSpec::new(cat.all()).with_fd(a.set(), v.set()),
                shard_cols: a.set(),
                shards: 2,
                decomposition_src: d.to_let_notation(&cat),
                fd_checking: true,
                catalog: cat,
            },
            shard_stamps: vec![7, 9],
            term: 3,
            tuples,
        }
    }

    #[test]
    fn round_trips_atomically() {
        let dir = std::env::temp_dir().join(format!("relic_ckpt_round_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(read_checkpoint(&dir).unwrap().is_none());
        let ck = sample();
        write_checkpoint(&dir, &ck).unwrap();
        assert_eq!(read_checkpoint(&dir).unwrap().unwrap(), ck);
        // A second checkpoint replaces the first atomically.
        let mut ck2 = ck.clone();
        ck2.shard_stamps = vec![11, 12];
        write_checkpoint(&dir, &ck2).unwrap();
        assert_eq!(read_checkpoint(&dir).unwrap().unwrap(), ck2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected() {
        let dir = std::env::temp_dir().join(format!("relic_ckpt_corrupt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        write_checkpoint(&dir, &sample()).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_checkpoint(&dir),
            Err(PersistError::Corrupt(_)) | Err(PersistError::Wire(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
