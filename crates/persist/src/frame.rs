//! A resumable, buffered reader for `len: u32 | crc: u32 | payload`
//! message frames — the socket-side twin of the on-disk log framing.
//!
//! # Why buffered and resumable
//!
//! The naive socket read path (`read_exact` the 8-byte header, then
//! `read_exact` the payload) is wrong on any stream with a read timeout or
//! in nonblocking mode: `read_exact` may consume *part* of the header or
//! payload and then fail with `WouldBlock`/`TimedOut`, and the consumed
//! bytes are gone — the next read starts mid-frame and every subsequent
//! message misparses. That desync was a real bug in the replication
//! transport's serve loop (a 100 ms read timeout kept the worker
//! responsive to its stop flag, and a slow writer trickling bytes across
//! timeout windows desynced the stream).
//!
//! [`FrameReader`] fixes this by construction: [`fill`](FrameReader::fill)
//! moves whatever bytes are available into an internal buffer (a timeout
//! mid-fill loses nothing), and [`next_frame`](FrameReader::next_frame)
//! extracts complete frames from the buffer only when all their bytes have
//! arrived. Partial frames simply wait in the buffer across any number of
//! fill calls. Both the replication transport and the serving front end
//! (`relic_server`) read through this one implementation.
//!
//! Writers use [`frame_message`], which refuses payloads whose length
//! does not fit the `u32` prefix or exceeds the reader's cap — the checked
//! replacement for the `payload.len() as u32` cast that silently truncated
//! oversized messages.

use crate::wal::crc32;
use crate::PersistError;
use std::io::{self, Read};

/// Frame header size: `len: u32` + `crc: u32`.
const HEADER: usize = 8;

/// The default cap on a message payload: large enough for a shipped
/// checkpoint image or WAL batch, small enough that a hostile length
/// prefix cannot make the reader allocate unbounded memory.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 26;

/// How many bytes one [`fill`](FrameReader::fill) call asks the source for.
const FILL_CHUNK: usize = 64 * 1024;

/// Encodes one message frame (`len | crc | payload`) for `payload`,
/// appending to `out`.
///
/// # Errors
///
/// [`PersistError::FrameTooLarge`] if `payload` exceeds `max_payload` —
/// the peer's reader would refuse it anyway, so the writer refuses first
/// instead of truncating the length prefix.
pub fn frame_message(
    out: &mut Vec<u8>,
    payload: &[u8],
    max_payload: u32,
) -> Result<(), PersistError> {
    let len = match u32::try_from(payload.len()) {
        Ok(l) if l <= max_payload => l,
        _ => {
            return Err(PersistError::FrameTooLarge {
                len: payload.len(),
                max: max_payload as usize,
            })
        }
    };
    out.reserve(HEADER + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// A per-connection frame reassembly buffer: feed bytes in with
/// [`fill`](FrameReader::fill) (or [`extend`](FrameReader::extend)), take
/// complete verified payloads out with [`next_frame`](FrameReader::next_frame).
///
/// The reader never loses state on a short or failed read, so it is safe
/// on nonblocking sockets, sockets with read timeouts, and byte-trickling
/// peers.
#[derive(Debug)]
pub struct FrameReader {
    /// Bytes received but not yet consumed. `pos..` is the live region.
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily).
    pos: usize,
    max_payload: u32,
}

impl Default for FrameReader {
    fn default() -> Self {
        FrameReader::new()
    }
}

impl FrameReader {
    /// A reader with the default [`MAX_FRAME_PAYLOAD`] cap.
    pub fn new() -> FrameReader {
        FrameReader::with_max_payload(MAX_FRAME_PAYLOAD)
    }

    /// A reader refusing frames whose payload exceeds `max_payload`.
    pub fn with_max_payload(max_payload: u32) -> FrameReader {
        FrameReader {
            buf: Vec::new(),
            pos: 0,
            max_payload,
        }
    }

    /// Reads once from `src` into the buffer, returning the byte count
    /// (`0` means the peer closed the stream). A `WouldBlock`/`TimedOut`
    /// error passes through with the buffer intact — nothing read so far
    /// is lost, which is the whole point.
    ///
    /// # Errors
    ///
    /// Whatever `src.read` reports.
    pub fn fill(&mut self, src: &mut impl Read) -> io::Result<usize> {
        self.compact();
        let old = self.buf.len();
        self.buf.resize(old + FILL_CHUNK, 0);
        match src.read(&mut self.buf[old..]) {
            Ok(n) => {
                self.buf.truncate(old + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(old);
                Err(e)
            }
        }
    }

    /// Appends already-received bytes (for sources that hand out slices
    /// rather than implementing [`Read`]).
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete frame's payload, if all its bytes have
    /// arrived. `Ok(None)` means "keep filling" — a partial header or
    /// payload stays buffered.
    ///
    /// # Errors
    ///
    /// [`PersistError::FrameTooLarge`] if the length prefix exceeds the
    /// cap (a hostile or desynced peer — the connection should be
    /// dropped); [`PersistError::Corrupt`] on a checksum mismatch.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, PersistError> {
        let live = &self.buf[self.pos..];
        if live.len() < HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes(live[..4].try_into().expect("4 bytes"));
        if len > self.max_payload {
            return Err(PersistError::FrameTooLarge {
                len: len as usize,
                max: self.max_payload as usize,
            });
        }
        let crc = u32::from_le_bytes(live[4..8].try_into().expect("4 bytes"));
        let len = len as usize;
        if live.len() - HEADER < len {
            return Ok(None);
        }
        let payload = &live[HEADER..HEADER + len];
        if crc32(payload) != crc {
            return Err(PersistError::Corrupt("message checksum mismatch".into()));
        }
        let payload = payload.to_vec();
        self.pos += HEADER + len;
        self.compact();
        Ok(Some(payload))
    }

    /// Whether bytes of an incomplete frame are buffered — after an EOF
    /// ([`fill`](FrameReader::fill) returning `0`), a true value means the
    /// peer died mid-frame (report it), a false value a clean close.
    pub fn mid_frame(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Bytes currently buffered (diagnostics / backpressure accounting).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Drops the consumed prefix once it dominates the buffer, keeping the
    /// resident footprint proportional to the unconsumed remainder.
    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= FILL_CHUNK {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        frame_message(&mut out, payload, MAX_FRAME_PAYLOAD).unwrap();
        out
    }

    #[test]
    fn frames_round_trip_one_byte_at_a_time() {
        // The regression shape: bytes trickle in one per "timeout window".
        let msgs: [&[u8]; 3] = [b"hello", b"", b"a longer message body"];
        let stream: Vec<u8> = msgs.iter().flat_map(|m| framed(m)).collect();
        let mut r = FrameReader::new();
        let mut got = Vec::new();
        for &b in &stream {
            r.extend(&[b]);
            while let Some(p) = r.next_frame().unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got, msgs.iter().map(|m| m.to_vec()).collect::<Vec<_>>());
        assert!(!r.mid_frame());
    }

    #[test]
    fn many_frames_in_one_fill_all_extract() {
        let stream: Vec<u8> = (0u8..50)
            .flat_map(|i| framed(&vec![i; i as usize]))
            .collect();
        let mut r = FrameReader::new();
        r.extend(&stream);
        for i in 0u8..50 {
            assert_eq!(r.next_frame().unwrap().unwrap(), vec![i; i as usize]);
        }
        assert_eq!(r.next_frame().unwrap(), None);
    }

    #[test]
    fn fill_from_reader_resumes_across_short_reads() {
        // A Read impl that returns one byte per call: the worst-case
        // legal stream source.
        struct Trickle(Vec<u8>, usize);
        impl Read for Trickle {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.1 >= self.0.len() || out.is_empty() {
                    return Ok(0);
                }
                out[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let mut src = Trickle(framed(b"slow and steady"), 0);
        let mut r = FrameReader::new();
        loop {
            if let Some(p) = r.next_frame().unwrap() {
                assert_eq!(p, b"slow and steady");
                break;
            }
            assert_ne!(r.fill(&mut src).unwrap(), 0, "EOF before frame completed");
        }
    }

    #[test]
    fn oversized_length_prefix_is_refused() {
        let mut r = FrameReader::with_max_payload(16);
        let mut bytes = Vec::new();
        frame_message(&mut bytes, &[7u8; 17], MAX_FRAME_PAYLOAD).unwrap();
        r.extend(&bytes);
        assert!(matches!(
            r.next_frame(),
            Err(PersistError::FrameTooLarge { len: 17, max: 16 })
        ));
        // And the writer refuses symmetrically.
        let mut out = Vec::new();
        assert!(matches!(
            frame_message(&mut out, &[7u8; 17], 16),
            Err(PersistError::FrameTooLarge { len: 17, max: 16 })
        ));
    }

    #[test]
    fn byte_flips_are_caught_by_the_checksum() {
        let good = framed(b"checksummed payload");
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            let mut r = FrameReader::new();
            r.extend(&bad);
            match r.next_frame() {
                // A flip in the length prefix usually yields "keep
                // filling" (longer frame) or a short frame — never a
                // silently wrong payload.
                Ok(None) => assert!(i < 4, "only a length flip may stall, not byte {i}"),
                Ok(Some(p)) => panic!("flip at byte {i} produced a payload: {p:?}"),
                Err(PersistError::Corrupt(_)) | Err(PersistError::FrameTooLarge { .. }) => {}
                Err(e) => panic!("unexpected error for flip at {i}: {e}"),
            }
        }
    }

    #[test]
    fn truncated_frame_reports_mid_frame_at_eof() {
        let good = framed(b"will be cut short");
        for cut in 1..good.len() {
            let mut r = FrameReader::new();
            r.extend(&good[..cut]);
            assert_eq!(r.next_frame().unwrap(), None, "cut at {cut}");
            assert!(r.mid_frame(), "cut at {cut}");
        }
    }

    #[test]
    fn compaction_keeps_the_buffer_bounded() {
        let mut r = FrameReader::new();
        let frame = framed(&[9u8; 1000]);
        for _ in 0..1000 {
            r.extend(&frame);
            assert!(r.next_frame().unwrap().is_some());
            assert!(r.buf.len() < 2 * FILL_CHUNK + frame.len());
        }
    }
}
