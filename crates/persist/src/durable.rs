//! [`DurableRelation`]: a sharded, concurrently-writable relation whose
//! committed state survives a crash.
//!
//! # Logging discipline
//!
//! Every mutation runs inside its shard's write-lock critical section
//! (via the stamped hooks `relic_concurrent` exposes), where it:
//!
//! 1. appends its record to the write-ahead log's in-memory segment,
//!    drawing a global sequence number — **no file I/O under the shard
//!    lock**;
//! 2. applies the operation to the shard;
//! 3. publishes the shard's snapshot *stamped with the record's sequence
//!    number* — under the existing publish-before-unlock discipline, so
//!    the published `(state, stamp)` pair is exact: the state contains
//!    precisely the logged operations with `seq <= stamp`.
//!
//! Per-shard log order therefore equals per-shard apply order, which is
//! what makes replay deterministic: recovery re-applies each shard's
//! missing suffix against exactly the states those operations originally
//! saw. Operations that failed live (duplicate inserts, FD rejections)
//! fail identically on replay and are swallowed.
//!
//! Batches are logged **per shard**: `insert_many`/`bulk_load` group the
//! batch by owning shard (lock-free), then log + apply each group under
//! its shard's single write-lock hold — one record, one lock acquisition,
//! one publish per touched shard. Partition read-modify-write sequences
//! ([`with_partition_mut`](DurableRelation::with_partition_mut)) are the
//! one exception to append-before-apply: their writes apply as the
//! closure runs and are appended as **one compound
//! [`Txn`](crate::wal::WalRecord::Txn) frame when it ends**, still under
//! the shard lock — so the whole sequence is one crash-atomic log unit,
//! and per-shard log order still equals per-shard apply order (the
//! closure is a single apply unit no same-shard writer can interleave).
//!
//! # Durability contract
//!
//! An operation is *durable* once a group commit containing its record has
//! fsynced ([`commit`](DurableRelation::commit), an automatic
//! threshold flush, or a later checkpoint containing its effect). A crash
//! loses at most the operations after the last durable point — never a
//! torn prefix, never a committed suffix ([`wal`](crate::wal) scan stops
//! at the first bad checksum).
//!
//! [`checkpoint`](DurableRelation::checkpoint) serializes the published
//! per-shard snapshot vector **without holding any shard write lock** —
//! writers keep committing while the checkpoint writes — then truncates
//! the log prefix the checkpoint covers.

use crate::checkpoint::{read_checkpoint, write_checkpoint, Checkpoint};
use crate::wal::{read_wal, GroupCommitPolicy, TailRead, TxnBuilder, Wal, WalRecord, MAX_PAYLOAD};
use crate::{DurableSchema, PersistError};
use relic_concurrent::{ConcurrentRelation, ReadHandle, ReadView};
use relic_core::wire::WireError;
use relic_core::{OpError, SynthRelation};
use relic_decomp::Decomposition;
use relic_spec::{Catalog, ColSet, Pattern, RelSpec, Relation, Tuple};
use std::path::{Path, PathBuf};

/// The log file name inside a durable relation's directory.
pub const WAL_FILE: &str = "wal.log";

/// A sharded relation backed by a write-ahead log and checkpoints.
///
/// All mutating methods are `&self` and thread-safe, with the same
/// concurrency profile as [`ConcurrentRelation`] (pinned operations touch
/// one shard lock; the log append inside the critical section is an
/// in-memory push under the log's mutex). Reads are unchanged: the locked
/// query path, wait-free [`read_handle`](DurableRelation::read_handle)
/// snapshots, and [`read_view`](DurableRelation::read_view) all serve
/// straight from the underlying relation.
#[derive(Debug)]
pub struct DurableRelation {
    rel: ConcurrentRelation,
    wal: Wal,
    cat: Catalog,
    spec: RelSpec,
    shard_cols: ColSet,
    shards: usize,
    fd_checking: bool,
    dir: PathBuf,
}

impl DurableRelation {
    /// Creates a fresh durable relation in `dir` (created if needed; any
    /// previous log or checkpoint there is discarded).
    ///
    /// # Errors
    ///
    /// [`PersistError::Build`] if the decomposition is inadequate or the
    /// sharding is invalid; [`PersistError::Io`] on file-system failures.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        dir: &Path,
        cat: &Catalog,
        spec: RelSpec,
        d: Decomposition,
        shard_cols: ColSet,
        shards: usize,
        fd_checking: bool,
        policy: GroupCommitPolicy,
    ) -> Result<Self, PersistError> {
        std::fs::create_dir_all(dir)?;
        match std::fs::remove_file(dir.join(crate::checkpoint::CHECKPOINT_FILE)) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let rel = ConcurrentRelation::new(cat, spec.clone(), d.clone(), shard_cols, shards)?;
        if !fd_checking {
            rel.with_all_shards_mut_stamped(|ss| {
                for s in ss.iter_mut() {
                    s.set_fd_checking(false);
                }
                ((), None)
            });
        }
        let schema = DurableSchema {
            catalog: cat.clone(),
            spec: spec.clone(),
            shard_cols,
            shards: shards as u32,
            decomposition_src: d.to_let_notation(cat),
            fd_checking,
        };
        let wal = Wal::create(&dir.join(WAL_FILE), policy, &schema, 0, 0)?;
        Ok(DurableRelation {
            rel,
            wal,
            cat: cat.clone(),
            spec,
            shard_cols,
            shards,
            fd_checking,
            dir: dir.to_path_buf(),
        })
    }

    /// Recovers the durable relation stored in `dir`: loads the checkpoint
    /// (if one exists), rebuilds it through the O(n) bulk loader, replays
    /// the log tail per shard past each shard's checkpoint watermark, and
    /// reopens the log for appending (discarding a torn tail, whose
    /// records were by definition never committed).
    ///
    /// The recovered relation re-synthesizes the decomposition it crashed
    /// with — including any representation migrations the log replayed —
    /// and continues serving and logging from there.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] when neither a checkpoint nor a readable
    /// log meta record exists, or when the log was truncated by a
    /// checkpoint that has since been lost; [`PersistError::Io`] /
    /// [`PersistError::Wire`] on lower-level failures.
    pub fn open(dir: &Path, policy: GroupCommitPolicy) -> Result<Self, PersistError> {
        let wal_path = dir.join(WAL_FILE);
        let ck = read_checkpoint(dir)?;
        let scanned = read_wal(&wal_path)?;
        let term = scanned.term.max(ck.as_ref().map_or(0, |c| c.term));
        let (schema, mut w) = match (&ck, &scanned.meta) {
            (Some(ck), _) => {
                if ck.shard_stamps.len() != ck.schema.shards as usize {
                    return Err(PersistError::Corrupt(
                        "checkpoint watermark count disagrees with its shard count".into(),
                    ));
                }
                (ck.schema.clone(), ck.shard_stamps.clone())
            }
            (None, Some((schema, base))) => {
                if *base != 0 {
                    return Err(PersistError::Corrupt(
                        "log was truncated by a checkpoint that is now missing".into(),
                    ));
                }
                (schema.clone(), vec![0; schema.shards as usize])
            }
            (None, None) => {
                return Err(PersistError::Corrupt(
                    "no checkpoint and no readable log meta record".into(),
                ))
            }
        };
        let d = schema.build_decomposition()?;
        let rel = ConcurrentRelation::new(
            &schema.catalog,
            schema.spec.clone(),
            d,
            schema.shard_cols,
            schema.shards as usize,
        )?;
        if !schema.fd_checking {
            rel.with_all_shards_mut_stamped(|ss| {
                for s in ss.iter_mut() {
                    s.set_fd_checking(false);
                }
                ((), None)
            });
        }
        if let Some(ck) = &ck {
            // The O(n) rebuild: routing is deterministic (same shard
            // columns, same shard count, same hash), so every tuple lands
            // on the shard whose watermark covers it.
            rel.bulk_load(ck.tuples.iter().cloned())
                .map_err(PersistError::Op)?;
            for (i, &s) in ck.shard_stamps.iter().enumerate() {
                rel.with_shard_mut_stamped(i, |_| ((), Some(s)));
            }
        }
        let mut max_seq = scanned
            .meta
            .as_ref()
            .map_or(0, |(_, b)| *b)
            .max(w.iter().copied().max().unwrap_or(0));
        for e in &scanned.entries {
            max_seq = max_seq.max(e.seq);
            replay_record(&rel, &schema, &mut w, e.seq, &e.record)?;
        }
        // Reopen for appending. If the log's own meta was unreadable (the
        // checkpoint carried us), start a fresh self-describing log instead
        // of appending to a headerless file.
        let wal = if scanned.meta.is_some() {
            Wal::open_for_append(&wal_path, policy, max_seq + 1, scanned.valid_len, term)?
        } else {
            Wal::create(&wal_path, policy, &schema, max_seq, term)?
        };
        Ok(DurableRelation {
            rel,
            wal,
            cat: schema.catalog.clone(),
            spec: schema.spec.clone(),
            shard_cols: schema.shard_cols,
            shards: schema.shards as usize,
            fd_checking: schema.fd_checking,
            dir: dir.to_path_buf(),
        })
    }

    // -- mutations (all logged) ---------------------------------------------

    /// Does this pattern pin the shard columns?
    fn pins(&self, dom: ColSet) -> bool {
        self.shard_cols.is_subset(dom)
    }
    /// Durable `insert`: logs and applies under the owning shard's lock.
    ///
    /// # Errors
    ///
    /// [`PersistError::Op`] with the underlying
    /// [`SynthRelation::insert`] error; [`PersistError::Io`] if a
    /// threshold group commit fails.
    pub fn insert(&self, t: Tuple) -> Result<bool, PersistError> {
        let i = self.rel.owning_shard(&t);
        // Encode (and size-check) outside the lock: the in-lock append is
        // then infallible, so a refused record changes no state.
        let rec = Wal::encode_record(&WalRecord::Insert(t.clone()))?;
        let res = self.rel.with_shard_mut_stamped(i, |shard| {
            let seq = self.wal.append_encoded(&rec);
            (shard.insert(t), Some(seq))
        });
        self.wal.maybe_commit()?;
        res.map_err(PersistError::Op)
    }

    /// Durable `remove` by pattern: one shard when the pattern pins the
    /// shard columns, all shards (index order, one record) otherwise.
    /// Returns the number of tuples removed.
    ///
    /// # Errors
    ///
    /// As for [`SynthRelation::remove`], wrapped in
    /// [`PersistError::Op`].
    pub fn remove(&self, pattern: &Tuple) -> Result<usize, PersistError> {
        let rec = Wal::encode_record(&WalRecord::Remove(pattern.clone()))?;
        let res = if self.pins(pattern.dom()) {
            let i = self.rel.owning_shard(pattern);
            self.rel.with_shard_mut_stamped(i, |shard| {
                let seq = self.wal.append_encoded(&rec);
                (shard.remove(pattern), Some(seq))
            })
        } else {
            self.rel.with_all_shards_mut_stamped(|shards| {
                let seq = self.wal.append_encoded(&rec);
                let mut n = 0;
                for s in shards.iter_mut() {
                    match s.remove(pattern) {
                        Ok(k) => n += k,
                        Err(e) => return (Err(e), Some(seq)),
                    }
                }
                (Ok(n), Some(seq))
            })
        };
        self.wal.maybe_commit()?;
        res.map_err(PersistError::Op)
    }

    /// Durable `insert_many`: the batch is grouped by owning shard without
    /// holding any lock, then each group is logged as **one per-shard
    /// record** and applied under one write-lock hold of its shard.
    /// Returns the total number of tuples inserted.
    ///
    /// # Errors
    ///
    /// The first error any shard reports (earlier shards' groups persist,
    /// as for [`ConcurrentRelation::insert_many`]).
    pub fn insert_many<I: IntoIterator<Item = Tuple>>(
        &self,
        tuples: I,
    ) -> Result<usize, PersistError> {
        self.batch_insert(tuples, false)
    }

    /// Durable `bulk_load`: as [`insert_many`](DurableRelation::insert_many)
    /// but each shard runs the O(n) structural bulk loader.
    ///
    /// # Errors
    ///
    /// As for [`insert_many`](DurableRelation::insert_many).
    pub fn bulk_load<I: IntoIterator<Item = Tuple>>(
        &self,
        tuples: I,
    ) -> Result<usize, PersistError> {
        self.batch_insert(tuples, true)
    }

    fn batch_insert<I: IntoIterator<Item = Tuple>>(
        &self,
        tuples: I,
        bulk: bool,
    ) -> Result<usize, PersistError> {
        let mut groups: Vec<Vec<Tuple>> = (0..self.shards).map(|_| Vec::new()).collect();
        for t in tuples {
            groups[self.rel.owning_shard(&t)].push(t);
        }
        let mut inserted = 0;
        for (i, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            // The record is serialized straight from the group (no owned
            // WalRecord clone) and size-checked before the shard lock is
            // taken; the group then moves into the shard's batch engine.
            let rec = match Wal::encode_insert_batch(bulk, &group) {
                Ok(rec) => rec,
                Err(e) => {
                    self.wal.maybe_commit()?;
                    return Err(e);
                }
            };
            let res = self.rel.with_shard_mut_stamped(i, |shard| {
                let seq = self.wal.append_encoded(&rec);
                let r = if bulk {
                    shard.bulk_load(group)
                } else {
                    shard.insert_many(group)
                };
                (r, Some(seq))
            });
            match res {
                Ok(n) => inserted += n,
                Err(e) => {
                    self.wal.maybe_commit()?;
                    return Err(PersistError::Op(e));
                }
            }
        }
        self.wal.maybe_commit()?;
        Ok(inserted)
    }

    /// Durable `remove_many`: one record, applied to every shard under one
    /// all-shard hold (pattern removals are the cross-shard maintenance
    /// path — cleanup sweeps, retention). Returns the number removed.
    ///
    /// # Errors
    ///
    /// As for [`SynthRelation::remove_many`], wrapped in
    /// [`PersistError::Op`].
    pub fn remove_many(&self, patterns: &[Tuple]) -> Result<usize, PersistError> {
        let rec = Wal::encode_record(&WalRecord::RemoveMany(patterns.to_vec()))?;
        let res = self.rel.with_all_shards_mut_stamped(|shards| {
            let seq = self.wal.append_encoded(&rec);
            let mut n = 0;
            for s in shards.iter_mut() {
                match s.remove_many(patterns.iter()) {
                    Ok(k) => n += k,
                    Err(e) => return (Err(e), Some(seq)),
                }
            }
            (Ok(n), Some(seq))
        });
        self.wal.maybe_commit()?;
        res.map_err(PersistError::Op)
    }

    /// Durable representation migration: logs a migration epoch marker
    /// (the new decomposition identity) and re-represents every shard as
    /// one epoch. A recovered relation replays the marker and comes back
    /// in the migrated representation.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::migrate_to`], wrapped in
    /// [`PersistError::Migrate`].
    pub fn migrate_to(&self, d: Decomposition) -> Result<(), PersistError> {
        let rec = Wal::encode_record(&WalRecord::MigrationEpoch(d.to_let_notation(&self.cat)))?;
        let res = self
            .rel
            .migrate_to_stamped(d, || self.wal.append_encoded(&rec));
        self.wal.maybe_commit()?;
        res.map_err(PersistError::Migrate)
    }

    /// Runs `f` with exclusive, *logged* access to the partition owning
    /// `key` — the durable analog of
    /// [`ConcurrentRelation::with_partition_mut`] for atomic
    /// read-modify-write sequences: reads inside the closure go straight
    /// to the shard; writes apply immediately and are collected into **one
    /// compound log record** ([`WalRecord::Txn`]) appended when the
    /// closure ends, still under the shard's write lock. One frame means
    /// the whole sequence is crash-atomic: a torn log tail (or a
    /// group-commit flush racing mid-closure) can never persist a remove
    /// without its re-insert.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] if the closing threshold group commit fails.
    ///
    /// # Panics
    ///
    /// Panics if `key` does not bind every shard column.
    pub fn with_partition_mut<T>(
        &self,
        key: &Tuple,
        f: impl FnOnce(&mut DurablePartition<'_>) -> T,
    ) -> Result<T, PersistError> {
        assert!(
            self.pins(key.dom()),
            "with_partition_mut requires all shard columns bound"
        );
        let i = self.rel.owning_shard(key);
        let out = self.rel.with_shard_mut_stamped(i, |shard| {
            let mut txn = TxnBuilder::default();
            let r = {
                let mut p = DurablePartition {
                    shard,
                    shard_cols: self.shard_cols,
                    txn: &mut txn,
                };
                f(&mut p)
            };
            let stamp = if txn.is_empty() {
                None // read-only closure: nothing to log or re-stamp
            } else {
                // Infallible: every op was size-checked (and encoded) by
                // the builder before it was applied to the shard.
                Some(self.wal.append_encoded(&txn.finish()))
            };
            (r, stamp)
        });
        self.wal.maybe_commit()?;
        Ok(out)
    }

    // -- durability control -------------------------------------------------

    /// The group commit: flushes every pending log record as one
    /// contiguous write + one fsync. Returns the highest durable sequence
    /// number — every operation logged at or below it now survives a
    /// crash.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] from the write or fsync.
    pub fn commit(&self) -> Result<u64, PersistError> {
        Ok(self.wal.commit()?)
    }

    /// Writes a checkpoint and truncates the log prefix it covers.
    ///
    /// The per-shard snapshot vector is collected from the published
    /// snapshots (**no shard write lock is held at any point** — writers
    /// keep committing while the checkpoint serializes), each paired with
    /// its exact log watermark. After the checkpoint file is durable
    /// (sidecar + fsync + atomic rename), the log keeps only records past
    /// the lowest watermark. Returns that truncation point.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] from the checkpoint write or log rotation.
    pub fn checkpoint(&self) -> Result<u64, PersistError> {
        let view = self.rel.read_view();
        // Group-commit the log before the checkpoint can become a source
        // of truth: the view may contain operations whose records are
        // still buffer-only, and a durable checkpoint holding seq `s`
        // while some record below `s` is unflushed would let a crash keep
        // a later operation and lose an earlier one — a state no live
        // execution produces. After this flush, every record at or below
        // any collected watermark is log-durable. (Records appended after
        // the view was collected may flush too — harmless, commits only
        // strengthen durability.)
        self.wal.commit()?;
        let nshards = view.shard_count();
        let mut tuples = Vec::with_capacity(view.len());
        for i in 0..nshards {
            for t in view.shard(i).to_relation().iter() {
                tuples.push(t.clone());
            }
        }
        let shard_stamps: Vec<u64> = (0..nshards).map(|i| view.shard_stamp(i)).collect();
        let schema = DurableSchema {
            catalog: self.cat.clone(),
            spec: self.spec.clone(),
            shard_cols: self.shard_cols,
            shards: self.shards as u32,
            decomposition_src: view.shard(0).decomposition().to_let_notation(&self.cat),
            fd_checking: self.fd_checking,
        };
        let ck = Checkpoint {
            schema: schema.clone(),
            shard_stamps: shard_stamps.clone(),
            term: self.wal.term(),
            tuples,
        };
        write_checkpoint(&self.dir, &ck)?;
        let keep_after = shard_stamps.iter().copied().min().unwrap_or(0);
        self.wal.rotate(keep_after, &schema)?;
        Ok(keep_after)
    }

    /// The highest log sequence number known durable.
    pub fn durable_seq(&self) -> u64 {
        self.wal.durable_seq()
    }

    /// Bytes appended to the log but not yet flushed — the group-commit
    /// flush lag ([`Wal::pending_bytes`]). A serving front end's admission
    /// control watches this: past its threshold it forces a commit (or
    /// delays new frames) instead of letting the unflushed segment grow
    /// without bound.
    pub fn wal_pending_bytes(&self) -> usize {
        self.wal.pending_bytes()
    }

    /// Records appended to the log but not yet flushed
    /// ([`Wal::pending_records`]).
    pub fn wal_pending_records(&self) -> usize {
        self.wal.pending_records()
    }

    // -- replication hooks --------------------------------------------------

    /// The current replication term (0 until a promotion ever happens).
    pub fn term(&self) -> u64 {
        self.wal.term()
    }

    /// The current log segment's base sequence number: shipping cursors at
    /// or past it can be served from the log; older cursors need a
    /// checkpoint.
    pub fn base_seq(&self) -> u64 {
        self.wal.base_seq()
    }

    /// Seals the log under `new_term`: appends a durable
    /// [`WalRecord::TermBump`] and group-commits it, so by the time this
    /// returns the relation is fenced against every older term. Promotion
    /// calls this before accepting its first write.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] if `new_term` does not exceed the current
    /// term; [`PersistError::Io`] if the commit fails.
    pub fn bump_term(&self, new_term: u64) -> Result<u64, PersistError> {
        let seq = self.wal.bump_term(new_term)?;
        self.wal.commit()?;
        Ok(seq)
    }

    /// Reads the raw bytes of committed log frames with sequence numbers in
    /// `(after, durable_seq]` (bounded to roughly `max_bytes` per call) —
    /// the primary-side shipping read. See [`Wal::committed_frames_after`].
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] if the log file cannot be read.
    pub fn committed_frames_after(
        &self,
        after: u64,
        max_bytes: usize,
    ) -> Result<TailRead, PersistError> {
        Ok(self.wal.committed_frames_after(after, max_bytes)?)
    }

    /// The relation's rebuild description as of the *published* state —
    /// catalog, spec, sharding, FD mode and the currently published
    /// decomposition identity.
    pub fn durable_schema(&self) -> DurableSchema {
        let view = self.rel.read_view();
        DurableSchema {
            catalog: self.cat.clone(),
            spec: self.spec.clone(),
            shard_cols: self.shard_cols,
            shards: self.shards as u32,
            decomposition_src: view.shard(0).decomposition().to_let_notation(&self.cat),
            fd_checking: self.fd_checking,
        }
    }

    /// The raw bytes of the latest durable checkpoint image, or `None` if
    /// no checkpoint has ever been written — shipped verbatim to
    /// bootstrapping followers.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on a read failure other than absence.
    pub fn checkpoint_bytes(&self) -> Result<Option<Vec<u8>>, PersistError> {
        match std::fs::read(self.dir.join(crate::checkpoint::CHECKPOINT_FILE)) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    // -- reads (unlogged, unchanged from the underlying relation) -----------

    /// The underlying concurrent relation, for reads, validation and
    /// profiling. Mutating through it **bypasses the log** — recovery will
    /// not know about such writes; use the durable methods instead.
    pub fn relation(&self) -> &ConcurrentRelation {
        &self.rel
    }

    /// The relation's directory (log + checkpoint files).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The column catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.cat
    }

    /// The relational specification.
    pub fn spec(&self) -> &RelSpec {
        &self.spec
    }

    /// `query r s C` through the locked read path.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::query`].
    pub fn query(&self, pattern: &Tuple, out: ColSet) -> Result<Vec<Tuple>, PersistError> {
        self.rel.query(pattern, out).map_err(PersistError::Op)
    }

    /// `query_where r P C` through the locked read path.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::query_where`].
    pub fn query_where(&self, pattern: &Pattern, out: ColSet) -> Result<Vec<Tuple>, PersistError> {
        self.rel.query_where(pattern, out).map_err(PersistError::Op)
    }

    /// A cached wait-free read handle (see
    /// [`ConcurrentRelation::read_handle`]).
    pub fn read_handle(&self) -> ReadHandle<'_> {
        self.rel.read_handle()
    }

    /// A detached per-shard snapshot vector (see
    /// [`ConcurrentRelation::read_view`]).
    pub fn read_view(&self) -> ReadView {
        self.rel.read_view()
    }

    /// Number of tuples across all shards.
    pub fn len(&self) -> usize {
        self.rel.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }

    /// The whole relation as a reference [`Relation`] (for tests).
    pub fn to_relation(&self) -> Relation {
        self.rel.to_relation()
    }
}

/// Applies one logged record to `rel`, respecting the per-shard watermarks
/// `w` (a record reaches a shard only if its sequence number exceeds the
/// shard's watermark, and stamps the shard's publish with that sequence
/// number). Operation-level errors are swallowed: they re-occur exactly as
/// they did live, where the record was logged but the operation returned
/// the error to the caller.
///
/// This is the single replay routine shared by crash recovery
/// ([`DurableRelation::open`]) and replication followers, which apply
/// shipped frames through it one at a time — the exactness argument (state
/// = logged prefix, per shard) is therefore identical on both paths.
///
/// # Errors
///
/// [`PersistError::Corrupt`] if a migration marker straddles the
/// watermarks; [`PersistError::Wire`] if a logged decomposition fails to
/// re-parse.
pub fn replay_record(
    rel: &ConcurrentRelation,
    schema: &DurableSchema,
    w: &mut [u64],
    seq: u64,
    rec: &WalRecord,
) -> Result<(), PersistError> {
    match rec {
        // `read_wal` only surfaces a meta record at offset 0, which is
        // filtered into `ScannedWal::meta`, never into the entries. A
        // term bump carries no state; the caller tracks the term itself.
        WalRecord::Meta { .. } | WalRecord::TermBump(_) => {}
        WalRecord::Insert(t) => {
            let i = rel.owning_shard(t);
            if w[i] < seq {
                rel.with_shard_mut_stamped(i, |s| {
                    let _ = s.insert(t.clone());
                    ((), Some(seq))
                });
                w[i] = seq;
            }
        }
        WalRecord::Remove(pat) => {
            if schema.shard_cols.is_subset(pat.dom()) {
                let i = rel.owning_shard(pat);
                if w[i] < seq {
                    rel.with_shard_mut_stamped(i, |s| {
                        let _ = s.remove(pat);
                        ((), Some(seq))
                    });
                    w[i] = seq;
                }
            } else {
                // Unpinned: every shard not yet past this record, in
                // index order, stopping at the first (deterministic)
                // error exactly as the live loop did.
                for (i, wi) in w.iter_mut().enumerate() {
                    if *wi < seq {
                        let ok =
                            rel.with_shard_mut_stamped(i, |s| (s.remove(pat).is_ok(), Some(seq)));
                        *wi = seq;
                        if !ok {
                            break;
                        }
                    }
                }
            }
        }
        WalRecord::InsertMany(ts) | WalRecord::BulkLoad(ts) => {
            let Some(first) = ts.first() else {
                return Ok(());
            };
            let bulk = matches!(rec, WalRecord::BulkLoad(_));
            let i = rel.owning_shard(first);
            if w[i] < seq {
                rel.with_shard_mut_stamped(i, |s| {
                    let _ = if bulk {
                        s.bulk_load(ts.iter().cloned())
                    } else {
                        s.insert_many(ts.iter().cloned())
                    };
                    ((), Some(seq))
                });
                w[i] = seq;
            }
        }
        WalRecord::RemoveMany(pats) => {
            for (i, wi) in w.iter_mut().enumerate() {
                if *wi < seq {
                    let ok = rel.with_shard_mut_stamped(i, |s| {
                        (s.remove_many(pats.iter()).is_ok(), Some(seq))
                    });
                    *wi = seq;
                    if !ok {
                        break;
                    }
                }
            }
        }
        WalRecord::Txn(ops) => {
            // Every sub-operation of a partition critical section pins
            // the same shard; route by the first one.
            let Some(i) = ops.first().map(|op| match op {
                WalRecord::Insert(t) | WalRecord::Remove(t) => rel.owning_shard(t),
                _ => 0,
            }) else {
                return Ok(());
            };
            if w[i] < seq {
                rel.with_shard_mut_stamped(i, |s| {
                    for op in ops {
                        match op {
                            WalRecord::Insert(t) => {
                                let _ = s.insert(t.clone());
                            }
                            WalRecord::Remove(pat) => {
                                let _ = s.remove(pat);
                            }
                            // Only single-tuple writes are ever logged
                            // inside a transaction.
                            _ => {}
                        }
                    }
                    ((), Some(seq))
                });
                w[i] = seq;
            }
        }
        WalRecord::MigrationEpoch(src) => {
            // Migration publishes are seqlock-atomic across a view, so
            // a checkpoint's watermarks sit entirely on one side of
            // every marker.
            if w.iter().all(|&x| x >= seq) {
                return Ok(());
            }
            if !w.iter().all(|&x| x < seq) {
                return Err(PersistError::Corrupt(
                    "migration marker straddles the checkpoint's shard watermarks".into(),
                ));
            }
            let mut cat = schema.catalog.clone();
            let d = relic_decomp::parse(&mut cat, src)
                .map_err(|e| PersistError::Wire(WireError::Decomposition(e.to_string())))?;
            if rel.migrate_to_stamped(d, || seq).is_ok() {
                for x in w.iter_mut() {
                    *x = seq;
                }
            }
            // On failure the live migration failed too, published
            // nothing and stamped nothing — leave the watermarks alone.
        }
    }
    Ok(())
}

/// Logged exclusive access to one partition, handed to
/// [`DurableRelation::with_partition_mut`]'s closure: reads pass straight
/// through to the shard; writes apply immediately and accumulate into the
/// critical section's single compound [`WalRecord::Txn`] (appended when
/// the closure ends — the sub-operations replay in order against the same
/// per-shard state they originally saw, so outcomes — including rejected
/// writes — reproduce exactly).
///
/// Each write is encoded into the transaction frame *before* it is
/// applied; a write that would overflow the frame cap is refused with
/// [`OpError::TooLarge`] and changes nothing, so an oversized sequence can
/// never end up applied to the shard but unloggable.
#[derive(Debug)]
pub struct DurablePartition<'a> {
    shard: &'a mut SynthRelation,
    shard_cols: ColSet,
    txn: &'a mut TxnBuilder,
}

impl DurablePartition<'_> {
    /// Read access to the partition's relation (queries are not logged).
    pub fn relation(&self) -> &SynthRelation {
        self.shard
    }

    /// `query` against this partition.
    ///
    /// # Errors
    ///
    /// As for [`SynthRelation::query`].
    pub fn query(&self, pattern: &Tuple, out: ColSet) -> Result<Vec<Tuple>, OpError> {
        self.shard.query(pattern, out)
    }

    /// Logged `insert` into this partition.
    ///
    /// # Errors
    ///
    /// As for [`SynthRelation::insert`], plus [`OpError::TooLarge`] if the
    /// write would overflow the transaction's log frame (refused before
    /// applying).
    pub fn insert(&mut self, t: Tuple) -> Result<bool, OpError> {
        self.txn
            .push(&WalRecord::Insert(t.clone()))
            .map_err(frame_cap_to_op)?;
        self.shard.insert(t)
    }

    /// Logged `remove` from this partition. The pattern must pin the shard
    /// columns (an unpinned pattern would be replayed against every shard,
    /// while the live removal only saw this one).
    ///
    /// # Errors
    ///
    /// As for [`SynthRelation::remove`], plus [`OpError::TooLarge`] if the
    /// write would overflow the transaction's log frame (refused before
    /// applying).
    ///
    /// # Panics
    ///
    /// Panics if `pattern` does not bind every shard column.
    pub fn remove(&mut self, pattern: &Tuple) -> Result<usize, OpError> {
        assert!(
            self.shard_cols.is_subset(pattern.dom()),
            "partition removals must pin the shard columns"
        );
        self.txn
            .push(&WalRecord::Remove(pattern.clone()))
            .map_err(frame_cap_to_op)?;
        self.shard.remove(pattern)
    }
}

/// Maps [`TxnBuilder::push`]'s cap refusal into the operation-level error
/// a partition closure's caller sees.
fn frame_cap_to_op(e: PersistError) -> OpError {
    match e {
        PersistError::FrameTooLarge { len, max } => OpError::TooLarge { len, max },
        // push only ever reports FrameTooLarge; keep a sane fallback.
        _ => OpError::TooLarge {
            len: usize::MAX,
            max: MAX_PAYLOAD as usize,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relic_spec::Value;

    struct Cols {
        host: relic_spec::ColId,
        ts: relic_spec::ColId,
        bytes: relic_spec::ColId,
    }

    fn schema_parts() -> (Catalog, Cols, RelSpec, Decomposition) {
        let mut cat = Catalog::new();
        let d = relic_decomp::parse(
            &mut cat,
            "let u : {host,ts} . {bytes} = unit {bytes} in
             let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
             let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
        )
        .unwrap();
        let cols = Cols {
            host: cat.col("host").unwrap(),
            ts: cat.col("ts").unwrap(),
            bytes: cat.col("bytes").unwrap(),
        };
        let spec = RelSpec::new(cat.all()).with_fd(cols.host | cols.ts, cols.bytes.set());
        (cat, cols, spec, d)
    }

    fn tup(cols: &Cols, h: i64, t: i64, b: i64) -> Tuple {
        Tuple::from_pairs([
            (cols.host, Value::from(h)),
            (cols.ts, Value::from(t)),
            (cols.bytes, Value::from(b)),
        ])
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("relic_durable_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fresh(dir: &Path, policy: GroupCommitPolicy) -> (Cols, DurableRelation) {
        let (cat, cols, spec, d) = schema_parts();
        let r =
            DurableRelation::create(dir, &cat, spec, d, cols.host.set(), 4, true, policy).unwrap();
        (cols, r)
    }

    #[test]
    fn committed_ops_survive_reopen() {
        let dir = tmpdir("reopen");
        let (cols, r) = fresh(&dir, GroupCommitPolicy::manual());
        for h in 0..6i64 {
            for t in 0..5i64 {
                r.insert(tup(&cols, h, t, h + t)).unwrap();
            }
        }
        r.remove(&Tuple::from_pairs([(cols.host, Value::from(2))]))
            .unwrap();
        r.insert_many((0..4i64).map(|t| tup(&cols, 9, t, t)))
            .unwrap();
        let live = r.to_relation();
        r.commit().unwrap();
        drop(r);
        let r2 = DurableRelation::open(&dir, GroupCommitPolicy::manual()).unwrap();
        assert_eq!(r2.to_relation(), live);
        r2.relation().validate().unwrap();
        // The reopened relation keeps serving and logging.
        r2.insert(tup(&cols, 50, 0, 0)).unwrap();
        r2.commit().unwrap();
        let live2 = r2.to_relation();
        drop(r2);
        let r3 = DurableRelation::open(&dir, GroupCommitPolicy::manual()).unwrap();
        assert_eq!(r3.to_relation(), live2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_tail_is_lost_committed_prefix_is_not() {
        let dir = tmpdir("uncommitted");
        let (cols, r) = fresh(&dir, GroupCommitPolicy::manual());
        for t in 0..5i64 {
            r.insert(tup(&cols, 1, t, t)).unwrap();
        }
        r.commit().unwrap();
        let committed = r.to_relation();
        // Uncommitted suffix: never flushed, must vanish on recovery.
        for t in 5..9i64 {
            r.insert(tup(&cols, 1, t, t)).unwrap();
        }
        drop(r);
        let r2 = DurableRelation::open(&dir, GroupCommitPolicy::manual()).unwrap();
        assert_eq!(r2.to_relation(), committed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_and_recovers_without_log_tail() {
        let dir = tmpdir("ckpt");
        let (cols, r) = fresh(&dir, GroupCommitPolicy::manual());
        for h in 0..8i64 {
            for t in 0..6i64 {
                r.insert(tup(&cols, h, t, h * t)).unwrap();
            }
        }
        r.checkpoint().unwrap();
        // Post-checkpoint tail, committed.
        r.insert(tup(&cols, 100, 1, 1)).unwrap();
        r.remove(&Tuple::from_pairs([(cols.host, Value::from(3))]))
            .unwrap();
        r.commit().unwrap();
        let live = r.to_relation();
        drop(r);
        let r2 = DurableRelation::open(&dir, GroupCommitPolicy::manual()).unwrap();
        assert_eq!(r2.to_relation(), live);
        r2.relation().validate().unwrap();
        // A second checkpoint over the recovered relation still works.
        r2.checkpoint().unwrap();
        let live2 = r2.to_relation();
        drop(r2);
        let r3 = DurableRelation::open(&dir, GroupCommitPolicy::manual()).unwrap();
        assert_eq!(r3.to_relation(), live2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn migration_marker_recovers_the_migrated_representation() {
        let dir = tmpdir("migrate");
        let (cols, r) = fresh(&dir, GroupCommitPolicy::manual());
        for h in 0..6i64 {
            r.insert(tup(&cols, h, 1, h)).unwrap();
        }
        let mut cat = r.catalog().clone();
        let flat = relic_decomp::parse(
            &mut cat,
            "let u : {host,ts} . {bytes} = unit {bytes} in
             let x : {} . {host,ts,bytes} = {host,ts} -[avl]-> u in x",
        )
        .unwrap();
        r.migrate_to(flat.clone()).unwrap();
        r.insert(tup(&cols, 7, 7, 7)).unwrap();
        r.commit().unwrap();
        let live = r.to_relation();
        drop(r);
        let r2 = DurableRelation::open(&dir, GroupCommitPolicy::manual()).unwrap();
        assert_eq!(r2.to_relation(), live);
        let view = r2.read_view();
        assert_eq!(
            view.shard(0).decomposition(),
            &flat,
            "recovery must re-synthesize the migrated representation"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partition_rmw_is_logged_and_recovered() {
        let dir = tmpdir("rmw");
        let (cols, r) = fresh(&dir, GroupCommitPolicy::manual());
        let key = Tuple::from_pairs([(cols.host, Value::from(1)), (cols.ts, Value::from(1))]);
        for round in 0..5i64 {
            r.with_partition_mut(&key, |p| {
                let cur = p
                    .query(&key, cols.bytes.set())
                    .unwrap()
                    .first()
                    .and_then(|t| t.get(cols.bytes).and_then(Value::as_int))
                    .unwrap_or(0);
                if cur > 0 {
                    p.remove(&key).unwrap();
                }
                p.insert(tup(&cols, 1, 1, cur + round + 1)).unwrap();
            })
            .unwrap();
        }
        r.commit().unwrap();
        let live = r.to_relation();
        drop(r);
        let r2 = DurableRelation::open(&dir, GroupCommitPolicy::manual()).unwrap();
        assert_eq!(r2.to_relation(), live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_over_an_old_relation_discards_it() {
        let dir = tmpdir("recreate");
        let (cols, r) = fresh(&dir, GroupCommitPolicy::manual());
        r.insert(tup(&cols, 1, 1, 1)).unwrap();
        r.checkpoint().unwrap();
        drop(r);
        let (cols, r2) = fresh(&dir, GroupCommitPolicy::manual());
        assert!(r2.is_empty(), "create starts fresh");
        r2.insert(tup(&cols, 2, 2, 2)).unwrap();
        r2.commit().unwrap();
        drop(r2);
        let r3 = DurableRelation::open(&dir, GroupCommitPolicy::manual()).unwrap();
        assert_eq!(r3.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
