//! Durable relations: a group-commit write-ahead log, snapshot
//! checkpoints, and crash recovery for the synthesized relations of
//! `relic_core` / `relic_concurrent`.
//!
//! The paper synthesizes purely in-memory representations; this crate makes
//! them survive a process restart without giving up the hot path:
//!
//! * **Write-ahead log** ([`wal`]): an append-only file of length-prefixed,
//!   CRC-checksummed records (single insert, remove-by-pattern, per-shard
//!   `insert_many`/`bulk_load` batches, `remove_many`, migration epoch
//!   markers, and compound transaction frames for partition
//!   read-modify-write sequences). Writers append to an in-memory segment under the log's own
//!   mutex — never doing I/O inside a shard critical section — and a
//!   [`commit`](DurableRelation::commit) call or a size/record-count
//!   threshold flushes the whole segment as **one contiguous write + one
//!   fsync** (group commit). Per-record fsync is available as a policy for
//!   benchmarking; BENCH_5 measures the gap.
//! * **Checkpoints** ([`checkpoint`]): a sidecar file serializing the
//!   per-shard snapshot vector collected by
//!   [`read_view`](relic_concurrent::ConcurrentRelation::read_view) — no
//!   shard write lock is held while the checkpoint serializes, so writers
//!   keep committing throughout. Each shard's snapshot is paired with the
//!   *writer stamp* its publish carried (the shard's last logged sequence
//!   number), so the checkpoint knows exactly which log prefix each shard
//!   contains; after the checkpoint file is durable, the log is truncated
//!   to the still-needed suffix.
//! * **Recovery** ([`DurableRelation::open`]): load the checkpoint (if
//!   any), rebuild through the existing O(n)
//!   [`bulk_load`](relic_concurrent::ConcurrentRelation::bulk_load), then
//!   replay the log tail per shard — a record applies to a shard only if
//!   its sequence number exceeds the shard's checkpoint stamp, so replay is
//!   exact, not fuzzy. A torn or truncated final record is tolerated *by
//!   design*: the scan stops at the first bad checksum, and everything
//!   before it is recovered. The recovered relation re-synthesizes the same
//!   representation it crashed with (the decomposition identity is stored
//!   in both checkpoint and log), and the autotuner is free to re-migrate
//!   it afterwards.
//!
//! The consistency argument, in one paragraph: every logged mutation runs
//! inside its shard's write-lock critical section, appending its record
//! (and drawing its sequence number) *before* applying, so per-shard log
//! order equals per-shard apply order; the publish that makes the mutation
//! visible carries the record's sequence number as its stamp, atomically
//! with the snapshot. A checkpoint collects published `(snapshot, stamp)`
//! pairs; replay applies record `s` to shard `i` iff `s > stamp_i`. Each
//! shard therefore replays exactly the ops its checkpoint state has not
//! seen, against exactly the state those ops originally saw — errors
//! (duplicate inserts, FD rejections) re-occur deterministically and are
//! swallowed, and cross-shard records (unpinned removes) filter per shard.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod durable;
pub mod frame;
pub mod wal;

pub use checkpoint::{read_checkpoint, write_checkpoint, Checkpoint};
pub use durable::{replay_record, DurablePartition, DurableRelation};
pub use frame::{frame_message, FrameReader, MAX_FRAME_PAYLOAD};
pub use wal::{
    crc32, decode_frame, read_wal, Crc32, EncodedRecord, GroupCommitPolicy, ScannedWal, TailRead,
    TxnBuilder, Wal, WalEntry, WalRecord, MAX_PAYLOAD,
};

use relic_concurrent::ConcurrentBuildError;
use relic_core::wire::{self, WireError};
use relic_core::{MigrateError, OpError};
use relic_decomp::Decomposition;
use relic_spec::{Catalog, ColSet, RelSpec};
use std::fmt;

/// Errors surfaced by the durability layer.
#[derive(Debug)]
pub enum PersistError {
    /// An I/O failure on the log or checkpoint files.
    Io(std::io::Error),
    /// A wire-format decode failure (corruption the checksum missed, or a
    /// schema written by an incompatible version).
    Wire(WireError),
    /// A relational operation failed (the live operation's error, passed
    /// through).
    Op(OpError),
    /// Building the recovered relation failed.
    Build(ConcurrentBuildError),
    /// A representation migration failed.
    Migrate(MigrateError),
    /// The on-disk state is unusable: a required checkpoint is missing or
    /// unreadable, or the log is internally inconsistent.
    Corrupt(String),
    /// A record or batch too large to frame: its byte length (or element
    /// count) does not fit the wire's `u32` prefix / the frame cap. The
    /// refusal replaces an unchecked `as u32` cast that silently truncated
    /// the length prefix and corrupted everything after it in the stream.
    FrameTooLarge {
        /// The offending length (bytes, or elements for a count prefix).
        len: usize,
        /// The largest length a frame accepts.
        max: usize,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persistence I/O error: {e}"),
            PersistError::Wire(e) => write!(f, "persistence decode error: {e}"),
            PersistError::Op(e) => write!(f, "{e}"),
            PersistError::Build(e) => write!(f, "recovered relation failed to build: {e}"),
            PersistError::Migrate(e) => write!(f, "{e}"),
            PersistError::Corrupt(m) => write!(f, "persistent state corrupt: {m}"),
            PersistError::FrameTooLarge { len, max } => {
                write!(f, "record of length {len} exceeds the frame cap {max}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Wire(e) => Some(e),
            PersistError::Op(e) => Some(e),
            PersistError::Build(e) => Some(e),
            PersistError::Migrate(e) => Some(e),
            PersistError::Corrupt(_) => None,
            PersistError::FrameTooLarge { .. } => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<WireError> for PersistError {
    fn from(e: WireError) -> Self {
        PersistError::Wire(e)
    }
}

impl From<OpError> for PersistError {
    fn from(e: OpError) -> Self {
        PersistError::Op(e)
    }
}

impl From<ConcurrentBuildError> for PersistError {
    fn from(e: ConcurrentBuildError) -> Self {
        PersistError::Build(e)
    }
}

impl From<MigrateError> for PersistError {
    fn from(e: MigrateError) -> Self {
        PersistError::Migrate(e)
    }
}

/// Everything needed to rebuild an empty relation identical in shape to
/// the one that crashed: catalog, specification, sharding, the
/// decomposition identity (let-notation), and the FD-checking mode.
///
/// Stored in the log's leading meta record and in every checkpoint, so
/// either file alone describes the relation.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableSchema {
    /// The column catalog (names in id order).
    pub catalog: Catalog,
    /// The relational specification (columns + functional dependencies).
    pub spec: RelSpec,
    /// The shard-routing columns.
    pub shard_cols: ColSet,
    /// The shard count.
    pub shards: u32,
    /// The decomposition identity, in let-notation.
    pub decomposition_src: String,
    /// Whether mutations check every declared functional dependency.
    pub fd_checking: bool,
}

impl DurableSchema {
    /// Re-parses the stored decomposition identity.
    ///
    /// # Errors
    ///
    /// [`PersistError::Wire`] if the notation no longer parses.
    pub fn build_decomposition(&self) -> Result<Decomposition, PersistError> {
        let mut cat = self.catalog.clone();
        relic_decomp::parse(&mut cat, &self.decomposition_src)
            .map_err(|e| PersistError::Wire(WireError::Decomposition(e.to_string())))
    }

    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        wire::put_catalog(out, &self.catalog);
        wire::put_spec(out, &self.spec);
        wire::put_u64(out, self.shard_cols.bits());
        wire::put_u32(out, self.shards);
        wire::put_str(out, &self.decomposition_src);
        out.push(u8::from(self.fd_checking));
    }

    pub(crate) fn decode(r: &mut wire::Reader<'_>) -> Result<Self, WireError> {
        let catalog = wire::take_catalog(r)?;
        let spec = wire::take_spec(r)?;
        let shard_cols = ColSet::from_bits(r.take_u64()?);
        let shards = r.take_u32()?;
        let decomposition_src = r.take_str()?.to_string();
        let fd_checking = r.take_u8()? != 0;
        Ok(DurableSchema {
            catalog,
            spec,
            shard_cols,
            shards,
            decomposition_src,
            fd_checking,
        })
    }
}
