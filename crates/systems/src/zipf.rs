//! A seeded Zipf-distributed sampler (implemented in-repo; `rand` provides
//! only uniform primitives we build on).
//!
//! Skewed key popularity is what makes cache and flow-accounting workloads
//! interesting: a few hot keys dominate. The classic Zipf distribution with
//! exponent `s` assigns rank `k` (1-based) probability `∝ 1/k^s`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Zipf sampler over ranks `0..n` with exponent `s`, backed by a
/// precomputed CDF and binary search (O(log n) per sample).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    rng: StdRng,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s`, seeded
    /// deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64, seed: u64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf {
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the next rank in `0..n`. Rank 0 is the most popular.
    pub fn sample(&mut self) -> usize {
        let u: f64 = self.rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_in_range() {
        let mut z = Zipf::new(100, 1.0, 7);
        for _ in 0..1000 {
            assert!(z.sample() < 100);
        }
    }

    #[test]
    fn skew_prefers_low_ranks() {
        let mut z = Zipf::new(1000, 1.2, 42);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[z.sample()] += 1;
        }
        let head: usize = counts[..10].iter().sum();
        let tail: usize = counts[500..].iter().sum();
        assert!(
            head > tail * 3,
            "top-10 ({head}) should dwarf ranks 500+ ({tail})"
        );
        assert!(
            counts[0] >= counts[100],
            "rank 0 at least as hot as rank 100"
        );
    }

    #[test]
    fn zero_exponent_is_uniformish() {
        let mut z = Zipf::new(10, 0.0, 3);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample()] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "approximately uniform, got {c}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Zipf::new(50, 1.0, 11);
        let mut b = Zipf::new(50, 1.0, 11);
        let sa: Vec<usize> = (0..100).map(|_| a.sample()).collect();
        let sb: Vec<usize> = (0..100).map(|_| b.sample()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0, 1);
    }
}
