//! The §6.2 daemons put on the network: client/server flavours of IpCap
//! and the thttpd mmap cache.
//!
//! Every other flavour in this crate links the relation into the daemon's
//! own process. Here the relation lives behind `relic_server` and the
//! daemon becomes a *client*: it discovers the schema over the wire
//! ([`NetRequest::Catalog`](relic_core::netmsg::NetRequest::Catalog) —
//! no out-of-band column agreement), and every lookup, accumulation and
//! sweep rides the framed protocol. The observable behaviour must be
//! *identical* to the in-process baselines — the parity tests drive the
//! same deterministic workloads through
//! [`BaselineFlows`](crate::ipcap::BaselineFlows) and [`ServedFlows`]
//! (resp. [`BaselineMmapCache`](crate::thttpd::BaselineMmapCache) /
//! [`ServedMmapCache`])
//! and compare outputs exactly — which is the paper's substitution claim
//! extended across a process boundary.
//!
//! Mutations issued by these clients are admission-controlled: a
//! [`ServerError::Busy`] shed is retried after the server's hinted
//! backoff, so a pressured server degrades daemon throughput instead of
//! daemon correctness.

use crate::ipcap::default_decomposition as flow_decomposition;
use crate::ipcap::{flow_spec, FlowCols, FlowRecord, Packet};
use crate::thttpd::default_decomposition as mmap_decomposition;
use crate::thttpd::{mmap_spec, MmapCols, Outcome, Request};
use relic_persist::{DurableRelation, GroupCommitPolicy, PersistError};
use relic_server::{Client, ServeHandle, ServerConfig, ServerError};
use relic_spec::{ColSet, Tuple, Value};
use std::path::Path;
use std::sync::Arc;

/// Creates a fresh durable flow table in `dir` and serves it.
///
/// # Errors
///
/// [`PersistError`] from creating the relation (socket failures surface
/// as its `Io` variant).
pub fn spawn_flow_server(
    dir: &Path,
    shards: usize,
    config: ServerConfig,
) -> Result<ServeHandle, PersistError> {
    let (mut cat, cols, spec) = flow_spec();
    let d = flow_decomposition(&mut cat);
    let rel = DurableRelation::create(
        dir,
        &cat,
        spec,
        d,
        cols.local.set(),
        shards,
        true,
        GroupCommitPolicy::manual(),
    )?;
    ServeHandle::spawn(Arc::new(rel), config).map_err(PersistError::Io)
}

/// Creates a fresh durable mmap-cache relation in `dir` and serves it.
///
/// # Errors
///
/// As for [`spawn_flow_server`].
pub fn spawn_mmap_server(
    dir: &Path,
    shards: usize,
    config: ServerConfig,
) -> Result<ServeHandle, PersistError> {
    let (mut cat, cols, spec) = mmap_spec();
    let d = mmap_decomposition(&mut cat);
    let rel = DurableRelation::create(
        dir,
        &cat,
        spec,
        d,
        cols.path.set(),
        shards,
        true,
        GroupCommitPolicy::manual(),
    )?;
    ServeHandle::spawn(Arc::new(rel), config).map_err(PersistError::Io)
}

/// Retries a mutation through admission-control sheds: on
/// [`ServerError::Busy`], sleeps the server's hinted backoff and tries
/// again. Every other error propagates.
fn with_busy_retry<T>(mut op: impl FnMut() -> Result<T, ServerError>) -> Result<T, ServerError> {
    loop {
        match op() {
            Err(ServerError::Busy { retry_ms }) => {
                std::thread::sleep(std::time::Duration::from_millis(u64::from(retry_ms.max(1))));
            }
            other => return other,
        }
    }
}

// ---------------------------------------------------------------------------
// IpCap over the wire.
// ---------------------------------------------------------------------------

/// The flow-accounting daemon as a network client: the same observable
/// behaviour as [`BaselineFlows`](crate::ipcap::BaselineFlows), with the
/// flow relation living behind a `relic_server`.
#[derive(Debug)]
pub struct ServedFlows {
    client: Client,
    cols: FlowCols,
}

impl ServedFlows {
    /// Connects to a flow server and resolves the flow columns from the
    /// schema it advertises.
    ///
    /// # Errors
    ///
    /// Connection failures, or a served catalog missing a flow column.
    pub fn connect(addr: std::net::SocketAddr) -> Result<ServedFlows, ServerError> {
        let mut client = Client::connect(addr)?;
        let (cat, _spec) = client.catalog()?;
        let col = |name: &str| {
            cat.col(name)
                .ok_or_else(|| ServerError::Protocol(format!("served catalog lacks `{name}`")))
        };
        let cols = FlowCols {
            local: col("local")?,
            remote: col("remote")?,
            bytes: col("bytes")?,
            pkts: col("pkts")?,
        };
        Ok(ServedFlows { client, cols })
    }

    /// Accounts one packet: a remote lookup plus a remote
    /// remove-and-reinsert (or plain insert) of the accumulated flow.
    ///
    /// # Errors
    ///
    /// Transport or server-side relational failures.
    pub fn account(&mut self, (l, r, len): Packet) -> Result<(), ServerError> {
        let cols = self.cols;
        let key = Tuple::from_pairs([(cols.local, Value::from(l)), (cols.remote, Value::from(r))]);
        let existing = self.client.query(key.clone(), cols.bytes | cols.pkts)?;
        let (bytes, pkts) = match existing.first() {
            Some(t) => {
                let b = t.get(cols.bytes).and_then(Value::as_int).ok_or_else(|| {
                    ServerError::Protocol("flow row lost its `bytes` integer".to_string())
                })?;
                let k = t.get(cols.pkts).and_then(Value::as_int).ok_or_else(|| {
                    ServerError::Protocol("flow row lost its `pkts` integer".to_string())
                })?;
                with_busy_retry(|| self.client.remove(key.clone()))?;
                (b + len, k + 1)
            }
            None => (len, 1),
        };
        let row = key.merge(&Tuple::from_pairs([
            (cols.bytes, Value::from(bytes)),
            (cols.pkts, Value::from(pkts)),
        ]));
        with_busy_retry(|| self.client.insert(row.clone()))?;
        Ok(())
    }

    /// Logs and removes all flows, returning them sorted — the remote
    /// flush, group-committed on the server before it returns.
    ///
    /// # Errors
    ///
    /// Transport or server-side failures.
    pub fn flush(&mut self) -> Result<Vec<FlowRecord>, ServerError> {
        let cols = self.cols;
        let all = self.client.query(Tuple::empty(), ColSet::empty())?;
        let mut out = Vec::with_capacity(all.len());
        for t in &all {
            let int = |c| {
                t.get(c).and_then(Value::as_int).ok_or_else(|| {
                    ServerError::Protocol("flow row lost an integer column".to_string())
                })
            };
            out.push(FlowRecord {
                local: int(cols.local)?,
                remote: int(cols.remote)?,
                bytes: int(cols.bytes)?,
                pkts: int(cols.pkts)?,
            });
        }
        out.sort();
        with_busy_retry(|| self.client.remove(Tuple::empty()))?;
        self.client.commit()?;
        Ok(out)
    }

    /// Number of live flows, per the server's published state.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn live_flows(&mut self) -> Result<usize, ServerError> {
        Ok(self.client.stats()?.len as usize)
    }
}

/// Runs a packet trace through a served flow table, flushing every
/// `flush_every` packets — the network twin of
/// [`run_accounting`](crate::ipcap::run_accounting).
///
/// # Errors
///
/// The first transport or server-side failure; accounting stops there.
pub fn run_served_accounting(
    flows: &mut ServedFlows,
    trace: &[Packet],
    flush_every: usize,
) -> Result<Vec<FlowRecord>, ServerError> {
    let mut log = Vec::new();
    for (i, p) in trace.iter().enumerate() {
        flows.account(*p)?;
        if flush_every > 0 && (i + 1) % flush_every == 0 {
            log.extend(flows.flush()?);
        }
    }
    log.extend(flows.flush()?);
    Ok(log)
}

// ---------------------------------------------------------------------------
// thttpd over the wire.
// ---------------------------------------------------------------------------

/// The mmap cache as a network client: behaviourally identical to
/// [`BaselineMmapCache`](crate::thttpd::BaselineMmapCache), with the
/// mapping relation served remotely. The address allocator stays
/// client-side, exactly where the original daemon kept it.
#[derive(Debug)]
pub struct ServedMmapCache {
    client: Client,
    cols: MmapCols,
    next_addr: i64,
}

impl ServedMmapCache {
    /// Connects to an mmap-cache server and resolves the mapping columns
    /// from the schema it advertises.
    ///
    /// # Errors
    ///
    /// Connection failures, or a served catalog missing a column.
    pub fn connect(addr: std::net::SocketAddr) -> Result<ServedMmapCache, ServerError> {
        let mut client = Client::connect(addr)?;
        let (cat, _spec) = client.catalog()?;
        let col = |name: &str| {
            cat.col(name)
                .ok_or_else(|| ServerError::Protocol(format!("served catalog lacks `{name}`")))
        };
        let cols = MmapCols {
            path: col("path")?,
            addr: col("addr")?,
            size: col("size")?,
            stamp: col("stamp")?,
        };
        Ok(ServedMmapCache {
            client,
            cols,
            next_addr: 0,
        })
    }

    /// Serves one request remotely, returning hit/miss. A hit refreshes
    /// the stamp (remote remove-and-reinsert preserving `addr`/`size`); a
    /// miss allocates an address locally and inserts the new mapping.
    ///
    /// # Errors
    ///
    /// Transport or server-side failures.
    pub fn serve(&mut self, req: &Request) -> Result<Outcome, ServerError> {
        let cols = self.cols;
        let key = Tuple::from_pairs([(cols.path, Value::from(req.path.as_str()))]);
        let existing = self
            .client
            .query(key.clone(), cols.addr | cols.size | cols.stamp)?;
        if let Some(t) = existing.first() {
            let int = |c| {
                t.get(c).and_then(Value::as_int).ok_or_else(|| {
                    ServerError::Protocol("mapping row lost an integer column".to_string())
                })
            };
            let (addr, size) = (int(cols.addr)?, int(cols.size)?);
            with_busy_retry(|| self.client.remove(key.clone()))?;
            let row = key.merge(&Tuple::from_pairs([
                (cols.addr, Value::from(addr)),
                (cols.size, Value::from(size)),
                (cols.stamp, Value::from(req.now)),
            ]));
            with_busy_retry(|| self.client.insert(row.clone()))?;
            return Ok(Outcome::Hit);
        }
        self.next_addr += 4096;
        let size = 1024 + (req.path.len() as i64) * 7;
        let row = key.merge(&Tuple::from_pairs([
            (cols.addr, Value::from(self.next_addr)),
            (cols.size, Value::from(size)),
            (cols.stamp, Value::from(req.now)),
        ]));
        with_busy_retry(|| self.client.insert(row.clone()))?;
        Ok(Outcome::Miss)
    }

    /// Removes mappings with `stamp < cutoff`, returning how many were
    /// unmapped. The stale set is found with a server-side predicate
    /// query (`QueryWhere` — the concrete pattern syntax crosses the wire
    /// and is parsed against the served catalog).
    ///
    /// # Errors
    ///
    /// Transport or server-side failures.
    pub fn cleanup(&mut self, cutoff: i64) -> Result<usize, ServerError> {
        let cols = self.cols;
        let stale = self
            .client
            .query_where(&format!("stamp < {cutoff}"), cols.path.set())?;
        let mut unmapped = 0usize;
        for t in &stale {
            let path = t.get(cols.path).and_then(Value::as_str).ok_or_else(|| {
                ServerError::Protocol("mapping row lost its `path` string".to_string())
            })?;
            let key = Tuple::from_pairs([(cols.path, Value::from(path))]);
            unmapped += with_busy_retry(|| self.client.remove(key.clone()))? as usize;
        }
        self.client.commit()?;
        Ok(unmapped)
    }

    /// Number of live mappings, per the server's published state.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn live(&mut self) -> Result<usize, ServerError> {
        Ok(self.client.stats()?.len as usize)
    }
}

/// Drives a request stream with periodic cleanups through a served cache
/// — the network twin of [`run_cache`](crate::thttpd::run_cache).
///
/// # Errors
///
/// The first transport or server-side failure; serving stops there.
pub fn run_served_cache(
    cache: &mut ServedMmapCache,
    reqs: &[Request],
    sweep_every: usize,
    max_age: i64,
) -> Result<(Vec<Outcome>, usize), ServerError> {
    let mut outcomes = Vec::with_capacity(reqs.len());
    let mut unmapped = 0;
    for (i, r) in reqs.iter().enumerate() {
        outcomes.push(cache.serve(r)?);
        if sweep_every > 0 && (i + 1) % sweep_every == 0 {
            unmapped += cache.cleanup(r.now - max_age)?;
        }
    }
    Ok((outcomes, unmapped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipcap::{packet_trace, run_accounting, BaselineFlows};
    use crate::thttpd::{request_stream, run_cache, BaselineMmapCache, MmapCache};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static CASE: AtomicUsize = AtomicUsize::new(0);

    fn case_dir(tag: &str) -> PathBuf {
        let n = CASE.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("relic_served_{tag}_{}_{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn served_ipcap_matches_the_baseline_exactly() {
        let dir = case_dir("ipcap");
        let server = spawn_flow_server(&dir, 4, ServerConfig::default()).unwrap();
        let trace = packet_trace(600, 12, 24, 0xC0FFEE);

        let mut baseline = BaselineFlows::new();
        let want = run_accounting(&mut baseline, &trace, 150).unwrap();

        let mut served = ServedFlows::connect(server.addr()).unwrap();
        let got = run_served_accounting(&mut served, &trace, 150).unwrap();

        assert_eq!(got, want, "served accounting diverged from the baseline");
        assert_eq!(served.live_flows().unwrap(), 0, "final flush left flows");
        server.stop().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn served_thttpd_matches_the_baseline_exactly() {
        let dir = case_dir("thttpd");
        let server = spawn_mmap_server(&dir, 4, ServerConfig::default()).unwrap();
        let reqs = request_stream(400, 60, 0xBEEF);

        let mut baseline = BaselineMmapCache::new();
        let (want_outcomes, want_unmapped) = run_cache(&mut baseline, &reqs, 100, 40);

        let mut served = ServedMmapCache::connect(server.addr()).unwrap();
        let (got_outcomes, got_unmapped) = run_served_cache(&mut served, &reqs, 100, 40).unwrap();

        assert_eq!(got_outcomes, want_outcomes, "hit/miss streams diverged");
        assert_eq!(got_unmapped, want_unmapped, "sweep counts diverged");
        assert_eq!(
            served.live().unwrap(),
            baseline.live(),
            "live mapping counts diverged"
        );
        server.stop().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn served_accounting_survives_server_restart() {
        // Committed accounting outlives the serving process: stop the
        // server mid-trace, reopen the same directory, keep accounting.
        let dir = case_dir("restart");
        let trace = packet_trace(300, 8, 16, 0xD00D);
        let (first, rest) = trace.split_at(150);

        let server = spawn_flow_server(&dir, 2, ServerConfig::default()).unwrap();
        let mut served = ServedFlows::connect(server.addr()).unwrap();
        for p in first {
            served.account(*p).unwrap();
        }
        // Commit (not flush): flows stay live, durably.
        served.client.commit().unwrap();
        drop(served);
        server.stop().unwrap();

        // Reopen the same state and serve it again.
        let rel = DurableRelation::open(&dir, GroupCommitPolicy::manual()).unwrap();
        let server = ServeHandle::spawn(Arc::new(rel), ServerConfig::default()).unwrap();
        let mut served = ServedFlows::connect(server.addr()).unwrap();
        for p in rest {
            served.account(*p).unwrap();
        }
        let got = served.flush().unwrap();

        let mut baseline = BaselineFlows::new();
        let want = run_accounting(&mut baseline, &trace, 0).unwrap();
        assert_eq!(got, want, "restarted served accounting diverged");
        server.stop().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
