//! The ZTopo map-tile cache (§6.2).
//!
//! ZTopo keeps recently viewed map tiles in a two-level cache: in-memory
//! tiles and on-disk tiles. The original kept a hash table of tiles *plus*
//! per-state linked lists for eviction, with "fairly subtle dynamic
//! assertions" checking the two structures stayed in agreement — exactly the
//! overlapping-structure invariant the paper synthesizes away.
//!
//! The tile cache is the relation `tiles⟨tile, state, stamp⟩` with
//! `tile → state, stamp` and `state ∈ {M, D}` (memory/disk) — the same shape
//! as the running scheduler example.
//!
//! [`BaselineTileCache`] is the hand-coded double structure (map + per-state
//! ordered index, invariants maintained by hand, checked by
//! `debug_assert!`s); [`SynthTileCache`] delegates to a [`SynthRelation`]
//! whose decomposition *is* that double structure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relic_core::SynthRelation;
use relic_decomp::Decomposition;
use relic_spec::{Catalog, ColId, RelSpec, Tuple, Value};
use std::collections::{BTreeSet, HashMap};

/// A viewer request for one tile id at a logical time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileRequest {
    /// Tile id (encodes x, y, zoom).
    pub tile: i64,
    /// Logical timestamp.
    pub now: i64,
}

/// Generates a panning random walk over a `w × h` tile grid: each step
/// requests the 2×2 block around the cursor, then the cursor drifts.
/// Deterministic in `seed`.
pub fn pan_workload(steps: usize, w: i64, h: i64, seed: u64) -> Vec<TileRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut x, mut y) = (w / 2, h / 2);
    let mut out = Vec::with_capacity(steps * 4);
    let mut now = 0i64;
    for _ in 0..steps {
        for (dx, dy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
            let tx = (x + dx).clamp(0, w - 1);
            let ty = (y + dy).clamp(0, h - 1);
            out.push(TileRequest {
                tile: ty * w + tx,
                now,
            });
            now += 1;
        }
        x = (x + rng.gen_range(-1..=1)).clamp(0, w - 1);
        y = (y + rng.gen_range(-1..=1)).clamp(0, h - 1);
    }
    out
}

/// Where a requested tile was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileOutcome {
    /// In memory.
    Memory,
    /// On disk (promoted to memory by the request).
    Disk,
    /// Not cached (fetched from the network into memory).
    Network,
}

/// The tile-cache interface both implementations provide.
pub trait TileCache {
    /// Serves one request, returning where the tile was found. The tile ends
    /// up in memory; if memory exceeds its budget the oldest in-memory tile
    /// is demoted to disk; if disk exceeds its budget the oldest on-disk
    /// tile is dropped.
    fn request(&mut self, req: TileRequest) -> TileOutcome;
    /// `(in-memory tiles, on-disk tiles)`.
    fn sizes(&self) -> (usize, usize);
}

/// Replays a workload, returning outcomes and final sizes.
pub fn run_tiles<C: TileCache>(
    cache: &mut C,
    reqs: &[TileRequest],
) -> (Vec<TileOutcome>, (usize, usize)) {
    let outcomes = reqs.iter().map(|r| cache.request(*r)).collect();
    (outcomes, cache.sizes())
}

// [baseline:begin]
/// Hand-coded tile cache: a hash map of tiles plus one ordered eviction
/// index per state. Every mutation must keep the three structures in
/// agreement — the invariant checked by `debug_assert_consistent`.
#[derive(Debug)]
pub struct BaselineTileCache {
    tiles: HashMap<i64, (u8, i64)>,    // tile -> (state M=0/D=1, stamp)
    by_age_mem: BTreeSet<(i64, i64)>,  // (stamp, tile) for state M
    by_age_disk: BTreeSet<(i64, i64)>, // (stamp, tile) for state D
    mem_budget: usize,
    disk_budget: usize,
}

impl BaselineTileCache {
    /// Creates a cache with the given per-level budgets.
    pub fn new(mem_budget: usize, disk_budget: usize) -> Self {
        BaselineTileCache {
            tiles: HashMap::new(),
            by_age_mem: BTreeSet::new(),
            by_age_disk: BTreeSet::new(),
            mem_budget,
            disk_budget,
        }
    }

    fn debug_assert_consistent(&self) {
        debug_assert_eq!(
            self.tiles.len(),
            self.by_age_mem.len() + self.by_age_disk.len(),
            "tile map and eviction indexes out of sync"
        );
        debug_assert!(self
            .by_age_mem
            .iter()
            .all(|&(st, t)| self.tiles.get(&t) == Some(&(0, st))));
        debug_assert!(self
            .by_age_disk
            .iter()
            .all(|&(st, t)| self.tiles.get(&t) == Some(&(1, st))));
    }

    fn set(&mut self, tile: i64, state: u8, stamp: i64) {
        if let Some((old_state, old_stamp)) = self.tiles.insert(tile, (state, stamp)) {
            let idx = if old_state == 0 {
                &mut self.by_age_mem
            } else {
                &mut self.by_age_disk
            };
            idx.remove(&(old_stamp, tile));
        }
        let idx = if state == 0 {
            &mut self.by_age_mem
        } else {
            &mut self.by_age_disk
        };
        idx.insert((stamp, tile));
    }

    fn enforce_budgets(&mut self) {
        while self.by_age_mem.len() > self.mem_budget {
            let &(stamp, tile) = self.by_age_mem.iter().next().expect("nonempty");
            // Demote to disk, keeping its stamp.
            self.by_age_mem.remove(&(stamp, tile));
            self.tiles.insert(tile, (1, stamp));
            self.by_age_disk.insert((stamp, tile));
        }
        while self.by_age_disk.len() > self.disk_budget {
            let &(stamp, tile) = self.by_age_disk.iter().next().expect("nonempty");
            self.by_age_disk.remove(&(stamp, tile));
            self.tiles.remove(&tile);
        }
        self.debug_assert_consistent();
    }
}

impl TileCache for BaselineTileCache {
    fn request(&mut self, req: TileRequest) -> TileOutcome {
        let outcome = match self.tiles.get(&req.tile) {
            Some(&(0, _)) => TileOutcome::Memory,
            Some(&(1, _)) => TileOutcome::Disk,
            Some(_) => unreachable!("two states"),
            None => TileOutcome::Network,
        };
        self.set(req.tile, 0, req.now);
        self.enforce_budgets();
        outcome
    }

    fn sizes(&self) -> (usize, usize) {
        (self.by_age_mem.len(), self.by_age_disk.len())
    }
}
// [baseline:end]

/// Column handles for the tile relation.
#[derive(Debug, Clone, Copy)]
pub struct TileCols {
    /// Tile id.
    pub tile: ColId,
    /// Cache level: `"M"` or `"D"`.
    pub state: ColId,
    /// Last-access timestamp.
    pub stamp: ColId,
}

/// Creates the tile relation's catalog, columns and specification.
pub fn tile_spec() -> (Catalog, TileCols, RelSpec) {
    let mut cat = Catalog::new();
    let cols = TileCols {
        tile: cat.intern("tile"),
        state: cat.intern("state"),
        stamp: cat.intern("stamp"),
    };
    let spec = RelSpec::new(cols.tile | cols.state | cols.stamp)
        .with_fd(cols.tile.into(), cols.state | cols.stamp);
    (cat, cols, spec)
}

/// The default decomposition: tiles hashed by id, sharing their leaf with a
/// per-state index — the scheduler shape of Fig. 2 applied to tiles. The
/// whole "keep the hash table and the per-state lists consistent" problem
/// disappears into adequacy + soundness.
pub fn default_decomposition(cat: &mut Catalog) -> Decomposition {
    relic_decomp::parse(
        cat,
        "let w : {tile,state} . {stamp} = unit {stamp} in
         let y : {tile} . {state,stamp} = {state} -[vec]-> w in
         let z : {state} . {tile,stamp} = {tile} -[htable]-> w in
         let x : {} . {tile,state,stamp} =
           ({tile} -[htable]-> y) join ({state} -[vec]-> z) in x",
    )
    .expect("default decomposition parses")
}

// [synth:begin]
/// The synthesized tile cache.
#[derive(Debug)]
pub struct SynthTileCache {
    rel: SynthRelation,
    cols: TileCols,
    mem_budget: usize,
    disk_budget: usize,
    mem_count: usize,
    disk_count: usize,
}

impl SynthTileCache {
    /// Creates a cache over any adequate decomposition of the tile relation.
    ///
    /// # Errors
    ///
    /// Propagates adequacy failures.
    pub fn new(
        cat: &Catalog,
        cols: TileCols,
        spec: &RelSpec,
        d: Decomposition,
        mem_budget: usize,
        disk_budget: usize,
    ) -> Result<Self, relic_core::BuildError> {
        let mut rel = SynthRelation::new(cat, spec.clone(), d)?;
        rel.set_fd_checking(false);
        Ok(SynthTileCache {
            rel,
            cols,
            mem_budget,
            disk_budget,
            mem_count: 0,
            disk_count: 0,
        })
    }

    /// Access to the underlying relation (for validation in tests).
    pub fn relation(&self) -> &SynthRelation {
        &self.rel
    }

    /// Warm-starts the cache from saved `(tile, state, stamp)` entries
    /// (`state` is `"M"` or `"D"`) — the restart path — as one bulk load,
    /// then enforces the budgets once for the whole batch. Returns the
    /// number of tiles loaded.
    ///
    /// # Errors
    ///
    /// As for [`SynthRelation::bulk_load`] (e.g. two states for one tile).
    pub fn preload<I: IntoIterator<Item = (i64, &'static str, i64)>>(
        &mut self,
        tiles: I,
    ) -> Result<usize, relic_core::OpError> {
        let cols = self.cols;
        let batch: Vec<Tuple> = tiles
            .into_iter()
            .map(|(tile, state, stamp)| {
                Tuple::from_pairs([
                    (cols.tile, Value::from(tile)),
                    (cols.state, Value::from(state)),
                    (cols.stamp, Value::from(stamp)),
                ])
            })
            .collect();
        let res = self.rel.bulk_load(batch);
        // Recount from the relation — duplicate inputs (and the accepted
        // prefix of a failed load) must not skew the cached sizes — and
        // re-establish the budget invariant before propagating any error,
        // so a partial load never leaves the cache over budget.
        self.mem_count = self.count_state("M");
        self.disk_count = self.count_state("D");
        self.enforce_budgets();
        res
    }

    /// Number of tiles currently in `state`.
    fn count_state(&self, state: &str) -> usize {
        let pat = Tuple::from_pairs([(self.cols.state, Value::from(state))]);
        let mut n = 0;
        self.rel
            .query_for_each(&pat, self.cols.tile.into(), |_| n += 1)
            .expect("in-relation query");
        n
    }

    /// The oldest `(stamp, tile)` in a state, if any.
    fn oldest(&self, state: &str) -> Option<(i64, i64)> {
        let pat = Tuple::from_pairs([(self.cols.state, Value::from(state))]);
        let mut best: Option<(i64, i64)> = None;
        self.rel
            .query_for_each(&pat, self.cols.tile | self.cols.stamp, |t| {
                let tile = t.get(self.cols.tile).and_then(Value::as_int).unwrap();
                let stamp = t.get(self.cols.stamp).and_then(Value::as_int).unwrap();
                if best.map(|b| (stamp, tile) < b).unwrap_or(true) {
                    best = Some((stamp, tile));
                }
            })
            .expect("in-relation query");
        best
    }

    fn enforce_budgets(&mut self) {
        while self.mem_count > self.mem_budget {
            let (_, tile) = self.oldest("M").expect("nonempty");
            self.rel
                .update(
                    &Tuple::from_pairs([(self.cols.tile, Value::from(tile))]),
                    &Tuple::from_pairs([(self.cols.state, Value::from("D"))]),
                )
                .expect("demote to disk");
            self.mem_count -= 1;
            self.disk_count += 1;
        }
        while self.disk_count > self.disk_budget {
            let (_, tile) = self.oldest("D").expect("nonempty");
            self.rel
                .remove(&Tuple::from_pairs([(self.cols.tile, Value::from(tile))]))
                .expect("drop from disk");
            self.disk_count -= 1;
        }
    }
}

impl TileCache for SynthTileCache {
    fn request(&mut self, req: TileRequest) -> TileOutcome {
        let key = Tuple::from_pairs([(self.cols.tile, Value::from(req.tile))]);
        let existing = self.rel.query(&key, self.cols.state.into()).expect("query");
        let outcome = match existing.first() {
            Some(t) => match t.get(self.cols.state).and_then(Value::as_str) {
                Some("M") => TileOutcome::Memory,
                Some("D") => TileOutcome::Disk,
                _ => unreachable!("two states"),
            },
            None => TileOutcome::Network,
        };
        match outcome {
            TileOutcome::Network => {
                self.rel
                    .insert(key.merge(&Tuple::from_pairs([
                        (self.cols.state, Value::from("M")),
                        (self.cols.stamp, Value::from(req.now)),
                    ])))
                    .expect("new tile");
                self.mem_count += 1;
            }
            TileOutcome::Disk => {
                self.rel
                    .update(
                        &key,
                        &Tuple::from_pairs([
                            (self.cols.state, Value::from("M")),
                            (self.cols.stamp, Value::from(req.now)),
                        ]),
                    )
                    .expect("promote");
                self.disk_count -= 1;
                self.mem_count += 1;
            }
            TileOutcome::Memory => {
                self.rel
                    .update(
                        &key,
                        &Tuple::from_pairs([(self.cols.stamp, Value::from(req.now))]),
                    )
                    .expect("touch");
            }
        }
        self.enforce_budgets();
        outcome
    }

    fn sizes(&self) -> (usize, usize) {
        (self.mem_count, self.disk_count)
    }
}
// [synth:end]

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pan_workload_deterministic() {
        let a = pan_workload(50, 16, 16, 4);
        let b = pan_workload(50, 16, 16, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        assert!(a.iter().all(|r| (0..256).contains(&r.tile)));
    }

    #[test]
    fn baseline_and_synth_agree() {
        let reqs = pan_workload(120, 12, 12, 8);
        let mut base = BaselineTileCache::new(16, 32);
        let (mut cat, cols, spec) = tile_spec();
        let d = default_decomposition(&mut cat);
        let mut synth = SynthTileCache::new(&cat, cols, &spec, d, 16, 32).unwrap();
        let (o1, s1) = run_tiles(&mut base, &reqs);
        let (o2, s2) = run_tiles(&mut synth, &reqs);
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
        synth.relation().validate().unwrap();
    }

    #[test]
    fn budgets_are_enforced() {
        let (mut cat, cols, spec) = tile_spec();
        let d = default_decomposition(&mut cat);
        let mut synth = SynthTileCache::new(&cat, cols, &spec, d, 4, 6).unwrap();
        for i in 0..40 {
            synth.request(TileRequest { tile: i, now: i });
        }
        let (mem, disk) = synth.sizes();
        assert!(mem <= 4 && disk <= 6, "mem {mem} disk {disk}");
        synth.relation().validate().unwrap();
    }

    #[test]
    fn preload_warm_start_agrees_with_served_state() {
        let (mut cat, cols, spec) = tile_spec();
        let d = default_decomposition(&mut cat);
        let mut synth = SynthTileCache::new(&cat, cols, &spec, d, 8, 16).unwrap();
        let n = synth
            .preload((0..20).map(|i| (i, if i < 6 { "M" } else { "D" }, i)))
            .unwrap();
        assert_eq!(n, 20);
        assert_eq!(synth.sizes(), (6, 14));
        synth.relation().validate().unwrap();
        // Preloaded tiles behave exactly like served ones.
        assert_eq!(
            synth.request(TileRequest { tile: 0, now: 100 }),
            TileOutcome::Memory
        );
        assert_eq!(
            synth.request(TileRequest { tile: 15, now: 101 }),
            TileOutcome::Disk
        );
        // Over-budget preloads are trimmed by the same eviction rules.
        let mut over = {
            let (mut cat, cols, spec) = tile_spec();
            let d = default_decomposition(&mut cat);
            SynthTileCache::new(&cat, cols, &spec, d, 4, 6).unwrap()
        };
        over.preload((0..40).map(|i| (i, "M", i))).unwrap();
        let (mem, disk) = over.sizes();
        assert!(mem <= 4 && disk <= 6, "mem {mem} disk {disk}");
        over.relation().validate().unwrap();
    }

    #[test]
    fn promotion_from_disk() {
        let (mut cat, cols, spec) = tile_spec();
        let d = default_decomposition(&mut cat);
        let mut synth = SynthTileCache::new(&cat, cols, &spec, d, 2, 8).unwrap();
        // Fill memory past the budget so tile 0 lands on disk.
        for i in 0..4 {
            assert_eq!(
                synth.request(TileRequest { tile: i, now: i }),
                TileOutcome::Network
            );
        }
        // Tile 0 must now be on disk; requesting it promotes it.
        assert_eq!(
            synth.request(TileRequest { tile: 0, now: 100 }),
            TileOutcome::Disk
        );
        assert_eq!(
            synth.request(TileRequest { tile: 0, now: 101 }),
            TileOutcome::Memory
        );
        synth.relation().validate().unwrap();
    }
}
