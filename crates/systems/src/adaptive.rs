//! Adaptive representations: the profile → recommend → migrate loop driven
//! at runtime, plus the phase-shift scenario `bench_smoke` records as
//! BENCH_3.json.
//!
//! The paper's autotuner (§5) picks the best decomposition for a *measured*
//! workload once, offline. [`AdaptiveRelation`] runs the same machinery
//! online: the wrapped [`SynthRelation`] records every operation signature
//! it serves, and on a fixed cadence the driver asks
//! [`Autotuner::recommend`] whether a different decomposition would beat
//! the current one on the *observed* mix by a safety margin — if so, the
//! relation re-represents itself in place through
//! [`SynthRelation::migrate_to`] (an O(n) drain + bulk rebuild).
//!
//! The scenario here is the one every long-lived system eventually meets: a
//! workload that *changes shape mid-run*. An event log serves point reads
//! by its full key (phase A — a hash of the key is unbeatable), then the
//! traffic shifts to by-timestamp slicing and retirement (phase B — the
//! hash must scan everything; a timestamp-rooted representation answers
//! with one lookup). A fixed representation is optimal for exactly one
//! phase; the adaptive one pays a migration at the shift and serves both.

use relic_autotune::Autotuner;
use relic_concurrent::ConcurrentRelation;
use relic_core::{MigrateError, OpError, SynthRelation};
use relic_decomp::{Decomposition, DsKind, EnumerateOptions};
use relic_spec::{Catalog, ColId, RelSpec, Tuple, Value};
use std::time::Instant;

/// Errors from an adaptive run: a relational operation failed, or a
/// migration did.
#[derive(Debug)]
pub enum AdaptiveError {
    /// A relational operation failed.
    Op(OpError),
    /// A representation migration failed.
    Migrate(MigrateError),
}

impl std::fmt::Display for AdaptiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptiveError::Op(e) => write!(f, "{e}"),
            AdaptiveError::Migrate(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AdaptiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdaptiveError::Op(e) => Some(e),
            AdaptiveError::Migrate(e) => Some(e),
        }
    }
}

impl From<OpError> for AdaptiveError {
    fn from(e: OpError) -> Self {
        AdaptiveError::Op(e)
    }
}

impl From<MigrateError> for AdaptiveError {
    fn from(e: MigrateError) -> Self {
        AdaptiveError::Migrate(e)
    }
}

/// A [`SynthRelation`] that periodically re-tunes its own representation to
/// the workload it has been serving.
///
/// The driver is deliberately simple: call [`tick`](AdaptiveRelation::tick)
/// after each logical operation; every `retune_every` ticks the relation's
/// recorded profile is handed to the autotuner, and the representation
/// migrates when the best candidate clears `min_improvement`. Each retune
/// (migrating or not) resets the profile, so recommendations always reflect
/// the *current* window — a phase shift stops being averaged against
/// history after one window.
#[derive(Debug)]
pub struct AdaptiveRelation {
    rel: SynthRelation,
    opts: EnumerateOptions,
    retune_every: usize,
    min_improvement: f64,
    since_retune: usize,
    migrations: usize,
}

impl AdaptiveRelation {
    /// Wraps a relation. `retune_every` is the cadence in ticks; `0`
    /// disables retuning entirely (the wrapper then behaves exactly like
    /// the fixed relation — the bench's control arm). `min_improvement` is
    /// the estimated-speedup margin a candidate must clear (see
    /// `Recommendation::should_migrate`); values around 1.5–2 damp churn.
    pub fn new(
        rel: SynthRelation,
        opts: EnumerateOptions,
        retune_every: usize,
        min_improvement: f64,
    ) -> Self {
        AdaptiveRelation {
            rel,
            opts,
            retune_every,
            min_improvement,
            since_retune: 0,
            migrations: 0,
        }
    }

    /// The wrapped relation.
    pub fn relation(&self) -> &SynthRelation {
        &self.rel
    }

    /// Mutable access to the wrapped relation (operations performed here
    /// are profiled as usual; remember to [`tick`](AdaptiveRelation::tick)).
    pub fn relation_mut(&mut self) -> &mut SynthRelation {
        &mut self.rel
    }

    /// Unwraps into the inner relation.
    pub fn into_inner(self) -> SynthRelation {
        self.rel
    }

    /// How many migrations have happened.
    pub fn migrations(&self) -> usize {
        self.migrations
    }

    /// Counts one operation; on cadence, re-tunes. Returns whether this
    /// tick migrated the representation.
    ///
    /// # Errors
    ///
    /// [`AdaptiveError::Migrate`] if a due migration failed (the relation
    /// itself is untouched — see [`SynthRelation::migrate_to`]).
    pub fn tick(&mut self) -> Result<bool, AdaptiveError> {
        if self.retune_every == 0 {
            return Ok(false);
        }
        self.since_retune += 1;
        if self.since_retune < self.retune_every {
            return Ok(false);
        }
        self.since_retune = 0;
        self.retune()
    }

    /// Forces a retune now: recommend on the current window, migrate if the
    /// margin is cleared, and reset the observation window either way.
    ///
    /// # Errors
    ///
    /// As for [`tick`](AdaptiveRelation::tick).
    pub fn retune(&mut self) -> Result<bool, AdaptiveError> {
        let spec = self.rel.spec().clone();
        let tuner = Autotuner::new(&spec).with_options(self.opts.clone());
        let migrated = match tuner.recommend(&self.rel) {
            Some(rec)
                if rec.should_migrate(self.min_improvement)
                    && rec.best.decomposition != *self.rel.decomposition() =>
            {
                self.rel.migrate_to(rec.best.decomposition.clone())?;
                self.migrations += 1;
                true
            }
            _ => false,
        };
        self.rel.reset_profile();
        Ok(migrated)
    }
}

// ---------------------------------------------------------------------------
// The phase-shift scenario.
// ---------------------------------------------------------------------------

/// Column handles for the event-log relation `events⟨host, ts, bytes⟩`.
#[derive(Debug, Clone, Copy)]
pub struct EventCols {
    /// Host id (half of the key).
    pub host: ColId,
    /// Timestamp slot (the other half).
    pub ts: ColId,
    /// Payload size.
    pub bytes: ColId,
}

/// The event-log catalog, columns and specification
/// (`host, ts → bytes`).
pub fn event_log_spec() -> (Catalog, EventCols, RelSpec) {
    let mut cat = Catalog::new();
    let cols = EventCols {
        host: cat.intern("host"),
        ts: cat.intern("ts"),
        bytes: cat.intern("bytes"),
    };
    let spec = RelSpec::new(cols.host | cols.ts | cols.bytes)
        .with_fd(cols.host | cols.ts, cols.bytes.set());
    (cat, cols, spec)
}

/// The phase-A-matched representation: one hash table over the full key.
/// Point reads cost an O(1) probe; *any* query that does not bind the whole
/// key must scan every entry — exactly the mismatch phase B exposes.
pub fn point_read_decomposition(cat: &mut Catalog) -> Decomposition {
    relic_decomp::parse(
        cat,
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let x : {} . {host,ts,bytes} = {host,ts} -[htable]-> u in x",
    )
    .expect("point-read decomposition parses")
}

/// The candidate palette the adaptive runs search over (hash tables and
/// ordered maps, two edges): small enough to rank in microseconds, rich
/// enough to contain both phases' winners.
pub fn phase_shift_options() -> EnumerateOptions {
    EnumerateOptions {
        max_edges: 2,
        structures: vec![DsKind::HashTable, DsKind::AvlTree],
        ..Default::default()
    }
}

/// What one phase-shift run did: wall-clock per phase, migration count, and
/// a checksum of delivered rows (so the timed work is observable).
#[derive(Debug, Clone, Copy)]
pub struct PhaseShiftReport {
    /// Nanoseconds spent serving phase A (point reads).
    pub phase_a_ns: u128,
    /// Nanoseconds spent serving phase B (by-ts slicing + retirement),
    /// *including* any migration triggered at the shift.
    pub phase_b_ns: u128,
    /// Representation migrations across the run.
    pub migrations: usize,
    /// Rows delivered across both phases.
    pub rows: u64,
}

/// Runs the phase-shift workload against `adapt` (pass `retune_every == 0`
/// for the fixed control arm):
///
/// 1. **Load**: `hosts × ts_per_host` events, bulk-loaded (untimed).
/// 2. **Phase A** (`phase_a_ops` ops): point reads `(host, ts) → bytes`,
///    striding over the key space.
/// 3. **Phase B** (`phase_b_ops` ops): by-timestamp slice queries
///    `ts → (host, bytes)`; every 8th op retires one slice (`remove` by
///    `ts`) and re-ingests it (`insert_many`), the log-rotation churn of
///    §6.2's daemons.
///
/// [`AdaptiveRelation::tick`] runs after every operation, so an armed run
/// re-tunes mid-phase-B once the recorded window is by-ts-heavy.
///
/// # Errors
///
/// Any operation or migration error, propagated (nothing panics on the hot
/// loop).
pub fn run_phase_shift(
    adapt: &mut AdaptiveRelation,
    cols: EventCols,
    hosts: i64,
    ts_per_host: i64,
    phase_a_ops: usize,
    phase_b_ops: usize,
) -> Result<PhaseShiftReport, AdaptiveError> {
    let event = |h: i64, t: i64| {
        Tuple::from_pairs([
            (cols.host, Value::from(h)),
            (cols.ts, Value::from(t)),
            (cols.bytes, Value::from((h * 31 + t) % 1400)),
        ])
    };
    let batch: Vec<Tuple> = (0..hosts)
        .flat_map(|h| (0..ts_per_host).map(move |t| event(h, t)))
        .collect();
    adapt.relation_mut().bulk_load(batch)?;
    adapt.relation().reset_profile();
    let mut rows = 0u64;
    // Phase A: point reads over the full key.
    let start = Instant::now();
    for i in 0..phase_a_ops {
        let pat =
            event((i as i64) % hosts, (i as i64 * 7) % ts_per_host).project(cols.host | cols.ts);
        adapt
            .relation()
            .query_for_each(&pat, cols.bytes.set(), |_| rows += 1)?;
        adapt.tick()?;
    }
    let phase_a_ns = start.elapsed().as_nanos();
    // Phase B: by-ts slices + retirement churn.
    let start = Instant::now();
    for i in 0..phase_b_ops {
        let t = (i as i64) % ts_per_host;
        let pat = Tuple::from_pairs([(cols.ts, Value::from(t))]);
        if i % 8 == 7 {
            // Retire the slice and re-ingest it (log rotation).
            let slice: Vec<Tuple> = adapt.relation().query_full(&pat)?;
            adapt.relation_mut().remove(&pat)?;
            rows += slice.len() as u64;
            adapt.relation_mut().insert_many(slice)?;
        } else {
            adapt
                .relation()
                .query_for_each(&pat, cols.host | cols.bytes, |_| rows += 1)?;
        }
        adapt.tick()?;
    }
    let phase_b_ns = start.elapsed().as_nanos();
    Ok(PhaseShiftReport {
        phase_a_ns,
        phase_b_ns,
        migrations: adapt.migrations(),
        rows,
    })
}

/// The concurrent phase-shift scenario: the same workload as
/// [`run_phase_shift`], but served by a sharded [`ConcurrentRelation`] whose
/// **read side goes through published snapshots** — phase A's point reads
/// and phase B's slice queries never take a shard lock, while the retirement
/// churn and the adaptive `recommend_and_migrate` epochs run on the write
/// side. Because snapshot reads record into the shards' shared workload
/// recorders, the autotuner sees the wait-free traffic exactly as if it had
/// been served under the locks — moving reads off the locks does not blind
/// the profile → recommend → migrate loop.
///
/// Pass `retune_every == 0` for the fixed control arm. Every
/// `retune_every` operations the armed run evaluates
/// [`ConcurrentRelation::recommend_and_migrate`] with `min_improvement`;
/// migrations are atomic epochs, so readers either keep the pre-migration
/// view or pick up the post-migration one — never a mix.
///
/// # Errors
///
/// Any operation or migration error, propagated.
#[allow(clippy::too_many_arguments)] // a bench-scenario driver: all knobs are scenario parameters
pub fn run_concurrent_phase_shift(
    rel: &ConcurrentRelation,
    cols: EventCols,
    hosts: i64,
    ts_per_host: i64,
    phase_a_ops: usize,
    phase_b_ops: usize,
    retune_every: usize,
    min_improvement: f64,
) -> Result<PhaseShiftReport, AdaptiveError> {
    let opts = phase_shift_options();
    let event = |h: i64, t: i64| {
        Tuple::from_pairs([
            (cols.host, Value::from(h)),
            (cols.ts, Value::from(t)),
            (cols.bytes, Value::from((h * 31 + t) % 1400)),
        ])
    };
    let batch: Vec<Tuple> = (0..hosts)
        .flat_map(|h| (0..ts_per_host).map(move |t| event(h, t)))
        .collect();
    rel.bulk_load(batch)?;
    rel.reset_profile();
    let mut handle = rel.read_handle();
    let mut rows = 0u64;
    let mut migrations = 0usize;
    let mut since_retune = 0usize;
    let mut tick =
        |rel: &ConcurrentRelation, migrations: &mut usize| -> Result<(), AdaptiveError> {
            if retune_every == 0 {
                return Ok(());
            }
            since_retune += 1;
            if since_retune >= retune_every {
                since_retune = 0;
                if rel.recommend_and_migrate(&opts, min_improvement)?.is_some() {
                    *migrations += 1;
                }
            }
            Ok(())
        };
    // Phase A: point reads over the full key, wait-free through the handle.
    let start = Instant::now();
    for i in 0..phase_a_ops {
        let pat =
            event((i as i64) % hosts, (i as i64 * 7) % ts_per_host).project(cols.host | cols.ts);
        handle.query_for_each(&pat, cols.bytes.set(), |_| rows += 1)?;
        tick(rel, &mut migrations)?;
    }
    let phase_a_ns = start.elapsed().as_nanos();
    // Phase B: by-ts slices (snapshot reads) + retirement churn (locked).
    let start = Instant::now();
    for i in 0..phase_b_ops {
        let t = (i as i64) % ts_per_host;
        let pat = Tuple::from_pairs([(cols.ts, Value::from(t))]);
        if i % 8 == 7 {
            // Retire the slice and re-ingest it (log rotation) — the write
            // side reads its own committed state under the locks.
            let slice = rel.query(&pat, cols.host | cols.ts | cols.bytes)?;
            rel.remove(&pat)?;
            rows += slice.len() as u64;
            rel.insert_many(slice)?;
        } else {
            handle.query_for_each(&pat, cols.host | cols.bytes, |_| rows += 1)?;
        }
        tick(rel, &mut migrations)?;
    }
    let phase_b_ns = start.elapsed().as_nanos();
    Ok(PhaseShiftReport {
        phase_a_ns,
        phase_b_ns,
        migrations,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(retune_every: usize) -> (EventCols, AdaptiveRelation) {
        let (mut cat, cols, spec) = event_log_spec();
        let d = point_read_decomposition(&mut cat);
        let rel = SynthRelation::new(&cat, spec, d).unwrap();
        (
            cols,
            AdaptiveRelation::new(rel, phase_shift_options(), retune_every, 1.5),
        )
    }

    #[test]
    fn fixed_arm_never_migrates() {
        let (cols, mut fixed) = arena(0);
        let report = run_phase_shift(&mut fixed, cols, 8, 16, 64, 64).unwrap();
        assert_eq!(report.migrations, 0);
        fixed.relation().validate().unwrap();
    }

    #[test]
    fn adaptive_arm_migrates_at_the_shift_and_agrees_with_fixed() {
        let (cols, mut fixed) = arena(0);
        let (_, mut adaptive) = arena(32);
        let fr = run_phase_shift(&mut fixed, cols, 8, 16, 96, 96).unwrap();
        let ar = run_phase_shift(&mut adaptive, cols, 8, 16, 96, 96).unwrap();
        assert!(ar.migrations >= 1, "phase B must trigger a migration");
        assert_eq!(ar.rows, fr.rows, "both arms deliver the same rows");
        assert_eq!(
            adaptive.relation().to_relation(),
            fixed.relation().to_relation(),
            "same final tuple set"
        );
        adaptive.relation().validate().unwrap();
        // The migrated representation is no longer the point-read hash.
        let (mut cat2, _, _) = event_log_spec();
        assert_ne!(
            adaptive.relation().decomposition(),
            &point_read_decomposition(&mut cat2)
        );
    }

    fn concurrent_arena() -> (EventCols, ConcurrentRelation) {
        let (mut cat, cols, spec) = event_log_spec();
        let d = point_read_decomposition(&mut cat);
        let rel = ConcurrentRelation::new(&cat, spec, d, cols.host.set(), 4).unwrap();
        (cols, rel)
    }

    #[test]
    fn concurrent_phase_shift_serves_reads_from_snapshots() {
        let (cols, fixed) = concurrent_arena();
        let (_, adaptive) = concurrent_arena();
        let fr = run_concurrent_phase_shift(&fixed, cols, 8, 16, 96, 96, 0, 1.5).unwrap();
        let ar = run_concurrent_phase_shift(&adaptive, cols, 8, 16, 96, 96, 32, 1.5).unwrap();
        assert_eq!(fr.migrations, 0, "control arm never migrates");
        assert!(
            ar.migrations >= 1,
            "snapshot-served traffic must still drive a migration"
        );
        assert_eq!(ar.rows, fr.rows, "both arms deliver the same rows");
        assert_eq!(
            adaptive.to_relation(),
            fixed.to_relation(),
            "same final tuple set"
        );
        adaptive.validate().unwrap();
        fixed.validate().unwrap();
        // The migrated relation's published views are post-migration and
        // uniform across shards.
        let view = adaptive.read_view();
        let d0 = view.shard(0).decomposition().clone();
        for i in 1..view.shard_count() {
            assert_eq!(view.shard(i).decomposition(), &d0, "no mixed view");
        }
        let (mut cat2, _, _) = event_log_spec();
        assert_ne!(&d0, &point_read_decomposition(&mut cat2));
    }

    #[test]
    fn retune_is_a_noop_on_an_empty_window() {
        let (_, mut a) = arena(1);
        assert!(!a.retune().unwrap(), "empty profile: nothing to recommend");
        assert_eq!(a.migrations(), 0);
    }
}
