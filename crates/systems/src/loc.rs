//! A non-comment line-of-code counter for regenerating Table 1.
//!
//! Table 1 compares the size of each original (hand-coded) module against
//! the size of the decomposition mapping plus the synthesized module. We
//! reproduce the same accounting over our Rust reimplementations: the
//! baseline and synthesized halves of each system module are delimited by
//! `// [name:begin]` / `// [name:end]` markers and counted with the same
//! rules the paper used (non-comment, non-blank lines).

/// Counts non-comment, non-blank lines of Rust-ish source. Handles `//` line
/// comments and (nested) `/* */` block comments; a line containing any code
/// outside comments counts.
pub fn count_loc(src: &str) -> usize {
    let mut depth = 0usize; // block-comment nesting
    let mut count = 0usize;
    for line in src.lines() {
        let mut code = false;
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if depth == 0 && i + 1 < bytes.len() && bytes[i] == b'/' && bytes[i + 1] == b'/' {
                break; // rest of line is a comment
            }
            if i + 1 < bytes.len() && bytes[i] == b'/' && bytes[i + 1] == b'*' {
                depth += 1;
                i += 2;
                continue;
            }
            if depth > 0 && i + 1 < bytes.len() && bytes[i] == b'*' && bytes[i + 1] == b'/' {
                depth = depth.saturating_sub(1);
                i += 2;
                continue;
            }
            if depth == 0 && !bytes[i].is_ascii_whitespace() {
                code = true;
            }
            i += 1;
        }
        if code {
            count += 1;
        }
    }
    count
}

/// Extracts the region delimited by `// [name:begin]` and `// [name:end]`.
///
/// # Panics
///
/// Panics if the markers are missing (the system modules always carry them).
pub fn region<'a>(src: &'a str, name: &str) -> &'a str {
    let begin = format!("// [{name}:begin]");
    let end = format!("// [{name}:end]");
    let start = src
        .find(&begin)
        .unwrap_or_else(|| panic!("missing marker {begin}"));
    let stop = src
        .find(&end)
        .unwrap_or_else(|| panic!("missing marker {end}"));
    &src[start + begin.len()..stop]
}

/// One row of Table 1: non-comment LoC of the hand-coded module vs. the
/// decomposition mapping + synthesized module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// System name.
    pub system: &'static str,
    /// LoC of the hand-coded (baseline) module.
    pub baseline_module: usize,
    /// LoC of the decomposition mapping (the let-notation source).
    pub decomposition: usize,
    /// LoC of the synthesized (relation-backed) module.
    pub synth_module: usize,
}

/// Computes all three Table 1 rows from the embedded module sources.
pub fn table1_rows() -> Vec<Table1Row> {
    let thttpd_src = include_str!("thttpd.rs");
    let ipcap_src = include_str!("ipcap.rs");
    let ztopo_src = include_str!("ztopo.rs");
    let mut cat = relic_spec::Catalog::new();
    let thttpd_d = crate::thttpd::default_decomposition(&mut cat);
    let mut cat2 = relic_spec::Catalog::new();
    let ipcap_d = crate::ipcap::default_decomposition(&mut cat2);
    let mut cat3 = relic_spec::Catalog::new();
    let ztopo_d = crate::ztopo::default_decomposition(&mut cat3);
    vec![
        Table1Row {
            system: "thttpd (mmap cache)",
            baseline_module: count_loc(region(thttpd_src, "baseline")),
            decomposition: count_loc(&thttpd_d.to_let_notation(&cat)),
            synth_module: count_loc(region(thttpd_src, "synth")),
        },
        Table1Row {
            system: "IpCap (flow table)",
            baseline_module: count_loc(region(ipcap_src, "baseline")),
            decomposition: count_loc(&ipcap_d.to_let_notation(&cat2)),
            synth_module: count_loc(region(ipcap_src, "synth")),
        },
        Table1Row {
            system: "ZTopo (tile cache)",
            baseline_module: count_loc(region(ztopo_src, "baseline")),
            decomposition: count_loc(&ztopo_d.to_let_notation(&cat3)),
            synth_module: count_loc(region(ztopo_src, "synth")),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_skip_comments_and_blanks() {
        let src =
            "\n// comment only\nlet x = 1; // trailing\n/* block\n   still block */\nlet y = 2;\n";
        assert_eq!(count_loc(src), 2);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */\ncode();\n";
        assert_eq!(count_loc(src), 1);
    }

    #[test]
    fn code_before_comment_counts() {
        assert_eq!(count_loc("foo(); /* tail comment"), 1);
        assert_eq!(count_loc("/* lead */ foo();"), 1);
    }

    #[test]
    fn region_extraction() {
        let src = "a\n// [x:begin]\ncode1\ncode2\n// [x:end]\nb";
        assert_eq!(count_loc(region(src, "x")), 2);
    }

    #[test]
    fn table1_has_three_rows_and_sane_shapes() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.baseline_module > 0, "{row:?}");
            assert!(row.synth_module > 0, "{row:?}");
            assert!(row.decomposition > 0, "{row:?}");
            // The decomposition mapping is tiny compared to either module —
            // the paper's Table 1 shows mappings of ~40-55 lines vs modules
            // of hundreds.
            assert!(row.decomposition < row.baseline_module, "{row:?}");
        }
        // ZTopo's baseline carries the manual double-structure maintenance;
        // its synthesized module should not be dramatically larger.
        let zt = &rows[2];
        assert!(zt.synth_module <= zt.baseline_module * 2, "{zt:?}");
    }
}
