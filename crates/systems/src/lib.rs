//! The three case-study systems of the paper's §6.2 — a web-server mmap
//! cache (thttpd), a network-flow accounting daemon (IpCap) and a map-tile
//! cache (ZTopo) — plus the workload generators and the non-comment
//! line-counter used to regenerate Table 1.
//!
//! Each system comes in two functionally equivalent flavours behind one
//! trait:
//!
//! * a **baseline** module, hand-coded the way the original C/C++ programs
//!   kept their data (open-coded maps plus manually maintained side
//!   structures and invariants), and
//! * a **synthesized** module, which delegates all data management to a
//!   [`relic_core::SynthRelation`] and a decomposition.
//!
//! The equivalence tests in each module and the `parity`/`table1` harnesses
//! in `relic-bench` reproduce the paper's claims: same observable behaviour,
//! comparable performance, and less hand-written code.
//!
//! Since the original inputs (live HTTP traffic, gateway packet captures,
//! USGS topo tiles, the NW-USA road network) are unavailable, every workload
//! here is generated deterministically from a seed — see DESIGN.md's
//! substitution table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod graph;
pub mod ipcap;
pub mod loc;
pub mod served;
pub mod thttpd;
pub mod zipf;
pub mod ztopo;
