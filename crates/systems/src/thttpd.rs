//! The thttpd `mmap()` cache (§6.2).
//!
//! thttpd caches file→memory mappings: a request for a file first consults
//! the cache; a hit reuses the existing mapping (refreshing its timestamp),
//! a miss creates one. When the cache grows past its high-water mark, a
//! cleanup pass removes mappings older than a threshold.
//!
//! The cache is the relation `maps⟨path, addr, size, stamp⟩` with
//! `path → addr, size, stamp` (and `addr → path, size, stamp`: mapped
//! addresses are unique).
//!
//! [`BaselineMmapCache`] is the hand-coded original (open-coded hash map +
//! manual sweep); [`SynthMmapCache`] delegates to a [`SynthRelation`].

use crate::zipf::Zipf;
use relic_concurrent::{ConcurrentBuildError, ConcurrentRelation, ReadHandle};
use relic_core::{OpError, SynthRelation};
use relic_decomp::Decomposition;
use relic_persist::{DurableRelation, GroupCommitPolicy, PersistError};
use relic_spec::{Catalog, ColId, Pattern, Pred, RelSpec, Tuple, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};

/// A cache request: fetch `path` at (logical) time `now`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Requested file path.
    pub path: String,
    /// Logical timestamp of the request.
    pub now: i64,
}

/// Generates a deterministic Zipf-popular request stream over `files`
/// distinct paths.
pub fn request_stream(requests: usize, files: usize, seed: u64) -> Vec<Request> {
    let mut z = Zipf::new(files, 1.0, seed);
    (0..requests)
        .map(|i| Request {
            path: format!("/www/site/file-{:05}.html", z.sample()),
            now: i as i64,
        })
        .collect()
}

/// Observable outcome of one request (used to check behavioural parity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The mapping existed.
    Hit,
    /// A new mapping was created.
    Miss,
}

/// The cache interface both implementations provide.
pub trait MmapCache {
    /// Serves one request, returning hit/miss.
    fn serve(&mut self, req: &Request) -> Outcome;
    /// Removes mappings with `stamp < cutoff`, returning how many were
    /// unmapped.
    fn cleanup(&mut self, cutoff: i64) -> usize;
    /// Number of live mappings.
    fn live(&self) -> usize;
}

/// Drives a request stream with periodic cleanups (every `sweep_every`
/// requests, dropping entries older than `max_age`); returns per-request
/// outcomes plus the total number of unmapped entries.
pub fn run_cache<C: MmapCache>(
    cache: &mut C,
    reqs: &[Request],
    sweep_every: usize,
    max_age: i64,
) -> (Vec<Outcome>, usize) {
    let mut outcomes = Vec::with_capacity(reqs.len());
    let mut unmapped = 0;
    for (i, r) in reqs.iter().enumerate() {
        outcomes.push(cache.serve(r));
        if sweep_every > 0 && (i + 1) % sweep_every == 0 {
            unmapped += cache.cleanup(r.now - max_age);
        }
    }
    (outcomes, unmapped)
}

// [baseline:begin]
/// Hand-coded mmap cache: a hash map keyed by path, swept linearly.
#[derive(Debug, Default)]
pub struct BaselineMmapCache {
    table: HashMap<String, (i64, i64, i64)>, // path -> (addr, size, stamp)
    next_addr: i64,
}

impl BaselineMmapCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        BaselineMmapCache::default()
    }
}

impl MmapCache for BaselineMmapCache {
    fn serve(&mut self, req: &Request) -> Outcome {
        if let Some(entry) = self.table.get_mut(&req.path) {
            entry.2 = req.now;
            return Outcome::Hit;
        }
        self.next_addr += 4096;
        let size = 1024 + (req.path.len() as i64) * 7;
        self.table
            .insert(req.path.clone(), (self.next_addr, size, req.now));
        Outcome::Miss
    }

    fn cleanup(&mut self, cutoff: i64) -> usize {
        let before = self.table.len();
        self.table.retain(|_, (_, _, stamp)| *stamp >= cutoff);
        before - self.table.len()
    }

    fn live(&self) -> usize {
        self.table.len()
    }
}
// [baseline:end]

/// Column handles for the mmap-cache relation.
#[derive(Debug, Clone, Copy)]
pub struct MmapCols {
    /// File path.
    pub path: ColId,
    /// Mapped address.
    pub addr: ColId,
    /// Mapping size.
    pub size: ColId,
    /// Last-used timestamp.
    pub stamp: ColId,
}

/// Creates the mmap-cache relation's catalog, columns and specification.
pub fn mmap_spec() -> (Catalog, MmapCols, RelSpec) {
    let mut cat = Catalog::new();
    let cols = MmapCols {
        path: cat.intern("path"),
        addr: cat.intern("addr"),
        size: cat.intern("size"),
        stamp: cat.intern("stamp"),
    };
    let all = cols.path | cols.addr | cols.size | cols.stamp;
    let spec = RelSpec::new(all)
        .with_fd(cols.path.into(), cols.addr | cols.size | cols.stamp)
        .with_fd(cols.addr.into(), cols.path | cols.size | cols.stamp);
    (cat, cols, spec)
}

/// The default decomposition: a hash table from path to a unit holding the
/// mapping; the sweep is a scan, as in the original.
pub fn default_decomposition(cat: &mut Catalog) -> Decomposition {
    relic_decomp::parse(
        cat,
        "let w : {path} . {addr,size,stamp} = unit {addr,size,stamp} in
         let x : {} . {path,addr,size,stamp} = {path} -[htable]-> w in x",
    )
    .expect("default decomposition parses")
}

/// An age-indexed decomposition: the path hash joined with an ordered stamp
/// index sharing the mapping leaf. Point lookups stay O(1); the cleanup
/// sweep (`stamp < cutoff`) becomes an ordered seek over exactly the stale
/// run (`qrange`) instead of a full scan — a representation change the
/// client code never sees.
pub fn ordered_decomposition(cat: &mut Catalog) -> Decomposition {
    relic_decomp::parse(
        cat,
        "let w : {path,stamp} . {addr,size} = unit {addr,size} in
         let y : {path} . {stamp,addr,size} = {stamp} -[vec]-> w in
         let z : {stamp} . {path,addr,size} = {path} -[htable]-> w in
         let x : {} . {path,addr,size,stamp} =
           ({path} -[htable]-> y) join ({stamp} -[avl]-> z) in x",
    )
    .expect("ordered decomposition parses")
}

// [synth:begin]
/// The synthesized mmap cache.
#[derive(Debug)]
pub struct SynthMmapCache {
    rel: SynthRelation,
    cols: MmapCols,
    next_addr: i64,
}

impl SynthMmapCache {
    /// Creates a cache over any adequate decomposition of the relation.
    ///
    /// # Errors
    ///
    /// Propagates adequacy failures.
    pub fn new(
        cat: &Catalog,
        cols: MmapCols,
        spec: &RelSpec,
        d: Decomposition,
    ) -> Result<Self, relic_core::BuildError> {
        let mut rel = SynthRelation::new(cat, spec.clone(), d)?;
        rel.set_fd_checking(false);
        Ok(SynthMmapCache {
            rel,
            cols,
            next_addr: 0,
        })
    }

    /// Access to the underlying relation (for validation in tests).
    pub fn relation(&self) -> &SynthRelation {
        &self.rel
    }

    /// Warm-starts the cache from saved `(path, addr, size, stamp)`
    /// mappings — the restart/replay path — in one bulk load instead of one
    /// full insert walk per mapping. The address allocator resumes past the
    /// highest preloaded address. Returns the number of mappings loaded.
    ///
    /// # Errors
    ///
    /// As for [`SynthRelation::bulk_load`] (e.g. two mappings for one path).
    pub fn preload<I: IntoIterator<Item = (String, i64, i64, i64)>>(
        &mut self,
        mappings: I,
    ) -> Result<usize, relic_core::OpError> {
        let cols = self.cols;
        let mut max_addr = self.next_addr;
        let batch: Vec<Tuple> = mappings
            .into_iter()
            .map(|(path, addr, size, stamp)| {
                max_addr = max_addr.max(addr);
                Tuple::from_pairs([
                    (cols.path, Value::from(path.as_str())),
                    (cols.addr, Value::from(addr)),
                    (cols.size, Value::from(size)),
                    (cols.stamp, Value::from(stamp)),
                ])
            })
            .collect();
        let res = self.rel.bulk_load(batch);
        // Even on a partial load (the accepted prefix stays inserted), the
        // allocator must resume past every address the snapshot mentioned —
        // a later miss handing out an already-preloaded address would alias
        // two paths to one mapping.
        self.next_addr = max_addr;
        res
    }
}

impl MmapCache for SynthMmapCache {
    fn serve(&mut self, req: &Request) -> Outcome {
        let key = Tuple::from_pairs([(self.cols.path, Value::from(req.path.as_str()))]);
        if self.rel.contains_matching(&key).expect("in-relation query") {
            self.rel
                .update(
                    &key,
                    &Tuple::from_pairs([(self.cols.stamp, Value::from(req.now))]),
                )
                .expect("touch existing mapping");
            return Outcome::Hit;
        }
        self.next_addr += 4096;
        let size = 1024 + (req.path.len() as i64) * 7;
        self.rel
            .insert(key.merge(&Tuple::from_pairs([
                (self.cols.addr, Value::from(self.next_addr)),
                (self.cols.size, Value::from(size)),
                (self.cols.stamp, Value::from(req.now)),
            ])))
            .expect("new mapping");
        Outcome::Miss
    }

    fn cleanup(&mut self, cutoff: i64) -> usize {
        // The paper's description of this module — "removes those older
        // than a certain threshold" — is one predicate removal. With an
        // ordered decomposition (e.g. a stamp index) the planner seeks the
        // stale run instead of scanning.
        let stale = Pattern::new().with(self.cols.stamp, Pred::Lt(Value::from(cutoff)));
        self.rel.remove_where(&stale).expect("sweep stale mappings")
    }

    fn live(&self) -> usize {
        self.rel.len()
    }
}
// [synth:end]

// ---------------------------------------------------------------------------
// Concurrent: the sharded mmap cache with a wait-free hit check.
// ---------------------------------------------------------------------------

/// The concurrent mmap cache: a [`ConcurrentRelation`] partitioned by
/// `path`, with the serving loop's **read side** — the hit check that runs
/// on every single request — performed wait-free against published
/// snapshots instead of taking a shard lock per request.
///
/// Only a miss (insert) or a hit's stamp refresh (update) touches a lock,
/// and only the one shard owning the path. The cleanup sweep is the usual
/// predicate removal across shards.
#[derive(Debug)]
pub struct ConcurrentMmapCache {
    rel: ConcurrentRelation,
    cols: MmapCols,
    next_addr: AtomicI64,
}

impl ConcurrentMmapCache {
    /// Creates a sharded cache over any adequate decomposition of the
    /// relation, partitioned by `path` into `shards` partitions.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::new`].
    pub fn new(
        cat: &Catalog,
        cols: MmapCols,
        spec: &RelSpec,
        d: Decomposition,
        shards: usize,
    ) -> Result<Self, ConcurrentBuildError> {
        let rel = ConcurrentRelation::new(cat, spec.clone(), d, cols.path.set(), shards)?;
        Ok(ConcurrentMmapCache {
            rel,
            cols,
            next_addr: AtomicI64::new(0),
        })
    }

    /// The underlying relation (for validation in tests).
    pub fn relation(&self) -> &ConcurrentRelation {
        &self.rel
    }

    /// A cached wait-free read handle for a serving thread.
    pub fn read_handle(&self) -> ReadHandle<'_> {
        self.rel.read_handle()
    }

    /// Serves one request through `handle`: the hit check is a wait-free
    /// snapshot probe (pinned by `path`, one shard, no lock); only the
    /// outcome's mutation — stamp refresh or new mapping — takes the owning
    /// shard's lock.
    ///
    /// Safe under concurrent serving threads: the snapshot probe is only a
    /// fast path. A confirmed hit refreshes the stamp through the locked
    /// update; if the mapping vanished between probe and update (a
    /// concurrent [`cleanup`](ConcurrentMmapCache::cleanup)), or the probe
    /// missed, the decide-and-mutate runs as one atomic read-modify-write
    /// inside the owning partition's critical section — two threads racing
    /// on the same new path produce exactly one mapping (one `Miss`, one
    /// `Hit`), never an FD conflict.
    ///
    /// # Errors
    ///
    /// Any relational-operation failure of the underlying store — surfaced
    /// typed, so a serving thread can log and drop one request instead of
    /// panicking the whole server.
    pub fn serve(&self, handle: &mut ReadHandle<'_>, req: &Request) -> Result<Outcome, OpError> {
        let cols = self.cols;
        let key = Tuple::from_pairs([(cols.path, Value::from(req.path.as_str()))]);
        let stamp = Tuple::from_pairs([(cols.stamp, Value::from(req.now))]);
        if handle.contains_matching(&key)? && self.rel.update(&key, &stamp)? {
            return Ok(Outcome::Hit);
        }
        // Probe missed (or the mapping vanished meanwhile): create or
        // refresh atomically in the partition.
        let addr = self.next_addr.fetch_add(4096, Ordering::Relaxed) + 4096;
        let size = 1024 + (req.path.len() as i64) * 7;
        self.rel.with_partition_mut(&key, |shard| {
            if shard.update(&key, &stamp)? {
                // Another serving thread mapped the path first.
                return Ok(Outcome::Hit);
            }
            shard.insert(key.merge(&Tuple::from_pairs([
                (cols.addr, Value::from(addr)),
                (cols.size, Value::from(size)),
                (cols.stamp, Value::from(req.now)),
            ])))?;
            Ok(Outcome::Miss)
        })
    }

    /// Removes mappings with `stamp < cutoff`, returning how many were
    /// unmapped (the sweep is a cross-shard predicate removal).
    ///
    /// # Errors
    ///
    /// Any relational-operation failure of the underlying store.
    pub fn cleanup(&self, cutoff: i64) -> Result<usize, OpError> {
        let stale = Pattern::new().with(self.cols.stamp, Pred::Lt(Value::from(cutoff)));
        self.rel.remove_where(&stale)
    }

    /// Number of live mappings in the published state (wait-free).
    pub fn live(&self) -> usize {
        self.rel.read_view().len()
    }
}

/// Drives a request stream against a [`ConcurrentMmapCache`] with periodic
/// cleanups — the concurrent analog of [`run_cache`], its hit checks served
/// from snapshots through one cached handle. Returns per-request outcomes
/// plus the total number of unmapped entries.
///
/// # Errors
///
/// The first serve or cleanup failure.
pub fn run_concurrent_cache(
    cache: &ConcurrentMmapCache,
    reqs: &[Request],
    sweep_every: usize,
    max_age: i64,
) -> Result<(Vec<Outcome>, usize), OpError> {
    let mut handle = cache.read_handle();
    let mut outcomes = Vec::with_capacity(reqs.len());
    let mut unmapped = 0;
    for (i, r) in reqs.iter().enumerate() {
        outcomes.push(cache.serve(&mut handle, r)?);
        if sweep_every > 0 && (i + 1) % sweep_every == 0 {
            unmapped += cache.cleanup(r.now - max_age)?;
        }
    }
    Ok((outcomes, unmapped))
}

// ---------------------------------------------------------------------------
// Durable: the restartable mmap cache (serve → kill → recover → serve).
// ---------------------------------------------------------------------------

/// The durable mmap cache: a [`DurableRelation`] partitioned by `path`.
/// Committed mappings survive a server restart — a warm cache comes back
/// warm, instead of re-mapping the whole working set from scratch.
///
/// Misses insert durably; a hit's stamp refresh is a logged remove +
/// insert inside the owning partition (the log's record kinds); the
/// cleanup sweep collects stale paths from a wait-free snapshot and
/// removes them as one logged `remove_many`.
#[derive(Debug)]
pub struct DurableMmapCache {
    rel: DurableRelation,
    cols: MmapCols,
    next_addr: AtomicI64,
}

impl DurableMmapCache {
    /// Creates a fresh durable cache in `dir` (discarding any previous
    /// state), partitioned by `path` into `shards`.
    ///
    /// # Errors
    ///
    /// As for [`DurableRelation::create`].
    pub fn create(
        dir: &std::path::Path,
        shards: usize,
        policy: GroupCommitPolicy,
    ) -> Result<Self, PersistError> {
        let (mut cat, cols, spec) = mmap_spec();
        let d = default_decomposition(&mut cat);
        let rel =
            DurableRelation::create(dir, &cat, spec, d, cols.path.set(), shards, true, policy)?;
        Ok(DurableMmapCache {
            rel,
            cols,
            next_addr: AtomicI64::new(0),
        })
    }

    /// Recovers the cache stored in `dir`. The address allocator resumes
    /// past the highest recovered address, so re-mapped files never
    /// collide with surviving mappings (`addr` is functionally unique).
    ///
    /// # Errors
    ///
    /// As for [`DurableRelation::open`].
    pub fn open(dir: &std::path::Path, policy: GroupCommitPolicy) -> Result<Self, PersistError> {
        let rel = DurableRelation::open(dir, policy)?;
        let cat = rel.catalog();
        let cols = MmapCols {
            path: cat.col("path").expect("recovered catalog has `path`"),
            addr: cat.col("addr").expect("recovered catalog has `addr`"),
            size: cat.col("size").expect("recovered catalog has `size`"),
            stamp: cat.col("stamp").expect("recovered catalog has `stamp`"),
        };
        let max_addr = rel
            .read_view()
            .to_relation()
            .iter()
            .filter_map(|t| t.get(cols.addr).and_then(Value::as_int))
            .max()
            .unwrap_or(0);
        Ok(DurableMmapCache {
            rel,
            cols,
            next_addr: AtomicI64::new(max_addr),
        })
    }

    /// The underlying durable relation (validation, checkpoint control).
    pub fn relation(&self) -> &DurableRelation {
        &self.rel
    }

    /// Serves one request durably: the decide-and-mutate runs as one
    /// logged read-modify-write inside the partition owning the path.
    ///
    /// # Errors
    ///
    /// Any relational or log failure of the underlying store.
    pub fn serve(&self, req: &Request) -> Result<Outcome, PersistError> {
        let cols = self.cols;
        let key = Tuple::from_pairs([(cols.path, Value::from(req.path.as_str()))]);
        let addr_candidate = self.next_addr.fetch_add(4096, Ordering::Relaxed) + 4096;
        let size = 1024 + (req.path.len() as i64) * 7;
        self.rel
            .with_partition_mut(&key, |p| {
                match p.query(&key, cols.addr | cols.size)?.first() {
                    Some(t) => {
                        // Hit: refresh the stamp, keeping the mapping.
                        let addr = t
                            .get(cols.addr)
                            .and_then(Value::as_int)
                            .ok_or(OpError::MalformedRow { col: cols.addr })?;
                        let size = t
                            .get(cols.size)
                            .and_then(Value::as_int)
                            .ok_or(OpError::MalformedRow { col: cols.size })?;
                        p.remove(&key)?;
                        p.insert(key.merge(&Tuple::from_pairs([
                            (cols.addr, Value::from(addr)),
                            (cols.size, Value::from(size)),
                            (cols.stamp, Value::from(req.now)),
                        ])))?;
                        Ok(Outcome::Hit)
                    }
                    None => {
                        p.insert(key.merge(&Tuple::from_pairs([
                            (cols.addr, Value::from(addr_candidate)),
                            (cols.size, Value::from(size)),
                            (cols.stamp, Value::from(req.now)),
                        ])))?;
                        Ok(Outcome::Miss)
                    }
                }
            })?
            .map_err(PersistError::Op)
    }

    /// Removes mappings with `stamp < cutoff`, durably: stale paths are
    /// collected from a wait-free snapshot, then removed as one logged
    /// `remove_many` of pinned path patterns. Returns how many were
    /// unmapped.
    ///
    /// # Errors
    ///
    /// As for [`DurableRelation::remove_many`].
    pub fn cleanup(&self, cutoff: i64) -> Result<usize, PersistError> {
        let cols = self.cols;
        let stale = Pattern::new().with(cols.stamp, Pred::Lt(Value::from(cutoff)));
        let victims = self
            .rel
            .read_view()
            .query_where(&stale, cols.path.set())
            .map_err(PersistError::Op)?;
        if victims.is_empty() {
            return Ok(0);
        }
        self.rel.remove_many(&victims)
    }

    /// Group-commits the log.
    ///
    /// # Errors
    ///
    /// As for [`DurableRelation::commit`].
    pub fn commit(&self) -> Result<u64, PersistError> {
        self.rel.commit()
    }

    /// Number of live mappings in the published state (wait-free).
    pub fn live(&self) -> usize {
        self.rel.read_view().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_skewed() {
        let a = request_stream(500, 50, 3);
        let b = request_stream(500, 50, 3);
        assert_eq!(a, b);
        // The hottest file should recur.
        let hot = a.iter().filter(|r| r.path.contains("file-00000")).count();
        assert!(hot > 10, "hot file appeared {hot} times");
    }

    #[test]
    fn baseline_and_synth_agree() {
        let reqs = request_stream(800, 40, 21);
        let mut base = BaselineMmapCache::new();
        let (mut cat, cols, spec) = mmap_spec();
        let d = default_decomposition(&mut cat);
        let mut synth = SynthMmapCache::new(&cat, cols, &spec, d).unwrap();
        let (o1, u1) = run_cache(&mut base, &reqs, 100, 150);
        let (o2, u2) = run_cache(&mut synth, &reqs, 100, 150);
        assert_eq!(o1, o2);
        assert_eq!(u1, u2);
        assert_eq!(base.live(), synth.live());
        synth.relation().validate().unwrap();
    }

    #[test]
    fn ordered_decomposition_agrees_and_seeks() {
        let reqs = request_stream(600, 32, 5);
        let mut base = BaselineMmapCache::new();
        let (mut cat, cols, spec) = mmap_spec();
        let d = ordered_decomposition(&mut cat);
        let mut synth = SynthMmapCache::new(&cat, cols, &spec, d).unwrap();
        // The stale-sweep pattern plans to an ordered seek on this layout.
        let stale = Pattern::new().with(cols.stamp, Pred::Lt(Value::from(0)));
        let plan = synth.relation().plan_for_where(&stale, cat.all()).unwrap();
        assert!(plan.contains("qrange"), "{plan}");
        let (o1, u1) = run_cache(&mut base, &reqs, 80, 120);
        let (o2, u2) = run_cache(&mut synth, &reqs, 80, 120);
        assert_eq!(o1, o2);
        assert_eq!(u1, u2);
        assert_eq!(base.live(), synth.live());
        synth.relation().validate().unwrap();
    }

    #[test]
    fn concurrent_cache_agrees_with_baseline() {
        let reqs = request_stream(700, 36, 29);
        let mut base = BaselineMmapCache::new();
        let (mut cat, cols, spec) = mmap_spec();
        let d = default_decomposition(&mut cat);
        let synth = ConcurrentMmapCache::new(&cat, cols, &spec, d, 4).unwrap();
        let (o1, u1) = run_cache(&mut base, &reqs, 100, 150);
        let (o2, u2) = run_concurrent_cache(&synth, &reqs, 100, 150).unwrap();
        assert_eq!(o1, o2, "hit/miss stream must match the baseline");
        assert_eq!(u1, u2, "sweeps must unmap the same entries");
        assert_eq!(base.live(), synth.live());
        synth.relation().validate().unwrap();
    }

    #[test]
    fn concurrent_cache_hit_check_reads_while_writers_run() {
        // Readers poll the snapshot state from other threads while the
        // serving thread mutates: no torn reads, counts only grow within a
        // request burst (no cleanup here).
        let reqs = request_stream(400, 24, 31);
        let (mut cat, cols, spec) = mmap_spec();
        let d = default_decomposition(&mut cat);
        let synth = &ConcurrentMmapCache::new(&cat, cols, &spec, d, 4).unwrap();
        std::thread::scope(|s| {
            let serve = s.spawn(move || {
                let mut handle = synth.read_handle();
                for r in &reqs {
                    synth.serve(&mut handle, r).unwrap();
                }
            });
            for _ in 0..2 {
                s.spawn(move || {
                    let mut last = 0usize;
                    let mut handle = synth.read_handle();
                    for _ in 0..200 {
                        let n = handle.len();
                        assert!(n >= last, "live mappings only grow in this run");
                        last = n;
                    }
                });
            }
            serve.join().unwrap();
        });
        synth.relation().validate().unwrap();
    }

    #[test]
    fn cleanup_removes_only_stale() {
        let (mut cat, cols, spec) = mmap_spec();
        let d = default_decomposition(&mut cat);
        let mut synth = SynthMmapCache::new(&cat, cols, &spec, d).unwrap();
        for (i, path) in ["/a", "/b", "/c"].iter().enumerate() {
            synth.serve(&Request {
                path: path.to_string(),
                now: i as i64 * 10,
            });
        }
        assert_eq!(synth.cleanup(15), 2); // /a (0) and /b (10) are stale
        assert_eq!(synth.live(), 1);
        synth.relation().validate().unwrap();
    }

    #[test]
    fn preload_warm_starts_like_served_traffic() {
        let (mut cat, cols, spec) = mmap_spec();
        let d = ordered_decomposition(&mut cat);
        let mut warm = SynthMmapCache::new(&cat, cols, &spec, d.clone()).unwrap();
        let n = warm
            .preload((0..50).map(|i| (format!("/f{i:03}"), 4096 * (i + 1), 1024, i)))
            .unwrap();
        assert_eq!(n, 50);
        assert_eq!(warm.live(), 50);
        warm.relation().validate().unwrap();
        // A preloaded path is a hit; a new path allocates past the highest
        // preloaded address.
        assert_eq!(
            warm.serve(&Request {
                path: "/f007".into(),
                now: 100
            }),
            Outcome::Hit
        );
        assert_eq!(
            warm.serve(&Request {
                path: "/new".into(),
                now: 101
            }),
            Outcome::Miss
        );
        // Sweeping behaves identically to a cache that served the traffic:
        // stamps 0..40 are stale except /f007, refreshed by its hit.
        assert_eq!(warm.cleanup(40), 39);
        warm.relation().validate().unwrap();
    }

    #[test]
    fn hits_refresh_stamps() {
        let (mut cat, cols, spec) = mmap_spec();
        let d = default_decomposition(&mut cat);
        let mut synth = SynthMmapCache::new(&cat, cols, &spec, d).unwrap();
        synth.serve(&Request {
            path: "/hot".into(),
            now: 0,
        });
        assert_eq!(
            synth.serve(&Request {
                path: "/hot".into(),
                now: 100
            }),
            Outcome::Hit
        );
        // Refreshed: a cleanup at cutoff 50 keeps it.
        assert_eq!(synth.cleanup(50), 0);
        assert_eq!(synth.live(), 1);
    }

    /// The restartable server scenario: serve → kill → recover → serve.
    /// A warm cache comes back warm (committed mappings Hit after the
    /// restart), uncommitted mappings vanish, addresses never collide, and
    /// a durable cleanup stays cleaned up across another restart.
    #[test]
    fn durable_cache_survives_a_crash_warm() {
        let dir = std::env::temp_dir().join(format!("relic_thttpd_crash_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reqs = request_stream(400, 60, 0xD00D);
        let committed_at = 300;
        let (live_before, outcomes_before) = {
            let cache = DurableMmapCache::create(&dir, 4, GroupCommitPolicy::manual()).unwrap();
            let outcomes: Vec<Outcome> = reqs[..committed_at]
                .iter()
                .map(|r| cache.serve(r).unwrap())
                .collect();
            cache.commit().unwrap();
            let committed_state = cache.relation().to_relation();
            // An uncommitted tail: mappings the crash must forget.
            for r in &reqs[committed_at..350] {
                cache.serve(r).unwrap();
            }
            (committed_state, outcomes)
        };
        let _ = outcomes_before;
        let cache = DurableMmapCache::open(&dir, GroupCommitPolicy::manual()).unwrap();
        assert_eq!(
            cache.relation().to_relation(),
            live_before,
            "recovery must reproduce exactly the committed cache"
        );
        // Warm restart: every committed path is a Hit, and re-serving a
        // brand-new path allocates an address that collides with nothing.
        let warm = cache
            .serve(&Request {
                path: reqs[0].path.clone(),
                now: 10_000,
            })
            .unwrap();
        assert_eq!(warm, Outcome::Hit, "a committed mapping must survive warm");
        cache
            .serve(&Request {
                path: "/www/site/brand-new.html".into(),
                now: 10_001,
            })
            .unwrap();
        cache.relation().relation().validate().unwrap();
        let mut addrs: Vec<i64> = cache
            .relation()
            .to_relation()
            .iter()
            .map(|t| {
                t.get(cache.cols.addr)
                    .and_then(Value::as_int)
                    .expect("addr column")
            })
            .collect();
        addrs.sort_unstable();
        let unique = addrs.len();
        addrs.dedup();
        assert_eq!(addrs.len(), unique, "recovered allocator reused an address");
        // A durable cleanup survives the next restart too.
        cache.cleanup(10_000).unwrap();
        assert_eq!(cache.live(), 2, "only the two post-restart touches remain");
        cache.commit().unwrap();
        drop(cache);
        let cache = DurableMmapCache::open(&dir, GroupCommitPolicy::manual()).unwrap();
        assert_eq!(cache.live(), 2, "the sweep must persist across restart");
        cache.relation().relation().validate().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
