//! The directed-graph benchmark of §6.1 and its synthetic road network.
//!
//! The paper reads "the road network of the northwestern USA" (1.2M nodes,
//! 2.8M edges) and measures, per decomposition of the relation
//! `edges⟨src, dst, weight⟩` with `src, dst → weight`:
//!
//! * **F** — construct the edge relation + forward DFS over the whole graph,
//! * **F+B** — F plus a backward DFS (predecessor queries),
//! * **F+B+D** — F+B plus deleting every edge one by one.
//!
//! The original dataset is not distributed with this repository, so
//! [`road_network`] generates a deterministic synthetic stand-in: a
//! `nx × ny` grid (streets) with seeded diagonal shortcuts (highways) and
//! integer weights — a sparse directed graph with comparable in/out-degree
//! structure at configurable scale.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relic_core::SynthRelation;
use relic_decomp::Decomposition;
use relic_spec::{Catalog, ColId, RelSpec, Tuple, Value};

/// A directed weighted graph workload.
#[derive(Debug, Clone)]
pub struct GraphWorkload {
    /// Edges as `(src, dst, weight)` triples.
    pub edges: Vec<(i64, i64, i64)>,
    /// Number of nodes (ids are `0..nodes`).
    pub nodes: usize,
}

/// Generates the synthetic road network: an `nx × ny` 4-connected grid with
/// one-way streets in both directions, plus `shortcuts` random long-range
/// edges. Deterministic in `seed`.
pub fn road_network(nx: usize, ny: usize, shortcuts: usize, seed: u64) -> GraphWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let id = |x: usize, y: usize| (y * nx + x) as i64;
    let mut edges = Vec::new();
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                edges.push((id(x, y), id(x + 1, y), rng.gen_range(1..=9)));
                edges.push((id(x + 1, y), id(x, y), rng.gen_range(1..=9)));
            }
            if y + 1 < ny {
                edges.push((id(x, y), id(x, y + 1), rng.gen_range(1..=9)));
                edges.push((id(x, y + 1), id(x, y), rng.gen_range(1..=9)));
            }
        }
    }
    let n = nx * ny;
    let mut seen: std::collections::HashSet<(i64, i64)> =
        edges.iter().map(|&(a, b, _)| (a, b)).collect();
    let mut added = 0;
    while added < shortcuts {
        let a = rng.gen_range(0..n) as i64;
        let b = rng.gen_range(0..n) as i64;
        if a != b && seen.insert((a, b)) {
            edges.push((a, b, rng.gen_range(10..=99)));
            added += 1;
        }
    }
    GraphWorkload { edges, nodes: n }
}

/// Column handles for the edge relation.
#[derive(Debug, Clone, Copy)]
pub struct GraphCols {
    /// Source node id.
    pub src: ColId,
    /// Destination node id.
    pub dst: ColId,
    /// Edge weight.
    pub weight: ColId,
}

/// Creates the edge relation's catalog, columns, and specification.
pub fn graph_spec() -> (Catalog, GraphCols, RelSpec) {
    let mut cat = Catalog::new();
    let cols = GraphCols {
        src: cat.intern("src"),
        dst: cat.intern("dst"),
        weight: cat.intern("weight"),
    };
    let spec = RelSpec::new(cols.src | cols.dst | cols.weight)
        .with_fd(cols.src | cols.dst, cols.weight.into());
    (cat, cols, spec)
}

/// The graph benchmark driver: a synthesized edge relation plus the DFS /
/// deletion clients from the paper's §6.1 listing.
#[derive(Debug)]
pub struct GraphBench {
    /// The synthesized edge relation.
    pub rel: SynthRelation,
    cols: GraphCols,
    workload: GraphWorkload,
}

impl GraphBench {
    /// Builds the edge relation for a decomposition, inserting every edge.
    /// FD checking is disabled (the generator produces no duplicates), as in
    /// the paper's generated code.
    ///
    /// # Errors
    ///
    /// Propagates adequacy failures from [`SynthRelation::new`].
    pub fn build(
        cat: &Catalog,
        cols: GraphCols,
        spec: &RelSpec,
        d: Decomposition,
        workload: &GraphWorkload,
    ) -> Result<Self, relic_core::BuildError> {
        let mut rel = SynthRelation::new(cat, spec.clone(), d)?;
        rel.set_fd_checking(false);
        let mut bench = GraphBench {
            rel,
            cols,
            workload: workload.clone(),
        };
        bench.populate();
        Ok(bench)
    }

    fn populate(&mut self) {
        // The construction phase is a pure ingest: one bulk load sorts the
        // edge batch into the decomposition's key order and walks each
        // key-group once, instead of paying the full per-tuple insert path
        // 2.8M times at the paper's scale.
        let cols = self.cols;
        let batch = self.workload.edges.iter().map(|&(s, t, w)| {
            Tuple::from_pairs([
                (cols.src, Value::from(s)),
                (cols.dst, Value::from(t)),
                (cols.weight, Value::from(w)),
            ])
        });
        let n = self
            .rel
            .bulk_load(batch)
            .expect("workload edges are unique");
        debug_assert_eq!(n, self.workload.edges.len());
    }

    /// Forward DFS from every unvisited node (whole-graph traversal).
    /// Returns the number of visited nodes as a checksum.
    pub fn dfs_forward(&self) -> usize {
        self.dfs(self.cols.src, self.cols.dst)
    }

    /// Backward DFS (predecessor traversal).
    pub fn dfs_backward(&self) -> usize {
        self.dfs(self.cols.dst, self.cols.src)
    }

    /// The §6.1 DFS client: a stack of node ids, a visited set, and a
    /// neighbor query per node — `query(edges, ⟨from: v⟩, {to})`.
    fn dfs(&self, from: ColId, to: ColId) -> usize {
        let mut visited = vec![false; self.workload.nodes];
        let mut count = 0usize;
        let mut stack: Vec<i64> = Vec::new();
        for v0 in 0..self.workload.nodes as i64 {
            if visited[v0 as usize] {
                continue;
            }
            stack.push(v0);
            while let Some(v) = stack.pop() {
                if std::mem::replace(&mut visited[v as usize], true) {
                    continue;
                }
                count += 1;
                let pat = Tuple::from_pairs([(from, Value::from(v))]);
                self.rel
                    .query_for_each(&pat, to.into(), |t| {
                        let n = t.get(to).and_then(Value::as_int).expect("node id");
                        if !visited[n as usize] {
                            stack.push(n);
                        }
                    })
                    .expect("in-relation query");
            }
        }
        count
    }

    /// Deletes every edge, one pattern per edge (the benchmark's D phase),
    /// through the amortized batch-removal path: the `{src,dst}` cut is
    /// computed once for the whole sequence instead of once per edge.
    pub fn delete_all_edges(&mut self) {
        let pats: Vec<Tuple> = self
            .workload
            .edges
            .iter()
            .map(|&(s, t, _)| {
                Tuple::from_pairs([
                    (self.cols.src, Value::from(s)),
                    (self.cols.dst, Value::from(t)),
                ])
            })
            .collect();
        self.rel
            .remove_many(pats.iter())
            .expect("pattern columns are in the relation");
    }

    /// Number of edges currently stored.
    pub fn edge_count(&self) -> usize {
        self.rel.len()
    }
}

/// A Zipf-skewed random edge workload (used by ablation benches where grid
/// regularity would hide data-structure effects).
pub fn skewed_graph(nodes: usize, edges: usize, seed: u64) -> GraphWorkload {
    let mut z = Zipf::new(nodes, 0.8, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
    let mut set = std::collections::HashSet::new();
    let mut out = Vec::new();
    while out.len() < edges {
        let a = z.sample() as i64;
        let b = z.sample() as i64;
        if a != b && set.insert((a, b)) {
            out.push((a, b, rng.gen_range(1..=9)));
        }
    }
    GraphWorkload { edges: out, nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relic_decomp::parse;

    fn chain_decomp(cat: &mut Catalog) -> Decomposition {
        parse(
            cat,
            "let z : {src,dst} . {weight} = unit {weight} in
             let y : {src} . {dst,weight} = {dst} -[htable]-> z in
             let x : {} . {src,dst,weight} = {src} -[htable]-> y in x",
        )
        .unwrap()
    }

    fn shared_decomp(cat: &mut Catalog) -> Decomposition {
        parse(
            cat,
            "let w : {src,dst} . {weight} = unit {weight} in
             let y : {src} . {dst,weight} = {dst} -[ilist]-> w in
             let z : {dst} . {src,weight} = {src} -[ilist]-> w in
             let x : {} . {src,dst,weight} =
               ({src} -[htable]-> y) join ({dst} -[htable]-> z) in x",
        )
        .unwrap()
    }

    #[test]
    fn road_network_shape() {
        let g = road_network(5, 4, 10, 1);
        assert_eq!(g.nodes, 20);
        // Grid edges: horizontal 4*4*2 + vertical 5*3*2 = 62, plus shortcuts.
        assert_eq!(g.edges.len(), 62 + 10);
        // Determinism.
        let g2 = road_network(5, 4, 10, 1);
        assert_eq!(g.edges, g2.edges);
    }

    #[test]
    fn dfs_visits_whole_grid() {
        let (mut cat, cols, spec) = graph_spec();
        let g = road_network(6, 6, 0, 2);
        let d = chain_decomp(&mut cat);
        let bench = GraphBench::build(&cat, cols, &spec, d, &g).unwrap();
        // The grid is strongly connected: one DFS reaches everything.
        assert_eq!(bench.dfs_forward(), 36);
        assert_eq!(bench.dfs_backward(), 36);
    }

    #[test]
    fn forward_and_backward_agree_across_decompositions() {
        let (mut cat, cols, spec) = graph_spec();
        let g = road_network(4, 4, 6, 3);
        let chain = chain_decomp(&mut cat);
        let shared = shared_decomp(&mut cat);
        let b1 = GraphBench::build(&cat, cols, &spec, chain, &g).unwrap();
        let b2 = GraphBench::build(&cat, cols, &spec, shared, &g).unwrap();
        assert_eq!(b1.dfs_forward(), b2.dfs_forward());
        assert_eq!(b1.dfs_backward(), b2.dfs_backward());
        assert_eq!(b1.edge_count(), b2.edge_count());
    }

    #[test]
    fn delete_all_edges_empties_the_relation() {
        let (mut cat, cols, spec) = graph_spec();
        let g = road_network(4, 3, 5, 4);
        let d = shared_decomp(&mut cat);
        let mut bench = GraphBench::build(&cat, cols, &spec, d, &g).unwrap();
        assert_eq!(bench.edge_count(), g.edges.len());
        bench.delete_all_edges();
        assert_eq!(bench.edge_count(), 0);
        bench.rel.validate().unwrap();
    }

    #[test]
    fn skewed_graph_is_deterministic_and_unique() {
        let g = skewed_graph(100, 300, 9);
        assert_eq!(g.edges.len(), 300);
        let set: std::collections::HashSet<(i64, i64)> =
            g.edges.iter().map(|&(a, b, _)| (a, b)).collect();
        assert_eq!(set.len(), 300, "edges are unique");
        assert_eq!(skewed_graph(100, 300, 9).edges, g.edges);
    }
}
