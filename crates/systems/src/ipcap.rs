//! The IpCap flow-accounting daemon (§6.2, Fig. 13).
//!
//! IpCap counts bytes per network flow on a gateway: for every packet it
//! looks up the flow `(local, remote)` and either creates an entry or
//! increments its byte/packet counters; periodically it iterates all flows,
//! logs them, and removes the flushed entries.
//!
//! The flow table is the relation
//! `flows⟨local, remote, bytes, pkts⟩` with `local, remote → bytes, pkts`.
//!
//! [`BaselineFlows`] is the hand-coded original (open-coded hash map);
//! [`SynthFlows`] delegates to a [`SynthRelation`]. Figure 13 ranks all
//! decompositions of the flow relation on the same packet trace.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relic_concurrent::{ConcurrentBuildError, ConcurrentRelation, ReadHandle};
use relic_core::{OpError, SynthRelation};
use relic_decomp::Decomposition;
use relic_persist::{DurableRelation, GroupCommitPolicy, PersistError};
use relic_spec::{Catalog, ColId, RelSpec, Tuple, Value};
use std::collections::HashMap;

/// A packet: `(local host, remote host, length in bytes)`.
pub type Packet = (i64, i64, i64);

/// Generates a deterministic Zipf-skewed packet trace over `locals × remotes`
/// host pairs.
pub fn packet_trace(packets: usize, locals: usize, remotes: usize, seed: u64) -> Vec<Packet> {
    let mut zl = Zipf::new(locals, 1.1, seed);
    let mut zr = Zipf::new(remotes, 1.1, seed.wrapping_add(1));
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
    (0..packets)
        .map(|_| {
            (
                zl.sample() as i64,
                zr.sample() as i64,
                rng.gen_range(40..=1500),
            )
        })
        .collect()
}

/// One accumulated flow record, as written to the log on flush.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FlowRecord {
    /// Local host id.
    pub local: i64,
    /// Remote host id.
    pub remote: i64,
    /// Accumulated bytes.
    pub bytes: i64,
    /// Accumulated packets.
    pub pkts: i64,
}

/// The flow-store interface both implementations provide.
///
/// The hot-path operations are fallible: the synthesized store runs real
/// relational operations underneath, and a daemon must surface their errors
/// through its run/step API rather than aborting mid-trace (the baseline
/// simply never fails).
pub trait FlowStore {
    /// Accounts one packet.
    ///
    /// # Errors
    ///
    /// Any relational-operation failure of the underlying store.
    fn account(&mut self, p: Packet) -> Result<(), OpError>;
    /// Logs and removes all flows, returning them sorted (deterministic).
    ///
    /// # Errors
    ///
    /// As for [`account`](FlowStore::account).
    fn flush(&mut self) -> Result<Vec<FlowRecord>, OpError>;
    /// Number of live flows.
    fn live_flows(&self) -> usize;
}

/// Runs a trace through a store, flushing every `flush_every` packets;
/// returns all flushed records in order. This is the §6.2 daemon loop.
///
/// # Errors
///
/// The first error any step reports; accounting stops there (the §6.2
/// daemon would log and drop the table — the caller decides).
pub fn run_accounting<S: FlowStore>(
    store: &mut S,
    trace: &[Packet],
    flush_every: usize,
) -> Result<Vec<FlowRecord>, OpError> {
    let mut log = Vec::new();
    for (i, p) in trace.iter().enumerate() {
        store.account(*p)?;
        if flush_every > 0 && (i + 1) % flush_every == 0 {
            log.extend(store.flush()?);
        }
    }
    log.extend(store.flush()?);
    Ok(log)
}

// ---------------------------------------------------------------------------
// Baseline: the hand-coded flow table, as in the original C daemon.
// ---------------------------------------------------------------------------

// [baseline:begin]
/// Hand-coded flow table: one hash map keyed by `(local, remote)`.
#[derive(Debug, Default)]
pub struct BaselineFlows {
    table: HashMap<(i64, i64), (i64, i64)>,
}

impl BaselineFlows {
    /// Creates an empty table.
    pub fn new() -> Self {
        BaselineFlows::default()
    }
}

impl FlowStore for BaselineFlows {
    fn account(&mut self, (l, r, len): Packet) -> Result<(), OpError> {
        let e = self.table.entry((l, r)).or_insert((0, 0));
        e.0 += len;
        e.1 += 1;
        Ok(())
    }

    fn flush(&mut self) -> Result<Vec<FlowRecord>, OpError> {
        let mut out: Vec<FlowRecord> = self
            .table
            .drain()
            .map(|((local, remote), (bytes, pkts))| FlowRecord {
                local,
                remote,
                bytes,
                pkts,
            })
            .collect();
        out.sort();
        Ok(out)
    }

    fn live_flows(&self) -> usize {
        self.table.len()
    }
}
// [baseline:end]

// ---------------------------------------------------------------------------
// Synthesized: the flow table as a relation + decomposition.
// ---------------------------------------------------------------------------

/// Column handles for the flow relation.
#[derive(Debug, Clone, Copy)]
pub struct FlowCols {
    /// Local host id.
    pub local: ColId,
    /// Remote host id.
    pub remote: ColId,
    /// Accumulated bytes.
    pub bytes: ColId,
    /// Accumulated packets.
    pub pkts: ColId,
}

/// Creates the flow relation's catalog, columns and specification.
pub fn flow_spec() -> (Catalog, FlowCols, RelSpec) {
    let mut cat = Catalog::new();
    let cols = FlowCols {
        local: cat.intern("local"),
        remote: cat.intern("remote"),
        bytes: cat.intern("bytes"),
        pkts: cat.intern("pkts"),
    };
    let spec = RelSpec::new(cols.local | cols.remote | cols.bytes | cols.pkts)
        .with_fd(cols.local | cols.remote, cols.bytes | cols.pkts);
    (cat, cols, spec)
}

/// Column handles for the address-metadata relation.
///
/// The gateway's side table: who owns each local host and which service
/// tier it belongs to — `addrs⟨local, owner, tier⟩` with `local → owner,
/// tier`. Joining it against the flow table (on the shared `local`
/// column) is the canonical multi-relation query of the shell demo:
/// "bytes per owner", "flows of tier-0 hosts", and so on.
#[derive(Debug, Clone, Copy)]
pub struct AddrCols {
    /// Local host id (the join column with the flow relation).
    pub local: ColId,
    /// Owning team name.
    pub owner: ColId,
    /// Service tier (0 = most critical).
    pub tier: ColId,
}

/// Creates the address-metadata relation's catalog, columns and
/// specification.
pub fn addr_spec() -> (Catalog, AddrCols, RelSpec) {
    let mut cat = Catalog::new();
    let cols = AddrCols {
        local: cat.intern("local"),
        owner: cat.intern("owner"),
        tier: cat.intern("tier"),
    };
    let spec = RelSpec::new(cols.local | cols.owner | cols.tier)
        .with_fd(cols.local.set(), cols.owner | cols.tier);
    (cat, cols, spec)
}

/// The address table's decomposition: one hash level keyed by `local`.
pub fn addr_decomposition(cat: &mut Catalog) -> Decomposition {
    relic_decomp::parse(
        cat,
        "let u : {local} . {owner,tier} = unit {owner,tier} in
         let x : {} . {local,owner,tier} = {local} -[htable]-> u in x",
    )
    .expect("address decomposition parses")
}

/// Renders an accounted packet trace as a TSV flow table (`local remote
/// bytes pkts` header + one row per flow, sorted) — the `load`-able input
/// of the relational shell's join demo.
pub fn flows_tsv(trace: &[Packet]) -> String {
    let mut base = BaselineFlows::new();
    for p in trace {
        base.account(*p).expect("baseline accounting never fails");
    }
    let mut flows: Vec<FlowRecord> = base
        .table
        .iter()
        .map(|(&(local, remote), &(bytes, pkts))| FlowRecord {
            local,
            remote,
            bytes,
            pkts,
        })
        .collect();
    flows.sort();
    let mut out = String::from("local\tremote\tbytes\tpkts\n");
    for f in flows {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\n",
            f.local, f.remote, f.bytes, f.pkts
        ));
    }
    out
}

/// Renders deterministic address metadata for local hosts `0..locals` as a
/// TSV table (`local owner tier`): hosts rotate through four owning teams
/// and three service tiers.
pub fn addrs_tsv(locals: usize) -> String {
    let mut out = String::from("local\towner\ttier\n");
    for h in 0..locals as i64 {
        out.push_str(&format!("{}\tteam-{}\t{}\n", h, h % 4, h % 3));
    }
    out
}

/// The default decomposition: hash locals, then hash remotes per local —
/// the shape the paper found best ("a binary tree mapping local hosts to
/// hash-tables of foreign hosts"; we default both levels to hash tables and
/// let Fig. 13 sweep the alternatives).
pub fn default_decomposition(cat: &mut Catalog) -> Decomposition {
    relic_decomp::parse(
        cat,
        "let w : {local,remote} . {bytes,pkts} = unit {bytes,pkts} in
         let y : {local} . {remote,bytes,pkts} = {remote} -[htable]-> w in
         let x : {} . {local,remote,bytes,pkts} = {local} -[avl]-> y in x",
    )
    .expect("default decomposition parses")
}

/// Decodes one stored tuple into a [`FlowRecord`], surfacing a typed
/// [`OpError::MalformedRow`] (instead of panicking) if any accounting
/// column lost its integer shape.
fn flow_record(cols: &FlowCols, t: &Tuple) -> Result<FlowRecord, OpError> {
    let int = |col: ColId| {
        t.get(col)
            .and_then(Value::as_int)
            .ok_or(OpError::MalformedRow { col })
    };
    Ok(FlowRecord {
        local: int(cols.local)?,
        remote: int(cols.remote)?,
        bytes: int(cols.bytes)?,
        pkts: int(cols.pkts)?,
    })
}

// [synth:begin]
/// The synthesized flow table.
#[derive(Debug)]
pub struct SynthFlows {
    rel: SynthRelation,
    cols: FlowCols,
}

impl SynthFlows {
    /// Creates a flow table over any adequate decomposition of the flow
    /// relation.
    ///
    /// # Errors
    ///
    /// Propagates adequacy failures.
    pub fn new(
        cat: &Catalog,
        cols: FlowCols,
        spec: &RelSpec,
        d: Decomposition,
    ) -> Result<Self, relic_core::BuildError> {
        let mut rel = SynthRelation::new(cat, spec.clone(), d)?;
        rel.set_fd_checking(false);
        Ok(SynthFlows { rel, cols })
    }

    /// Access to the underlying relation (for validation in tests).
    pub fn relation(&self) -> &SynthRelation {
        &self.rel
    }

    /// Restores flushed flow records into the table — the daemon's
    /// restart-from-log path — as one bulk load instead of one insert walk
    /// per flow. Returns the number of flows restored.
    ///
    /// # Errors
    ///
    /// As for [`SynthRelation::bulk_load`] (e.g. two records for one flow).
    pub fn preload<'a, I: IntoIterator<Item = &'a FlowRecord>>(
        &mut self,
        records: I,
    ) -> Result<usize, relic_core::OpError> {
        let cols = self.cols;
        let batch: Vec<Tuple> = records
            .into_iter()
            .map(|f| {
                Tuple::from_pairs([
                    (cols.local, Value::from(f.local)),
                    (cols.remote, Value::from(f.remote)),
                    (cols.bytes, Value::from(f.bytes)),
                    (cols.pkts, Value::from(f.pkts)),
                ])
            })
            .collect();
        self.rel.bulk_load(batch)
    }
}

impl FlowStore for SynthFlows {
    fn account(&mut self, (l, r, len): Packet) -> Result<(), OpError> {
        let key = Tuple::from_pairs([
            (self.cols.local, Value::from(l)),
            (self.cols.remote, Value::from(r)),
        ]);
        let existing = self.rel.query(&key, self.cols.bytes | self.cols.pkts)?;
        match existing.first() {
            Some(t) => {
                let bytes = t.get(self.cols.bytes).and_then(Value::as_int).ok_or(
                    OpError::MalformedRow {
                        col: self.cols.bytes,
                    },
                )?;
                let pkts =
                    t.get(self.cols.pkts)
                        .and_then(Value::as_int)
                        .ok_or(OpError::MalformedRow {
                            col: self.cols.pkts,
                        })?;
                self.rel.update(
                    &key,
                    &Tuple::from_pairs([
                        (self.cols.bytes, Value::from(bytes + len)),
                        (self.cols.pkts, Value::from(pkts + 1)),
                    ]),
                )?;
            }
            None => {
                self.rel.insert(key.merge(&Tuple::from_pairs([
                    (self.cols.bytes, Value::from(len)),
                    (self.cols.pkts, Value::from(1)),
                ])))?;
            }
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<Vec<FlowRecord>, OpError> {
        let all = self.rel.query_full(&Tuple::empty())?;
        let mut out = Vec::with_capacity(all.len());
        for t in all.iter() {
            out.push(flow_record(&self.cols, t)?);
        }
        out.sort();
        self.rel.clear();
        Ok(out)
    }

    fn live_flows(&self) -> usize {
        self.rel.len()
    }
}
// [synth:end]

// ---------------------------------------------------------------------------
// Concurrent: the sharded flow table with a wait-free read side.
// ---------------------------------------------------------------------------

/// The concurrent flow table: a [`ConcurrentRelation`] partitioned by
/// `local` (per-gateway-interface traffic from different ingest threads
/// never contends on one lock), with the **read side served wait-free**
/// through published snapshots — a monitoring dashboard polling flows, or a
/// CLI `iftop`, never blocks a packet.
///
/// Writes (`account`) are atomic read-modify-writes inside the owning
/// partition's lock; reads (`lookup`, `report`, `total_bytes`) go through
/// [`ConcurrentRelation::read_view`]/[`ReadHandle`] and therefore observe
/// the last *published* per-shard state without acquiring any shard lock.
#[derive(Debug)]
pub struct ConcurrentFlows {
    rel: ConcurrentRelation,
    cols: FlowCols,
}

impl ConcurrentFlows {
    /// Creates a sharded flow table over any adequate decomposition of the
    /// flow relation, partitioned by `local` into `shards` partitions.
    ///
    /// # Errors
    ///
    /// As for [`ConcurrentRelation::new`].
    pub fn new(
        cat: &Catalog,
        cols: FlowCols,
        spec: &RelSpec,
        d: Decomposition,
        shards: usize,
    ) -> Result<Self, ConcurrentBuildError> {
        let rel = ConcurrentRelation::new(cat, spec.clone(), d, cols.local.set(), shards)?;
        Ok(ConcurrentFlows { rel, cols })
    }

    /// The underlying relation (for validation and direct queries in tests).
    pub fn relation(&self) -> &ConcurrentRelation {
        &self.rel
    }

    /// Accounts one packet: an atomic read-modify-write inside the
    /// partition owning the packet's `local` host. Safe to call from many
    /// threads; traffic for different locals on different shards never
    /// contends.
    ///
    /// # Errors
    ///
    /// Any relational-operation failure of the underlying store.
    pub fn account(&self, (l, r, len): Packet) -> Result<(), OpError> {
        let cols = self.cols;
        let key = Tuple::from_pairs([(cols.local, Value::from(l)), (cols.remote, Value::from(r))]);
        self.rel.with_partition_mut(&key, |shard| {
            match shard.query(&key, cols.bytes | cols.pkts)?.first() {
                Some(t) => {
                    let bytes = t
                        .get(cols.bytes)
                        .and_then(Value::as_int)
                        .ok_or(OpError::MalformedRow { col: cols.bytes })?;
                    let pkts = t
                        .get(cols.pkts)
                        .and_then(Value::as_int)
                        .ok_or(OpError::MalformedRow { col: cols.pkts })?;
                    shard.update(
                        &key,
                        &Tuple::from_pairs([
                            (cols.bytes, Value::from(bytes + len)),
                            (cols.pkts, Value::from(pkts + 1)),
                        ]),
                    )?;
                }
                None => {
                    shard.insert(key.merge(&Tuple::from_pairs([
                        (cols.bytes, Value::from(len)),
                        (cols.pkts, Value::from(1)),
                    ])))?;
                }
            }
            Ok(())
        })
    }

    /// A cached wait-free read handle for a monitoring thread.
    pub fn read_handle(&self) -> ReadHandle<'_> {
        self.rel.read_handle()
    }

    /// Wait-free point lookup of one flow's `(bytes, pkts)` through a
    /// cached handle — the pattern pins `local`, so the probe touches
    /// exactly one shard's published snapshot and no lock.
    ///
    /// # Errors
    ///
    /// As for the underlying snapshot query.
    pub fn lookup(
        &self,
        handle: &mut ReadHandle<'_>,
        local: i64,
        remote: i64,
    ) -> Result<Option<(i64, i64)>, OpError> {
        let cols = self.cols;
        let key = Tuple::from_pairs([
            (cols.local, Value::from(local)),
            (cols.remote, Value::from(remote)),
        ]);
        let rows = handle.query(&key, cols.bytes | cols.pkts)?;
        match rows.first() {
            None => Ok(None),
            Some(t) => {
                let bytes = t
                    .get(cols.bytes)
                    .and_then(Value::as_int)
                    .ok_or(OpError::MalformedRow { col: cols.bytes })?;
                let pkts = t
                    .get(cols.pkts)
                    .and_then(Value::as_int)
                    .ok_or(OpError::MalformedRow { col: cols.pkts })?;
                Ok(Some((bytes, pkts)))
            }
        }
    }

    /// All currently published flows, sorted — the dashboard scan, served
    /// entirely from snapshots (no shard lock, packets keep flowing). A
    /// row with a malformed accounting value is skipped rather than taking
    /// the dashboard down; every well-formed flow is still reported.
    pub fn report(&self) -> Vec<FlowRecord> {
        let cols = self.cols;
        let view = self.rel.read_view();
        let mut out: Vec<FlowRecord> = view
            .to_relation()
            .iter()
            .filter_map(|t| flow_record(&cols, t).ok())
            .collect();
        out.sort();
        out
    }

    /// Number of live flows in the published state.
    pub fn live_flows(&self) -> usize {
        self.rel.read_view().len()
    }
}

/// Runs a trace through a [`ConcurrentFlows`] with `writers` ingest threads
/// (packets partitioned by `local % writers`, so every flow is owned by
/// exactly one thread and the per-flow read-modify-writes never race;
/// threads may still share shards, where the partition lock serializes
/// them) while one monitor thread spins wait-free lookups and report scans
/// against published snapshots. Returns the final sorted flow report and
/// the number of monitor reads served.
///
/// The serving loops degrade gracefully: a failed monitor lookup is simply
/// not counted as a served read, and a failed accounting step stops that
/// writer and surfaces the first such error after the remaining writers
/// drain — no thread ever panics.
///
/// # Errors
///
/// The first accounting failure, if any writer hit one.
pub fn run_concurrent_accounting(
    flows: &ConcurrentFlows,
    trace: &[Packet],
    writers: usize,
) -> Result<(Vec<FlowRecord>, usize), OpError> {
    use std::sync::atomic::{AtomicBool, Ordering};
    let done = AtomicBool::new(false);
    let (served, failure) = std::thread::scope(|s| {
        let monitor = {
            let done = &done;
            s.spawn(move || {
                let mut handle = flows.read_handle();
                let mut served = 0usize;
                while !done.load(Ordering::Acquire) {
                    // Point lookups on the hottest pairs + a standing-state
                    // poll: the dashboard mix, entirely off the shard locks.
                    // Only *successful* lookups count as served reads.
                    for l in 0..4 {
                        if let Ok(Some(_)) = flows.lookup(&mut handle, l, 0) {
                            served += 1;
                        }
                    }
                    std::hint::black_box(handle.len());
                }
                // The trace is fully accounted now, so its first flow must
                // be visible wait-free — a deterministic final hit.
                if let Some(&(l, r, _)) = trace.first() {
                    if let Ok(Some(_)) = flows.lookup(&mut handle, l, r) {
                        served += 1;
                    }
                }
                served
            })
        };
        let writer_handles: Vec<_> = (0..writers)
            .map(|w| {
                s.spawn(move || -> Result<(), OpError> {
                    for p in trace
                        .iter()
                        .filter(|(l, _, _)| (l.unsigned_abs() as usize) % writers == w)
                    {
                        flows.account(*p)?;
                    }
                    Ok(())
                })
            })
            .collect();
        let mut failure = None;
        for h in writer_handles {
            if let Err(e) = h.join().expect("writer thread") {
                failure.get_or_insert(e);
            }
        }
        done.store(true, Ordering::Release);
        (monitor.join().expect("monitor thread"), failure)
    });
    match failure {
        Some(e) => Err(e),
        None => Ok((flows.report(), served)),
    }
}

// ---------------------------------------------------------------------------
// Durable: the restartable flow daemon (serve → kill → recover → serve).
// ---------------------------------------------------------------------------

/// The durable flow table: a [`DurableRelation`] partitioned by `local`,
/// whose committed accounting survives a daemon restart.
///
/// This is the §6.2 daemon grown into a production shape: packets are
/// accounted as logged read-modify-writes inside the owning partition's
/// critical section (each a remove + insert record pair in the write-ahead
/// log), [`commit`](DurableFlows::commit) group-commits the log, and
/// [`checkpoint`](DurableFlows::checkpoint) serializes the published
/// per-shard snapshots — packets keep flowing while the checkpoint writes.
/// After a crash, [`DurableFlows::open`] recovers exactly the accounting
/// up to the last durable point: nothing committed is ever lost, nothing
/// uncommitted ever resurfaces half-applied.
#[derive(Debug)]
pub struct DurableFlows {
    rel: DurableRelation,
    cols: FlowCols,
}

impl DurableFlows {
    /// Creates a fresh durable flow table in `dir` (any previous state
    /// there is discarded), partitioned by `local` into `shards`.
    ///
    /// # Errors
    ///
    /// As for [`DurableRelation::create`].
    pub fn create(
        dir: &std::path::Path,
        shards: usize,
        policy: GroupCommitPolicy,
    ) -> Result<Self, PersistError> {
        let (mut cat, cols, spec) = flow_spec();
        let d = default_decomposition(&mut cat);
        let rel =
            DurableRelation::create(dir, &cat, spec, d, cols.local.set(), shards, true, policy)?;
        Ok(DurableFlows { rel, cols })
    }

    /// Recovers the flow table stored in `dir`: checkpoint + log-tail
    /// replay, continuing exactly from the last durable accounting.
    ///
    /// # Errors
    ///
    /// As for [`DurableRelation::open`].
    pub fn open(dir: &std::path::Path, policy: GroupCommitPolicy) -> Result<Self, PersistError> {
        let rel = DurableRelation::open(dir, policy)?;
        let cat = rel.catalog();
        let cols = FlowCols {
            local: cat.col("local").expect("recovered catalog has `local`"),
            remote: cat.col("remote").expect("recovered catalog has `remote`"),
            bytes: cat.col("bytes").expect("recovered catalog has `bytes`"),
            pkts: cat.col("pkts").expect("recovered catalog has `pkts`"),
        };
        Ok(DurableFlows { rel, cols })
    }

    /// The underlying durable relation (validation, checkpoint control).
    pub fn relation(&self) -> &DurableRelation {
        &self.rel
    }

    /// Accounts one packet durably: a logged read-modify-write inside the
    /// partition owning the packet's `local` host (counter accumulation is
    /// expressed as remove + insert, the write-ahead log's record kinds).
    ///
    /// # Errors
    ///
    /// Any relational or log failure of the underlying store.
    pub fn account(&self, (l, r, len): Packet) -> Result<(), PersistError> {
        let cols = self.cols;
        let key = Tuple::from_pairs([(cols.local, Value::from(l)), (cols.remote, Value::from(r))]);
        self.rel
            .with_partition_mut(&key, |p| {
                let existing = p.query(&key, cols.bytes | cols.pkts)?;
                let (bytes, pkts) = match existing.first() {
                    Some(t) => {
                        let b = t.get(cols.bytes).and_then(Value::as_int).unwrap();
                        let k = t.get(cols.pkts).and_then(Value::as_int).unwrap();
                        p.remove(&key)?;
                        (b + len, k + 1)
                    }
                    None => (len, 1),
                };
                p.insert(key.merge(&Tuple::from_pairs([
                    (cols.bytes, Value::from(bytes)),
                    (cols.pkts, Value::from(pkts)),
                ])))?;
                Ok(())
            })?
            .map_err(PersistError::Op)
    }

    /// Group-commits the log: every packet accounted so far is durable on
    /// return.
    ///
    /// # Errors
    ///
    /// As for [`DurableRelation::commit`].
    pub fn commit(&self) -> Result<u64, PersistError> {
        self.rel.commit()
    }

    /// Checkpoints the table off published snapshots (packets keep
    /// flowing) and truncates the covered log prefix.
    ///
    /// # Errors
    ///
    /// As for [`DurableRelation::checkpoint`].
    pub fn checkpoint(&self) -> Result<u64, PersistError> {
        self.rel.checkpoint()
    }

    /// All currently accounted flows, sorted — served wait-free from
    /// published snapshots, exactly like [`ConcurrentFlows::report`].
    pub fn report(&self) -> Vec<FlowRecord> {
        let cols = self.cols;
        let view = self.rel.read_view();
        let mut out: Vec<FlowRecord> = view
            .to_relation()
            .iter()
            .map(|t| FlowRecord {
                local: t.get(cols.local).and_then(Value::as_int).unwrap(),
                remote: t.get(cols.remote).and_then(Value::as_int).unwrap(),
                bytes: t.get(cols.bytes).and_then(Value::as_int).unwrap(),
                pkts: t.get(cols.pkts).and_then(Value::as_int).unwrap(),
            })
            .collect();
        out.sort();
        out
    }

    /// Number of live flows in the published state.
    pub fn live_flows(&self) -> usize {
        self.rel.read_view().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic() {
        let a = packet_trace(100, 16, 64, 5);
        let b = packet_trace(100, 16, 64, 5);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(_, _, len)| (40..=1500).contains(&len)));
    }

    #[test]
    fn baseline_and_synth_agree() {
        let trace = packet_trace(2000, 8, 32, 11);
        let mut base = BaselineFlows::new();
        let (mut cat, cols, spec) = flow_spec();
        let d = default_decomposition(&mut cat);
        let mut synth = SynthFlows::new(&cat, cols, &spec, d).unwrap();
        let log_base = run_accounting(&mut base, &trace, 500).unwrap();
        let log_synth = run_accounting(&mut synth, &trace, 500).unwrap();
        assert_eq!(log_base, log_synth);
        assert_eq!(base.live_flows(), 0);
        assert_eq!(synth.live_flows(), 0);
    }

    #[test]
    fn totals_conserved() {
        let trace = packet_trace(1000, 4, 16, 13);
        let (mut cat, cols, spec) = flow_spec();
        let d = default_decomposition(&mut cat);
        let mut synth = SynthFlows::new(&cat, cols, &spec, d).unwrap();
        let log = run_accounting(&mut synth, &trace, 0).unwrap();
        let total_bytes: i64 = log.iter().map(|f| f.bytes).sum();
        let want: i64 = trace.iter().map(|&(_, _, l)| l).sum();
        assert_eq!(total_bytes, want);
        let total_pkts: i64 = log.iter().map(|f| f.pkts).sum();
        assert_eq!(total_pkts, trace.len() as i64);
    }

    #[test]
    fn preload_restores_a_flushed_table() {
        let trace = packet_trace(800, 8, 24, 19);
        let (mut cat, cols, spec) = flow_spec();
        let d = default_decomposition(&mut cat);
        let mut synth = SynthFlows::new(&cat, cols, &spec, d.clone()).unwrap();
        for p in &trace {
            synth.account(*p).unwrap();
        }
        let snapshot = synth.flush().unwrap();
        assert_eq!(synth.live_flows(), 0);
        // Restore from the log and keep accounting: totals are preserved.
        let n = synth.preload(&snapshot).unwrap();
        assert_eq!(n, snapshot.len());
        assert_eq!(synth.live_flows(), snapshot.len());
        synth.relation().validate().unwrap();
        assert_eq!(synth.flush().unwrap(), snapshot);
    }

    #[test]
    fn concurrent_flows_agree_with_baseline_under_threads() {
        let trace = packet_trace(3000, 16, 24, 23);
        let mut base = BaselineFlows::new();
        for p in &trace {
            base.account(*p).unwrap();
        }
        let mut expect: Vec<FlowRecord> = base
            .table
            .iter()
            .map(|(&(local, remote), &(bytes, pkts))| FlowRecord {
                local,
                remote,
                bytes,
                pkts,
            })
            .collect();
        expect.sort();
        let (mut cat, cols, spec) = flow_spec();
        let d = default_decomposition(&mut cat);
        let flows = ConcurrentFlows::new(&cat, cols, &spec, d, 8).unwrap();
        let (report, served) = run_concurrent_accounting(&flows, &trace, 4).unwrap();
        assert_eq!(report, expect, "concurrent accounting must match baseline");
        assert!(served > 0, "the monitor served wait-free reads");
        flows.relation().validate().unwrap();
    }

    #[test]
    fn concurrent_lookup_reads_published_state() {
        let (mut cat, cols, spec) = flow_spec();
        let d = default_decomposition(&mut cat);
        let flows = ConcurrentFlows::new(&cat, cols, &spec, d, 4).unwrap();
        let mut handle = flows.read_handle();
        assert_eq!(flows.lookup(&mut handle, 1, 2).unwrap(), None);
        flows.account((1, 2, 100)).unwrap();
        flows.account((1, 2, 50)).unwrap();
        assert_eq!(flows.lookup(&mut handle, 1, 2).unwrap(), Some((150, 2)));
        assert_eq!(flows.live_flows(), 1);
        assert_eq!(flows.report().len(), 1);
    }

    /// Accounts `trace` against a reference baseline, returning the sorted
    /// expected report.
    fn baseline_report(trace: &[Packet]) -> Vec<FlowRecord> {
        let mut base = BaselineFlows::new();
        for p in trace {
            base.account(*p).unwrap();
        }
        let mut expect: Vec<FlowRecord> = base
            .table
            .iter()
            .map(|(&(local, remote), &(bytes, pkts))| FlowRecord {
                local,
                remote,
                bytes,
                pkts,
            })
            .collect();
        expect.sort();
        expect
    }

    /// The restartable daemon scenario: serve → kill → recover → serve.
    /// Nothing accounted before the last commit is lost; nothing
    /// uncommitted survives; the recovered daemon finishes the trace and
    /// matches the baseline exactly.
    #[test]
    fn durable_accounting_survives_a_crash() {
        let dir = std::env::temp_dir().join(format!("relic_ipcap_crash_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let trace = packet_trace(1200, 8, 24, 41);
        let committed_at = 800;
        {
            // Serve phase 1: account 800 packets, commit, then account a
            // suffix that is never committed (lost in the crash).
            let flows = DurableFlows::create(&dir, 4, GroupCommitPolicy::manual()).unwrap();
            for p in &trace[..committed_at] {
                flows.account(*p).unwrap();
            }
            flows.commit().unwrap();
            for p in &trace[committed_at..1000] {
                flows.account(*p).unwrap();
            }
            // Crash: drop without committing the tail.
        }
        // Recover: exactly the committed 800-packet accounting.
        let flows = DurableFlows::open(&dir, GroupCommitPolicy::manual()).unwrap();
        assert_eq!(
            flows.report(),
            baseline_report(&trace[..committed_at]),
            "recovery must reproduce exactly the last committed accounting"
        );
        flows.relation().relation().validate().unwrap();
        // Serve phase 2: the recovered daemon re-accounts the lost tail
        // and finishes the trace; totals match the full baseline.
        for p in &trace[committed_at..] {
            flows.account(*p).unwrap();
        }
        flows.commit().unwrap();
        assert_eq!(flows.report(), baseline_report(&trace));
        drop(flows);
        // And one more restart for good measure (checkpoint this time).
        let flows = DurableFlows::open(&dir, GroupCommitPolicy::manual()).unwrap();
        assert_eq!(flows.report(), baseline_report(&trace));
        flows.checkpoint().unwrap();
        drop(flows);
        let flows = DurableFlows::open(&dir, GroupCommitPolicy::manual()).unwrap();
        assert_eq!(flows.report(), baseline_report(&trace));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Checkpoints run concurrently with packet ingest: multi-threaded
    /// accounting with a checkpointer mid-churn, then a crash and an exact
    /// recovery of the full committed trace.
    #[test]
    fn durable_accounting_checkpoints_under_ingest() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let dir = std::env::temp_dir().join(format!("relic_ipcap_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let trace = packet_trace(2000, 16, 24, 43);
        {
            let flows = DurableFlows::create(&dir, 8, GroupCommitPolicy::default()).unwrap();
            let done = AtomicBool::new(false);
            std::thread::scope(|s| {
                let flows = &flows;
                let done = &done;
                let ckpt = s.spawn(move || {
                    let mut rounds = 0usize;
                    while !done.load(Ordering::Acquire) {
                        flows.commit().unwrap();
                        flows.checkpoint().unwrap();
                        rounds += 1;
                        std::thread::yield_now();
                    }
                    rounds
                });
                let writers: Vec<_> = (0..4usize)
                    .map(|w| {
                        let trace = &trace;
                        s.spawn(move || {
                            for p in trace
                                .iter()
                                .filter(|(l, _, _)| (l.unsigned_abs() as usize) % 4 == w)
                            {
                                flows.account(*p).unwrap();
                            }
                        })
                    })
                    .collect();
                for h in writers {
                    h.join().unwrap();
                }
                done.store(true, Ordering::Release);
                assert!(ckpt.join().unwrap() > 0, "checkpointer ran mid-ingest");
            });
            flows.commit().unwrap();
        }
        let flows = DurableFlows::open(&dir, GroupCommitPolicy::default()).unwrap();
        assert_eq!(flows.report(), baseline_report(&trace));
        flows.relation().relation().validate().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn synth_stays_well_formed_under_accounting() {
        let trace = packet_trace(300, 4, 8, 17);
        let (mut cat, cols, spec) = flow_spec();
        let d = default_decomposition(&mut cat);
        let mut synth = SynthFlows::new(&cat, cols, &spec, d).unwrap();
        for p in &trace {
            synth.account(*p).unwrap();
        }
        synth.relation().validate().unwrap();
        let flows = synth.flush().unwrap();
        assert!(!flows.is_empty());
        synth.relation().validate().unwrap();
    }
}
