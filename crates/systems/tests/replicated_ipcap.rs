//! The replicated flow daemon, end to end across **two OS processes**: a
//! child process runs a durable IpCap-style primary and serves its log
//! over TCP; this (parent) process runs a follower that bootstraps, tails
//! the stream, and survives the child being killed with SIGKILL
//! mid-stream.
//!
//! Proven here:
//!
//! * **Kill-safety** — after the hard kill, reopening the child's data
//!   directory recovers every commit up to (at least) the last frame it
//!   shipped: the dead primary lost nothing the follower ever saw.
//! * **Exact prefix** — the follower's frozen state equals the
//!   deterministic reference model at exactly its applied sequence
//!   number: no torn, reordered, or invented operation.
//! * **Reads never regress** — the follower's applied watermark is
//!   monotone across every poll of the catch-up loop.
//! * **Failover** — the follower promotes into a term-1 primary that
//!   accepts writes, while the stale primary resurrected from the child's
//!   directory is fenced by the term check on first contact.
//!
//! Process choreography: the parent re-execs its own test binary filtered
//! to [`child_primary_process`], which is a no-op unless
//! `RELIC_REPLICA_CHILD` names a scratch directory; the child publishes
//! its ephemeral port through a port file (write + atomic rename).

use relic_persist::{DurableRelation, GroupCommitPolicy};
use relic_replica::{Follower, InProcTransport, Primary, ReplicaError, TcpTransport};
use relic_spec::{Catalog, ColId, RelSpec, Tuple, Value};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Cols {
    local: ColId,
    remote: ColId,
    bytes: ColId,
}

fn flow_parts() -> (Catalog, Cols, RelSpec, relic_decomp::Decomposition) {
    let mut cat = Catalog::new();
    let d = relic_decomp::parse(
        &mut cat,
        "let u : {local,remote} . {bytes} = unit {bytes} in
         let y : {local} . {remote,bytes} = {remote} -[htable]-> u in
         let x : {} . {local,remote,bytes} = {local} -[avl]-> y in x",
    )
    .unwrap();
    let cols = Cols {
        local: cat.col("local").unwrap(),
        remote: cat.col("remote").unwrap(),
        bytes: cat.col("bytes").unwrap(),
    };
    let spec = RelSpec::new(cat.all()).with_fd(cols.local | cols.remote, cols.bytes.set());
    (cat, cols, spec, d)
}

fn make_primary(dir: &Path) -> (Cols, Primary) {
    let (cat, cols, spec, d) = flow_parts();
    let rel = DurableRelation::create(
        dir,
        &cat,
        spec,
        d,
        cols.local.set(),
        4,
        true,
        GroupCommitPolicy::manual(),
    )
    .unwrap();
    // A small batch so catch-up spans many TCP round trips.
    (cols, Primary::with_max_batch_bytes(rel, 256))
}

const N_OPS: u64 = 240;

/// The deterministic packet workload both processes can derive: op `i`
/// accounts `bytes = i` against flow `(i % 7, i % 3)` — upserts included,
/// so the stream exercises remove+insert record pairs, not just inserts.
fn op_tuple(cols: &Cols, i: u64, prev_bytes: i64) -> (Tuple, Option<Tuple>) {
    let key = Tuple::from_pairs([
        (cols.local, Value::from((i % 7) as i64)),
        (cols.remote, Value::from((i % 3) as i64)),
    ]);
    let full = key.merge(&Tuple::from_pairs([(
        cols.bytes,
        Value::from(prev_bytes + i as i64),
    )]));
    (full, if prev_bytes > 0 { Some(key) } else { None })
}

/// Applies op `i` to `p` (the child's side), one commit per op.
fn apply_op(
    p: &Primary,
    cols: &Cols,
    i: u64,
    acc: &mut std::collections::HashMap<(u64, u64), i64>,
) {
    let slot = acc.entry((i % 7, i % 3)).or_insert(0);
    let (full, remove_key) = op_tuple(cols, i, *slot);
    if let Some(key) = remove_key {
        p.remove(&key).unwrap();
    }
    p.insert(full).unwrap();
    *slot += i as i64;
    p.commit().unwrap();
}

/// The reference model at **record** sequence number `k`, rebuilt in
/// memory by the parent without any I/O. The child's workload logs one
/// insert record for a flow's first packet and a remove+insert *pair* for
/// every later one, so the parent replays that exact record stream (meta
/// frame at seq 0) — a replica may legitimately freeze between a pair's
/// remove and insert, and the model captures that state too.
fn reference_at(k: u64) -> Vec<(i64, i64, i64)> {
    fn to_rows(acc: &std::collections::HashMap<(u64, u64), i64>) -> Vec<(i64, i64, i64)> {
        let mut rows: Vec<(i64, i64, i64)> = acc
            .iter()
            .map(|(&(l, r), &b)| (l as i64, r as i64, b))
            .collect();
        rows.sort();
        rows
    }
    let mut acc: std::collections::HashMap<(u64, u64), i64> = std::collections::HashMap::new();
    if k == 0 {
        return vec![];
    }
    let mut seq = 0u64;
    for i in 1..=N_OPS {
        let key = (i % 7, i % 3);
        if acc.contains_key(&key) {
            seq += 1; // the pair's remove record
            if seq == k {
                acc.remove(&key);
                return to_rows(&acc);
            }
        }
        seq += 1; // the insert record
        *acc.entry(key).or_insert(0) += i as i64;
        if seq == k {
            return to_rows(&acc);
        }
    }
    to_rows(&acc)
}

/// Extracts sorted `(local, remote, bytes)` rows from a follower/relation
/// snapshot for comparison with [`reference_at`].
fn rows_of(rel: &relic_spec::Relation, cols: &Cols) -> Vec<(i64, i64, i64)> {
    let mut rows: Vec<(i64, i64, i64)> = rel
        .iter()
        .map(|t| {
            (
                t.get(cols.local).and_then(Value::as_int).unwrap(),
                t.get(cols.remote).and_then(Value::as_int).unwrap(),
                t.get(cols.bytes).and_then(Value::as_int).unwrap(),
            )
        })
        .collect();
    rows.sort();
    rows
}

/// The child half: only active when re-exec'd with `RELIC_REPLICA_CHILD`.
/// Creates the primary, publishes its port, then commits the deterministic
/// workload one op at a time while serving the log — until SIGKILLed.
#[test]
fn child_primary_process() {
    let Ok(dir) = std::env::var("RELIC_REPLICA_CHILD") else {
        return; // normal test runs: nothing to do
    };
    let dir = PathBuf::from(dir);
    let (cols, p) = make_primary(&dir);
    let p = Arc::new(p);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = listener.local_addr().unwrap().port();
    let port_file = PathBuf::from(std::env::var("RELIC_REPLICA_PORTFILE").unwrap());
    let tmp = port_file.with_extension("tmp");
    std::fs::write(&tmp, port.to_string()).unwrap();
    std::fs::rename(&tmp, &port_file).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let p = Arc::clone(&p);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || serve_tcp_entry(p, listener, stop))
    };

    let mut acc = std::collections::HashMap::new();
    for i in 1..=N_OPS {
        apply_op(&p, &cols, i, &mut acc);
        std::thread::sleep(Duration::from_millis(2));
    }
    // Keep serving until the parent kills us.
    server.join().unwrap();
}

fn serve_tcp_entry(p: Arc<Primary>, listener: TcpListener, stop: Arc<AtomicBool>) {
    relic_replica::serve_tcp(p, listener, stop).unwrap();
}

#[test]
fn replicated_flow_daemon_survives_primary_kill() {
    if std::env::var("RELIC_REPLICA_CHILD").is_ok() {
        return; // we *are* the child; only `child_primary_process` runs
    }
    let scratch = std::env::temp_dir().join(format!("relic_repl_ipcap_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let child_dir = scratch.join("primary");
    let follower_dir = scratch.join("follower");
    let port_file = scratch.join("port");

    let mut child = std::process::Command::new(std::env::current_exe().unwrap())
        .args(["child_primary_process", "--exact", "--nocapture"])
        .env("RELIC_REPLICA_CHILD", &child_dir)
        .env("RELIC_REPLICA_PORTFILE", &port_file)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    // Port-file handshake.
    let deadline = Instant::now() + Duration::from_secs(20);
    let port: u16 = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            break s.trim().parse().unwrap();
        }
        assert!(Instant::now() < deadline, "child never published its port");
        std::thread::sleep(Duration::from_millis(10));
    };
    let addr = format!("127.0.0.1:{port}").parse().unwrap();
    let (_, cols, _, _) = {
        let (cat, cols, spec, d) = flow_parts();
        (cat, cols, spec, d)
    };

    // Follower: bootstrap over TCP, then tail the live stream. The applied
    // watermark must be monotone across every poll — reads never regress.
    let mut t = TcpTransport::connect(addr);
    let mut f = Follower::bootstrap(&follower_dir, &mut t).unwrap();
    let mut watermark = f.applied_seq();
    let kill_threshold = N_OPS / 3;
    loop {
        match f.sync_once(&mut t) {
            Ok(prog) => {
                assert!(
                    f.applied_seq() >= watermark,
                    "applied watermark regressed: {} -> {}",
                    watermark,
                    f.applied_seq()
                );
                watermark = f.applied_seq();
                if prog.applied == 0 {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            Err(e) => panic!("live tailing failed before the kill: {e}"),
        }
        if watermark >= kill_threshold {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "follower never reached the kill threshold"
        );
    }

    // SIGKILL the primary mid-stream — no shutdown hooks, no flush.
    child.kill().unwrap();
    child.wait().unwrap();

    // Drain whatever the transport still yields, then verify the freeze.
    let mut dead = TcpTransport::connect(addr);
    dead.max_retries = 2;
    dead.backoff = Duration::from_millis(5);
    loop {
        match f.sync_once(&mut dead) {
            Ok(_) => continue,
            Err(ReplicaError::Disconnected) => break,
            Err(e) => panic!("unexpected error draining after kill: {e}"),
        }
    }
    let frozen_seq = f.applied_seq();
    assert!(frozen_seq >= kill_threshold);

    // Exact prefix: the follower's rows equal the deterministic reference
    // model at exactly `frozen_seq` ops (seq k == op k: one commit each,
    // meta frame at seq 0).
    assert_eq!(
        rows_of(&f.to_relation(), &cols),
        reference_at(frozen_seq),
        "follower froze on a non-prefix state"
    );

    // Kill-safety: the child's directory — fsynced WAL — recovers at
    // least everything it ever shipped.
    let recovered = DurableRelation::open(&child_dir, GroupCommitPolicy::manual()).unwrap();
    assert!(
        recovered.durable_seq() >= frozen_seq,
        "the killed primary lost shipped commits: recovered {} < shipped {}",
        recovered.durable_seq(),
        frozen_seq
    );
    assert_eq!(
        rows_of(&recovered.to_relation(), &cols),
        reference_at(recovered.durable_seq()),
        "the recovered primary is itself a non-prefix state"
    );

    // Failover: the follower promotes under term 1 and accepts writes.
    let promoted = f.promote(GroupCommitPolicy::manual()).unwrap();
    assert_eq!(promoted.term(), 1);
    promoted
        .insert(Tuple::from_pairs([
            (cols.local, Value::from(99i64)),
            (cols.remote, Value::from(99i64)),
            (cols.bytes, Value::from(1i64)),
        ]))
        .unwrap();
    promoted.commit().unwrap();

    // The stale primary, resurrected from the child's directory at term 0,
    // is fenced on first contact with the new regime.
    let stale = Arc::new(Primary::new(recovered));
    let mut f2 = {
        let promoted = Arc::new(promoted);
        let mut tp = InProcTransport::new(Arc::clone(&promoted));
        let dir2 = scratch.join("follower2");
        let mut f2 = Follower::bootstrap(&dir2, &mut tp).unwrap();
        f2.catch_up(&mut tp, 2, Duration::from_millis(1)).unwrap();
        assert_eq!(f2.term(), 1);
        f2
    };
    let mut t_stale = InProcTransport::new(Arc::clone(&stale));
    match f2.sync_once(&mut t_stale) {
        Err(ReplicaError::Fenced { ours: 1, theirs: 0 }) => {}
        other => panic!("stale primary was not fenced: {other:?}"),
    }
    assert!(stale.is_fenced());

    let _ = std::fs::remove_dir_all(&scratch);
}
