//! The query cost estimator `E` of §4.3.

use crate::{Plan, Side};
use relic_decomp::{Body, Decomposition, EdgeId};

/// How `qjoin` is charged by the estimator.
///
/// The paper's definition sums the two sides — "optimistic since it assumes
/// that queries on each side of the join need only be performed once each,
/// whereas in general one side of a join is executed once for each tuple
/// yielded by the other side" (§4.3). The realistic mode implements exactly
/// that correction, which is what lets `qhashjoin` (each side once + build)
/// win where it should.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinCostMode {
    /// The paper's formula: `E(qjoin(q₁, q₂)) = E(q₁) + E(q₂)`.
    #[default]
    Optimistic,
    /// `E(qjoin(q₁, q₂)) = E(q₁) + N(q₁) × E(q₂)`, where `N` estimates the
    /// number of tuples the outer side yields.
    Realistic,
}

/// The planner's cost model: an expected fan-out count `c(u, v)` per map
/// edge, combined with the per-structure lookup cost `m_ψ(n)`.
///
/// Counts "can be provided by the user, or recorded as part of a profiling
/// run" (§4.3); [`CostModel::uniform`] supplies a default, and
/// `relic-core`'s `SynthRelation::observed_cost_model` profiles a live
/// instance.
#[derive(Debug, Clone)]
pub struct CostModel {
    fanout: Vec<f64>,
    range_selectivity: f64,
    join_mode: JoinCostMode,
}

impl CostModel {
    /// A model assigning the same expected fan-out to every edge.
    pub fn uniform(d: &Decomposition, fanout: f64) -> Self {
        CostModel {
            fanout: vec![fanout.max(1.0); d.edge_count()],
            range_selectivity: 0.3,
            join_mode: JoinCostMode::Optimistic,
        }
    }

    /// A model with explicit per-edge fan-outs (indexed by [`EdgeId`]).
    ///
    /// # Panics
    ///
    /// Panics if `fanout.len()` differs from the decomposition's edge count.
    pub fn from_fanouts(d: &Decomposition, fanout: Vec<f64>) -> Self {
        assert_eq!(fanout.len(), d.edge_count(), "one fan-out per edge");
        CostModel {
            fanout: fanout.into_iter().map(|f| f.max(1.0)).collect(),
            range_selectivity: 0.3,
            join_mode: JoinCostMode::Optimistic,
        }
    }

    /// The join charging mode (the paper's optimistic sum by default).
    pub fn join_mode(&self) -> JoinCostMode {
        self.join_mode
    }

    /// Sets the join charging mode.
    pub fn set_join_mode(&mut self, mode: JoinCostMode) {
        self.join_mode = mode;
    }

    /// The assumed fraction of an ordered edge's entries a `qrange` visits
    /// (default 0.3). Not part of the paper's model, which has no ranges.
    pub fn range_selectivity(&self) -> f64 {
        self.range_selectivity
    }

    /// Sets the assumed `qrange` selectivity, clamped to `(0, 1]`.
    pub fn set_range_selectivity(&mut self, s: f64) {
        self.range_selectivity = s.clamp(f64::MIN_POSITIVE, 1.0);
    }

    /// The expected fan-out `c(u, v)` of an edge.
    pub fn fanout(&self, e: EdgeId) -> f64 {
        self.fanout[e.index()]
    }

    /// Overrides one edge's fan-out.
    pub fn set_fanout(&mut self, e: EdgeId, fanout: f64) {
        self.fanout[e.index()] = fanout.max(1.0);
    }

    /// The estimator `E(q, v, dˆ)`: expected memory accesses to execute
    /// `plan` against `body`.
    ///
    /// Exactly the paper's recursive definition: units cost 1, scans cost
    /// `c(e) × E(child)`, lookups cost `m_ψ(c(e)) × E(child)`, joins add
    /// their sides (optimistically, as the paper notes), `qlr` costs its
    /// inner plan.
    pub fn cost(&self, d: &Decomposition, body: &Body, plan: &Plan) -> f64 {
        match (plan, body) {
            (Plan::Unit, Body::Unit(_)) => 1.0,
            (Plan::Scan { child }, Body::Map(eid)) => {
                let e = d.edge(*eid);
                self.fanout(*eid) * self.cost(d, &d.node(e.to).body, child)
            }
            (Plan::Lookup { child }, Body::Map(eid)) => {
                let e = d.edge(*eid);
                e.ds.lookup_cost(self.fanout(*eid)) * self.cost(d, &d.node(e.to).body, child)
            }
            // qrange: locate the interval start (one ordered lookup), then
            // visit the selected fraction of the edge's entries.
            (Plan::Range { child }, Body::Map(eid)) => {
                let e = d.edge(*eid);
                let n = self.fanout(*eid);
                e.ds.lookup_cost(n)
                    + (self.range_selectivity * n).max(1.0)
                        * self.cost(d, &d.node(e.to).body, child)
            }
            (Plan::Lr { side, inner }, Body::Join(l, r)) => {
                let sub = match side {
                    Side::Left => l,
                    Side::Right => r,
                };
                self.cost(d, sub, inner)
            }
            (
                Plan::Join {
                    side,
                    first,
                    second,
                },
                Body::Join(l, r),
            ) => {
                let (outer, inner) = match side {
                    Side::Left => (l, r),
                    Side::Right => (r, l),
                };
                match self.join_mode {
                    JoinCostMode::Optimistic => {
                        self.cost(d, outer, first) + self.cost(d, inner, second)
                    }
                    JoinCostMode::Realistic => {
                        self.cost(d, outer, first)
                            + self.expected_results(d, outer, first) * self.cost(d, inner, second)
                    }
                }
            }
            // qhashjoin: each side exactly once, plus hashing every build
            // tuple and probing once per probe tuple (unit charge each).
            (
                Plan::HashJoin {
                    side,
                    first,
                    second,
                },
                Body::Join(l, r),
            ) => {
                let (outer, inner) = match side {
                    Side::Left => (l, r),
                    Side::Right => (r, l),
                };
                self.cost(d, outer, first)
                    + self.cost(d, inner, second)
                    + self.expected_results(d, outer, first)
                    + self.expected_results(d, inner, second)
            }
            _ => f64::INFINITY,
        }
    }

    /// The static cost of `dinsert` (§4.4): one find-or-create lookup along
    /// every map edge of the decomposition.
    ///
    /// This is the single source of truth for insert charging — the
    /// autotuner's static ranking routes through it rather than re-deriving
    /// per-edge arithmetic, so planner and tuner can never disagree on what
    /// an insertion costs.
    pub fn insert_cost(&self, d: &Decomposition) -> f64 {
        d.edges()
            .map(|(eid, e)| e.ds.lookup_cost(self.fanout(eid)))
            .sum()
    }

    /// The static cost of breaking a §4.5 removal cut: one container
    /// removal per crossing edge — a keyed lookup for map structures, a
    /// constant unlink for intrusive lists (whose entries carry their own
    /// links, the very reason the paper's scheduler uses them).
    ///
    /// `crossing` is the cut's crossing edge set (`relic_decomp::Cut`).
    pub fn remove_break_cost(&self, d: &Decomposition, crossing: &[EdgeId]) -> f64 {
        crossing
            .iter()
            .map(|&eid| {
                let e = d.edge(eid);
                if e.ds.is_intrusive() {
                    1.0
                } else {
                    e.ds.lookup_cost(self.fanout(eid))
                }
            })
            .sum()
    }

    /// `N(q)`: the expected number of tuples `plan` yields — the product of
    /// the iteration widths along it (scans contribute their fan-out, ranges
    /// the selected fraction, lookups and units one).
    pub fn expected_results(&self, d: &Decomposition, body: &Body, plan: &Plan) -> f64 {
        match (plan, body) {
            (Plan::Unit, Body::Unit(_)) => 1.0,
            (Plan::Lookup { child }, Body::Map(eid)) => {
                let e = d.edge(*eid);
                self.expected_results(d, &d.node(e.to).body, child)
            }
            (Plan::Scan { child }, Body::Map(eid)) => {
                let e = d.edge(*eid);
                self.fanout(*eid) * self.expected_results(d, &d.node(e.to).body, child)
            }
            (Plan::Range { child }, Body::Map(eid)) => {
                let e = d.edge(*eid);
                (self.range_selectivity * self.fanout(*eid)).max(1.0)
                    * self.expected_results(d, &d.node(e.to).body, child)
            }
            (Plan::Lr { side, inner }, Body::Join(l, r)) => {
                let sub = match side {
                    Side::Left => l,
                    Side::Right => r,
                };
                self.expected_results(d, sub, inner)
            }
            (
                Plan::Join {
                    side,
                    first,
                    second,
                }
                | Plan::HashJoin {
                    side,
                    first,
                    second,
                },
                Body::Join(l, r),
            ) => {
                let (outer, inner) = match side {
                    Side::Left => (l, r),
                    Side::Right => (r, l),
                };
                // Join determinacy (Fig. 8) matches each outer tuple with at
                // most one inner tuple, so the join yields min(N₁, N₂).
                self.expected_results(d, outer, first)
                    .min(self.expected_results(d, inner, second))
            }
            _ => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Plan;
    use relic_decomp::parse;
    use relic_spec::Catalog;

    fn chain() -> (Catalog, Decomposition) {
        let mut cat = Catalog::new();
        let d = parse(
            &mut cat,
            "let z : {src,dst} . {weight} = unit {weight} in
             let y : {src} . {dst,weight} = {dst} -[dlist]-> z in
             let x : {} . {src,dst,weight} = {src} -[htable]-> y in x",
        )
        .unwrap();
        (cat, d)
    }

    #[test]
    fn lookup_beats_scan_under_uniform_model() {
        let (_, d) = chain();
        let m = CostModel::uniform(&d, 64.0);
        let body = &d.node(d.root()).body;
        let lookup2 = Plan::lookup(Plan::lookup(Plan::Unit));
        let scan2 = Plan::scan(Plan::scan(Plan::Unit));
        assert!(m.cost(&d, body, &lookup2) < m.cost(&d, body, &scan2));
    }

    #[test]
    fn ds_kind_affects_lookup_cost() {
        // The inner edge is a dlist: looking it up costs n, so with large
        // fan-out a lookup chain through a dlist is as bad as scanning it.
        let (_, d) = chain();
        let m = CostModel::uniform(&d, 64.0);
        let body = &d.node(d.root()).body;
        let lookup2 = Plan::lookup(Plan::lookup(Plan::Unit));
        // htable lookup (1.5) * dlist lookup (64) * unit(1)
        let got = m.cost(&d, body, &lookup2);
        assert!((got - 1.5 * 64.0).abs() < 1e-9, "{got}");
    }

    #[test]
    fn fanout_overrides() {
        let (_, d) = chain();
        let mut m = CostModel::uniform(&d, 8.0);
        let body = &d.node(d.root()).body;
        let scan2 = Plan::scan(Plan::scan(Plan::Unit));
        let before = m.cost(&d, body, &scan2);
        for (eid, _) in d.edges() {
            m.set_fanout(eid, 2.0);
        }
        let after = m.cost(&d, body, &scan2);
        assert!(after < before);
        assert_eq!(after, 4.0);
    }

    #[test]
    fn mismatched_plan_costs_infinity() {
        let (_, d) = chain();
        let m = CostModel::uniform(&d, 8.0);
        let body = &d.node(d.root()).body;
        assert!(m.cost(&d, body, &Plan::Unit).is_infinite());
    }

    #[test]
    fn insert_and_break_costs_sum_per_edge() {
        let (_, d) = chain();
        let m = CostModel::uniform(&d, 64.0);
        // htable lookup (1.5) + dlist lookup (64).
        assert!((m.insert_cost(&d) - (1.5 + 64.0)).abs() < 1e-9);
        let crossing: Vec<EdgeId> = d.edges().map(|(eid, _)| eid).collect();
        assert!((m.remove_break_cost(&d, &crossing) - (1.5 + 64.0)).abs() < 1e-9);
        assert_eq!(m.remove_break_cost(&d, &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "one fan-out per edge")]
    fn from_fanouts_checks_arity() {
        let (_, d) = chain();
        let _ = CostModel::from_fanouts(&d, vec![1.0]);
    }
}
