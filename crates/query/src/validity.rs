//! The query-plan validity judgment (paper Fig. 8) and the pattern-coverage
//! strengthening used by the planner.

use crate::{Plan, Side};
use relic_decomp::{Body, Decomposition};
use relic_spec::{ColSet, FdSet};
use std::error::Error;
use std::fmt;

/// Reasons a plan fails the validity judgment.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidityError {
    /// The plan's operator does not match the decomposition body's shape
    /// (e.g. `qscan` on a unit).
    StructureMismatch {
        /// Rendering of the offending operator.
        operator: String,
    },
    /// (QLOOKUP) A lookup's key columns are not all bound in the input.
    KeyNotAvailable {
        /// The key columns required.
        key: ColSet,
        /// The columns actually available.
        avail: ColSet,
    },
    /// (QJOIN) The two subqueries do not bind enough columns to match their
    /// results unambiguously.
    JoinUnderdetermined {
        /// Columns bound by the outer subquery (plus input).
        outer: ColSet,
        /// Columns bound by the inner subquery.
        inner: ColSet,
    },
    /// (QRANGE) A range was placed on an edge whose data structure does not
    /// iterate in key order.
    RangeNotOrdered {
        /// The offending structure.
        ds: relic_decomp::DsKind,
    },
    /// (QRANGE) The edge's key columns do not fit the composite-index prefix
    /// rule: the range column must be the edge's maximal key column, present
    /// in the pattern's comparison columns, and every other key column must
    /// be equality-bound.
    RangeColumnMismatch {
        /// The edge's key columns.
        key: ColSet,
        /// The pattern's range-constrained columns.
        ranged: ColSet,
        /// The equality-bound columns at this point.
        avail: ColSet,
    },
}

impl fmt::Display for ValidityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidityError::StructureMismatch { operator } => {
                write!(
                    f,
                    "plan operator {operator} does not match the decomposition shape"
                )
            }
            ValidityError::KeyNotAvailable { key, avail } => write!(
                f,
                "(QLOOKUP) key columns {key:?} not bound in available columns {avail:?}"
            ),
            ValidityError::JoinUnderdetermined { outer, inner } => write!(
                f,
                "(QJOIN) join sides underdetermined: {outer:?} vs {inner:?}"
            ),
            ValidityError::RangeNotOrdered { ds } => {
                write!(
                    f,
                    "(QRANGE) data structure {ds} does not iterate in key order"
                )
            }
            ValidityError::RangeColumnMismatch { key, ranged, avail } => write!(
                f,
                "(QRANGE) key {key:?} does not split into an equality-bound prefix \
                 (bound: {avail:?}) plus a final range column (ranged: {ranged:?})"
            ),
        }
    }
}

impl Error for ValidityError {}

/// Checks `Γˆ, dˆ, A ⊢q,∆ q, B` (Fig. 8) for `plan` against `body`, with
/// input columns `avail`; returns the output columns `B`.
///
/// # Errors
///
/// Returns a [`ValidityError`] naming the violated rule.
pub fn check_valid(
    d: &Decomposition,
    fds: &FdSet,
    body: &Body,
    avail: ColSet,
    plan: &Plan,
) -> Result<ColSet, ValidityError> {
    check_valid_where(d, fds, body, avail, ColSet::EMPTY, plan)
}

/// Validity for pattern (comparison) queries: like [`check_valid`], with
/// `avail` the *equality-bound* columns and `ranged` the columns carrying an
/// interval comparison. Adds the rule
///
/// ```text
/// (QRANGE)  ψ ordered   K = E ∪ {c}   c = max K   c ∈ ranged \ A
///           E ⊆ A       Γˆ, Γˆ(v), A ∪ K ⊢q q, B
///           ─────────────────────────────────────────────
///           Γˆ, K -[ψ]-> v, A ⊢q qrange(q), B ∪ K
/// ```
///
/// to Fig. 8 (the composite-index prefix rule: an ordered structure can seek
/// a contiguous run only when the range column is its last key coordinate
/// and the coordinates before it are pinned).
///
/// # Errors
///
/// Returns a [`ValidityError`] naming the violated rule.
pub fn check_valid_where(
    d: &Decomposition,
    fds: &FdSet,
    body: &Body,
    avail: ColSet,
    ranged: ColSet,
    plan: &Plan,
) -> Result<ColSet, ValidityError> {
    match (plan, body) {
        // (QRANGE): ordered structure, equality-bound prefix, final range
        // column; the sub-query runs with the whole key bound.
        (Plan::Range { child }, Body::Map(eid)) => {
            let e = d.edge(*eid);
            if !e.ds.is_ordered() {
                return Err(ValidityError::RangeNotOrdered { ds: e.ds });
            }
            let c = e.key.max_col();
            let ok = match c {
                Some(c) => {
                    ranged.contains(c) && !avail.contains(c) && (e.key - c.set()).is_subset(avail)
                }
                None => false,
            };
            if !ok {
                return Err(ValidityError::RangeColumnMismatch {
                    key: e.key,
                    ranged,
                    avail,
                });
            }
            let b = check_valid_where(d, fds, &d.node(e.to).body, avail | e.key, ranged, child)?;
            Ok(b | e.key)
        }
        _ => check_valid_inner(d, fds, body, avail, ranged, plan),
    }
}

fn check_valid_inner(
    d: &Decomposition,
    fds: &FdSet,
    body: &Body,
    avail: ColSet,
    ranged: ColSet,
    plan: &Plan,
) -> Result<ColSet, ValidityError> {
    match (plan, body) {
        (Plan::Range { .. }, _) => Err(ValidityError::StructureMismatch {
            operator: plan.to_string(),
        }),
        // (QUNIT): querying a unit binds its fields.
        (Plan::Unit, Body::Unit(c)) => Ok(*c),
        // (QLOOKUP): keys must already be bound; the sub-query runs with the
        // same available columns.
        (Plan::Lookup { child }, Body::Map(eid)) => {
            let e = d.edge(*eid);
            if !e.key.is_subset(avail) {
                return Err(ValidityError::KeyNotAvailable { key: e.key, avail });
            }
            let b = check_valid_where(d, fds, &d.node(e.to).body, avail, ranged, child)?;
            Ok(b | e.key)
        }
        // (QSCAN): scanning binds the keys both for the sub-query and in the
        // output.
        (Plan::Scan { child }, Body::Map(eid)) => {
            let e = d.edge(*eid);
            let b = check_valid_where(d, fds, &d.node(e.to).body, avail | e.key, ranged, child)?;
            Ok(b | e.key)
        }
        // (QLR): query one side only.
        (Plan::Lr { side, inner }, Body::Join(l, r)) => {
            let sub = match side {
                Side::Left => l,
                Side::Right => r,
            };
            check_valid_where(d, fds, sub, avail, ranged, inner)
        }
        // (QJOIN): the inner side runs with the outer side's bindings; both
        // directions must be functionally determined so results match
        // without ambiguity.
        (
            Plan::Join {
                side,
                first,
                second,
            },
            Body::Join(l, r),
        ) => {
            let (outer_body, inner_body) = match side {
                Side::Left => (l, r),
                Side::Right => (r, l),
            };
            let b1 = check_valid_where(d, fds, outer_body, avail, ranged, first)?;
            let b2 = check_valid_where(d, fds, inner_body, avail | b1, ranged, second)?;
            if !fds.implies(avail | b1, b2) || !fds.implies(avail | b2, b1) {
                return Err(ValidityError::JoinUnderdetermined {
                    outer: avail | b1,
                    inner: b2,
                });
            }
            Ok(b1 | b2)
        }
        // (QHASHJOIN): like (QJOIN), except the probe side runs *once* with
        // only the original input columns — its lookups cannot consume the
        // build side's bindings. The same determinacy conditions guarantee
        // unambiguous matching on the common bound columns.
        (
            Plan::HashJoin {
                side,
                first,
                second,
            },
            Body::Join(l, r),
        ) => {
            let (outer_body, inner_body) = match side {
                Side::Left => (l, r),
                Side::Right => (r, l),
            };
            let b1 = check_valid_where(d, fds, outer_body, avail, ranged, first)?;
            let b2 = check_valid_where(d, fds, inner_body, avail, ranged, second)?;
            if !fds.implies(avail | b1, b2) || !fds.implies(avail | b2, b1) {
                return Err(ValidityError::JoinUnderdetermined {
                    outer: avail | b1,
                    inner: b2,
                });
            }
            Ok(b1 | b2)
        }
        (p, _) => Err(ValidityError::StructureMismatch {
            operator: p.to_string(),
        }),
    }
}

/// The columns a plan *checks* against the input pattern along every emitted
/// path: lookup/scan keys and visited unit columns.
///
/// Fig. 8 validity alone admits plans that bind the requested output columns
/// but never compare a pattern column appearing only on a skipped join
/// branch; the planner therefore additionally requires
/// `pattern ⊆ checked_cols(plan)`. The always-valid scan-everything `qjoin`
/// plan checks every column of the relation, so a plan satisfying the
/// requirement always exists.
pub fn checked_cols(d: &Decomposition, body: &Body, plan: &Plan) -> ColSet {
    match (plan, body) {
        (Plan::Unit, Body::Unit(c)) => *c,
        (Plan::Lookup { child }, Body::Map(eid))
        | (Plan::Scan { child }, Body::Map(eid))
        | (Plan::Range { child }, Body::Map(eid)) => {
            let e = d.edge(*eid);
            e.key | checked_cols(d, &d.node(e.to).body, child)
        }
        (Plan::Lr { side, inner }, Body::Join(l, r)) => {
            let sub = match side {
                Side::Left => l,
                Side::Right => r,
            };
            checked_cols(d, sub, inner)
        }
        (
            Plan::Join {
                side,
                first,
                second,
            }
            | Plan::HashJoin {
                side,
                first,
                second,
            },
            Body::Join(l, r),
        ) => {
            let (outer, inner) = match side {
                Side::Left => (l, r),
                Side::Right => (r, l),
            };
            checked_cols(d, outer, first) | checked_cols(d, inner, second)
        }
        _ => ColSet::EMPTY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relic_decomp::parse;
    use relic_spec::{Catalog, RelSpec};

    fn scheduler() -> (Catalog, RelSpec, Decomposition) {
        let mut cat = Catalog::new();
        let d = parse(
            &mut cat,
            "let w : {ns,pid,state} . {cpu} = unit {cpu} in
             let y : {ns} . {pid,cpu} = {pid} -[htable]-> w in
             let z : {state} . {ns,pid,cpu} = {ns,pid} -[dlist]-> w in
             let x : {} . {ns,pid,state,cpu} =
               ({ns} -[htable]-> y) join ({state} -[vec]-> z) in x",
        )
        .unwrap();
        let spec = RelSpec::new(cat.all()).with_fd(
            cat.col("ns").unwrap() | cat.col("pid").unwrap(),
            cat.col("state").unwrap() | cat.col("cpu").unwrap(),
        );
        (cat, spec, d)
    }

    #[test]
    fn paper_qcpu_plan_is_valid() {
        // query r ⟨ns, pid⟩ {cpu} via the left path.
        let (cat, spec, d) = scheduler();
        let ns = cat.col("ns").unwrap();
        let pid = cat.col("pid").unwrap();
        let cpu = cat.col("cpu").unwrap();
        let q = Plan::lr(Side::Left, Plan::lookup(Plan::lookup(Plan::Unit)));
        let body = &d.node(d.root()).body;
        let out = check_valid(&d, spec.fds(), body, ns | pid, &q).unwrap();
        assert!(cpu.set().is_subset(out | ns | pid));
        assert!(out.contains(cpu));
    }

    #[test]
    fn paper_q1_join_plan_is_valid() {
        // query r ⟨ns, state⟩ {pid} via qjoin(left lookup+scan, right lookups).
        let (cat, spec, d) = scheduler();
        let ns = cat.col("ns").unwrap();
        let state = cat.col("state").unwrap();
        let pid = cat.col("pid").unwrap();
        let q1 = Plan::join(
            Side::Left,
            Plan::lookup(Plan::scan(Plan::Unit)),
            Plan::lookup(Plan::lookup(Plan::Unit)),
        );
        let body = &d.node(d.root()).body;
        let out = check_valid(&d, spec.fds(), body, ns | state, &q1).unwrap();
        assert!(out.contains(pid));
    }

    #[test]
    fn paper_q2_right_scan_plan_is_valid() {
        let (cat, spec, d) = scheduler();
        let ns = cat.col("ns").unwrap();
        let state = cat.col("state").unwrap();
        let q2 = Plan::lr(Side::Right, Plan::lookup(Plan::scan(Plan::Unit)));
        let body = &d.node(d.root()).body;
        let out = check_valid(&d, spec.fds(), body, ns | state, &q2).unwrap();
        assert!(out.contains(cat.col("pid").unwrap()));
    }

    #[test]
    fn lookup_without_key_rejected() {
        let (cat, spec, d) = scheduler();
        let state = cat.col("state").unwrap();
        // Looking up ns on the left without ns bound.
        let q = Plan::lr(Side::Left, Plan::lookup(Plan::lookup(Plan::Unit)));
        let body = &d.node(d.root()).body;
        let err = check_valid(&d, spec.fds(), body, state.into(), &q).unwrap_err();
        assert!(matches!(err, ValidityError::KeyNotAvailable { .. }));
    }

    #[test]
    fn structure_mismatch_rejected() {
        let (_, spec, d) = scheduler();
        // qscan applied at the root join.
        let q = Plan::scan(Plan::Unit);
        let body = &d.node(d.root()).body;
        let err = check_valid(&d, spec.fds(), body, ColSet::EMPTY, &q).unwrap_err();
        assert!(matches!(err, ValidityError::StructureMismatch { .. }));
    }

    #[test]
    fn join_requires_determinacy() {
        // Join two sides that do not determine each other: an {a,b} relation
        // with no FDs split as a-keyed and b-keyed paths is not joinable
        // without ambiguity... but such a decomposition is already rejected
        // by adequacy. Instead check determinacy machinery on the scheduler:
        // joining with *no* input columns, the left side scan binds
        // {ns,pid,cpu}, right side binds {state,ns,pid,cpu}: A∪B1 → B2 holds
        // via ns,pid → state. Dropping the FD breaks it.
        let (_, _, d) = scheduler();
        let no_fds = relic_spec::FdSet::new();
        let q = Plan::join(
            Side::Left,
            Plan::scan(Plan::scan(Plan::Unit)),
            Plan::scan(Plan::scan(Plan::Unit)),
        );
        let body = &d.node(d.root()).body;
        let err = check_valid(&d, &no_fds, body, ColSet::EMPTY, &q).unwrap_err();
        assert!(matches!(err, ValidityError::JoinUnderdetermined { .. }));
    }

    #[test]
    fn scan_everything_join_is_always_valid() {
        let (cat, spec, d) = scheduler();
        let q = Plan::join(
            Side::Left,
            Plan::scan(Plan::scan(Plan::Unit)),
            Plan::scan(Plan::scan(Plan::Unit)),
        );
        let body = &d.node(d.root()).body;
        let out = check_valid(&d, spec.fds(), body, ColSet::EMPTY, &q).unwrap();
        assert_eq!(out, cat.all());
        assert_eq!(checked_cols(&d, body, &q), cat.all());
    }

    fn event_log() -> (Catalog, RelSpec, Decomposition) {
        let mut cat = Catalog::new();
        let d = parse(
            &mut cat,
            "let u : {host,ts} . {bytes} = unit {bytes} in
             let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
             let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
        )
        .unwrap();
        let spec = RelSpec::new(cat.all()).with_fd(
            cat.col("host").unwrap() | cat.col("ts").unwrap(),
            cat.col("bytes").unwrap().set(),
        );
        (cat, spec, d)
    }

    #[test]
    fn qrange_valid_on_ordered_edge() {
        let (cat, spec, d) = event_log();
        let host = cat.col("host").unwrap();
        let ts = cat.col("ts").unwrap();
        let bytes = cat.col("bytes").unwrap();
        let q = Plan::lookup(Plan::range(Plan::Unit));
        let body = &d.node(d.root()).body;
        let out = check_valid_where(&d, spec.fds(), body, host.set(), ts.set(), &q).unwrap();
        assert!(out.contains(ts) && out.contains(bytes));
    }

    #[test]
    fn qrange_rejected_on_unordered_edge() {
        // Root edge (htable, keyed by host) is unordered.
        let (cat, spec, d) = event_log();
        let host = cat.col("host").unwrap();
        let q = Plan::range(Plan::scan(Plan::Unit));
        let body = &d.node(d.root()).body;
        let err =
            check_valid_where(&d, spec.fds(), body, ColSet::EMPTY, host.set(), &q).unwrap_err();
        assert!(
            matches!(err, ValidityError::RangeNotOrdered { .. }),
            "{err}"
        );
    }

    #[test]
    fn qrange_rejected_without_range_predicate() {
        // ts not in the ranged set → mismatch.
        let (cat, spec, d) = event_log();
        let host = cat.col("host").unwrap();
        let q = Plan::lookup(Plan::range(Plan::Unit));
        let body = &d.node(d.root()).body;
        let err =
            check_valid_where(&d, spec.fds(), body, host.set(), ColSet::EMPTY, &q).unwrap_err();
        assert!(
            matches!(err, ValidityError::RangeColumnMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn qrange_rejected_on_non_map_body() {
        let (_, spec, d) = event_log();
        let q = Plan::range(Plan::Unit);
        // Apply qrange against a unit body (node u).
        let u = d
            .nodes()
            .find(|(_, n)| n.name == "u")
            .map(|(id, _)| id)
            .unwrap();
        let err = check_valid_where(
            &d,
            spec.fds(),
            &d.node(u).body,
            ColSet::EMPTY,
            ColSet::EMPTY,
            &q,
        )
        .unwrap_err();
        assert!(matches!(err, ValidityError::StructureMismatch { .. }));
    }

    #[test]
    fn checked_cols_counts_range_keys() {
        let (cat, _, d) = event_log();
        let host = cat.col("host").unwrap();
        let ts = cat.col("ts").unwrap();
        let q = Plan::lookup(Plan::range(Plan::Unit));
        let body = &d.node(d.root()).body;
        let checked = checked_cols(&d, body, &q);
        assert!(checked.contains(host) && checked.contains(ts));
    }

    #[test]
    fn checked_cols_sees_through_lr() {
        let (cat, _, d) = scheduler();
        let ns = cat.col("ns").unwrap();
        let pid = cat.col("pid").unwrap();
        let cpu = cat.col("cpu").unwrap();
        let state = cat.col("state").unwrap();
        let q = Plan::lr(Side::Left, Plan::lookup(Plan::scan(Plan::Unit)));
        let body = &d.node(d.root()).body;
        let checked = checked_cols(&d, body, &q);
        // Left path checks ns, pid and (via the unit) cpu — but never state.
        assert!(checked.contains(ns) && checked.contains(pid) && checked.contains(cpu));
        assert!(!checked.contains(state));
    }
}
