//! Query plans, validity and the query planner (paper §4.1–§4.3).
//!
//! A *query plan* is a tree of operators superimposed on a decomposition:
//!
//! ```text
//! q ::= qunit | qscan(q) | qlookup(q) | qrange(q) | qlr(q, lr) | qjoin(q₁, q₂, lr)
//! ```
//!
//! (`qrange` is not in the paper's Fig. 7; it implements §2's "comparisons
//! other than equality" extension on ordered map edges.)
//!
//! * [`Plan`] — the operator tree, aligned node-for-node with decomposition
//!   bodies,
//! * [`check_valid`] / [`check_valid_where`] — the validity judgment of
//!   Fig. 8 (a sufficient condition for a plan to faithfully answer a
//!   query, Lemma 2), plus the (QRANGE) rule for comparison patterns,
//! * [`checked_cols`] — a strengthening of Fig. 8 used by the planner: every
//!   pattern column must be *checked* somewhere along every emitted path
//!   (Fig. 8 alone admits plans that never test a pattern column on a
//!   skipped join branch),
//! * [`CostModel`] / [`Planner`] — the §4.3 cost estimator `E` (per-edge
//!   fanout counts `c(u,v)` and per-structure lookup costs `m_ψ(n)`) and the
//!   exhaustive minimum-cost planner,
//! * [`resolve_plan`] / [`ResolvedPlan`] — plans with operators anchored to
//!   concrete decomposition edges and nodes, the form compilers lower from.
//!
//! Plans are *interpreted* by `relic-core` (`dqexec`) and *compiled* by
//! `relic-codegen`.
//!
//! # Example
//!
//! ```
//! use relic_spec::{Catalog, RelSpec};
//! use relic_decomp::parse;
//! use relic_query::{CostModel, Planner};
//!
//! let mut cat = Catalog::new();
//! let d = parse(
//!     &mut cat,
//!     "let z : {src,dst} . {weight} = unit {weight} in
//!      let y : {src} . {dst,weight} = {dst} -[htable]-> z in
//!      let x : {} . {src,dst,weight} = {src} -[htable]-> y in x",
//! )?;
//! let (src, dst, weight) = (
//!     cat.col("src").unwrap(),
//!     cat.col("dst").unwrap(),
//!     cat.col("weight").unwrap(),
//! );
//! let spec = RelSpec::new(src | dst | weight).with_fd(src | dst, weight.into());
//! let planner = Planner::new(&d, &spec, CostModel::uniform(&d, 8.0));
//! // Point query: both keys available → two lookups.
//! let plan = planner.plan_query(src | dst, weight.into())?.plan;
//! assert_eq!(plan.to_string(), "qlookup(qlookup(qunit))");
//! // Successor query: scan the second level.
//! let plan = planner.plan_query(src.into(), dst.into())?.plan;
//! assert_eq!(plan.to_string(), "qlookup(qscan(qunit))");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod plan;
mod planner;
mod resolve;
mod validity;

pub use cost::{CostModel, JoinCostMode};
pub use plan::{Plan, Side};
pub use planner::{PlanError, PlannedQuery, Planner};
pub use resolve::{resolve_plan, ResolveError, ResolvedPlan};
pub use validity::{check_valid, check_valid_where, checked_cols, ValidityError};
