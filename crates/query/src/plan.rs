//! The query-plan operator tree (paper Fig. 7).

use std::fmt;

/// Which side of a join decomposition an operator addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The left operand of `pˆ₁ ⋈ pˆ₂`.
    Left,
    /// The right operand.
    Right,
}

impl Side {
    /// The opposite side.
    pub fn flip(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Left => write!(f, "left"),
            Side::Right => write!(f, "right"),
        }
    }
}

/// A query plan, aligned structurally with a decomposition body:
/// `Unit` sits on `unit C` leaves, `Lookup`/`Scan` on map edges (recursing
/// into the target node's body), and `Lr`/`Join` on join nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// `qunit` — emit the unit tuple if it matches the input.
    Unit,
    /// `qlookup(q)` — look up the (already bound) key columns, then run `q`
    /// on the target instance.
    Lookup {
        /// Sub-plan for the map target's body.
        child: Box<Plan>,
    },
    /// `qscan(q)` — iterate all entries whose keys match the input, running
    /// `q` on each target instance.
    Scan {
        /// Sub-plan for the map target's body.
        child: Box<Plan>,
    },
    /// `qrange(q)` — iterate, in key order, only the entries of an *ordered*
    /// map edge whose final key column lies within the input pattern's
    /// comparison interval, running `q` on each target instance.
    ///
    /// This operator is not in the paper's Fig. 7; it implements §2's
    /// "comparisons other than equality" extension. It is only valid when
    /// the edge's data structure is ordered (`avl`, `sortedvec`), the
    /// range-constrained column is the edge's maximal key column, and every
    /// other key column is equality-bound (the composite-index prefix rule).
    Range {
        /// Sub-plan for the map target's body.
        child: Box<Plan>,
    },
    /// `qlr(q, lr)` — query one side of a join, ignoring the other.
    Lr {
        /// Which side to query.
        side: Side,
        /// The sub-plan for that side.
        inner: Box<Plan>,
    },
    /// `qjoin(q₁, q₂, lr)` — run `first` on side `side`; for each result,
    /// run `second` on the other side; emit the natural join.
    Join {
        /// The side `first` runs on.
        side: Side,
        /// The outer sub-plan.
        first: Box<Plan>,
        /// The inner sub-plan, run once per outer result.
        second: Box<Plan>,
    },
    /// `qhashjoin(q₁, q₂, lr)` — run `first` on side `side`, materializing
    /// its results in a temporary hash index; then run `second` *once* on
    /// the other side, probing the index; emit the natural join.
    ///
    /// Not in the paper's Fig. 7: §4.1 observes that its operators are
    /// constant-space, which "can also be a disadvantage; for example, the
    /// current restrictions would not allow a 'hash-join' strategy", and
    /// that extending the language with non-constant-space operators is
    /// straightforward. This is that operator: each side executes exactly
    /// once (O(n₁ + n₂) instead of O(n₁ × n₂)), at the price of O(n₁) space.
    HashJoin {
        /// The side `first` runs on (the build side).
        side: Side,
        /// The build sub-plan, run once and materialized.
        first: Box<Plan>,
        /// The probe sub-plan, run once against the index.
        second: Box<Plan>,
    },
}

impl Plan {
    /// `qlookup(child)`.
    pub fn lookup(child: Plan) -> Plan {
        Plan::Lookup {
            child: Box::new(child),
        }
    }

    /// `qscan(child)`.
    pub fn scan(child: Plan) -> Plan {
        Plan::Scan {
            child: Box::new(child),
        }
    }

    /// `qrange(child)`.
    pub fn range(child: Plan) -> Plan {
        Plan::Range {
            child: Box::new(child),
        }
    }

    /// `qlr(inner, side)`.
    pub fn lr(side: Side, inner: Plan) -> Plan {
        Plan::Lr {
            side,
            inner: Box::new(inner),
        }
    }

    /// `qjoin(first, second, side)`.
    pub fn join(side: Side, first: Plan, second: Plan) -> Plan {
        Plan::Join {
            side,
            first: Box::new(first),
            second: Box::new(second),
        }
    }

    /// `qhashjoin(first, second, side)`.
    pub fn hash_join(side: Side, first: Plan, second: Plan) -> Plan {
        Plan::HashJoin {
            side,
            first: Box::new(first),
            second: Box::new(second),
        }
    }

    /// Does the plan allocate beyond constant space during execution?
    /// (`qhashjoin` materializes its build side; everything in the paper's
    /// Fig. 7 is constant-space.)
    pub fn is_constant_space(&self) -> bool {
        match self {
            Plan::Unit => true,
            Plan::Lookup { child } | Plan::Scan { child } | Plan::Range { child } => {
                child.is_constant_space()
            }
            Plan::Lr { inner, .. } => inner.is_constant_space(),
            Plan::Join { first, second, .. } => {
                first.is_constant_space() && second.is_constant_space()
            }
            Plan::HashJoin { .. } => false,
        }
    }

    /// Number of operators in the plan.
    pub fn size(&self) -> usize {
        match self {
            Plan::Unit => 1,
            Plan::Lookup { child } | Plan::Scan { child } | Plan::Range { child } => {
                1 + child.size()
            }
            Plan::Lr { inner, .. } => 1 + inner.size(),
            Plan::Join { first, second, .. } | Plan::HashJoin { first, second, .. } => {
                1 + first.size() + second.size()
            }
        }
    }

    /// Number of `qscan` operators — a quick measure of how much of the plan
    /// iterates rather than looks up (`qrange` counts as a bounded scan and
    /// is excluded).
    pub fn scan_count(&self) -> usize {
        match self {
            Plan::Unit => 0,
            Plan::Lookup { child } | Plan::Range { child } => child.scan_count(),
            Plan::Scan { child } => 1 + child.scan_count(),
            Plan::Lr { inner, .. } => inner.scan_count(),
            Plan::Join { first, second, .. } | Plan::HashJoin { first, second, .. } => {
                first.scan_count() + second.scan_count()
            }
        }
    }
}

impl fmt::Display for Plan {
    /// Renders in the paper's notation, e.g.
    /// `qjoin(qlookup(qscan(qunit)), qlookup(qlookup(qunit)), left)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plan::Unit => write!(f, "qunit"),
            Plan::Lookup { child } => write!(f, "qlookup({child})"),
            Plan::Scan { child } => write!(f, "qscan({child})"),
            Plan::Range { child } => write!(f, "qrange({child})"),
            Plan::Lr { side, inner } => write!(f, "qlr({inner}, {side})"),
            Plan::Join {
                side,
                first,
                second,
            } => write!(f, "qjoin({first}, {second}, {side})"),
            Plan::HashJoin {
                side,
                first,
                second,
            } => write!(f, "qhashjoin({first}, {second}, {side})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        // The paper's q_cpu example: qlr(qlookup(qlookup(qunit)), left).
        let q = Plan::lr(Side::Left, Plan::lookup(Plan::lookup(Plan::Unit)));
        assert_eq!(q.to_string(), "qlr(qlookup(qlookup(qunit)), left)");
        // The paper's q1: qjoin(qlookup(qscan(qunit)), qlookup(qlookup(qunit)), left).
        let q1 = Plan::join(
            Side::Left,
            Plan::lookup(Plan::scan(Plan::Unit)),
            Plan::lookup(Plan::lookup(Plan::Unit)),
        );
        assert_eq!(
            q1.to_string(),
            "qjoin(qlookup(qscan(qunit)), qlookup(qlookup(qunit)), left)"
        );
    }

    #[test]
    fn size_and_scan_count() {
        let q = Plan::join(
            Side::Left,
            Plan::lookup(Plan::scan(Plan::Unit)),
            Plan::lookup(Plan::lookup(Plan::Unit)),
        );
        assert_eq!(q.size(), 7);
        assert_eq!(q.scan_count(), 1);
        assert_eq!(Plan::Unit.size(), 1);
        assert_eq!(Plan::Unit.scan_count(), 0);
    }

    #[test]
    fn side_flip() {
        assert_eq!(Side::Left.flip(), Side::Right);
        assert_eq!(Side::Right.flip(), Side::Left);
        assert_eq!(Side::Left.to_string(), "left");
    }
}
