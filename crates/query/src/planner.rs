//! The exhaustive minimum-cost query planner (§4.3).

use crate::{check_valid_where, checked_cols, CostModel, Plan, Side};
use relic_decomp::{Body, Decomposition};
use relic_spec::{ColSet, RelSpec};
use std::error::Error;
use std::fmt;

/// Failure to find a valid plan.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanError {
    /// No valid plan produces the requested output columns from the given
    /// input columns. With an adequate decomposition this indicates columns
    /// outside the relation.
    NoPlan {
        /// Input (pattern) columns.
        avail: ColSet,
        /// Requested output columns.
        out: ColSet,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoPlan { avail, out } => write!(
                f,
                "no valid query plan from input columns {avail:?} to output columns {out:?}"
            ),
        }
    }
}

impl Error for PlanError {}

/// A planned query: the chosen plan, its bound output columns, and its
/// estimated cost.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The minimum-cost valid plan.
    pub plan: Plan,
    /// Columns the plan binds (`B` in Fig. 8).
    pub bound: ColSet,
    /// Estimated cost under the planner's [`CostModel`].
    pub cost: f64,
}

/// The query planner: enumerates every valid plan for a query signature and
/// returns the cheapest (ties broken deterministically by enumeration
/// order).
#[derive(Debug, Clone)]
pub struct Planner<'a> {
    d: &'a Decomposition,
    spec: &'a RelSpec,
    cost: CostModel,
}

impl<'a> Planner<'a> {
    /// Creates a planner for a decomposition and specification.
    pub fn new(d: &'a Decomposition, spec: &'a RelSpec, cost: CostModel) -> Self {
        Planner { d, spec, cost }
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Replaces the cost model (e.g. with profiled fan-outs).
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// Enumerates *all* plans for the root body with input columns `avail`,
    /// returning `(plan, bound columns)` pairs. Exponential in decomposition
    /// size; decompositions are small by construction.
    pub fn enumerate(&self, avail: ColSet) -> Vec<(Plan, ColSet)> {
        self.enum_body(&self.d.node(self.d.root()).body, avail, ColSet::EMPTY)
    }

    /// [`enumerate`](Planner::enumerate) for comparison patterns: `avail`
    /// are the equality-bound columns, `ranged` the interval-constrained
    /// ones (candidates for `qrange` on ordered edges).
    pub fn enumerate_where(&self, avail: ColSet, ranged: ColSet) -> Vec<(Plan, ColSet)> {
        self.enum_body(&self.d.node(self.d.root()).body, avail, ranged)
    }

    fn enum_body(&self, body: &Body, avail: ColSet, ranged: ColSet) -> Vec<(Plan, ColSet)> {
        let fds = self.spec.fds();
        match body {
            Body::Unit(c) => vec![(Plan::Unit, *c)],
            Body::Map(eid) => {
                let e = self.d.edge(*eid);
                let mut out = Vec::new();
                if e.key.is_subset(avail) {
                    for (child, b) in self.enum_body(&self.d.node(e.to).body, avail, ranged) {
                        out.push((Plan::lookup(child), b | e.key));
                    }
                }
                // (QRANGE): ordered edge whose final key column carries the
                // interval, with the earlier key columns equality-bound.
                let rangeable = e.ds.is_ordered()
                    && e.key.max_col().is_some_and(|c| {
                        ranged.contains(c)
                            && !avail.contains(c)
                            && (e.key - c.set()).is_subset(avail)
                    });
                if rangeable {
                    for (child, b) in self.enum_body(&self.d.node(e.to).body, avail | e.key, ranged)
                    {
                        out.push((Plan::range(child), b | e.key));
                    }
                }
                for (child, b) in self.enum_body(&self.d.node(e.to).body, avail | e.key, ranged) {
                    out.push((Plan::scan(child), b | e.key));
                }
                out
            }
            Body::Join(l, r) => {
                let mut out = Vec::new();
                for (side, first_body, second_body) in [(Side::Left, l, r), (Side::Right, r, l)] {
                    for (p, b) in self.enum_body(first_body, avail, ranged) {
                        out.push((Plan::lr(side, p), b));
                    }
                    for (p1, b1) in self.enum_body(first_body, avail, ranged) {
                        for (p2, b2) in self.enum_body(second_body, avail | b1, ranged) {
                            if fds.implies(avail | b1, b2) && fds.implies(avail | b2, b1) {
                                out.push((Plan::join(side, p1.clone(), p2), b1 | b2));
                            }
                        }
                        // qhashjoin candidates: the probe side runs with the
                        // original bindings only (it executes exactly once).
                        for (p2, b2) in self.enum_body(second_body, avail, ranged) {
                            if fds.implies(avail | b1, b2) && fds.implies(avail | b2, b1) {
                                out.push((Plan::hash_join(side, p1.clone(), p2), b1 | b2));
                            }
                        }
                    }
                }
                out
            }
        }
    }

    /// Plans `query r ⟨avail⟩ out`: the cheapest valid plan that binds all of
    /// `out` and checks every pattern column (see
    /// [`checked_cols`](crate::checked_cols)).
    ///
    /// # Errors
    ///
    /// [`PlanError::NoPlan`] if `out` or `avail` mention columns outside the
    /// relation (with an adequate decomposition, the scan-everything plan
    /// covers all in-relation signatures).
    pub fn plan_query(&self, avail: ColSet, out: ColSet) -> Result<PlannedQuery, PlanError> {
        self.plan_by(
            avail,
            ColSet::EMPTY,
            ColSet::EMPTY,
            out,
            |a, b| a < b,
            |_| true,
        )
    }

    /// Like [`plan_query`](Planner::plan_query), restricted to plans
    /// accepted by `admit`. Backends with a limited operator repertoire use
    /// this to carve out the sub-language they implement — e.g.
    /// [`Plan::is_constant_space`] for compilers without materialization
    /// support (`qhashjoin`).
    ///
    /// # Errors
    ///
    /// [`PlanError::NoPlan`] if no admissible valid plan covers the
    /// signature.
    pub fn plan_query_admissible(
        &self,
        avail: ColSet,
        out: ColSet,
        admit: impl Fn(&Plan) -> bool,
    ) -> Result<PlannedQuery, PlanError> {
        self.plan_by(
            avail,
            ColSet::EMPTY,
            ColSet::EMPTY,
            out,
            |a, b| a < b,
            admit,
        )
    }

    /// Like [`plan_query_where`](Planner::plan_query_where), restricted to
    /// plans accepted by `admit`.
    ///
    /// # Errors
    ///
    /// [`PlanError::NoPlan`] if no admissible valid plan covers the
    /// signature.
    pub fn plan_query_where_admissible(
        &self,
        eq: ColSet,
        ranged: ColSet,
        filtered: ColSet,
        out: ColSet,
        admit: impl Fn(&Plan) -> bool,
    ) -> Result<PlannedQuery, PlanError> {
        self.plan_by(eq, ranged, filtered, out, |a, b| a < b, admit)
    }

    /// Plans a comparison query `query_where r P out` (§2's extension):
    /// `eq` are `P`'s equality-constrained columns, `ranged` its
    /// interval-constrained columns (eligible for `qrange`), and `filtered`
    /// its remaining comparison columns (e.g. `≠`, checkable only by
    /// scanning). The chosen plan binds all of `out` and checks *every*
    /// pattern column.
    ///
    /// # Errors
    ///
    /// [`PlanError::NoPlan`] if the signature mentions columns outside the
    /// relation.
    pub fn plan_query_where(
        &self,
        eq: ColSet,
        ranged: ColSet,
        filtered: ColSet,
        out: ColSet,
    ) -> Result<PlannedQuery, PlanError> {
        self.plan_by(eq, ranged, filtered, out, |a, b| a < b, |_| true)
    }

    /// The *worst* valid plan for a signature — used by the planner-ablation
    /// benchmark to show how much planning matters.
    pub fn plan_query_worst(&self, avail: ColSet, out: ColSet) -> Result<PlannedQuery, PlanError> {
        self.plan_by(
            avail,
            ColSet::EMPTY,
            ColSet::EMPTY,
            out,
            |a, b| a > b,
            |_| true,
        )
    }

    fn plan_by(
        &self,
        avail: ColSet,
        ranged: ColSet,
        filtered: ColSet,
        out: ColSet,
        better: impl Fn(f64, f64) -> bool,
        admit: impl Fn(&Plan) -> bool,
    ) -> Result<PlannedQuery, PlanError> {
        let body = &self.d.node(self.d.root()).body;
        let pattern_cols = avail | ranged | filtered;
        let mut best: Option<PlannedQuery> = None;
        for (plan, bound) in self.enumerate_where(avail, ranged) {
            if !out.is_subset(bound | avail) {
                continue;
            }
            if !admit(&plan) {
                continue;
            }
            if !pattern_cols
                .intersection(self.spec.cols())
                .is_subset(checked_cols(self.d, body, &plan))
            {
                continue;
            }
            debug_assert!(
                check_valid_where(self.d, self.spec.fds(), body, avail, ranged, &plan).is_ok(),
                "enumerated plan must be valid"
            );
            let cost = self.cost.cost(self.d, body, &plan);
            match &best {
                Some(b) if !better(cost, b.cost) => {}
                _ => {
                    best = Some(PlannedQuery { plan, bound, cost });
                }
            }
        }
        best.ok_or(PlanError::NoPlan { avail, out })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relic_decomp::parse;
    use relic_spec::Catalog;

    fn scheduler() -> (Catalog, RelSpec, Decomposition) {
        let mut cat = Catalog::new();
        let d = parse(
            &mut cat,
            "let w : {ns,pid,state} . {cpu} = unit {cpu} in
             let y : {ns} . {pid,cpu} = {pid} -[htable]-> w in
             let z : {state} . {ns,pid,cpu} = {ns,pid} -[dlist]-> w in
             let x : {} . {ns,pid,state,cpu} =
               ({ns} -[htable]-> y) join ({state} -[vec]-> z) in x",
        )
        .unwrap();
        let spec = RelSpec::new(cat.all()).with_fd(
            cat.col("ns").unwrap() | cat.col("pid").unwrap(),
            cat.col("state").unwrap() | cat.col("cpu").unwrap(),
        );
        (cat, spec, d)
    }

    #[test]
    fn point_query_uses_left_lookups() {
        let (cat, spec, d) = scheduler();
        let ns = cat.col("ns").unwrap();
        let pid = cat.col("pid").unwrap();
        let cpu = cat.col("cpu").unwrap();
        let p = Planner::new(&d, &spec, CostModel::uniform(&d, 32.0));
        let got = p.plan_query(ns | pid, cpu.into()).unwrap();
        // The paper's q_cpu: qlr(qlookup(qlookup(qunit)), left).
        assert_eq!(got.plan.to_string(), "qlr(qlookup(qlookup(qunit)), left)");
    }

    #[test]
    fn state_query_scans_right_side() {
        let (cat, spec, d) = scheduler();
        let state = cat.col("state").unwrap();
        let ns = cat.col("ns").unwrap();
        let pid = cat.col("pid").unwrap();
        let p = Planner::new(&d, &spec, CostModel::uniform(&d, 32.0));
        let got = p.plan_query(state.into(), ns | pid).unwrap();
        // Enumerate running processes: lookup state, scan its dlist.
        assert_eq!(
            got.plan.to_string(),
            "qlr(qscan(qunit), right)".replace("qscan(qunit)", "qlookup(qscan(qunit))")
        );
    }

    #[test]
    fn ns_state_query_prefers_cheaper_strategy() {
        // The paper's motivating query ⟨ns, state⟩ → {pid}: candidates q1
        // (join) and q2 (right-side scan). Under a uniform fan-out the
        // planner must pick one of them and it must check both pattern
        // columns.
        let (cat, spec, d) = scheduler();
        let ns = cat.col("ns").unwrap();
        let state = cat.col("state").unwrap();
        let pid = cat.col("pid").unwrap();
        let p = Planner::new(&d, &spec, CostModel::uniform(&d, 32.0));
        let got = p.plan_query(ns | state, pid.into()).unwrap();
        let body = &d.node(d.root()).body;
        let checked = checked_cols(&d, body, &got.plan);
        assert!(
            checked.contains(ns) && checked.contains(state),
            "{}",
            got.plan
        );
    }

    #[test]
    fn pattern_coverage_rejects_blind_plans() {
        // Query ⟨state⟩ with output {cpu}: the left-only path binds cpu but
        // never checks state, so the planner must not choose a pure-left lr.
        let (cat, spec, d) = scheduler();
        let state = cat.col("state").unwrap();
        let cpu = cat.col("cpu").unwrap();
        let p = Planner::new(&d, &spec, CostModel::uniform(&d, 32.0));
        let got = p.plan_query(state.into(), cpu.into()).unwrap();
        let body = &d.node(d.root()).body;
        assert!(
            checked_cols(&d, body, &got.plan).contains(state),
            "{}",
            got.plan
        );
    }

    #[test]
    fn full_scan_plan_exists_for_empty_pattern() {
        let (cat, spec, d) = scheduler();
        let p = Planner::new(&d, &spec, CostModel::uniform(&d, 32.0));
        let got = p.plan_query(ColSet::EMPTY, cat.all()).unwrap();
        assert!(got.bound == cat.all());
    }

    #[test]
    fn no_plan_for_foreign_columns() {
        let (mut cat, spec, d) = scheduler();
        let alien = cat.intern("alien");
        let p = Planner::new(&d, &spec, CostModel::uniform(&d, 32.0));
        let err = p.plan_query(ColSet::EMPTY, alien.into()).unwrap_err();
        assert!(matches!(err, PlanError::NoPlan { .. }));
    }

    #[test]
    fn worst_plan_costs_at_least_best() {
        let (cat, spec, d) = scheduler();
        let ns = cat.col("ns").unwrap();
        let pid = cat.col("pid").unwrap();
        let p = Planner::new(&d, &spec, CostModel::uniform(&d, 32.0));
        let best = p.plan_query(ns | pid, cat.all()).unwrap();
        let worst = p.plan_query_worst(ns | pid, cat.all()).unwrap();
        assert!(worst.cost >= best.cost);
    }

    #[test]
    fn fanout_shifts_plan_choice() {
        // With a tiny state fan-out (2 states) and huge ns fan-out, scanning
        // the right side should win the ⟨state⟩ → {ns, pid} query; with the
        // reverse, plans that avoid the huge right-side lists win.
        let (cat, spec, d) = scheduler();
        let state = cat.col("state").unwrap();
        let ns = cat.col("ns").unwrap();
        let pid = cat.col("pid").unwrap();
        let mut small_state = CostModel::uniform(&d, 1000.0);
        // Edge order: y->w (pid), z->w (ns,pid), x->y (ns), x->z (state).
        for (eid, e) in d.edges() {
            if e.key == state.set() {
                small_state.set_fanout(eid, 2.0);
            }
        }
        let p = Planner::new(&d, &spec, small_state);
        let got = p.plan_query(state.into(), ns | pid).unwrap();
        assert_eq!(got.plan.to_string(), "qlr(qlookup(qscan(qunit)), right)");
    }

    #[test]
    fn where_planner_prefers_range_to_scan() {
        let mut cat = Catalog::new();
        let d = parse(
            &mut cat,
            "let u : {host,ts} . {bytes} = unit {bytes} in
             let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
             let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
        )
        .unwrap();
        let host = cat.col("host").unwrap();
        let ts = cat.col("ts").unwrap();
        let bytes = cat.col("bytes").unwrap();
        let spec = RelSpec::new(cat.all()).with_fd(host | ts, bytes.set());
        let p = Planner::new(&d, &spec, CostModel::uniform(&d, 64.0));
        let got = p
            .plan_query_where(host.set(), ts.set(), ColSet::EMPTY, bytes.set())
            .unwrap();
        assert_eq!(got.plan.to_string(), "qlookup(qrange(qunit))");
        // The range plan must be strictly cheaper than the scan fallback.
        let scan = Plan::lookup(Plan::scan(Plan::Unit));
        let body = &d.node(d.root()).body;
        assert!(got.cost < p.cost_model().cost(&d, body, &scan));
    }

    #[test]
    fn where_planner_covers_filter_only_columns() {
        // A ≠-predicate on ts cannot drive qrange; the plan must still check
        // ts (scan), not skip it via a blind path.
        let mut cat = Catalog::new();
        let d = parse(
            &mut cat,
            "let u : {host,ts} . {bytes} = unit {bytes} in
             let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
             let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
        )
        .unwrap();
        let host = cat.col("host").unwrap();
        let ts = cat.col("ts").unwrap();
        let bytes = cat.col("bytes").unwrap();
        let spec = RelSpec::new(cat.all()).with_fd(host | ts, bytes.set());
        let p = Planner::new(&d, &spec, CostModel::uniform(&d, 64.0));
        let got = p
            .plan_query_where(host.set(), ColSet::EMPTY, ts.set(), bytes.set())
            .unwrap();
        let body = &d.node(d.root()).body;
        assert!(
            checked_cols(&d, body, &got.plan).contains(ts),
            "{}",
            got.plan
        );
        assert_eq!(got.plan.to_string(), "qlookup(qscan(qunit))");
    }

    #[test]
    fn range_selectivity_controls_range_vs_scan_cost() {
        let mut cat = Catalog::new();
        let d = parse(
            &mut cat,
            "let u : {ts} . {bytes} = unit {bytes} in
             let x : {} . {ts,bytes} = {ts} -[sortedvec]-> u in x",
        )
        .unwrap();
        let ts = cat.col("ts").unwrap();
        let bytes = cat.col("bytes").unwrap();
        let spec = RelSpec::new(cat.all()).with_fd(ts.set(), bytes.set());
        let body = &d.node(d.root()).body;
        let range = Plan::range(Plan::Unit);
        let scan = Plan::scan(Plan::Unit);
        let mut narrow = CostModel::uniform(&d, 1000.0);
        narrow.set_range_selectivity(0.01);
        assert!(narrow.cost(&d, body, &range) < narrow.cost(&d, body, &scan));
        let mut wide = CostModel::uniform(&d, 1000.0);
        wide.set_range_selectivity(1.0);
        // At selectivity 1 a range still pays the seek on top of the scan.
        assert!(wide.cost(&d, body, &range) >= wide.cost(&d, body, &scan));
        let _ = spec;
    }

    #[test]
    fn enumerate_includes_paper_plans() {
        let (cat, spec, d) = scheduler();
        let ns = cat.col("ns").unwrap();
        let state = cat.col("state").unwrap();
        let p = Planner::new(&d, &spec, CostModel::uniform(&d, 32.0));
        let plans: Vec<String> = p
            .enumerate(ns | state)
            .into_iter()
            .map(|(q, _)| q.to_string())
            .collect();
        assert!(plans
            .contains(&"qjoin(qlookup(qscan(qunit)), qlookup(qlookup(qunit)), left)".to_string()));
        assert!(plans.contains(&"qlr(qlookup(qscan(qunit)), right)".to_string()));
    }
}
