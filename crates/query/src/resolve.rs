//! Plan resolution: aligning a [`Plan`] with the concrete decomposition
//! graph it runs over.
//!
//! A [`Plan`] is a bare operator tree — `qlookup`/`qscan` operators say
//! *that* an edge is probed or iterated, but which edge is implicit in the
//! plan's structural alignment with the decomposition's bodies (`qlr`
//! operators pick join sides, `Map` leaves carry the edge ids). Backends
//! that *compile* plans need that alignment made explicit: a
//! [`ResolvedPlan`] is the same tree with every operator annotated with the
//! [`EdgeId`] or [`NodeId`] it addresses and with `qlr` dissolved into the
//! side it selects.
//!
//! Resolution is purely structural; it does not re-check validity (use
//! [`check_valid`](crate::check_valid) for that).

use crate::{Plan, Side};
use relic_decomp::{Body, Decomposition, EdgeId, NodeId};
use relic_spec::ColSet;
use std::error::Error;
use std::fmt;

/// A [`Plan`] with operators anchored to the decomposition: edges named,
/// unit leaves tied to their owning node, `qlr` dissolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolvedPlan {
    /// `qunit` at a `unit C` leaf of `node`'s body.
    Unit {
        /// The node whose body holds the unit leaf.
        node: NodeId,
        /// The leaf's columns `C`.
        cols: ColSet,
    },
    /// `qlookup` probing `edge` with its (bound) key columns.
    Lookup {
        /// The probed map edge.
        edge: EdgeId,
        /// Sub-plan for the edge target's body.
        child: Box<ResolvedPlan>,
    },
    /// `qscan` iterating every entry of `edge`.
    Scan {
        /// The iterated map edge.
        edge: EdgeId,
        /// Sub-plan for the edge target's body.
        child: Box<ResolvedPlan>,
    },
    /// `qrange` seeking an ordered run of `edge`.
    Range {
        /// The seeked (ordered) map edge.
        edge: EdgeId,
        /// Sub-plan for the edge target's body.
        child: Box<ResolvedPlan>,
    },
    /// `qjoin`: run `first`; for each of its results, run `second`. The
    /// original join sides are irrelevant once both branches are anchored
    /// to concrete edges.
    Join {
        /// The outer sub-plan.
        first: Box<ResolvedPlan>,
        /// The inner sub-plan, run once per outer result.
        second: Box<ResolvedPlan>,
    },
    /// `qhashjoin`: run `first` once, materialized; probe from `second`.
    HashJoin {
        /// The build sub-plan.
        first: Box<ResolvedPlan>,
        /// The probe sub-plan.
        second: Box<ResolvedPlan>,
    },
}

/// Failure to align a plan with a decomposition body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveError(String);

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan does not align with decomposition body: {}", self.0)
    }
}

impl Error for ResolveError {}

/// Resolves `plan` against the root body of `d`.
///
/// # Errors
///
/// [`ResolveError`] if the plan's shape does not match the decomposition's
/// body structure (a valid plan for `d` always resolves).
pub fn resolve_plan(d: &Decomposition, plan: &Plan) -> Result<ResolvedPlan, ResolveError> {
    resolve_at(d, d.root(), &d.node(d.root()).body, plan)
}

fn resolve_at(
    d: &Decomposition,
    node: NodeId,
    body: &Body,
    plan: &Plan,
) -> Result<ResolvedPlan, ResolveError> {
    match (plan, body) {
        (Plan::Unit, Body::Unit(c)) => Ok(ResolvedPlan::Unit { node, cols: *c }),
        (Plan::Lookup { child }, Body::Map(eid)) => {
            let to = d.edge(*eid).to;
            Ok(ResolvedPlan::Lookup {
                edge: *eid,
                child: Box::new(resolve_at(d, to, &d.node(to).body, child)?),
            })
        }
        (Plan::Scan { child }, Body::Map(eid)) => {
            let to = d.edge(*eid).to;
            Ok(ResolvedPlan::Scan {
                edge: *eid,
                child: Box::new(resolve_at(d, to, &d.node(to).body, child)?),
            })
        }
        (Plan::Range { child }, Body::Map(eid)) => {
            let to = d.edge(*eid).to;
            Ok(ResolvedPlan::Range {
                edge: *eid,
                child: Box::new(resolve_at(d, to, &d.node(to).body, child)?),
            })
        }
        (Plan::Lr { side, inner }, Body::Join(l, r)) => {
            let sub = match side {
                Side::Left => l,
                Side::Right => r,
            };
            resolve_at(d, node, sub, inner)
        }
        (
            Plan::Join {
                side,
                first,
                second,
            },
            Body::Join(l, r),
        ) => {
            let (fb, sb) = match side {
                Side::Left => (l, r),
                Side::Right => (r, l),
            };
            Ok(ResolvedPlan::Join {
                first: Box::new(resolve_at(d, node, fb, first)?),
                second: Box::new(resolve_at(d, node, sb, second)?),
            })
        }
        (
            Plan::HashJoin {
                side,
                first,
                second,
            },
            Body::Join(l, r),
        ) => {
            let (fb, sb) = match side {
                Side::Left => (l, r),
                Side::Right => (r, l),
            };
            Ok(ResolvedPlan::HashJoin {
                first: Box::new(resolve_at(d, node, fb, first)?),
                second: Box::new(resolve_at(d, node, sb, second)?),
            })
        }
        (p, _) => Err(ResolveError(p.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostModel, Planner};
    use relic_decomp::parse;
    use relic_spec::{Catalog, RelSpec};

    #[test]
    fn resolves_lr_to_concrete_edges() {
        let mut cat = Catalog::new();
        let d = parse(
            &mut cat,
            "let w : {ns,pid,state} . {cpu} = unit {cpu} in
             let y : {ns} . {pid,cpu} = {pid} -[htable]-> w in
             let z : {state} . {ns,pid,cpu} = {ns,pid} -[dlist]-> w in
             let x : {} . {ns,pid,state,cpu} =
               ({ns} -[htable]-> y) join ({state} -[vec]-> z) in x",
        )
        .unwrap();
        let ns = cat.col("ns").unwrap();
        let pid = cat.col("pid").unwrap();
        let cpu = cat.col("cpu").unwrap();
        let spec = RelSpec::new(cat.all()).with_fd(ns | pid, cat.all() - (ns | pid));
        let planner = Planner::new(&d, &spec, CostModel::uniform(&d, 16.0));
        let planned = planner.plan_query(ns | pid, cpu.into()).unwrap();
        // qlr(qlookup(qlookup(qunit)), left): the lr dissolves; the two
        // lookups anchor to the x→y and y→w edges.
        let resolved = resolve_plan(&d, &planned.plan).unwrap();
        let ResolvedPlan::Lookup { edge, child } = resolved else {
            panic!("expected lookup at root, got {resolved:?}");
        };
        assert_eq!(d.edge(edge).key, ns.set());
        let ResolvedPlan::Lookup { edge, child } = *child else {
            panic!("expected inner lookup");
        };
        assert_eq!(d.edge(edge).key, pid.set());
        let ResolvedPlan::Unit { node, cols } = *child else {
            panic!("expected unit leaf");
        };
        assert_eq!(d.node(node).name, "w");
        assert_eq!(cols, cpu.set());
    }

    #[test]
    fn misaligned_plan_is_an_error() {
        let mut cat = Catalog::new();
        let d = parse(
            &mut cat,
            "let w : {k} . {v} = unit {v} in
             let x : {} . {k,v} = {k} -[htable]-> w in x",
        )
        .unwrap();
        // A join plan cannot align with a map body.
        let bogus = Plan::join(Side::Left, Plan::Unit, Plan::Unit);
        assert!(resolve_plan(&d, &bogus).is_err());
    }
}
