//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **sharing** — Fig. 12 #5 (shared leaf) vs #9 (unshared leaves) on an
//!   insert/delete-heavy workload: sharing halves leaf allocations and makes
//!   removal touch one physical node,
//! * **intrusive** — intrusive vs non-intrusive lists on removal: O(1)
//!   unlink-by-handle vs O(n) key scan,
//! * **structures** — the same chain shape with each container kind ψ under
//!   a point-lookup workload (the `m_ψ(n)` ladder),
//! * **planner** — executing the planner's chosen plan vs the worst valid
//!   plan for the paper's motivating query.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use relic_core::SynthRelation;
use relic_decomp::parse;
use relic_spec::{Catalog, RelSpec, Tuple, Value};
use relic_systems::graph::{graph_spec, skewed_graph, GraphBench};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

fn bench_sharing(c: &mut Criterion) {
    let (mut cat, cols, spec) = graph_spec();
    let workload = skewed_graph(150, 1_200, 0xAB1);
    let mut group = c.benchmark_group("ablation_sharing");
    for (label, src) in [
        (
            "shared_leaf_#5",
            "let w : {src,dst} . {weight} = unit {weight} in
             let y : {src} . {dst,weight} = {dst} -[ilist]-> w in
             let z : {dst} . {src,weight} = {src} -[ilist]-> w in
             let x : {} . {src,dst,weight} =
               ({src} -[htable]-> y) join ({dst} -[htable]-> z) in x",
        ),
        (
            "unshared_leaves_#9",
            "let l : {src,dst} . {weight} = unit {weight} in
             let r : {src,dst} . {weight} = unit {weight} in
             let y : {src} . {dst,weight} = {dst} -[ilist]-> l in
             let z : {dst} . {src,weight} = {src} -[ilist]-> r in
             let x : {} . {src,dst,weight} =
               ({src} -[htable]-> y) join ({dst} -[htable]-> z) in x",
        ),
    ] {
        let d = parse(&mut cat, src).unwrap();
        group.bench_function(label, |b| {
            b.iter_batched(
                || GraphBench::build(&cat, cols, &spec, d.clone(), &workload).unwrap(),
                |mut bench| bench.delete_all_edges(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_intrusive(c: &mut Criterion) {
    let (mut cat, cols, spec) = graph_spec();
    let workload = skewed_graph(60, 1_500, 0xAB2);
    let mut group = c.benchmark_group("ablation_intrusive");
    for (label, list_kind) in [
        ("intrusive_ilist", "ilist"),
        ("non_intrusive_dlist", "dlist"),
    ] {
        let src = format!(
            "let w : {{src,dst}} . {{weight}} = unit {{weight}} in
             let y : {{src}} . {{dst,weight}} = {{dst}} -[{list_kind}]-> w in
             let z : {{dst}} . {{src,weight}} = {{src}} -[{list_kind}]-> w in
             let x : {{}} . {{src,dst,weight}} =
               ({{src}} -[htable]-> y) join ({{dst}} -[htable]-> z) in x"
        );
        let d = parse(&mut cat, &src).unwrap();
        group.bench_function(label, |b| {
            b.iter_batched(
                || GraphBench::build(&cat, cols, &spec, d.clone(), &workload).unwrap(),
                |mut bench| bench.delete_all_edges(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_structures");
    for kind in ["htable", "avl", "sortedvec", "vec", "dlist"] {
        let mut cat = Catalog::new();
        let src = format!(
            "let w : {{k}} . {{v}} = unit {{v}} in
             let x : {{}} . {{k,v}} = {{k}} -[{kind}]-> w in x"
        );
        let d = parse(&mut cat, &src).unwrap();
        let k = cat.col("k").unwrap();
        let v = cat.col("v").unwrap();
        let spec = RelSpec::new(k | v).with_fd(k.into(), v.into());
        let mut rel = SynthRelation::new(&cat, spec, d).unwrap();
        rel.set_fd_checking(false);
        for i in 0..512i64 {
            rel.insert(Tuple::from_pairs([
                (k, Value::from(i)),
                (v, Value::from(i * 3)),
            ]))
            .unwrap();
        }
        group.bench_function(format!("lookup_512/{kind}"), |b| {
            b.iter(|| {
                let mut sum = 0i64;
                for i in 0..512i64 {
                    let pat = Tuple::from_pairs([(k, Value::from(i))]);
                    rel.query_for_each(&pat, v.into(), |t| {
                        sum += t.get(v).and_then(Value::as_int).unwrap();
                    })
                    .unwrap();
                }
                sum
            })
        });
    }
    group.finish();
}

fn bench_planner(c: &mut Criterion) {
    // The paper's motivating query: running processes in one namespace,
    // executed with the planner's chosen plan vs the worst valid plan.
    let mut cat = Catalog::new();
    let d = parse(
        &mut cat,
        "let w : {ns,pid,state} . {cpu} = unit {cpu} in
         let y : {ns} . {pid,cpu} = {pid} -[htable]-> w in
         let z : {state} . {ns,pid,cpu} = {ns,pid} -[dlist]-> w in
         let x : {} . {ns,pid,state,cpu} =
           ({ns} -[htable]-> y) join ({state} -[vec]-> z) in x",
    )
    .unwrap();
    let ns = cat.col("ns").unwrap();
    let pid = cat.col("pid").unwrap();
    let state = cat.col("state").unwrap();
    let cpu = cat.col("cpu").unwrap();
    let spec = RelSpec::new(cat.all()).with_fd(ns | pid, state | cpu);
    let mut rel = SynthRelation::new(&cat, spec.clone(), d.clone()).unwrap();
    rel.set_fd_checking(false);
    for i in 0..2_000i64 {
        rel.insert(Tuple::from_pairs([
            (ns, Value::from(i % 50)),
            (pid, Value::from(i)),
            (state, Value::from(if i % 2 == 0 { "R" } else { "S" })),
            (cpu, Value::from(0)),
        ]))
        .unwrap();
    }
    // Plans for query ⟨ns, state⟩ → {pid}.
    let planner = relic_query::Planner::new(&d, &spec, rel.observed_cost_model());
    let best = planner.plan_query(ns | state, pid.into()).unwrap();
    let worst = planner.plan_query_worst(ns | state, pid.into()).unwrap();
    assert!(worst.cost >= best.cost);
    let mut group = c.benchmark_group("ablation_planner");
    // Executing through the public API uses the cached best plan; the worst
    // plan is exercised by querying with a cost model that inverts choice —
    // here we simply measure best-plan execution vs a full-scan query, the
    // floor and ceiling of the plan space.
    group.bench_function("planned_point_query", |b| {
        b.iter(|| {
            let mut n = 0;
            for v in 0..50i64 {
                let pat = Tuple::from_pairs([(ns, Value::from(v)), (state, Value::from("R"))]);
                rel.query_for_each(&pat, pid.into(), |_| n += 1).unwrap();
            }
            n
        })
    });
    group.bench_function("full_scan_filter", |b| {
        b.iter(|| {
            let mut n = 0;
            for v in 0..50i64 {
                rel.query_for_each(&Tuple::empty(), cat.all(), |t| {
                    if t.get(ns) == Some(&Value::from(v)) && t.get(state) == Some(&Value::from("R"))
                    {
                        n += 1;
                    }
                })
                .unwrap();
            }
            n
        })
    });
    group.finish();
}

fn bench_range(c: &mut Criterion) {
    // §2's comparison extension: a narrow time-window query over an event
    // log, answered by an ordered seek (avl + qrange) vs scan-and-filter
    // (htable + qscan). The ordered seek touches O(log n + k) entries, the
    // scan O(n) — the gap widens with relation size.
    use relic_spec::{Pattern, Pred};
    let mut cat = Catalog::new();
    let host = cat.intern("host");
    let ts = cat.intern("ts");
    let bytes = cat.intern("bytes");
    let spec = RelSpec::new(host | ts | bytes).with_fd(host | ts, bytes.into());
    let mut group = c.benchmark_group("ablation_range");
    for (label, src) in [
        (
            "ordered_seek_avl",
            "let u : {host,ts} . {bytes} = unit {bytes} in
             let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
             let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
        ),
        (
            "scan_filter_htable",
            "let u : {host,ts} . {bytes} = unit {bytes} in
             let h : {host} . {ts,bytes} = {ts} -[htable]-> u in
             let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
        ),
    ] {
        let d = parse(&mut cat, src).unwrap();
        let mut rel = SynthRelation::new(&cat, spec.clone(), d).unwrap();
        rel.set_fd_checking(false);
        for h in 0..8i64 {
            for t in 0..4_000i64 {
                rel.insert(Tuple::from_pairs([
                    (host, Value::from(h)),
                    (ts, Value::from(t)),
                    (bytes, Value::from((h + t) % 997)),
                ]))
                .unwrap();
            }
        }
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut n = 0usize;
                for h in 0..8i64 {
                    let p = Pattern::new()
                        .with(host, Pred::Eq(Value::from(h)))
                        .with(ts, Pred::Between(Value::from(1_000), Value::from(1_031)));
                    rel.query_where_for_each(&p, bytes.into(), |_| n += 1)
                        .unwrap();
                }
                n
            })
        });
    }
    group.finish();
}

fn bench_hashjoin(c: &mut Criterion) {
    // §4.1's non-constant-space extension: full enumeration of a relation
    // split into two single-attribute panels. Nested join execution re-scans
    // one panel per outer tuple (O(n²)); the hash join runs each side once
    // (O(n), O(n) space).
    use relic_query::JoinCostMode;
    let mut cat = Catalog::new();
    let d = parse(
        &mut cat,
        "let wl : {a,id} . {} = unit {} in
         let wr : {b,id} . {} = unit {} in
         let l : {a} . {id} = {id} -[htable]-> wl in
         let r : {b} . {id} = {id} -[htable]-> wr in
         let x : {} . {id,a,b} = ({a} -[htable]-> l) join ({b} -[htable]-> r) in x",
    )
    .unwrap();
    let id = cat.col("id").unwrap();
    let a = cat.col("a").unwrap();
    let b = cat.col("b").unwrap();
    let spec = RelSpec::new(id | a | b).with_fd(id.set(), a | b);
    let mut rel = SynthRelation::new(&cat, spec, d).unwrap();
    rel.set_fd_checking(false);
    for i in 0..3_000i64 {
        rel.insert(Tuple::from_pairs([
            (id, Value::from(i)),
            (a, Value::from(i % 16)),
            (b, Value::from(i % 24)),
        ]))
        .unwrap();
    }
    rel.set_cost_model(rel.observed_cost_model());
    let mut group = c.benchmark_group("ablation_hashjoin");
    group.sample_size(10);
    rel.set_join_cost_mode(JoinCostMode::Optimistic);
    assert!(rel
        .plan_for(relic_spec::ColSet::EMPTY, cat.all())
        .unwrap()
        .contains("qjoin"));
    group.bench_function("nested_join", |bch| {
        bch.iter(|| {
            let mut n = 0usize;
            rel.query_for_each(&Tuple::empty(), cat.all(), |_| n += 1)
                .unwrap();
            n
        })
    });
    rel.set_join_cost_mode(JoinCostMode::Realistic);
    assert!(rel
        .plan_for(relic_spec::ColSet::EMPTY, cat.all())
        .unwrap()
        .contains("qhashjoin"));
    group.bench_function("hash_join", |bch| {
        bch.iter(|| {
            let mut n = 0usize;
            rel.query_for_each(&Tuple::empty(), cat.all(), |_| n += 1)
                .unwrap();
            n
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sharing, bench_intrusive, bench_structures, bench_planner, bench_range,
        bench_hashjoin
}
criterion_main!(benches);
