//! Concurrent-relation scaling: throughput of a shard-disjoint insert/query
//! mix as threads grow, coarse lock (1 shard) vs partitioned (16 shards).
//!
//! The PLDI 2012 follow-on's headline is that domain-locked synthesized
//! containers scale where a global lock serializes; this bench reproduces
//! that shape: with one shard every thread contends on one writer lock,
//! with 16 shards shard-disjoint threads proceed in parallel.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use relic_concurrent::ConcurrentRelation;
use relic_decomp::parse;
use relic_spec::{Catalog, ColSet, RelSpec, Tuple, Value};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(600))
}

fn setup(cat: &mut Catalog) -> (RelSpec, relic_decomp::Decomposition) {
    let d = parse(
        cat,
        "let u : {local,remote} . {bytes} = unit {bytes} in
         let l : {local} . {remote,bytes} = {remote} -[htable]-> u in
         let x : {} . {local,remote,bytes} = {local} -[htable]-> l in x",
    )
    .unwrap();
    let local = cat.col("local").unwrap();
    let remote = cat.col("remote").unwrap();
    let bytes = cat.col("bytes").unwrap();
    let spec = RelSpec::new(local | remote | bytes).with_fd(local | remote, bytes.into());
    (spec, d)
}

/// Each thread inserts and point-queries flows for its own local-host range.
fn run_mix(rel: &ConcurrentRelation, cat: &Catalog, threads: i64, ops: i64) {
    let local = cat.col("local").unwrap();
    let remote = cat.col("remote").unwrap();
    let bytes = cat.col("bytes").unwrap();
    std::thread::scope(|s| {
        for th in 0..threads {
            let rel = &rel;
            s.spawn(move || {
                let mut seed = 0xC0FFEEu64.wrapping_mul(th as u64 + 1);
                for _ in 0..ops {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    let lo = th * 32 + (seed % 32) as i64;
                    let re = (seed >> 8) as i64 % 64;
                    let t = Tuple::from_pairs([
                        (local, Value::from(lo)),
                        (remote, Value::from(re)),
                        (bytes, Value::from(0)),
                    ]);
                    let _ = rel.insert(t);
                    let pat = Tuple::from_pairs([(local, Value::from(lo))]);
                    let _ = rel.query(&pat, remote | bytes).unwrap();
                }
            });
        }
    });
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent_scaling");
    let mut cat = Catalog::new();
    let (spec, d) = setup(&mut cat);
    let local = cat.col("local").unwrap();
    // Constant total work (8k ops) split across the worker threads: with
    // shard-disjoint traffic and enough shards, wall time should *fall* as
    // threads rise; with one global lock it cannot.
    const TOTAL_OPS: i64 = 8_000;
    for shards in [1usize, 16] {
        for threads in [1i64, 2, 4] {
            let label = format!("shards{shards}");
            let cat = cat.clone();
            let spec = spec.clone();
            let d = d.clone();
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                b.iter_batched(
                    || {
                        ConcurrentRelation::new(
                            &cat,
                            spec.clone(),
                            d.clone(),
                            ColSet::from(local),
                            shards,
                        )
                        .unwrap()
                    },
                    |rel| {
                        run_mix(&rel, &cat, threads, TOTAL_OPS / threads);
                        rel.len()
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_scaling
}
criterion_main!(benches);
