//! §6.1 cache microbenchmark ("based on the real systems"): the thttpd-style
//! mmap cache under a skewed request stream, across decompositions.

use criterion::{criterion_group, criterion_main, Criterion};
use relic_core::Bindings;
use relic_spec::{Tuple, Value};
use relic_systems::thttpd::{
    mmap_spec, request_stream, run_cache, BaselineMmapCache, SynthMmapCache,
};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

fn bench_cache(c: &mut Criterion) {
    let reqs = request_stream(3_000, 400, 0xCAC4E);
    let mut group = c.benchmark_group("micro_cache");
    group.bench_function("baseline_hashmap", |b| {
        b.iter(|| {
            let mut cache = BaselineMmapCache::new();
            run_cache(&mut cache, &reqs, 500, 800).0.len()
        })
    });
    for (label, src) in [
        (
            "synth_htable",
            "let w : {path} . {addr,size,stamp} = unit {addr,size,stamp} in
             let x : {} . {path,addr,size,stamp} = {path} -[htable]-> w in x",
        ),
        (
            "synth_avl",
            "let w : {path} . {addr,size,stamp} = unit {addr,size,stamp} in
             let x : {} . {path,addr,size,stamp} = {path} -[avl]-> w in x",
        ),
        (
            "synth_sortedvec",
            "let w : {path} . {addr,size,stamp} = unit {addr,size,stamp} in
             let x : {} . {path,addr,size,stamp} = {path} -[sortedvec]-> w in x",
        ),
    ] {
        let (mut cat, cols, spec) = mmap_spec();
        let d = relic_decomp::parse(&mut cat, src).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut cache = SynthMmapCache::new(&cat, cols, &spec, d.clone()).unwrap();
                run_cache(&mut cache, &reqs, 500, 800).0.len()
            })
        });
    }
    group.finish();
}

/// The warm hit path in isolation: point lookups by path against a standing
/// cache, through the tuple-materializing API versus the zero-allocation
/// bindings API.
fn bench_hit_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_cache_hit_path");
    let (mut cat, cols, spec) = mmap_spec();
    let d = relic_decomp::parse(
        &mut cat,
        "let w : {path} . {addr,size,stamp} = unit {addr,size,stamp} in
         let x : {} . {path,addr,size,stamp} = {path} -[htable]-> w in x",
    )
    .unwrap();
    let mut cache = SynthMmapCache::new(&cat, cols, &spec, d).unwrap();
    // Populate with the skewed stream, no cleanup: lookups below all hit.
    let reqs = request_stream(2_000, 400, 0xCAC4E);
    run_cache(&mut cache, &reqs, 0, i64::MAX);
    let rel = cache.relation();
    let patterns: Vec<Tuple> = reqs
        .iter()
        .take(400)
        .map(|r| Tuple::from_pairs([(cols.path, Value::from(r.path.as_str()))]))
        .collect();
    group.bench_function("lookup_tuple", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &patterns {
                rel.query_for_each(p, cols.addr.into(), |_| hits += 1)
                    .unwrap();
            }
            hits
        })
    });
    group.bench_function("lookup_bindings", |b| {
        let mut scratch = Bindings::new();
        b.iter(|| {
            let mut hits = 0usize;
            for p in &patterns {
                rel.query_for_each_bindings(&mut scratch, p, cols.addr.into(), |_| hits += 1)
                    .unwrap();
            }
            hits
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cache, bench_hit_path
}
criterion_main!(benches);
