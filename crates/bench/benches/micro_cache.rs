//! §6.1 cache microbenchmark ("based on the real systems"): the thttpd-style
//! mmap cache under a skewed request stream, across decompositions.

use criterion::{criterion_group, criterion_main, Criterion};
use relic_systems::thttpd::{
    mmap_spec, request_stream, run_cache, BaselineMmapCache, SynthMmapCache,
};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

fn bench_cache(c: &mut Criterion) {
    let reqs = request_stream(3_000, 400, 0xCAC4E);
    let mut group = c.benchmark_group("micro_cache");
    group.bench_function("baseline_hashmap", |b| {
        b.iter(|| {
            let mut cache = BaselineMmapCache::new();
            run_cache(&mut cache, &reqs, 500, 800).0.len()
        })
    });
    for (label, src) in [
        (
            "synth_htable",
            "let w : {path} . {addr,size,stamp} = unit {addr,size,stamp} in
             let x : {} . {path,addr,size,stamp} = {path} -[htable]-> w in x",
        ),
        (
            "synth_avl",
            "let w : {path} . {addr,size,stamp} = unit {addr,size,stamp} in
             let x : {} . {path,addr,size,stamp} = {path} -[avl]-> w in x",
        ),
        (
            "synth_sortedvec",
            "let w : {path} . {addr,size,stamp} = unit {addr,size,stamp} in
             let x : {} . {path,addr,size,stamp} = {path} -[sortedvec]-> w in x",
        ),
    ] {
        let (mut cat, cols, spec) = mmap_spec();
        let d = relic_decomp::parse(&mut cat, src).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut cache = SynthMmapCache::new(&cat, cols, &spec, d.clone()).unwrap();
                run_cache(&mut cache, &reqs, 500, 800).0.len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cache
}
criterion_main!(benches);
