//! Criterion version of the §6.2 parity claim: baseline vs. synthesized
//! implementations of the three case-study systems on identical workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use relic_systems::ipcap::{
    flow_spec, packet_trace, run_accounting, BaselineFlows, FlowStore, SynthFlows,
};
use relic_systems::thttpd::{
    mmap_spec, request_stream, run_cache, BaselineMmapCache, SynthMmapCache,
};
use relic_systems::thttpd::{MmapCache, Outcome, Request};
use relic_systems::ztopo::{pan_workload, run_tiles, tile_spec, BaselineTileCache, SynthTileCache};
use std::time::Duration;

/// The RELC-compiled mmap cache: the module below is *generated at build
/// time* by relic-codegen (see build.rs) for the same relation and
/// decomposition the interpreted `SynthMmapCache` uses.
mod gen_mmap_cache {
    include!(concat!(env!("OUT_DIR"), "/gen_mmap_cache.rs"));
}

struct CompiledMmapCache {
    rel: gen_mmap_cache::Relation,
    next_addr: i64,
}

impl CompiledMmapCache {
    fn new() -> Self {
        CompiledMmapCache {
            rel: gen_mmap_cache::Relation::new(),
            next_addr: 0,
        }
    }
}

impl MmapCache for CompiledMmapCache {
    fn serve(&mut self, req: &Request) -> Outcome {
        if self.rel.update_path_set_stamp(&req.path, req.now) {
            return Outcome::Hit;
        }
        self.next_addr += 4096;
        let size = 1024 + (req.path.len() as i64) * 7;
        self.rel
            .insert(req.path.clone(), self.next_addr, size, req.now);
        Outcome::Miss
    }

    fn cleanup(&mut self, cutoff: i64) -> usize {
        let mut stale: Vec<String> = Vec::new();
        self.rel.query_all_to_path_stamp(|path, stamp| {
            if *stamp < cutoff {
                stale.push(path.clone());
            }
        });
        let mut removed = 0;
        for p in stale {
            if self.rel.remove_by_path(&p) {
                removed += 1;
            }
        }
        removed
    }

    fn live(&self) -> usize {
        self.rel.len()
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

fn bench_parity(c: &mut Criterion) {
    let mut group = c.benchmark_group("parity");

    let reqs = request_stream(4_000, 500, 0x7177);
    group.bench_function("thttpd/baseline", |b| {
        b.iter(|| {
            let mut cache = BaselineMmapCache::new();
            run_cache(&mut cache, &reqs, 500, 1_000).0.len()
        })
    });
    let (mut cat, cols, spec) = mmap_spec();
    let d = relic_systems::thttpd::default_decomposition(&mut cat);
    group.bench_function("thttpd/synthesized_interpreted", |b| {
        b.iter(|| {
            let mut cache = SynthMmapCache::new(&cat, cols, &spec, d.clone()).unwrap();
            run_cache(&mut cache, &reqs, 500, 1_000).0.len()
        })
    });
    group.bench_function("thttpd/synthesized_compiled", |b| {
        b.iter(|| {
            let mut cache = CompiledMmapCache::new();
            run_cache(&mut cache, &reqs, 500, 1_000).0.len()
        })
    });
    // The three implementations must agree observably.
    {
        let mut a = BaselineMmapCache::new();
        let mut b = SynthMmapCache::new(&cat, cols, &spec, d.clone()).unwrap();
        let mut c = CompiledMmapCache::new();
        let ra = run_cache(&mut a, &reqs, 500, 1_000);
        let rb = run_cache(&mut b, &reqs, 500, 1_000);
        let rc = run_cache(&mut c, &reqs, 500, 1_000);
        assert_eq!(ra, rb);
        assert_eq!(ra, rc);
        assert_eq!(a.live(), c.live());
    }

    let trace = packet_trace(4_000, 64, 512, 0xF13);
    group.bench_function("ipcap/baseline", |b| {
        b.iter(|| {
            let mut flows = BaselineFlows::new();
            run_accounting(&mut flows, &trace, 1_024).unwrap().len()
        })
    });
    let (mut fcat, fcols, fspec) = flow_spec();
    let fd = relic_systems::ipcap::default_decomposition(&mut fcat);
    group.bench_function("ipcap/synthesized", |b| {
        b.iter(|| {
            let mut flows = SynthFlows::new(&fcat, fcols, &fspec, fd.clone()).unwrap();
            run_accounting(&mut flows, &trace, 1_024).unwrap().len()
        })
    });
    // Sanity: identical logs (checked once, outside timing).
    {
        let mut a = BaselineFlows::new();
        let mut b = SynthFlows::new(&fcat, fcols, &fspec, fd.clone()).unwrap();
        assert_eq!(
            run_accounting(&mut a, &trace, 1_024).unwrap(),
            run_accounting(&mut b, &trace, 1_024).unwrap()
        );
        assert_eq!(a.live_flows(), b.live_flows());
    }

    let tiles = pan_workload(300, 24, 24, 0x2707);
    group.bench_function("ztopo/baseline", |b| {
        b.iter(|| {
            let mut cache = BaselineTileCache::new(32, 96);
            run_tiles(&mut cache, &tiles).0.len()
        })
    });
    let (mut tcat, tcols, tspec) = tile_spec();
    let td = relic_systems::ztopo::default_decomposition(&mut tcat);
    group.bench_function("ztopo/synthesized", |b| {
        b.iter(|| {
            let mut cache = SynthTileCache::new(&tcat, tcols, &tspec, td.clone(), 32, 96).unwrap();
            run_tiles(&mut cache, &tiles).0.len()
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_parity
}
criterion_main!(benches);
