//! Criterion version of Figure 12: the three representative graph
//! decompositions compared per phase (build, forward, backward, delete).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use relic_bench::fig12_decompositions;
use relic_systems::graph::{graph_spec, road_network, GraphBench};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

fn bench_fig12(c: &mut Criterion) {
    let (mut cat, cols, spec) = graph_spec();
    let workload = road_network(12, 12, 14, 0xF16);
    let candidates = fig12_decompositions(&mut cat);
    let mut group = c.benchmark_group("fig12");
    for cand in &candidates {
        let label = match cand.label.split(' ').next() {
            Some(l) => l.to_string(),
            None => cand.label.clone(),
        };
        group.bench_function(format!("build/{label}"), |b| {
            b.iter(|| {
                GraphBench::build(&cat, cols, &spec, cand.decomposition.clone(), &workload).unwrap()
            })
        });
        let bench =
            GraphBench::build(&cat, cols, &spec, cand.decomposition.clone(), &workload).unwrap();
        group.bench_function(format!("forward/{label}"), |b| {
            b.iter(|| bench.dfs_forward())
        });
        group.bench_function(format!("backward/{label}"), |b| {
            b.iter(|| bench.dfs_backward())
        });
        group.bench_function(format!("delete/{label}"), |b| {
            b.iter_batched(
                || {
                    GraphBench::build(&cat, cols, &spec, cand.decomposition.clone(), &workload)
                        .unwrap()
                },
                |mut bench| bench.delete_all_edges(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig12
}
criterion_main!(benches);
