//! Criterion version of Figure 13: IpCap packet accounting across ranked
//! decompositions of the flow relation.

use criterion::{criterion_group, criterion_main, Criterion};
use relic_bench::fig13_candidates;
use relic_systems::ipcap::{flow_spec, packet_trace, run_accounting, SynthFlows};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

fn bench_fig13(c: &mut Criterion) {
    let (cat, cols, spec) = flow_spec();
    let trace = packet_trace(4_000, 64, 512, 0xF13);
    let candidates = fig13_candidates(&cat, &spec, 8);
    let mut group = c.benchmark_group("fig13");
    for cand in &candidates {
        let label = cand.label.replace(' ', "_");
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut flows =
                    SynthFlows::new(&cat, cols, &spec, cand.decomposition.clone()).unwrap();
                run_accounting(&mut flows, &trace, 1_024).unwrap().len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig13
}
criterion_main!(benches);
