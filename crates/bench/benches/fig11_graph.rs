//! Criterion version of Figure 11: per-decomposition timings of the graph
//! benchmark variants (F, F+B, F+B+D) at a reduced, fixed scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use relic_bench::fig11_candidates;
use relic_systems::graph::{graph_spec, road_network, GraphBench};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

fn bench_fig11(c: &mut Criterion) {
    let (mut cat, cols, spec) = graph_spec();
    let workload = road_network(12, 12, 14, 0xF16);
    // Fig. 12's three representatives plus the statically-best extras.
    let candidates = fig11_candidates(&mut cat, &spec, 3);
    let mut group = c.benchmark_group("fig11");
    for cand in &candidates {
        let label = cand.label.replace(' ', "_");
        group.bench_function(format!("F/{label}"), |b| {
            b.iter(|| {
                let bench =
                    GraphBench::build(&cat, cols, &spec, cand.decomposition.clone(), &workload)
                        .unwrap();
                bench.dfs_forward()
            })
        });
        group.bench_function(format!("F+B/{label}"), |b| {
            let bench = GraphBench::build(&cat, cols, &spec, cand.decomposition.clone(), &workload)
                .unwrap();
            b.iter(|| bench.dfs_forward() + bench.dfs_backward())
        });
        group.bench_function(format!("F+B+D/{label}"), |b| {
            b.iter_batched(
                || {
                    GraphBench::build(&cat, cols, &spec, cand.decomposition.clone(), &workload)
                        .unwrap()
                },
                |mut bench| {
                    bench.dfs_forward();
                    bench.dfs_backward();
                    bench.delete_all_edges();
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig11
}
criterion_main!(benches);
