//! §6.1 scheduler microbenchmark: the running example's operation mix
//! (spawn, state changes, tick accounting, enumerate-by-state, exit) across
//! decompositions of the process relation.

use criterion::{criterion_group, criterion_main, Criterion};
use relic_core::{Bindings, SynthRelation};
use relic_decomp::parse;
use relic_spec::{Catalog, RelSpec, Tuple, Value};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400))
}

fn scheduler_sources() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "fig2_join_shared",
            "let w : {ns,pid,state} . {cpu} = unit {cpu} in
             let y : {ns} . {pid,cpu} = {pid} -[htable]-> w in
             let z : {state} . {ns,pid,cpu} = {ns,pid} -[ilist]-> w in
             let x : {} . {ns,pid,state,cpu} =
               ({ns} -[htable]-> y) join ({state} -[vec]-> z) in x",
        ),
        (
            "nested_hash_chain",
            "let w : {ns,pid} . {state,cpu} = unit {state,cpu} in
             let y : {ns} . {pid,state,cpu} = {pid} -[htable]-> w in
             let x : {} . {ns,pid,state,cpu} = {ns} -[htable]-> y in x",
        ),
        (
            "flat_avl",
            "let w : {ns,pid} . {state,cpu} = unit {state,cpu} in
             let x : {} . {ns,pid,state,cpu} = {ns,pid} -[avl]-> w in x",
        ),
    ]
}

/// One simulated scheduler epoch over `n` processes.
fn run_epoch(cat: &Catalog, rel: &mut SynthRelation, n: i64) -> usize {
    let ns = cat.col("ns").unwrap();
    let pid = cat.col("pid").unwrap();
    let state = cat.col("state").unwrap();
    let cpu = cat.col("cpu").unwrap();
    // Spawn.
    for i in 0..n {
        rel.insert(Tuple::from_pairs([
            (ns, Value::from(i % 8)),
            (pid, Value::from(i)),
            (state, Value::from(if i % 3 == 0 { "R" } else { "S" })),
            (cpu, Value::from(0)),
        ]))
        .unwrap();
    }
    // Tick accounting: charge cpu to every running process (query + update).
    let mut running: Vec<Tuple> = Vec::new();
    rel.query_for_each(
        &Tuple::from_pairs([(state, Value::from("R"))]),
        ns | pid,
        |t| running.push(t.clone()),
    )
    .unwrap();
    for key in &running {
        rel.update(key, &Tuple::from_pairs([(cpu, Value::from(1))]))
            .unwrap();
    }
    // State churn: sleep every running process.
    for key in &running {
        rel.update(key, &Tuple::from_pairs([(state, Value::from("S"))]))
            .unwrap();
    }
    // Exit: namespace teardown.
    let mut removed = 0;
    for nsv in 0..8 {
        removed += rel
            .remove(&Tuple::from_pairs([(ns, Value::from(nsv))]))
            .unwrap();
    }
    removed
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_scheduler");
    for (label, src) in scheduler_sources() {
        let mut cat = Catalog::new();
        let d = parse(&mut cat, src).unwrap();
        let spec = RelSpec::new(cat.all()).with_fd(
            cat.col("ns").unwrap() | cat.col("pid").unwrap(),
            cat.col("state").unwrap() | cat.col("cpu").unwrap(),
        );
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut rel = SynthRelation::new(&cat, spec.clone(), d.clone()).unwrap();
                rel.set_fd_checking(false);
                run_epoch(&cat, &mut rel, 400)
            })
        });
    }
    group.finish();
}

/// The warm planned-query hot path on a standing relation: the same point
/// lookups and state scans through the tuple-materializing compatibility
/// API versus the zero-allocation bindings API.
fn bench_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_hot_path");
    let (label, src) = scheduler_sources()[0];
    let mut cat = Catalog::new();
    let d = parse(&mut cat, src).unwrap();
    let spec = RelSpec::new(cat.all()).with_fd(
        cat.col("ns").unwrap() | cat.col("pid").unwrap(),
        cat.col("state").unwrap() | cat.col("cpu").unwrap(),
    );
    let ns = cat.col("ns").unwrap();
    let pid = cat.col("pid").unwrap();
    let state = cat.col("state").unwrap();
    let cpu = cat.col("cpu").unwrap();
    let mut rel = SynthRelation::new(&cat, spec, d).unwrap();
    rel.set_fd_checking(false);
    for i in 0..1000i64 {
        rel.insert(Tuple::from_pairs([
            (ns, Value::from(i % 16)),
            (pid, Value::from(i)),
            (state, Value::from(if i % 3 == 0 { "R" } else { "S" })),
            (cpu, Value::from(i % 7)),
        ]))
        .unwrap();
    }
    let points: Vec<Tuple> = (0..1000i64)
        .map(|i| Tuple::from_pairs([(ns, Value::from(i % 16)), (pid, Value::from(i))]))
        .collect();
    let scan_pat = Tuple::from_pairs([(state, Value::from("R"))]);
    group.bench_function(format!("point_tuple/{label}"), |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &points {
                rel.query_for_each(p, cpu.into(), |_| hits += 1).unwrap();
            }
            hits
        })
    });
    group.bench_function(format!("point_bindings/{label}"), |b| {
        let mut scratch = Bindings::new();
        b.iter(|| {
            let mut hits = 0usize;
            for p in &points {
                rel.query_for_each_bindings(&mut scratch, p, cpu.into(), |_| hits += 1)
                    .unwrap();
            }
            hits
        })
    });
    group.bench_function(format!("scan_tuple/{label}"), |b| {
        b.iter(|| {
            let mut hits = 0usize;
            rel.query_for_each(&scan_pat, ns | pid, |_| hits += 1)
                .unwrap();
            hits
        })
    });
    group.bench_function(format!("scan_bindings/{label}"), |b| {
        let mut scratch = Bindings::new();
        b.iter(|| {
            let mut hits = 0usize;
            rel.query_for_each_bindings(&mut scratch, &scan_pat, ns | pid, |_| hits += 1)
                .unwrap();
            hits
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_scheduler, bench_hot_path
}
criterion_main!(benches);
