//! Allocation accounting for the warm query hot path: with a cached plan and
//! a reused scratch accumulator, `query_for_each_bindings` must perform
//! **zero heap allocations per emitted tuple** — in fact zero per query —
//! on both lookup plans and scan/join plans over every container kind,
//! including intrusive lists.
//!
//! A counting `GlobalAlloc` wraps the system allocator; tests snapshot the
//! global allocation counter around the measured loop. (This file is its own
//! test binary, so installing the global allocator affects only these
//! tests.)

use relic_core::{Bindings, SynthRelation};
use relic_decomp::parse;
use relic_spec::{Catalog, RelSpec, Tuple, Value};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation (and reallocation) passed to the system
/// allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// The Fig. 2(a) scheduler relation with the paper's join decomposition:
/// hash lookup chain on one side, vector + intrusive list on the other.
fn scheduler() -> (Catalog, SynthRelation) {
    let mut cat = Catalog::new();
    let d = parse(
        &mut cat,
        "let w : {ns,pid,state} . {cpu} = unit {cpu} in
         let y : {ns} . {pid,cpu} = {pid} -[htable]-> w in
         let z : {state} . {ns,pid,cpu} = {ns,pid} -[ilist]-> w in
         let x : {} . {ns,pid,state,cpu} =
           ({ns} -[htable]-> y) join ({state} -[vec]-> z) in x",
    )
    .unwrap();
    let spec = RelSpec::new(cat.all()).with_fd(
        cat.col("ns").unwrap() | cat.col("pid").unwrap(),
        cat.col("state").unwrap() | cat.col("cpu").unwrap(),
    );
    let mut r = SynthRelation::new(&cat, spec, d).unwrap();
    let ns = cat.col("ns").unwrap();
    let pid = cat.col("pid").unwrap();
    let state = cat.col("state").unwrap();
    let cpu = cat.col("cpu").unwrap();
    for i in 0..200i64 {
        r.insert(Tuple::from_pairs([
            (ns, Value::from(i % 8)),
            (pid, Value::from(i)),
            (state, Value::from(if i % 3 == 0 { "R" } else { "S" })),
            (cpu, Value::from(i % 5)),
        ]))
        .unwrap();
    }
    (cat, r)
}

/// Point lookups (hash-chain `qlookup` plan): zero allocations per query
/// once the plan cache and scratch pools are warm.
#[test]
fn warm_point_lookup_allocates_nothing() {
    let (cat, r) = scheduler();
    let ns = cat.col("ns").unwrap();
    let pid = cat.col("pid").unwrap();
    let cpu = cat.col("cpu").unwrap();
    let mut scratch = Bindings::new();
    let patterns: Vec<Tuple> = (0..200i64)
        .map(|i| Tuple::from_pairs([(ns, Value::from(i % 8)), (pid, Value::from(i))]))
        .collect();
    // Warm-up: populates the plan cache, sizes the slot table, fills the
    // key-buffer pool.
    let mut hits = 0usize;
    for p in &patterns {
        r.query_for_each_bindings(&mut scratch, p, cpu.into(), |b| {
            assert!(b.get(cpu).is_some());
            hits += 1;
        })
        .unwrap();
    }
    assert_eq!(hits, 200);
    // Measured pass: every query must stay on the allocation-free path.
    let before = allocs();
    let mut hits = 0usize;
    for p in &patterns {
        r.query_for_each_bindings(&mut scratch, p, cpu.into(), |b| {
            assert!(b.get(cpu).is_some());
            hits += 1;
        })
        .unwrap();
    }
    let delta = allocs() - before;
    assert_eq!(hits, 200);
    assert_eq!(
        delta, 0,
        "warm point-lookup path allocated {delta} times over {hits} emitted tuples"
    );
}

/// Scans through the vector + intrusive-list side (`qlr(qscan(qscan))`-shape
/// plan): zero allocations per emitted tuple when warm, across many emitted
/// bindings per query.
#[test]
fn warm_scan_allocates_nothing() {
    let (cat, r) = scheduler();
    let ns = cat.col("ns").unwrap();
    let pid = cat.col("pid").unwrap();
    let state = cat.col("state").unwrap();
    let mut scratch = Bindings::new();
    let pat_r = Tuple::from_pairs([(state, Value::from("R"))]);
    let pat_s = Tuple::from_pairs([(state, Value::from("S"))]);
    let count = |scratch: &mut Bindings, pat: &Tuple| {
        let mut n = 0usize;
        r.query_for_each_bindings(scratch, pat, ns | pid, |b| {
            assert!(b.get(ns).is_some() && b.get(pid).is_some());
            n += 1;
        })
        .unwrap();
        n
    };
    // Warm-up.
    let warm_r = count(&mut scratch, &pat_r);
    let warm_s = count(&mut scratch, &pat_s);
    assert_eq!(warm_r + warm_s, 200);
    // Measured: 20 full sweeps, thousands of emitted tuples, no allocation.
    let before = allocs();
    let mut emitted = 0usize;
    for _ in 0..20 {
        emitted += count(&mut scratch, &pat_r);
        emitted += count(&mut scratch, &pat_s);
    }
    let delta = allocs() - before;
    assert_eq!(emitted, 200 * 20);
    assert_eq!(
        delta, 0,
        "warm scan path allocated {delta} times over {emitted} emitted tuples"
    );
}

/// The whole-relation sweep (empty pattern) through the join decomposition:
/// still allocation-free when warm.
#[test]
fn warm_full_sweep_allocates_nothing() {
    let (cat, r) = scheduler();
    let cpu = cat.col("cpu").unwrap();
    let mut scratch = Bindings::new();
    let empty = Tuple::empty();
    let mut sum = 0i64;
    r.query_for_each_bindings(&mut scratch, &empty, cpu.into(), |b| {
        sum += b.get(cpu).unwrap().as_int().unwrap();
    })
    .unwrap();
    let before = allocs();
    let mut emitted = 0usize;
    for _ in 0..10 {
        r.query_for_each_bindings(&mut scratch, &empty, cpu.into(), |b| {
            assert!(b.get(cpu).is_some());
            emitted += 1;
        })
        .unwrap();
    }
    let delta = allocs() - before;
    assert_eq!(emitted, 200 * 10);
    assert_eq!(
        delta, 0,
        "warm full-sweep path allocated {delta} times over {emitted} emitted tuples"
    );
    assert!(sum >= 0);
}
