//! Build-time code generation: runs relic-codegen on the thttpd mmap-cache
//! relation and on the fig. 2 scheduler relation, and writes the specialized
//! modules into `OUT_DIR`, where the parity benchmarks and `bench_smoke`
//! `include!` them. This exercises the full RELC pipeline — spec +
//! decomposition → generated code → compiled into the binary — the way the
//! paper's C++ systems embedded their synthesized classes.
//!
//! The scheduler module declares bit widths for `ns` (16) and `pid` (32), so
//! the backend packs the `{ns,pid}` key into one `u64` word and compiles the
//! `htable` edges to open-addressed tables — the native-key fast path the
//! `codegen` bench family measures against the interpreted planner.

use relic_codegen::{generate, ColType, OpSet, Request};
use relic_decomp::parse;
use relic_spec::{Catalog, RelSpec};

fn main() {
    println!("cargo:rerun-if-changed=build.rs");
    // Stamp the compiler version into the bench binary for BENCH_*.json
    // headers (timings are not comparable across toolchains).
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version = std::process::Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=RELIC_BENCH_RUSTC={version}");
    emit_mmap_cache();
    emit_scheduler();
}

fn emit_mmap_cache() {
    let mut cat = Catalog::new();
    let path = cat.intern("path");
    let addr = cat.intern("addr");
    let size = cat.intern("size");
    let stamp = cat.intern("stamp");
    let d = parse(
        &mut cat,
        "let w : {path} . {addr,size,stamp} = unit {addr,size,stamp} in
         let x : {} . {path,addr,size,stamp} = {path} -[htable]-> w in x",
    )
    .expect("decomposition parses");
    let spec = RelSpec::new(path | addr | size | stamp)
        .with_fd(path.into(), addr | size | stamp)
        .with_fd(addr.into(), path | size | stamp);
    let ops = OpSet::new()
        .query(Default::default(), path | stamp) // cleanup sweep
        .update(path.into(), stamp.into()) // touch on hit (in place)
        .remove(path.into());
    let code = generate(&Request {
        module_name: "mmap_cache".into(),
        cat: &cat,
        spec: &spec,
        decomposition: &d,
        types: vec![ColType::Str, ColType::I64, ColType::I64, ColType::I64],
        ops,
    })
    .expect("generation succeeds");
    let out = std::env::var("OUT_DIR").expect("OUT_DIR set by cargo");
    std::fs::write(format!("{out}/gen_mmap_cache.rs"), code).expect("write generated module");
}

fn emit_scheduler() {
    let mut cat = Catalog::new();
    let d = parse(
        &mut cat,
        "let w : {ns,pid,state} . {cpu} = unit {cpu} in
         let y : {ns} . {pid,cpu} = {pid} -[htable]-> w in
         let z : {state} . {ns,pid,cpu} = {ns,pid} -[dlist]-> w in
         let x : {} . {ns,pid,state,cpu} =
           ({ns} -[htable]-> y) join ({state} -[vec]-> z) in x",
    )
    .expect("decomposition parses");
    let ns = cat.col("ns").unwrap();
    let pid = cat.col("pid").unwrap();
    let state = cat.col("state").unwrap();
    let cpu = cat.col("cpu").unwrap();
    cat.declare_bit_width(ns, 16);
    cat.declare_bit_width(pid, 32);
    let spec = RelSpec::new(cat.all()).with_fd(ns | pid, state | cpu);
    let ops = OpSet::new()
        .query(ns | pid, cpu.into()) // point lookup (hot-path mirror)
        .query(state.into(), ns | pid) // state scan (hot-path mirror)
        .remove(ns | pid)
        .update(ns | pid, cpu.into()) // in-place (cpu is unit-only)
        .update(ns | pid, state.into()); // structural (state is a map key)
    let code = generate(&Request {
        module_name: "scheduler".into(),
        cat: &cat,
        spec: &spec,
        decomposition: &d,
        types: vec![ColType::I64, ColType::I64, ColType::Str, ColType::I64],
        ops,
    })
    .expect("generation succeeds");
    let out = std::env::var("OUT_DIR").expect("OUT_DIR set by cargo");
    std::fs::write(format!("{out}/codegen_scheduler.rs"), code).expect("write generated module");
}
