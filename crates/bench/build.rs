//! Build-time code generation: runs relic-codegen on the thttpd mmap-cache
//! relation and writes the specialized module into `OUT_DIR`, where the
//! parity benchmarks `include!` it. This exercises the full RELC pipeline —
//! spec + decomposition → generated code → compiled into the binary — the
//! way the paper's C++ systems embedded their synthesized classes.

use relic_codegen::{generate, ColType, OpSet, Request};
use relic_decomp::parse;
use relic_spec::{Catalog, RelSpec};

fn main() {
    println!("cargo:rerun-if-changed=build.rs");
    let mut cat = Catalog::new();
    let path = cat.intern("path");
    let addr = cat.intern("addr");
    let size = cat.intern("size");
    let stamp = cat.intern("stamp");
    let d = parse(
        &mut cat,
        "let w : {path} . {addr,size,stamp} = unit {addr,size,stamp} in
         let x : {} . {path,addr,size,stamp} = {path} -[htable]-> w in x",
    )
    .expect("decomposition parses");
    let spec = RelSpec::new(path | addr | size | stamp)
        .with_fd(path.into(), addr | size | stamp)
        .with_fd(addr.into(), path | size | stamp);
    let ops = OpSet::new()
        .query(Default::default(), path | stamp) // cleanup sweep
        .update(path.into(), stamp.into()) // touch on hit (in place)
        .remove(path.into());
    let code = generate(&Request {
        module_name: "mmap_cache".into(),
        cat: &cat,
        spec: &spec,
        decomposition: &d,
        types: vec![ColType::Str, ColType::I64, ColType::I64, ColType::I64],
        ops,
    })
    .expect("generation succeeds");
    let out = std::env::var("OUT_DIR").expect("OUT_DIR set by cargo");
    std::fs::write(format!("{out}/gen_mmap_cache.rs"), code).expect("write generated module");
}
