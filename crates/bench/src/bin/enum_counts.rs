//! §5 enumeration counts: how many adequate decomposition shapes exist per
//! edge bound for the graph/IpCap-like relations (the paper reports 84 with
//! ≤ 4 map edges for both).
//!
//! Usage: `cargo run --release -p relic-bench --bin enum_counts`

use relic_bench::render_table;
use relic_decomp::{enumerate_shapes, EnumerateOptions};
use relic_spec::{Catalog, RelSpec};

fn main() {
    let mut cat = Catalog::new();
    let src = cat.intern("src");
    let dst = cat.intern("dst");
    let weight = cat.intern("weight");
    let graph = RelSpec::new(src | dst | weight).with_fd(src | dst, weight.into());

    let (cat_f, _, flows) = relic_systems::ipcap::flow_spec();
    let _ = cat_f;

    println!("§5 — adequate decomposition shapes per edge bound");
    println!("(paper: 84 decompositions with ≤ 4 map edges for the 3-column graph and");
    println!("flow relations; our enumerator explores a somewhat larger space — see");
    println!("EXPERIMENTS.md for the comparison)\n");

    let mut rows = vec![vec![
        "relation".to_string(),
        "≤1 edge".to_string(),
        "≤2 edges".to_string(),
        "≤3 edges".to_string(),
        "≤4 edges".to_string(),
    ]];
    for (name, spec, max4) in [
        ("edges⟨src,dst,weight⟩", &graph, true),
        ("flows⟨local,remote,bytes,pkts⟩", &flows, false),
    ] {
        let mut row = vec![name.to_string()];
        let upper = if max4 { 4 } else { 3 };
        for max in 1..=4usize {
            if max > upper {
                row.push("(skipped)".to_string());
                continue;
            }
            let n = enumerate_shapes(
                spec,
                &EnumerateOptions {
                    max_edges: max,
                    max_branches: 3,
                    ..Default::default()
                },
            )
            .len();
            row.push(format!("{n}"));
        }
        rows.push(row);
    }
    println!("{}", render_table(&rows));
}
