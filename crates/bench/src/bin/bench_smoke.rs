//! Perf-trajectory smoke harness: runs the `micro_cache` and
//! `micro_scheduler` workloads a fixed number of times each and emits
//! machine-readable JSON timings (mean ns per workload repetition), so every
//! PR from this one onward can compare against the recorded `BENCH_1.json`.
//!
//! Usage: `cargo run --release --bin bench_smoke [-- OUTPUT.json]`
//! (default output path: `BENCH_1.json` in the current directory).

use relic_core::{Bindings, SynthRelation};
use relic_decomp::parse;
use relic_spec::{Catalog, RelSpec, Tuple, Value};
use relic_systems::thttpd::{mmap_spec, request_stream, run_cache, SynthMmapCache};
use std::time::Instant;

/// Times `f` over `reps` repetitions after `warmup` untimed ones, returning
/// mean nanoseconds per repetition.
fn time_mean_ns(warmup: usize, reps: usize, mut f: impl FnMut() -> usize) -> f64 {
    let mut sink = 0usize;
    for _ in 0..warmup {
        sink = sink.wrapping_add(std::hint::black_box(f()));
    }
    let start = Instant::now();
    for _ in 0..reps {
        sink = sink.wrapping_add(std::hint::black_box(f()));
    }
    let elapsed = start.elapsed().as_nanos() as f64 / reps as f64;
    std::hint::black_box(sink);
    elapsed
}

/// `micro_cache`: the thttpd-style mmap cache under a skewed request stream
/// (one repetition = build + 3k requests), per decomposition.
fn bench_micro_cache(out: &mut Vec<(String, f64)>) {
    let reqs = request_stream(3_000, 400, 0xCAC4E);
    for (label, src) in [
        (
            "micro_cache/synth_htable",
            "let w : {path} . {addr,size,stamp} = unit {addr,size,stamp} in
             let x : {} . {path,addr,size,stamp} = {path} -[htable]-> w in x",
        ),
        (
            "micro_cache/synth_avl",
            "let w : {path} . {addr,size,stamp} = unit {addr,size,stamp} in
             let x : {} . {path,addr,size,stamp} = {path} -[avl]-> w in x",
        ),
        (
            "micro_cache/synth_sortedvec",
            "let w : {path} . {addr,size,stamp} = unit {addr,size,stamp} in
             let x : {} . {path,addr,size,stamp} = {path} -[sortedvec]-> w in x",
        ),
    ] {
        let (mut cat, cols, spec) = mmap_spec();
        let d = parse(&mut cat, src).unwrap();
        let ns = time_mean_ns(2, 6, || {
            let mut cache = SynthMmapCache::new(&cat, cols, &spec, d.clone()).unwrap();
            run_cache(&mut cache, &reqs, 500, 800).0.len()
        });
        out.push((label.to_string(), ns));
    }
}

/// `micro_scheduler`: the running example's epoch mix (spawn, tick, churn,
/// teardown over 400 processes), per decomposition.
fn bench_micro_scheduler(out: &mut Vec<(String, f64)>) {
    for (label, src) in [
        (
            "micro_scheduler/fig2_join_shared",
            "let w : {ns,pid,state} . {cpu} = unit {cpu} in
             let y : {ns} . {pid,cpu} = {pid} -[htable]-> w in
             let z : {state} . {ns,pid,cpu} = {ns,pid} -[ilist]-> w in
             let x : {} . {ns,pid,state,cpu} =
               ({ns} -[htable]-> y) join ({state} -[vec]-> z) in x",
        ),
        (
            "micro_scheduler/nested_hash_chain",
            "let w : {ns,pid} . {state,cpu} = unit {state,cpu} in
             let y : {ns} . {pid,state,cpu} = {pid} -[htable]-> w in
             let x : {} . {ns,pid,state,cpu} = {ns} -[htable]-> y in x",
        ),
        (
            "micro_scheduler/flat_avl",
            "let w : {ns,pid} . {state,cpu} = unit {state,cpu} in
             let x : {} . {ns,pid,state,cpu} = {ns,pid} -[avl]-> w in x",
        ),
    ] {
        let mut cat = Catalog::new();
        let d = parse(&mut cat, src).unwrap();
        let spec = RelSpec::new(cat.all()).with_fd(
            cat.col("ns").unwrap() | cat.col("pid").unwrap(),
            cat.col("state").unwrap() | cat.col("cpu").unwrap(),
        );
        let ns_col = cat.col("ns").unwrap();
        let pid = cat.col("pid").unwrap();
        let state = cat.col("state").unwrap();
        let cpu = cat.col("cpu").unwrap();
        let ns = time_mean_ns(2, 6, || {
            let mut rel = SynthRelation::new(&cat, spec.clone(), d.clone()).unwrap();
            rel.set_fd_checking(false);
            let n = 400i64;
            for i in 0..n {
                rel.insert(Tuple::from_pairs([
                    (ns_col, Value::from(i % 8)),
                    (pid, Value::from(i)),
                    (state, Value::from(if i % 3 == 0 { "R" } else { "S" })),
                    (cpu, Value::from(0)),
                ]))
                .unwrap();
            }
            let mut running: Vec<Tuple> = Vec::new();
            rel.query_for_each(
                &Tuple::from_pairs([(state, Value::from("R"))]),
                ns_col | pid,
                |t| running.push(t.clone()),
            )
            .unwrap();
            for key in &running {
                rel.update(key, &Tuple::from_pairs([(cpu, Value::from(1))]))
                    .unwrap();
            }
            for key in &running {
                rel.update(key, &Tuple::from_pairs([(state, Value::from("S"))]))
                    .unwrap();
            }
            let mut removed = 0;
            for nsv in 0..8 {
                removed += rel
                    .remove(&Tuple::from_pairs([(ns_col, Value::from(nsv))]))
                    .unwrap();
            }
            removed
        });
        out.push((label.to_string(), ns));
    }
}

/// Warm planned-query hot path: point lookups and state scans against a
/// standing relation (one repetition = 1000 queries through the plan cache).
fn bench_query_hot_path(out: &mut Vec<(String, f64)>) {
    let mut cat = Catalog::new();
    let d = parse(
        &mut cat,
        "let w : {ns,pid,state} . {cpu} = unit {cpu} in
         let y : {ns} . {pid,cpu} = {pid} -[htable]-> w in
         let z : {state} . {ns,pid,cpu} = {ns,pid} -[ilist]-> w in
         let x : {} . {ns,pid,state,cpu} =
           ({ns} -[htable]-> y) join ({state} -[vec]-> z) in x",
    )
    .unwrap();
    let spec = RelSpec::new(cat.all()).with_fd(
        cat.col("ns").unwrap() | cat.col("pid").unwrap(),
        cat.col("state").unwrap() | cat.col("cpu").unwrap(),
    );
    let ns_col = cat.col("ns").unwrap();
    let pid = cat.col("pid").unwrap();
    let state = cat.col("state").unwrap();
    let cpu = cat.col("cpu").unwrap();
    let mut rel = SynthRelation::new(&cat, spec, d).unwrap();
    rel.set_fd_checking(false);
    for i in 0..1000i64 {
        rel.insert(Tuple::from_pairs([
            (ns_col, Value::from(i % 16)),
            (pid, Value::from(i)),
            (state, Value::from(if i % 3 == 0 { "R" } else { "S" })),
            (cpu, Value::from(i % 7)),
        ]))
        .unwrap();
    }
    let point_pats: Vec<Tuple> = (0..1000i64)
        .map(|i| Tuple::from_pairs([(ns_col, Value::from(i % 16)), (pid, Value::from(i))]))
        .collect();
    let ns = time_mean_ns(3, 10, || {
        let mut hits = 0usize;
        for p in &point_pats {
            rel.query_for_each(p, cpu.into(), |_| hits += 1).unwrap();
        }
        hits
    });
    out.push(("query_hot_path/point_lookup_1k".to_string(), ns));
    let scan_pat = Tuple::from_pairs([(state, Value::from("R"))]);
    let ns = time_mean_ns(3, 10, || {
        let mut hits = 0usize;
        for _ in 0..100 {
            rel.query_for_each(&scan_pat, ns_col | pid, |_| hits += 1)
                .unwrap();
        }
        hits
    });
    out.push(("query_hot_path/state_scan_100x".to_string(), ns));
    // The zero-allocation bindings path over the same workloads.
    let mut scratch = Bindings::new();
    let ns = time_mean_ns(3, 10, || {
        let mut hits = 0usize;
        for p in &point_pats {
            rel.query_for_each_bindings(&mut scratch, p, cpu.into(), |_| hits += 1)
                .unwrap();
        }
        hits
    });
    out.push(("query_hot_path/point_lookup_1k_raw".to_string(), ns));
    let ns = time_mean_ns(3, 10, || {
        let mut hits = 0usize;
        for _ in 0..100 {
            rel.query_for_each_bindings(&mut scratch, &scan_pat, ns_col | pid, |_| hits += 1)
                .unwrap();
        }
        hits
    });
    out.push(("query_hot_path/state_scan_100x_raw".to_string(), ns));
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_1.json".to_string());
    let mut results: Vec<(String, f64)> = Vec::new();
    bench_micro_cache(&mut results);
    bench_micro_scheduler(&mut results);
    bench_query_hot_path(&mut results);
    let mut json = String::from("{\n  \"schema\": \"relic-bench-smoke-v1\",\n  \"results\": {\n");
    for (i, (label, ns)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!("    \"{label}\": {ns:.0}{comma}\n"));
        println!("{label:<44} {ns:>14.0} ns");
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, json).expect("write bench output");
    println!("wrote {out_path}");
}
