//! Perf-trajectory smoke harness: runs the micro workloads a fixed number
//! of times each and emits machine-readable JSON timings (mean ns per
//! workload repetition), so every PR from this one onward can compare
//! against the recorded `BENCH_*.json` files.
//!
//! Usage: `cargo run --release --bin bench_smoke [-- [--quick] [--cores N]
//! [--only FAMILY] [OUTPUT.json]]` (default output path: `BENCH_10.json` in
//! the current directory).
//! `--quick` shrinks sizes and repetition counts to a compile-and-run smoke
//! check for CI — its timings are not comparable to full runs. **Every**
//! workload family runs in quick mode, including scaled-down `phase_shift`
//! and `read_scaling` variants, so CI exercises the adaptive and the
//! snapshot read paths on every push.
//!
//! `--cores N` caps the thread ladders of the multi-threaded families
//! (`read_scaling`, `writer_scaling`) at `N` worker threads. The JSON
//! header always records both the machine's actual parallelism (`cpus`,
//! from `available_parallelism`) and the requested cap (`cores_requested`,
//! `null` when uncapped), plus an `oversubscribed` flag set whenever any
//! family ran more worker threads than hardware cores — so a BENCH file
//! recorded on a 1-CPU container can no longer pass its t4/t8 arms off as
//! real scaling numbers. Thread *pinning* is not implemented: std exposes
//! no affinity API and this build links no platform crate for one, so the
//! honest-reporting fields are the contract instead.
//!
//! The `codegen` family (PR 6) replays the `query_hot_path` workload — the
//! same 1000-tuple scheduler relation, the same point lookups and state
//! scans — through a module *compiled* by `relic_codegen` at build time
//! (see `build.rs`), with `ns`/`pid` packed into native `u64` keys. Its
//! numbers sit next to the interpreted `query_hot_path` entries so the
//! compilation speedup is a single division away.
//!
//! The `bulk_load_100k` and `batch_insert` pairs time the PR-2 batch APIs
//! against the per-tuple loops they replace, on a hash-rooted and an
//! AVL-rooted decomposition. The `phase_shift` quartet (PR 3) runs the
//! read-heavy → by-ts workload of `relic_systems::adaptive` twice — once on
//! a fixed point-read representation, once with online re-tuning — and
//! reports the post-shift phase separately, where the adaptive arm's
//! migration pays off. The `read_scaling` family (PR 4) runs a 95/5
//! read/write mix over a sharded `ConcurrentRelation` with 1/2/4/8 worker
//! threads, once with reads through the per-shard `RwLock`s (`locked`) and
//! once wait-free through published snapshots (`snapshot`), reporting
//! aggregate nanoseconds per read — the snapshot arm's reads never touch a
//! shard lock, so its aggregate read throughput keeps scaling where the
//! locked arm flattens against writer contention.

use relic_concurrent::ConcurrentRelation;
use relic_core::{Bindings, SynthRelation};
use relic_decomp::parse;
use relic_persist::{DurableRelation, GroupCommitPolicy};
use relic_spec::{Catalog, RelSpec, Tuple, Value};
use relic_systems::adaptive::{
    event_log_spec, phase_shift_options, point_read_decomposition, run_phase_shift,
    AdaptiveRelation,
};
use relic_systems::thttpd::{mmap_spec, request_stream, run_cache, SynthMmapCache};
use std::time::Instant;

/// The build-time-compiled scheduler module (see `crates/bench/build.rs`):
/// the fig. 2 decomposition specialized to native key types by
/// `relic_codegen`.
mod codegen_scheduler {
    include!(concat!(env!("OUT_DIR"), "/codegen_scheduler.rs"));
}

/// Times `f` over `reps` repetitions after `warmup` untimed ones, returning
/// mean nanoseconds per repetition.
fn time_mean_ns(warmup: usize, reps: usize, mut f: impl FnMut() -> usize) -> f64 {
    let mut sink = 0usize;
    for _ in 0..warmup {
        sink = sink.wrapping_add(std::hint::black_box(f()));
    }
    let start = Instant::now();
    for _ in 0..reps {
        sink = sink.wrapping_add(std::hint::black_box(f()));
    }
    let elapsed = start.elapsed().as_nanos() as f64 / reps as f64;
    std::hint::black_box(sink);
    elapsed
}

/// Like [`time_mean_ns`], but `f` times its own stage of interest (setup
/// and teardown — e.g. dropping a 100k-instance store — stay untimed) and
/// returns `(stage nanoseconds, checksum)`.
fn time_stage_ns(warmup: usize, reps: usize, mut f: impl FnMut() -> (f64, usize)) -> f64 {
    let mut sink = 0usize;
    for _ in 0..warmup {
        sink = sink.wrapping_add(std::hint::black_box(f()).1);
    }
    let mut total = 0f64;
    for _ in 0..reps {
        let (ns, check) = std::hint::black_box(f());
        total += ns;
        sink = sink.wrapping_add(check);
    }
    std::hint::black_box(sink);
    total / reps as f64
}

/// `micro_cache`: the thttpd-style mmap cache under a skewed request stream
/// (one repetition = build + 3k requests), per decomposition.
fn bench_micro_cache(out: &mut Vec<(String, f64)>) {
    let reqs = request_stream(3_000, 400, 0xCAC4E);
    for (label, src) in [
        (
            "micro_cache/synth_htable",
            "let w : {path} . {addr,size,stamp} = unit {addr,size,stamp} in
             let x : {} . {path,addr,size,stamp} = {path} -[htable]-> w in x",
        ),
        (
            "micro_cache/synth_avl",
            "let w : {path} . {addr,size,stamp} = unit {addr,size,stamp} in
             let x : {} . {path,addr,size,stamp} = {path} -[avl]-> w in x",
        ),
        (
            "micro_cache/synth_sortedvec",
            "let w : {path} . {addr,size,stamp} = unit {addr,size,stamp} in
             let x : {} . {path,addr,size,stamp} = {path} -[sortedvec]-> w in x",
        ),
    ] {
        let (mut cat, cols, spec) = mmap_spec();
        let d = parse(&mut cat, src).unwrap();
        let ns = time_mean_ns(2, 6, || {
            let mut cache = SynthMmapCache::new(&cat, cols, &spec, d.clone()).unwrap();
            run_cache(&mut cache, &reqs, 500, 800).0.len()
        });
        out.push((label.to_string(), ns));
    }
}

/// `micro_scheduler`: the running example's epoch mix (spawn, tick, churn,
/// teardown over 400 processes), per decomposition.
fn bench_micro_scheduler(out: &mut Vec<(String, f64)>) {
    for (label, src) in [
        (
            "micro_scheduler/fig2_join_shared",
            "let w : {ns,pid,state} . {cpu} = unit {cpu} in
             let y : {ns} . {pid,cpu} = {pid} -[htable]-> w in
             let z : {state} . {ns,pid,cpu} = {ns,pid} -[ilist]-> w in
             let x : {} . {ns,pid,state,cpu} =
               ({ns} -[htable]-> y) join ({state} -[vec]-> z) in x",
        ),
        (
            "micro_scheduler/nested_hash_chain",
            "let w : {ns,pid} . {state,cpu} = unit {state,cpu} in
             let y : {ns} . {pid,state,cpu} = {pid} -[htable]-> w in
             let x : {} . {ns,pid,state,cpu} = {ns} -[htable]-> y in x",
        ),
        (
            "micro_scheduler/flat_avl",
            "let w : {ns,pid} . {state,cpu} = unit {state,cpu} in
             let x : {} . {ns,pid,state,cpu} = {ns,pid} -[avl]-> w in x",
        ),
    ] {
        let mut cat = Catalog::new();
        let d = parse(&mut cat, src).unwrap();
        let spec = RelSpec::new(cat.all()).with_fd(
            cat.col("ns").unwrap() | cat.col("pid").unwrap(),
            cat.col("state").unwrap() | cat.col("cpu").unwrap(),
        );
        let ns_col = cat.col("ns").unwrap();
        let pid = cat.col("pid").unwrap();
        let state = cat.col("state").unwrap();
        let cpu = cat.col("cpu").unwrap();
        let ns = time_mean_ns(2, 6, || {
            let mut rel = SynthRelation::new(&cat, spec.clone(), d.clone()).unwrap();
            rel.set_fd_checking(false);
            let n = 400i64;
            for i in 0..n {
                rel.insert(Tuple::from_pairs([
                    (ns_col, Value::from(i % 8)),
                    (pid, Value::from(i)),
                    (state, Value::from(if i % 3 == 0 { "R" } else { "S" })),
                    (cpu, Value::from(0)),
                ]))
                .unwrap();
            }
            let mut running: Vec<Tuple> = Vec::new();
            rel.query_for_each(
                &Tuple::from_pairs([(state, Value::from("R"))]),
                ns_col | pid,
                |t| running.push(t.clone()),
            )
            .unwrap();
            for key in &running {
                rel.update(key, &Tuple::from_pairs([(cpu, Value::from(1))]))
                    .unwrap();
            }
            for key in &running {
                rel.update(key, &Tuple::from_pairs([(state, Value::from("S"))]))
                    .unwrap();
            }
            let mut removed = 0;
            for nsv in 0..8 {
                removed += rel
                    .remove(&Tuple::from_pairs([(ns_col, Value::from(nsv))]))
                    .unwrap();
            }
            removed
        });
        out.push((label.to_string(), ns));
    }
}

/// Warm planned-query hot path: point lookups and state scans against a
/// standing relation (one repetition = 1000 queries through the plan cache).
fn bench_query_hot_path(out: &mut Vec<(String, f64)>) {
    let mut cat = Catalog::new();
    let d = parse(
        &mut cat,
        "let w : {ns,pid,state} . {cpu} = unit {cpu} in
         let y : {ns} . {pid,cpu} = {pid} -[htable]-> w in
         let z : {state} . {ns,pid,cpu} = {ns,pid} -[ilist]-> w in
         let x : {} . {ns,pid,state,cpu} =
           ({ns} -[htable]-> y) join ({state} -[vec]-> z) in x",
    )
    .unwrap();
    let spec = RelSpec::new(cat.all()).with_fd(
        cat.col("ns").unwrap() | cat.col("pid").unwrap(),
        cat.col("state").unwrap() | cat.col("cpu").unwrap(),
    );
    let ns_col = cat.col("ns").unwrap();
    let pid = cat.col("pid").unwrap();
    let state = cat.col("state").unwrap();
    let cpu = cat.col("cpu").unwrap();
    let mut rel = SynthRelation::new(&cat, spec, d).unwrap();
    rel.set_fd_checking(false);
    for i in 0..1000i64 {
        rel.insert(Tuple::from_pairs([
            (ns_col, Value::from(i % 16)),
            (pid, Value::from(i)),
            (state, Value::from(if i % 3 == 0 { "R" } else { "S" })),
            (cpu, Value::from(i % 7)),
        ]))
        .unwrap();
    }
    let point_pats: Vec<Tuple> = (0..1000i64)
        .map(|i| Tuple::from_pairs([(ns_col, Value::from(i % 16)), (pid, Value::from(i))]))
        .collect();
    let ns = time_mean_ns(3, 10, || {
        let mut hits = 0usize;
        for p in &point_pats {
            rel.query_for_each(p, cpu.into(), |_| hits += 1).unwrap();
        }
        hits
    });
    out.push(("query_hot_path/point_lookup_1k".to_string(), ns));
    let scan_pat = Tuple::from_pairs([(state, Value::from("R"))]);
    let ns = time_mean_ns(3, 10, || {
        let mut hits = 0usize;
        for _ in 0..100 {
            rel.query_for_each(&scan_pat, ns_col | pid, |_| hits += 1)
                .unwrap();
        }
        hits
    });
    out.push(("query_hot_path/state_scan_100x".to_string(), ns));
    // The zero-allocation bindings path over the same workloads.
    let mut scratch = Bindings::new();
    let ns = time_mean_ns(3, 10, || {
        let mut hits = 0usize;
        for p in &point_pats {
            rel.query_for_each_bindings(&mut scratch, p, cpu.into(), |_| hits += 1)
                .unwrap();
        }
        hits
    });
    out.push(("query_hot_path/point_lookup_1k_raw".to_string(), ns));
    let ns = time_mean_ns(3, 10, || {
        let mut hits = 0usize;
        for _ in 0..100 {
            rel.query_for_each_bindings(&mut scratch, &scan_pat, ns_col | pid, |_| hits += 1)
                .unwrap();
        }
        hits
    });
    out.push(("query_hot_path/state_scan_100x_raw".to_string(), ns));
}

/// `codegen`: the `query_hot_path` workload through the build-time-compiled
/// scheduler module. Identical data (1000 tuples, `ns = i % 16`, `pid = i`,
/// state `R`/`S`, `cpu = i % 7`), identical query mix and repetition counts,
/// so `query_hot_path/point_lookup_1k / codegen/point_lookup_1k` is the
/// interpreted-vs-compiled speedup. `codegen/insert_1k` times populating the
/// compiled store from scratch (the interpreted counterpart is inside the
/// `micro_scheduler` epoch mix).
fn bench_codegen(out: &mut Vec<(String, f64)>) {
    let state_of = |i: i64| {
        if i % 3 == 0 {
            "R".to_string()
        } else {
            "S".to_string()
        }
    };
    let mut rel = codegen_scheduler::Relation::new();
    for i in 0..1000i64 {
        assert!(rel.insert(i % 16, i, state_of(i), i % 7));
    }
    let ns = time_mean_ns(3, 10, || {
        let mut hits = 0usize;
        for i in 0..1000i64 {
            rel.query_ns_pid_to_cpu(&(i % 16), &i, |_| hits += 1);
        }
        hits
    });
    out.push(("codegen/point_lookup_1k".to_string(), ns));
    let running = "R".to_string();
    let ns = time_mean_ns(3, 10, || {
        let mut hits = 0usize;
        for _ in 0..100 {
            rel.query_state_to_ns_pid(&running, |_, _| hits += 1);
        }
        hits
    });
    out.push(("codegen/state_scan_100x".to_string(), ns));
    let states: Vec<String> = (0..1000i64).map(state_of).collect();
    let ns = time_mean_ns(3, 10, || {
        let mut r = codegen_scheduler::Relation::new();
        for i in 0..1000i64 {
            r.insert(i % 16, i, states[i as usize].clone(), i % 7);
        }
        r.len()
    });
    out.push(("codegen/insert_1k".to_string(), ns));
}

/// A deterministic pseudo-random permutation of `0..n` (odd multiplier
/// modulo a power of two), so bulk-load inputs arrive in shuffled key order.
fn shuffled_keys(n: usize) -> Vec<i64> {
    let m = (n.max(2)).next_power_of_two() as u64;
    (0..m)
        .map(|i| (i.wrapping_mul(0x9E37_79B1) & (m - 1)) as i64)
        .filter(|&k| (k as u64) < n as u64)
        .collect()
}

/// `bulk_load_100k`: loading `n` tuples into an empty relation, per-tuple
/// `insert` loop vs `bulk_load`, on two decompositions:
///
/// * `htable_root` — the nested shape every §6 case study starts from
///   (paths → mappings, local → remote hosts, src → dst): a hash root over
///   per-key AVL groups, `n / 100` outer keys × 100 inner entries;
/// * `avl_root` — a flat ordered map of `n` distinct keys, where the batch
///   path's O(n) balanced build from sorted input replaces n O(log n)
///   insertions.
///
/// Only the load itself is timed (building the empty relation and dropping
/// the loaded store are outside the measurement).
fn bench_bulk_load(out: &mut Vec<(String, f64)>, quick: bool) {
    let n = if quick { 2_000 } else { 100_000 };
    let fanout = 100;
    let (warmup, reps) = if quick { (0, 1) } else { (1, 3) };
    for (root, src, nested) in [
        (
            "htable_root",
            "let u : {k,t} . {v} = unit {v} in
             let y : {k} . {t,v} = {t} -[avl]-> u in
             let x : {} . {k,t,v} = {k} -[htable]-> y in x",
            true,
        ),
        (
            "avl_root",
            "let u : {k} . {v} = unit {v} in
             let x : {} . {k,v} = {k} -[avl]-> u in x",
            false,
        ),
    ] {
        let mut cat = Catalog::new();
        let d = parse(&mut cat, src).unwrap();
        let k = cat.col("k").unwrap();
        let v = cat.col("v").unwrap();
        let key_cols = if nested {
            k | cat.col("t").unwrap()
        } else {
            k.into()
        };
        let spec = RelSpec::new(cat.all()).with_fd(key_cols, v.into());
        let tuples: Vec<Tuple> = shuffled_keys(n)
            .into_iter()
            .map(|i| {
                if nested {
                    Tuple::from_pairs([
                        (k, Value::from(i / fanout)),
                        (cat.col("t").unwrap(), Value::from(i % fanout)),
                        (v, Value::from(i % 97)),
                    ])
                } else {
                    Tuple::from_pairs([(k, Value::from(i)), (v, Value::from(i % 97))])
                }
            })
            .collect();
        let ns = time_stage_ns(warmup, reps, || {
            let mut rel = SynthRelation::new(&cat, spec.clone(), d.clone()).unwrap();
            let start = Instant::now();
            for t in &tuples {
                rel.insert(t.clone()).unwrap();
            }
            (start.elapsed().as_nanos() as f64, rel.len())
        });
        out.push((format!("bulk_load_100k/{root}_loop"), ns));
        let ns = time_stage_ns(warmup, reps, || {
            let mut rel = SynthRelation::new(&cat, spec.clone(), d.clone()).unwrap();
            let start = Instant::now();
            rel.bulk_load(tuples.iter().cloned()).unwrap();
            (start.elapsed().as_nanos() as f64, rel.len())
        });
        out.push((format!("bulk_load_100k/{root}_bulk"), ns));
    }
}

/// `batch_insert`: write-heavy mutation of a standing relation — the fig. 2
/// scheduler shape pre-populated, then a batch of new tuples applied as a
/// per-tuple loop vs `insert_many`; plus the sharded `ConcurrentRelation`,
/// per-tuple lock-per-insert vs grouped per-shard `bulk_load`.
fn bench_batch_insert(out: &mut Vec<(String, f64)>, quick: bool) {
    let (base_n, batch_n) = if quick { (200, 800) } else { (2_000, 20_000) };
    let (warmup, reps) = if quick { (0, 1) } else { (1, 3) };
    // Scheduler relation: nested hash chain rooted at {ns}.
    let mut cat = Catalog::new();
    let d = parse(
        &mut cat,
        "let w : {ns,pid} . {state,cpu} = unit {state,cpu} in
         let y : {ns} . {pid,state,cpu} = {pid} -[htable]-> w in
         let x : {} . {ns,pid,state,cpu} = {ns} -[htable]-> y in x",
    )
    .unwrap();
    let spec = RelSpec::new(cat.all()).with_fd(
        cat.col("ns").unwrap() | cat.col("pid").unwrap(),
        cat.col("state").unwrap() | cat.col("cpu").unwrap(),
    );
    let ns_col = cat.col("ns").unwrap();
    let pid = cat.col("pid").unwrap();
    let state = cat.col("state").unwrap();
    let cpu = cat.col("cpu").unwrap();
    // Replay streams arrive clustered by namespace (the paper's §6 traces
    // are grouped by connection/path), so the batch is generated ns-major.
    let proc_t = |i: i64| {
        Tuple::from_pairs([
            (ns_col, Value::from(i / 512)),
            (pid, Value::from(i)),
            (state, Value::from(if i % 3 == 0 { "R" } else { "S" })),
            (cpu, Value::from(i % 7)),
        ])
    };
    let base: Vec<Tuple> = (0..base_n as i64).map(proc_t).collect();
    let batch: Vec<Tuple> = (base_n as i64..(base_n + batch_n) as i64)
        .map(proc_t)
        .collect();
    let ns = time_stage_ns(warmup, reps, || {
        let mut rel = SynthRelation::new(&cat, spec.clone(), d.clone()).unwrap();
        rel.bulk_load(base.iter().cloned()).unwrap();
        let start = Instant::now();
        for t in &batch {
            rel.insert(t.clone()).unwrap();
        }
        (start.elapsed().as_nanos() as f64, rel.len())
    });
    out.push(("batch_insert/scheduler_loop".to_string(), ns));
    let ns = time_stage_ns(warmup, reps, || {
        let mut rel = SynthRelation::new(&cat, spec.clone(), d.clone()).unwrap();
        rel.bulk_load(base.iter().cloned()).unwrap();
        let start = Instant::now();
        rel.insert_many(batch.iter().cloned()).unwrap();
        (start.elapsed().as_nanos() as f64, rel.len())
    });
    out.push(("batch_insert/scheduler_batch".to_string(), ns));
    // Sharded relation: per-tuple lock acquisition vs one lock per shard.
    let mut cat = Catalog::new();
    let d = parse(
        &mut cat,
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
         let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
    )
    .unwrap();
    let host = cat.col("host").unwrap();
    let ts = cat.col("ts").unwrap();
    let bytes = cat.col("bytes").unwrap();
    let spec = RelSpec::new(cat.all()).with_fd(host | ts, bytes.into());
    let batch: Vec<Tuple> = (0..batch_n as i64)
        .map(|i| {
            Tuple::from_pairs([
                (host, Value::from(i % 16)),
                (ts, Value::from(i)),
                (bytes, Value::from(i % 1400)),
            ])
        })
        .collect();
    let ns = time_stage_ns(warmup, reps, || {
        let rel = ConcurrentRelation::new(&cat, spec.clone(), d.clone(), host.into(), 8).unwrap();
        let start = Instant::now();
        for t in &batch {
            rel.insert(t.clone()).unwrap();
        }
        (start.elapsed().as_nanos() as f64, rel.len())
    });
    out.push(("batch_insert/sharded_loop".to_string(), ns));
    let ns = time_stage_ns(warmup, reps, || {
        let rel = ConcurrentRelation::new(&cat, spec.clone(), d.clone(), host.into(), 8).unwrap();
        let start = Instant::now();
        rel.bulk_load(batch.iter().cloned()).unwrap();
        (start.elapsed().as_nanos() as f64, rel.len())
    });
    out.push(("batch_insert/sharded_bulk".to_string(), ns));
}

/// `phase_shift`: the adaptive-representation scenario — an event log
/// serving point reads that shifts to by-timestamp slicing and retirement
/// mid-run. Both arms start from the phase-A-optimal flat hash; the
/// adaptive arm re-tunes every `retune_every` ops with a 1.5x margin and
/// migrates at the shift (its post-shift time *includes* the migration).
/// The acceptance metric is `fixed_post_shift / adaptive_post_shift`.
fn bench_phase_shift(out: &mut Vec<(String, f64)>, quick: bool) {
    let (hosts, ts_per_host) = if quick { (8, 16) } else { (64, 128) };
    let (a_ops, b_ops) = if quick { (200, 200) } else { (2_000, 2_000) };
    let retune_every = if quick { 32 } else { 128 };
    let (warmup, reps) = if quick { (0, 1) } else { (1, 3) };
    let mut run = |label: &str, cadence: usize| -> usize {
        let mut migrations = 0usize;
        let mut a_total = 0f64;
        let mut b_total = 0f64;
        for i in 0..warmup + reps {
            let (mut cat, cols, spec) = event_log_spec();
            let d = point_read_decomposition(&mut cat);
            let rel = SynthRelation::new(&cat, spec, d).unwrap();
            let mut adapt = AdaptiveRelation::new(rel, phase_shift_options(), cadence, 1.5);
            let report =
                run_phase_shift(&mut adapt, cols, hosts, ts_per_host, a_ops, b_ops).unwrap();
            std::hint::black_box(report.rows);
            if i >= warmup {
                a_total += report.phase_a_ns as f64;
                b_total += report.phase_b_ns as f64;
                migrations = report.migrations;
            }
        }
        out.push((
            format!("phase_shift/{label}_phase_a"),
            a_total / reps as f64,
        ));
        out.push((
            format!("phase_shift/{label}_post_shift"),
            b_total / reps as f64,
        ));
        migrations
    };
    let fixed_migrations = run("fixed", 0);
    assert_eq!(fixed_migrations, 0);
    let adaptive_migrations = run("adaptive", retune_every);
    out.push((
        "phase_shift/adaptive_migrations".to_string(),
        adaptive_migrations as f64,
    ));
}

/// `read_scaling`: read service latency of a sharded relation under a 95/5
/// read/write op mix, as reader threads scale 1 -> 8.
///
/// The workload is the ROADMAP's read-mostly serving regime as an **open
/// loop**: reader threads issue pinned `(host, ts)` point reads with a 40us
/// think time (traffic arrives at a rate; it does not saturate cores),
/// while one writer thread works through a fixed maintenance schedule of
/// batched write epochs -- retiring one host's event slice and re-ingesting
/// it inside `with_partition_mut` (the SS6.2 log-rotation idiom as one
/// atomic per-partition batch), with every 16th epoch a **representation
/// migration** (`migrate_to`, PR 3's all-shard epoch, which holds every
/// shard write lock across the O(n) drain + rebuild). Write ops are batch
/// ops (the system's write API); the writer paces itself to at most one
/// epoch per 19 served reads, so the offered mix is 95/5 and identical in
/// both arms. The arms differ only in the read path:
///
/// * `locked` -- reads go through [`ConcurrentRelation::query`], taking the
///   owning shard's `RwLock` per read (the pre-PR-4 path), and therefore
///   queue behind every batch/migration critical section in flight;
/// * `snapshot` -- reads go through a cached
///   [`ReadHandle`](relic_concurrent::ReadHandle): published snapshots, no
///   shard lock, one atomic epoch check per read -- an epoch in flight is
///   invisible until its per-shard publish, so a read never waits on the
///   writer.
///
/// `read_scaling/{locked,snapshot}_tN` is **aggregate nanoseconds per
/// served read** (the sum of per-read service latencies over total reads;
/// a locked read's latency includes its lock wait). The reciprocal is
/// aggregate read throughput, so `locked_t8 / snapshot_t8` is the snapshot
/// arm's aggregate read-throughput speedup at 8 readers -- the BENCH_4
/// acceptance metric (>= 3x). The expected shape: the locked arm's latency
/// *grows* with reader count (more reads queue behind each epoch), the
/// snapshot arm's stays flat at the bare probe cost.
///
/// `read_scaling/mig_stall_{locked,snapshot}_ns` is the per-read face of
/// the same fact: the mean latency of one point read issued 1ms after a
/// migration epoch observably began. A locked read cannot complete before
/// the epoch ends (happens-before, not scheduling); a snapshot read is
/// served from the published views immediately -- its remaining cost is
/// the occasional reclamation of a retired pre-migration store.
fn bench_read_scaling(out: &mut Vec<(String, f64)>, quick: bool, cores: Option<usize>) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;
    let (hosts, ts_per_host, shards) = if quick { (32, 16, 8) } else { (256, 32, 8) };
    let per_thread_ops = if quick { 1_000usize } else { 5_000 };
    let ladder: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let thread_counts = clamp_ladder(ladder, cores);
    let thread_counts = &thread_counts[..];
    let mut cat = Catalog::new();
    let d = parse(
        &mut cat,
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
         let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
    )
    .unwrap();
    let host = cat.col("host").unwrap();
    let ts = cat.col("ts").unwrap();
    let bytes = cat.col("bytes").unwrap();
    let spec = RelSpec::new(cat.all()).with_fd(host | ts, bytes.into());
    let event = |h: i64, t: i64, b: i64| {
        Tuple::from_pairs([
            (host, Value::from(h)),
            (ts, Value::from(t)),
            (bytes, Value::from(b)),
        ])
    };
    let load: Vec<Tuple> = (0..hosts as i64)
        .flat_map(|h| (0..ts_per_host as i64).map(move |t| event(h, t, h + t)))
        .collect();
    // The migration flip-flop target: a structurally different adequate
    // shape (flat ordered map over the full key), so every migration does a
    // real O(n) rebuild under all shard write locks.
    let d_alt = parse(
        &mut cat,
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let x : {} . {host,ts,bytes} = {host,ts} -[avl]-> u in x",
    )
    .unwrap();
    for &threads in thread_counts {
        let reads_total = per_thread_ops * threads;
        // 95/5 op mix: one batched write epoch per 19 reads.
        let write_epochs = reads_total * 5 / 95;
        for snapshot_arm in [false, true] {
            let rel = ConcurrentRelation::new(&cat, spec.clone(), d.clone(), host.into(), shards)
                .unwrap();
            rel.bulk_load(load.iter().cloned()).unwrap();
            let barrier = Barrier::new(threads + 1);
            let reads_done = AtomicU64::new(0);
            let last_read_done_ns = std::thread::scope(|s| {
                let _writer = {
                    let (rel, barrier, reads_done) = (&rel, &barrier, &reads_done);
                    let (event, d_alt, d_base) = (&event, &d_alt, &d);
                    s.spawn(move || {
                        barrier.wait();
                        for e in 0..write_epochs {
                            // Keep the offered mix at 95/5 while reads are
                            // in flight: stay at or below one epoch per 19
                            // served reads (parked, not spinning, so the
                            // pacing itself costs no CPU).
                            while (e as u64) * 19 > reads_done.load(Ordering::Relaxed)
                                && reads_done.load(Ordering::Relaxed) < reads_total as u64
                            {
                                std::thread::sleep(std::time::Duration::from_micros(100));
                            }
                            if e % 16 == 15 {
                                // A representation migration: the adaptive
                                // layer's all-shard epoch (every write lock
                                // held across the O(n) rebuild).
                                let target = if (e / 16) % 2 == 0 { d_alt } else { d_base };
                                rel.migrate_to(target.clone()).unwrap();
                            } else {
                                // Retire one host's slice and re-ingest it
                                // with a bumped payload, atomically inside
                                // the owning partition's critical section
                                // (one per-partition batch write op).
                                let h = (e % hosts) as i64;
                                let hpat = Tuple::from_pairs([(host, Value::from(h))]);
                                let stamp = event(0, 0, e as i64).project(bytes.into());
                                rel.with_partition_mut(&hpat, |shard| {
                                    let rows = shard.query(&hpat, host | ts | bytes).unwrap();
                                    shard.remove(&hpat).unwrap();
                                    shard
                                        .insert_many(rows.into_iter().map(|r| r.merge(&stamp)))
                                        .unwrap();
                                });
                            }
                        }
                    })
                };
                let readers: Vec<_> = (0..threads)
                    .map(|w| {
                        let (rel, barrier, reads_done) = (&rel, &barrier, &reads_done);
                        let event = &event;
                        s.spawn(move || {
                            let mut handle = rel.read_handle();
                            let mut hits = 0usize;
                            let mut read_ns = 0u128;
                            barrier.wait();
                            for i in 0..per_thread_ops {
                                // Open-loop think time: serving traffic
                                // arrives at a rate, it does not saturate a
                                // core — this is what lets the maintenance
                                // writer hold its 5% share, and what makes
                                // per-read latency a sound measurement.
                                std::thread::sleep(std::time::Duration::from_micros(40));
                                let h = ((w * 31 + i * 7) % hosts) as i64;
                                let t = ((i * 13) % ts_per_host) as i64;
                                let pat = event(h, t, 0).project(host | ts);
                                let start = Instant::now();
                                let rows = if snapshot_arm {
                                    handle.query(&pat, bytes.into()).unwrap()
                                } else {
                                    rel.query(&pat, bytes.into()).unwrap()
                                };
                                read_ns += start.elapsed().as_nanos();
                                hits += rows.len();
                                if i % 16 == 15 {
                                    reads_done.fetch_add(16, Ordering::Relaxed);
                                }
                            }
                            // Count the tail reads too: the writer's pacing
                            // gate waits on the full total.
                            reads_done.fetch_add((per_thread_ops % 16) as u64, Ordering::Relaxed);
                            std::hint::black_box(hits);
                            read_ns
                        })
                    })
                    .collect();
                // The writer finishes its fixed schedule flat out after the
                // readers are done (joined by scope exit); the metric sums
                // the served reads' latencies.
                readers
                    .into_iter()
                    .map(|h| h.join().expect("reader thread"))
                    .sum::<u128>()
            });
            let ns_per_read = last_read_done_ns as f64 / reads_total as f64;
            let arm = if snapshot_arm { "snapshot" } else { "locked" };
            out.push((format!("read_scaling/{arm}_t{threads}"), ns_per_read));
        }
    }
    // The stall metric: latency of a point read issued **while a write
    // epoch is in flight**. A migration epoch holds every shard write lock
    // across its O(n) drain + rebuild; a locked read issued mid-epoch
    // cannot complete before the epoch ends (a happens-before fact,
    // independent of scheduling), while a snapshot read is served
    // immediately from the published views. One reader issues exactly one
    // timed read per migration window, 1ms after the migration observably
    // started; the mean over windows is reported per arm. This is the
    // per-read face of the aggregate-throughput claim, and the number the
    // single-core CI box can measure without scheduler interference.
    // Quick mode skips the stall pair: its shrunken migrations finish
    // within one scheduler timeslice, so a mid-epoch read cannot even be
    // issued (the tN arms above already exercise every code path).
    if quick {
        return;
    }
    let stall_migrations = 12;
    // Mid-epoch head start: long enough that the epoch's lock acquisition
    // is over, short enough to land well inside a migration.
    let head_start_us = 1000;
    for snapshot_arm in [false, true] {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        let rel =
            ConcurrentRelation::new(&cat, spec.clone(), d.clone(), host.into(), shards).unwrap();
        rel.bulk_load(load.iter().cloned()).unwrap();
        let in_mig = AtomicU64::new(0); // window counter; odd = in flight
        let stop = AtomicBool::new(false);
        let stall_ns_total = std::thread::scope(|s| {
            let (rel, in_mig, stop) = (&rel, &in_mig, &stop);
            let _writer = {
                let (d_alt, d_base) = (&d_alt, &d);
                s.spawn(move || {
                    for m in 0..stall_migrations {
                        // Let the reader settle between windows.
                        std::thread::sleep(std::time::Duration::from_millis(4));
                        let target = if m % 2 == 0 { d_alt } else { d_base };
                        in_mig.fetch_add(1, Ordering::SeqCst); // odd: begins
                        rel.migrate_to(target.clone()).unwrap();
                        in_mig.fetch_add(1, Ordering::SeqCst); // even: over
                    }
                    stop.store(true, Ordering::Release);
                })
            };
            let reader = {
                let event = &event;
                s.spawn(move || {
                    let mut handle = rel.read_handle();
                    let mut total_ns = 0u128;
                    let mut windows = 0u32;
                    let mut seen = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let w = in_mig.load(Ordering::SeqCst);
                        if w % 2 == 0 || w == seen {
                            std::hint::spin_loop();
                            continue;
                        }
                        seen = w;
                        // The migration observably began; give its lock
                        // acquisition a head start, then issue one read
                        // mid-epoch.
                        std::thread::sleep(std::time::Duration::from_micros(head_start_us));
                        let pat = event((windows % 64) as i64, 0, 0).project(host | ts);
                        let start = Instant::now();
                        let rows = if snapshot_arm {
                            handle.query(&pat, bytes.into()).unwrap()
                        } else {
                            rel.query(&pat, bytes.into()).unwrap()
                        };
                        total_ns += start.elapsed().as_nanos();
                        windows += 1;
                        std::hint::black_box(rows.len());
                    }
                    (total_ns, windows)
                })
            };
            reader.join().expect("stall reader")
        });
        let (total_ns, windows) = stall_ns_total;
        let arm = if snapshot_arm { "snapshot" } else { "locked" };
        out.push((
            format!("read_scaling/mig_stall_{arm}_ns"),
            total_ns as f64 / f64::from(windows.max(1)),
        ));
    }
}

/// Caps a thread-count ladder at `--cores N` (always keeping at least the
/// single-thread rung, so every family reports a comparable baseline).
fn clamp_ladder(ladder: &[usize], cores: Option<usize>) -> Vec<usize> {
    let mut v: Vec<usize> = match cores {
        Some(c) => ladder.iter().copied().filter(|&t| t <= c.max(1)).collect(),
        None => ladder.to_vec(),
    };
    if v.is_empty() {
        v.push(1);
    }
    v
}

/// `writer_scaling` (PR 8): per-mutation-epoch write cost on a
/// snapshot-held store, copy-on-write vs epoch-based reclamation, at
/// 1/2/4 writer threads.
///
/// One **mutation epoch** is the serving system's steady-state write unit:
/// a pinned single-shard `update` followed by a reader collecting a fresh
/// view (the collected view is held for two epochs, like a reader that is
/// always one refresh behind). A long-held `ReadHandle` additionally pins
/// the whole run — the ISSUE's "snapshot held" condition. Because every
/// mutation therefore replaces a still-referenced published snapshot, the
/// two arms differ in exactly the cost under test:
///
/// * `cow` — [`ConcurrentRelation::set_cow_store_clones`]`(true)` restores
///   the pre-PR-8 write path: the writer deep-clones the shard's entire
///   store before mutating, every epoch (the `Arc::make_mut` whole-store
///   copy this PR removed);
/// * `ebr` — the default path: the writer path-copies only what it
///   touches, the replaced snapshot retires onto the shard's limbo list,
///   and teardown happens writer-side after the grace period.
///
/// `writer_scaling/{cow,ebr}_t{N}_ns` is mean nanoseconds per mutation
/// epoch, aggregated over all writers. The BENCH_8 acceptance metric is
/// `cow_tN / ebr_tN >= 2` at every rung. Writer threads share hardware
/// cores when oversubscribed (see the `--cores` header fields); both arms
/// run the identical schedule, so the ratio is meaningful even on one CPU.
fn bench_writer_scaling(out: &mut Vec<(String, f64)>, quick: bool, cores: Option<usize>) {
    use std::sync::Barrier;
    let (hosts, ts_per_host, shards) = if quick {
        (16usize, 8usize, 4)
    } else {
        (64, 32, 8)
    };
    let epochs_per_writer = if quick { 40usize } else { 400 };
    let ladder: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let writer_counts = clamp_ladder(ladder, cores);
    let mut cat = Catalog::new();
    let d = parse(
        &mut cat,
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
         let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
    )
    .unwrap();
    let host = cat.col("host").unwrap();
    let ts = cat.col("ts").unwrap();
    let bytes = cat.col("bytes").unwrap();
    let spec = RelSpec::new(cat.all()).with_fd(host | ts, bytes.into());
    let load: Vec<Tuple> = (0..hosts as i64)
        .flat_map(|h| {
            (0..ts_per_host as i64).map(move |t| {
                Tuple::from_pairs([
                    (host, Value::from(h)),
                    (ts, Value::from(t)),
                    (bytes, Value::from(h + t)),
                ])
            })
        })
        .collect();
    for &writers in &writer_counts {
        let hosts_per_writer = (hosts / writers).max(1);
        for cow in [true, false] {
            let rel = ConcurrentRelation::new(&cat, spec.clone(), d.clone(), host.into(), shards)
                .unwrap();
            rel.bulk_load(load.iter().cloned()).unwrap();
            rel.set_cow_store_clones(cow);
            // The held snapshot: pinned for the whole arm, never refreshed.
            let hoarder = rel.read_handle();
            let barrier = Barrier::new(writers);
            let total_ns: u128 = std::thread::scope(|s| {
                let handles: Vec<_> = (0..writers)
                    .map(|w| {
                        let (rel, barrier) = (&rel, &barrier);
                        s.spawn(move || {
                            let base = (w * hosts_per_writer) as i64;
                            // The reader one refresh behind: holds the two
                            // most recent views, so the snapshot a mutation
                            // replaces is always still referenced.
                            let mut ring = [rel.read_view(), rel.read_view()];
                            barrier.wait();
                            let start = Instant::now();
                            for e in 0..epochs_per_writer {
                                let h = base + (e % hosts_per_writer) as i64;
                                let key = Tuple::from_pairs([
                                    (host, Value::from(h)),
                                    (ts, Value::from((e % ts_per_host) as i64)),
                                ]);
                                let chg = Tuple::from_pairs([(bytes, Value::from(e as i64))]);
                                rel.update(&key, &chg).unwrap();
                                ring[e % 2] = rel.read_view();
                            }
                            let ns = start.elapsed().as_nanos();
                            std::hint::black_box(&ring);
                            ns
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("writer thread"))
                    .sum()
            });
            drop(hoarder);
            rel.reclaim();
            let arm = if cow { "cow" } else { "ebr" };
            out.push((
                format!("writer_scaling/{arm}_t{writers}"),
                total_ns as f64 / (writers * epochs_per_writer) as f64,
            ));
        }
    }
}

/// `wal_commit`: the durability hot path and recovery cost (PR 5).
///
/// * `per_record_fsync` vs `group_commit` — nanoseconds per durable insert
///   into a [`DurableRelation`], with the log fsyncing after every record
///   vs batching under the default group-commit policy (one contiguous
///   write + one fsync per segment). The BENCH_5 acceptance metric is
///   `per_record_fsync / group_commit >= 5`.
/// * `recover_100k_log_only` vs `recover_100k_checkpoint` — wall time of
///   [`DurableRelation::open`] for a 100k-tuple relation, replaying the
///   full log vs loading a checkpoint (O(n) `bulk_load`) plus an empty
///   tail.
fn bench_wal_commit(out: &mut Vec<(String, f64)>, quick: bool) {
    let commit_n = if quick { 200 } else { 2_000 };
    let recover_n: usize = if quick { 5_000 } else { 100_000 };
    let (warmup, reps) = if quick { (0, 1) } else { (1, 3) };
    let mut cat = Catalog::new();
    let d = parse(
        &mut cat,
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
         let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
    )
    .unwrap();
    let host = cat.col("host").unwrap();
    let ts = cat.col("ts").unwrap();
    let bytes = cat.col("bytes").unwrap();
    let spec = RelSpec::new(cat.all()).with_fd(host | ts, bytes.into());
    let event = |h: i64, t: i64| {
        Tuple::from_pairs([
            (host, Value::from(h)),
            (ts, Value::from(t)),
            (bytes, Value::from((h + t) % 1400)),
        ])
    };
    let base = std::env::temp_dir().join(format!("relic_bench_wal_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    // Durable insert latency: per-record fsync vs group commit.
    for (label, policy) in [
        ("per_record_fsync", GroupCommitPolicy::per_record()),
        ("group_commit", GroupCommitPolicy::default()),
    ] {
        let dir = base.join(label);
        let ns = time_stage_ns(warmup, reps, || {
            let rel = DurableRelation::create(
                &dir,
                &cat,
                spec.clone(),
                d.clone(),
                host.into(),
                8,
                true,
                policy,
            )
            .unwrap();
            let start = Instant::now();
            for i in 0..commit_n as i64 {
                rel.insert(event(i % 16, i)).unwrap();
            }
            rel.commit().unwrap();
            (
                start.elapsed().as_nanos() as f64 / commit_n as f64,
                rel.len(),
            )
        });
        out.push((format!("wal_commit/{label}"), ns));
    }
    // Recovery time for `recover_n` tuples: full-log replay (the load was
    // logged as per-shard batch records) vs checkpoint + empty tail.
    for (label, checkpoint) in [
        ("recover_100k_log_only", false),
        ("recover_100k_checkpoint", true),
    ] {
        let dir = base.join(label);
        {
            let rel = DurableRelation::create(
                &dir,
                &cat,
                spec.clone(),
                d.clone(),
                host.into(),
                8,
                true,
                GroupCommitPolicy::default(),
            )
            .unwrap();
            for chunk in 0..(recover_n / 1000) {
                let batch: Vec<Tuple> = (0..1000)
                    .map(|i| {
                        let k = (chunk * 1000 + i) as i64;
                        event(k % 512, k / 512)
                    })
                    .collect();
                rel.bulk_load(batch).unwrap();
            }
            rel.commit().unwrap();
            if checkpoint {
                rel.checkpoint().unwrap();
            }
        }
        let ns = time_stage_ns(warmup, reps, || {
            let start = Instant::now();
            let rel = DurableRelation::open(&dir, GroupCommitPolicy::default()).unwrap();
            let elapsed = start.elapsed().as_nanos() as f64;
            assert_eq!(rel.len(), recover_n);
            (elapsed, rel.len())
        });
        out.push((format!("wal_commit/{label}"), ns));
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// `replication` (PR 7): the log-shipping path of `relic_replica`, measured
/// at its three user-visible latencies:
///
/// * `ship_ns_per_record` — end-to-end catch-up throughput: a fresh
///   follower bootstraps from a checkpointless primary and tails `n`
///   committed records through the transport (every frame re-verified,
///   appended to the local log, fsynced, then applied); nanoseconds per
///   shipped record.
/// * `apply_lag_ns_per_commit` — steady-state follower lag: with a
///   caught-up follower, one primary commit followed by one poll; mean
///   nanoseconds from "committed on the primary" to "applied and durable
///   on the follower".
/// * `failover_promote_ns` — crash-driven failover: wall time for a
///   caught-up follower to seal its log, bump the term durably, and come
///   up as a writable primary.
fn bench_replication(out: &mut Vec<(String, f64)>, quick: bool) {
    use relic_replica::{Follower, InProcTransport, Primary};
    use std::sync::Arc;

    let n: i64 = if quick { 200 } else { 5_000 };
    let lag_commits: usize = if quick { 20 } else { 200 };
    let (warmup, reps) = if quick { (0, 1) } else { (1, 3) };
    let base = std::env::temp_dir().join(format!("relic_bench_repl_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let make_primary = |dir: &std::path::Path| {
        let mut cat = Catalog::new();
        let (k, v) = (cat.intern("k"), cat.intern("v"));
        let spec = RelSpec::new(k | v).with_fd(k.set(), v.set());
        let d = parse(
            &mut cat,
            "let u : {k} . {v} = unit {v} in
             let x : {} . {k,v} = {k} -[htable]-> u in x",
        )
        .unwrap();
        let rel = DurableRelation::create(
            dir,
            &cat,
            spec,
            d,
            k.set(),
            4,
            true,
            GroupCommitPolicy::manual(),
        )
        .unwrap();
        (k, v, Primary::new(rel))
    };
    let catch_up = |f: &mut Follower, t: &mut InProcTransport| {
        f.catch_up(t, 2, std::time::Duration::from_millis(1))
            .unwrap()
    };

    // Shipping throughput: n committed records tailed by a fresh follower.
    {
        let dir = base.join("ship_primary");
        let (k, v, p) = make_primary(&dir);
        for i in 0..n {
            p.insert(Tuple::from_pairs([
                (k, Value::from(i)),
                (v, Value::from(i)),
            ]))
            .unwrap();
        }
        p.commit().unwrap();
        let p = Arc::new(p);
        let mut rep = 0usize;
        let ns = time_stage_ns(warmup, reps, || {
            rep += 1;
            let fdir = base.join(format!("ship_follower_{rep}"));
            let mut t = InProcTransport::new(Arc::clone(&p));
            let start = Instant::now();
            let mut f = Follower::bootstrap(&fdir, &mut t).unwrap();
            catch_up(&mut f, &mut t);
            let elapsed = start.elapsed().as_nanos() as f64;
            let len = f.len();
            assert_eq!(len, n as usize);
            let _ = std::fs::remove_dir_all(&fdir);
            (elapsed / n as f64, len)
        });
        out.push(("replication/ship_ns_per_record".to_string(), ns));
    }

    // Steady-state apply lag: one commit, one poll, follower durable.
    {
        let dir = base.join("lag_primary");
        let (k, v, p) = make_primary(&dir);
        let p = Arc::new(p);
        let fdir = base.join("lag_follower");
        let mut t = InProcTransport::new(Arc::clone(&p));
        let mut f = Follower::bootstrap(&fdir, &mut t).unwrap();
        let mut i = 0i64;
        let ns = time_stage_ns(warmup, reps, || {
            let mut total = 0f64;
            for _ in 0..lag_commits {
                p.insert(Tuple::from_pairs([
                    (k, Value::from(i)),
                    (v, Value::from(i)),
                ]))
                .unwrap();
                i += 1;
                let start = Instant::now();
                p.commit().unwrap();
                catch_up(&mut f, &mut t);
                total += start.elapsed().as_nanos() as f64;
            }
            (total / lag_commits as f64, f.len())
        });
        out.push(("replication/apply_lag_ns_per_commit".to_string(), ns));
    }

    // Failover: caught-up follower → writable promoted primary.
    {
        let dir = base.join("failover_primary");
        let (k, v, p) = make_primary(&dir);
        for i in 0..n {
            p.insert(Tuple::from_pairs([
                (k, Value::from(i)),
                (v, Value::from(i)),
            ]))
            .unwrap();
        }
        p.commit().unwrap();
        let p = Arc::new(p);
        let mut rep = 0usize;
        let ns = time_stage_ns(warmup, reps, || {
            rep += 1;
            let fdir = base.join(format!("failover_follower_{rep}"));
            let mut t = InProcTransport::new(Arc::clone(&p));
            let mut f = Follower::bootstrap(&fdir, &mut t).unwrap();
            catch_up(&mut f, &mut t);
            let start = Instant::now();
            let promoted = f.promote(GroupCommitPolicy::manual()).unwrap();
            let elapsed = start.elapsed().as_nanos() as f64;
            let len = promoted.relation().len();
            drop(promoted);
            let _ = std::fs::remove_dir_all(&fdir);
            (elapsed, len)
        });
        out.push(("replication/failover_promote_ns".to_string(), ns));
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// `serving` (PR 9): the `relic_server` network front end, measured at its
/// two serving-side claims:
///
/// * `ingest_*_ns_per_op` — pipelined insert ingest across many client
///   connections, once with cross-connection request coalescing and group
///   commit (`Coalesced`: consecutive inserts merge into `insert_many`
///   runs and the whole worker batch shares **one fsync**) and once with
///   an fsync per request (`PerRequest`). The ratio
///   (`group_commit_speedup_x`) is the serving twin of
///   `wal_commit/per_record_fsync ÷ group_commit`.
/// * `open_loop_p50_ns` / `open_loop_p99_ns` — response latency of point
///   queries under a wave of concurrent connections (`open_loop_conns` of
///   them, ≥1k in full mode): every connection's request is sent before
///   any response is read, so the server carries the whole wave at once;
///   latency is stamped per request from send to response-decoded.
fn bench_serving(out: &mut Vec<(String, f64)>, quick: bool) {
    use relic_core::netmsg::{NetRequest, NetResponse};
    use relic_server::{Client, CommitMode, ServeHandle, ServerConfig};
    use std::sync::{Arc, Barrier};

    let base = std::env::temp_dir().join(format!("relic_bench_serving_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let spawn_server = |dir: &std::path::Path, mode: CommitMode| -> ServeHandle {
        let mut cat = Catalog::new();
        let (k, v) = (cat.intern("k"), cat.intern("v"));
        let spec = RelSpec::new(k | v).with_fd(k.set(), v.set());
        let d = parse(
            &mut cat,
            "let u : {k} . {v} = unit {v} in
             let x : {} . {k,v} = {k} -[htable]-> u in x",
        )
        .unwrap();
        let rel = DurableRelation::create(
            dir,
            &cat,
            spec,
            d,
            k.set(),
            4,
            true,
            GroupCommitPolicy::manual(),
        )
        .unwrap();
        let config = ServerConfig {
            commit: mode,
            ..ServerConfig::default()
        };
        ServeHandle::spawn(Arc::new(rel), config).unwrap()
    };

    // Ingest: every connection pipelines its inserts (send all, then drain
    // acks), so the server sees whole runs of mutation frames to coalesce.
    let ingest_conns: usize = if quick { 4 } else { 32 };
    let arms: [(&str, CommitMode, usize); 2] = [
        (
            "ingest_coalesced_ns_per_op",
            CommitMode::Coalesced,
            if quick { 64 } else { 512 },
        ),
        (
            "ingest_per_request_ns_per_op",
            CommitMode::PerRequest,
            if quick { 8 } else { 32 },
        ),
    ];
    let (warmup, reps) = if quick { (0, 1) } else { (1, 3) };
    let mut arm_ns = [0f64; 2];
    for (arm, (label, mode, per_conn)) in arms.into_iter().enumerate() {
        let mut rep = 0usize;
        let ns = time_stage_ns(warmup, reps, || {
            rep += 1;
            let dir = base.join(format!("{label}_{rep}"));
            let server = spawn_server(&dir, mode);
            let addr = server.addr();
            let barrier = Arc::new(Barrier::new(ingest_conns + 1));
            let workers: Vec<_> = (0..ingest_conns)
                .map(|c| {
                    let barrier = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        let (cat, _) = client.catalog().unwrap();
                        let (k, v) = (cat.col("k").unwrap(), cat.col("v").unwrap());
                        barrier.wait();
                        for i in 0..per_conn {
                            let key = (c * 1_000_000 + i) as i64;
                            client
                                .send(&NetRequest::Insert {
                                    tuple: Tuple::from_pairs([
                                        (k, Value::from(key)),
                                        (v, Value::from(key)),
                                    ]),
                                })
                                .unwrap();
                        }
                        let mut inserted = 0u64;
                        for _ in 0..per_conn {
                            match client.recv().unwrap() {
                                NetResponse::Ack { n } => inserted += n,
                                other => panic!("expected ack, got {other:?}"),
                            }
                        }
                        inserted
                    })
                })
                .collect();
            barrier.wait();
            let start = Instant::now();
            let inserted: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
            let elapsed = start.elapsed().as_nanos() as f64;
            let total = (ingest_conns * per_conn) as u64;
            assert_eq!(inserted, total, "every pipelined insert acked exactly once");
            server.stop().unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            (elapsed / total as f64, inserted as usize)
        });
        arm_ns[arm] = ns;
        out.push((format!("serving/{label}"), ns));
    }
    out.push((
        "serving/group_commit_speedup_x".to_string(),
        arm_ns[1] / arm_ns[0],
    ));

    // Open-loop latency waves: `wave_conns` connections each holding one
    // row; per round, send every connection's point query before reading
    // any response, then stamp each response as it is drained.
    {
        let wave_conns: usize = if quick { 128 } else { 1024 };
        let rounds: usize = if quick { 3 } else { 10 };
        let dir = base.join("open_loop");
        let server = spawn_server(&dir, CommitMode::Coalesced);
        let addr = server.addr();
        let mut clients: Vec<Client> = Vec::with_capacity(wave_conns);
        let mut first = Client::connect(addr).unwrap();
        let (cat, _) = first.catalog().unwrap();
        let (k, v) = (cat.col("k").unwrap(), cat.col("v").unwrap());
        clients.push(first);
        for _ in 1..wave_conns {
            clients.push(Client::connect(addr).unwrap());
        }
        for (c, client) in clients.iter_mut().enumerate() {
            client
                .insert(Tuple::from_pairs([
                    (k, Value::from(c as i64)),
                    (v, Value::from(c as i64)),
                ]))
                .unwrap();
        }
        let mut samples: Vec<f64> = Vec::with_capacity(wave_conns * rounds);
        let mut rows = 0usize;
        for _ in 0..rounds {
            let mut sent = Vec::with_capacity(wave_conns);
            for (c, client) in clients.iter_mut().enumerate() {
                let key = Tuple::from_pairs([(k, Value::from(c as i64))]);
                sent.push(Instant::now());
                client
                    .send(&NetRequest::Query {
                        pattern: key,
                        out: relic_spec::ColSet::empty(),
                    })
                    .unwrap();
            }
            for (c, client) in clients.iter_mut().enumerate() {
                match client.recv().unwrap() {
                    NetResponse::Rows { tuples } => rows += tuples.len(),
                    other => panic!("expected rows, got {other:?}"),
                }
                samples.push(sent[c].elapsed().as_nanos() as f64);
            }
        }
        assert_eq!(rows, wave_conns * rounds, "every point query found its row");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let pct = |p: usize| samples[(samples.len() - 1) * p / 100];
        out.push(("serving/open_loop_conns".to_string(), wave_conns as f64));
        out.push(("serving/open_loop_p50_ns".to_string(), pct(50)));
        out.push(("serving/open_loop_p99_ns".to_string(), pct(99)));
        drop(clients);
        server.stop().unwrap();
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// §6 through the front door: the flows ⋈ addrs aggregate of the shell
/// demo, once through `relic_shell` (parse → cost-model plan → zero-alloc
/// streaming execute, all per repetition — nothing is pre-compiled) and
/// once as the hand-written Rust a programmer would write instead (a
/// `HashMap` address index probed from a flow `Vec`). Both arms fold the
/// same `count/sum/max` over the same TSV-loaded data and must agree
/// exactly; the ratio prices the whole front door, not just execution.
fn bench_shell(out: &mut Vec<(String, f64)>, quick: bool) {
    use relic_shell::{Outcome, Session};
    use relic_systems::ipcap::{addrs_tsv, flows_tsv, packet_trace};
    use std::collections::HashMap;

    let packets = if quick { 2_000 } else { 200_000 };
    let (locals, remotes) = (64, 512);
    let (warmup, reps) = if quick { (1, 1) } else { (2, 5) };

    let dir = std::env::temp_dir().join(format!("relic_bench_shell_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let flows_path = dir.join("flows.tsv");
    let addrs_path = dir.join("addrs.tsv");
    let flows_text = flows_tsv(&packet_trace(packets, locals, remotes, 0xbe));
    let addrs_text = addrs_tsv(locals);
    std::fs::write(&flows_path, &flows_text).unwrap();
    std::fs::write(&addrs_path, &addrs_text).unwrap();

    let mut s = Session::new();
    for line in [
        "create relation flows(local:16, remote:16, bytes, pkts) \
         fd local, remote -> bytes, pkts"
            .to_string(),
        "create relation addrs(local:16, owner, tier:8) fd local -> owner, tier".to_string(),
        format!("load flows from \"{}\"", flows_path.display()),
        format!("load addrs from \"{}\"", addrs_path.display()),
    ] {
        if let Err(e) = s.eval(&line) {
            panic!("{}", e.render(&line));
        }
    }
    const QUERY: &str =
        "select count(*), sum(bytes), max(pkts) from flows join addrs where tier = 0";
    let run_shell = |s: &mut Session| match s.eval(QUERY) {
        Ok(Outcome::Text(t)) => t,
        other => panic!("shell query failed: {other:?}"),
    };
    let expect = run_shell(&mut s);
    for _ in 0..warmup {
        run_shell(&mut s);
    }
    let t0 = Instant::now();
    for _ in 0..reps {
        assert_eq!(run_shell(&mut s), expect, "shell result drifted");
    }
    let shell_ns = t0.elapsed().as_nanos() as f64 / reps as f64;

    // The hand-written arm starts from the same parsed-and-indexed state a
    // bespoke daemon would hold in memory (building it is untimed, exactly
    // as the shell's `load` is).
    let flow_rows: Vec<(i64, i64, i64)> = flows_text
        .lines()
        .skip(1)
        .map(|l| {
            let mut f = l.split('\t');
            let local = f.next().unwrap().parse().unwrap();
            let _remote: i64 = f.next().unwrap().parse().unwrap();
            let bytes = f.next().unwrap().parse().unwrap();
            let pkts = f.next().unwrap().parse().unwrap();
            (local, bytes, pkts)
        })
        .collect();
    let tier0: HashMap<i64, ()> = addrs_text
        .lines()
        .skip(1)
        .filter_map(|l| {
            let mut f = l.split('\t');
            let local: i64 = f.next().unwrap().parse().unwrap();
            let _owner = f.next().unwrap();
            let tier: i64 = f.next().unwrap().parse().unwrap();
            (tier == 0).then_some((local, ()))
        })
        .collect();
    let run_hand = || {
        let (mut count, mut sum, mut max) = (0u64, 0i64, i64::MIN);
        for &(local, bytes, pkts) in &flow_rows {
            if tier0.contains_key(&local) {
                count += 1;
                sum += bytes;
                max = max.max(pkts);
            }
        }
        format!("count(*)\tsum(bytes)\tmax(pkts)\n{count}\t{sum}\t{max}")
    };
    assert_eq!(run_hand(), expect, "hand-written arm disagrees with shell");
    for _ in 0..warmup {
        run_hand();
    }
    let t0 = Instant::now();
    for _ in 0..reps {
        run_hand();
    }
    let hand_ns = t0.elapsed().as_nanos() as f64 / reps as f64;

    out.push((
        "shell/join_rows".to_string(),
        (flows_text.lines().count() - 1) as f64,
    ));
    out.push(("shell/join_agg_shell_ns".to_string(), shell_ns));
    out.push(("shell/join_agg_handwritten_ns".to_string(), hand_ns));
    out.push(("shell/shell_vs_hand_x".to_string(), shell_ns / hand_ns));
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let mut quick = false;
    let mut only: Option<String> = None;
    let mut cores: Option<usize> = None;
    let mut expect_only = false;
    let mut expect_cores = false;
    let mut out_path = "BENCH_10.json".to_string();
    for arg in std::env::args().skip(1) {
        if expect_only {
            only = Some(arg);
            expect_only = false;
        } else if expect_cores {
            match arg.parse::<usize>() {
                Ok(n) if n > 0 => cores = Some(n),
                _ => {
                    eprintln!("--cores requires a positive thread count, got {arg:?}");
                    std::process::exit(2);
                }
            }
            expect_cores = false;
        } else if arg == "--quick" {
            quick = true;
        } else if arg == "--only" {
            // Run a single workload family (e.g. `--only read_scaling`) --
            // for iterating on one family without re-timing the rest.
            expect_only = true;
        } else if arg == "--cores" {
            // Cap the multi-threaded families' thread ladders; recorded in
            // the JSON header (see the module docs for the honesty rules).
            expect_cores = true;
        } else {
            out_path = arg;
        }
    }
    const FAMILIES: [&str; 13] = [
        "micro_cache",
        "micro_scheduler",
        "query_hot_path",
        "codegen",
        "bulk_load_100k",
        "batch_insert",
        "phase_shift",
        "read_scaling",
        "writer_scaling",
        "wal_commit",
        "replication",
        "serving",
        "shell",
    ];
    if expect_only {
        eprintln!("--only requires a workload family: one of {FAMILIES:?}");
        std::process::exit(2);
    }
    if expect_cores {
        eprintln!("--cores requires a positive thread count");
        std::process::exit(2);
    }
    if let Some(o) = only.as_deref() {
        if !FAMILIES.contains(&o) {
            eprintln!("unknown workload family {o:?}; expected one of {FAMILIES:?}");
            std::process::exit(2);
        }
    }
    let run = |name: &str| only.as_deref().is_none_or(|o| o == name);
    let mut results: Vec<(String, f64)> = Vec::new();
    if run("micro_cache") {
        bench_micro_cache(&mut results);
    }
    if run("micro_scheduler") {
        bench_micro_scheduler(&mut results);
    }
    if run("query_hot_path") {
        bench_query_hot_path(&mut results);
    }
    if run("codegen") {
        bench_codegen(&mut results);
    }
    if run("bulk_load_100k") {
        bench_bulk_load(&mut results, quick);
    }
    if run("batch_insert") {
        bench_batch_insert(&mut results, quick);
    }
    if run("phase_shift") {
        bench_phase_shift(&mut results, quick);
    }
    if run("read_scaling") {
        bench_read_scaling(&mut results, quick, cores);
    }
    if run("writer_scaling") {
        bench_writer_scaling(&mut results, quick, cores);
    }
    if run("wal_commit") {
        bench_wal_commit(&mut results, quick);
    }
    if run("replication") {
        bench_replication(&mut results, quick);
    }
    if run("serving") {
        bench_serving(&mut results, quick);
    }
    if run("shell") {
        bench_shell(&mut results, quick);
    }
    // Timings are only comparable within one machine + toolchain, so the
    // header records both — plus the thread-honesty fields: `cpus` is what
    // the machine really has, `cores_requested` the `--cores` cap (null
    // when uncapped), and `oversubscribed` is set whenever any family ran
    // more concurrent worker threads than hardware cores (its tN arms then
    // measure time-sliced interleaving, not parallel scaling).
    let cpus = std::thread::available_parallelism().map_or(0, usize::from);
    let read_threads = if run("read_scaling") {
        // +1: the maintenance writer runs alongside the reader rungs.
        1 + clamp_ladder(if quick { &[1, 2] } else { &[1, 2, 4, 8] }, cores)
            .into_iter()
            .max()
            .unwrap_or(1)
    } else {
        0
    };
    let write_threads = if run("writer_scaling") {
        clamp_ladder(if quick { &[1, 2] } else { &[1, 2, 4] }, cores)
            .into_iter()
            .max()
            .unwrap_or(1)
    } else {
        0
    };
    let oversubscribed = cpus > 0 && read_threads.max(write_threads) > cpus;
    if oversubscribed {
        eprintln!(
            "warning: up to {} worker threads on {cpus} hardware core(s); \
             tN arms measure interleaving, not parallel scaling",
            read_threads.max(write_threads)
        );
    }
    let cores_json = cores.map_or("null".to_string(), |c| c.to_string());
    let rustc = env!("RELIC_BENCH_RUSTC");
    let mut json = format!(
        "{{\n  \"schema\": \"relic-bench-smoke-v10\",\n  \"quick\": {quick},\n  \
         \"cpus\": {cpus},\n  \"cores_requested\": {cores_json},\n  \
         \"oversubscribed\": {oversubscribed},\n  \"rustc\": \"{rustc}\",\n  \"results\": {{\n"
    );
    for (i, (label, ns)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!("    \"{label}\": {ns:.0}{comma}\n"));
        println!("{label:<44} {ns:>14.0} ns");
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, json).expect("write bench output");
    println!("wrote {out_path}");
}
