//! Figure 12: the three representative graph decompositions, printed in
//! let-notation and Graphviz, with per-phase timings.
//!
//! Usage: `cargo run --release -p relic-bench --bin fig12 [-- <nx> <ny>]`

use relic_bench::{fig12_decompositions, render_table, time_once};
use relic_decomp::to_dot;
use relic_systems::graph::{graph_spec, road_network, GraphBench};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let nx = args.first().copied().unwrap_or(40);
    let ny = args.get(1).copied().unwrap_or(40);
    let (mut cat, cols, spec) = graph_spec();
    let workload = road_network(nx, ny, nx * ny / 10, 0xF16);
    println!("Figure 12 — decompositions 1, 5 and 9 of the edge relation\n");
    let candidates = fig12_decompositions(&mut cat);
    let mut rows = vec![vec![
        "decomposition".to_string(),
        "nodes".to_string(),
        "edges".to_string(),
        "build+F (s)".to_string(),
        "B (s)".to_string(),
        "D (s)".to_string(),
    ]];
    for c in &candidates {
        println!("=== {} ===", c.label);
        println!("{}", c.decomposition.to_let_notation(&cat));
        println!("\n{}", to_dot(&c.decomposition, &cat));
        let (t_build, bench) = time_once(|| {
            GraphBench::build(&cat, cols, &spec, c.decomposition.clone(), &workload).unwrap()
        });
        let (t_f, _) = time_once(|| bench.dfs_forward());
        let (t_b, _) = time_once(|| bench.dfs_backward());
        let mut bench = bench;
        let (t_d, _) = time_once(|| bench.delete_all_edges());
        rows.push(vec![
            c.label.clone(),
            format!("{}", c.decomposition.node_count()),
            format!("{}", c.decomposition.edge_count()),
            format!("{:.3}", (t_build + t_f).as_secs_f64()),
            format!("{:.3}", t_b.as_secs_f64()),
            format!("{:.3}", t_d.as_secs_f64()),
        ]);
    }
    println!("{}", render_table(&rows));
}
