//! Table 1: non-comment lines of code — hand-coded module vs. decomposition
//! mapping + synthesized module, for the three case-study systems.
//!
//! Usage: `cargo run -p relic-bench --bin table1`

use relic_bench::render_table;
use relic_systems::loc::table1_rows;

fn main() {
    println!("Table 1 — non-comment lines of code (our Rust reimplementations)\n");
    let mut rows = vec![vec![
        "system".to_string(),
        "hand-coded module".to_string(),
        "decomposition".to_string(),
        "synthesized module".to_string(),
    ]];
    for r in table1_rows() {
        rows.push(vec![
            r.system.to_string(),
            format!("{}", r.baseline_module),
            format!("{}", r.decomposition),
            format!("{}", r.synth_module),
        ]);
    }
    println!("{}", render_table(&rows));
    println!("Paper shape to check: the synthesized module plus its decomposition");
    println!("mapping is comparable to or smaller than the hand-coded module, and the");
    println!("mapping itself is tiny (the paper's mappings were 39-55 lines).");
}
