//! Figure 13: elapsed time for IpCap to log packets across decompositions of
//! the flow relation, ranked by time.
//!
//! Usage: `cargo run --release -p relic-bench --bin fig13 [-- <packets> <candidates>]`

use relic_bench::{fig13_candidates, render_table, time_once};
use relic_systems::ipcap::{flow_spec, packet_trace, run_accounting, SynthFlows};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let packets = args.first().copied().unwrap_or(300_000 / 10);
    let take = args.get(1).copied().unwrap_or(26);
    let (cat, cols, spec) = flow_spec();
    let trace = packet_trace(packets, 256, 4096, 0xF13);
    println!(
        "Figure 13 — IpCap: elapsed time to log {packets} random packets across {take} decompositions"
    );
    println!("(paper: 3e5 packets, 26 of 84 decompositions finished; scaled per EXPERIMENTS.md)\n");
    let candidates = fig13_candidates(&cat, &spec, take);
    let mut results = Vec::new();
    for c in &candidates {
        let mut flows = SynthFlows::new(&cat, cols, &spec, c.decomposition.clone()).unwrap();
        let (t, log) =
            time_once(|| run_accounting(&mut flows, &trace, 65_536).expect("accounting run"));
        results.push((c.label.clone(), t, log.len()));
    }
    results.sort_by_key(|r| r.1);
    let mut rows = vec![vec![
        "rank".to_string(),
        "decomposition (static rank)".to_string(),
        "elapsed (s)".to_string(),
        "flows logged".to_string(),
    ]];
    for (i, (label, t, flows)) in results.iter().enumerate() {
        rows.push(vec![
            format!("{}", i + 1),
            label.clone(),
            format!("{:.3}", t.as_secs_f64()),
            format!("{flows}"),
        ]);
    }
    println!("{}", render_table(&rows));
    println!("Paper shape to check: a tree/hash of locals mapping to hash tables of");
    println!("remotes wins; transposing local/remote or indexing by counters is several");
    println!("times slower (the paper saw ~5x between best and rank 18).");
}
