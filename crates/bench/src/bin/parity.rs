//! §6.2 performance parity: "the relational and non-relational versions had
//! equivalent performance" — baseline vs. synthesized timings for the three
//! case studies, with behavioural equality asserted.
//!
//! Usage: `cargo run --release -p relic-bench --bin parity [-- <scale>]`

use relic_bench::{render_table, time_once};
use relic_systems::ipcap::{flow_spec, packet_trace, run_accounting, BaselineFlows, SynthFlows};
use relic_systems::thttpd::{
    mmap_spec, request_stream, run_cache, BaselineMmapCache, SynthMmapCache,
};
use relic_systems::thttpd::{MmapCache, Outcome, Request};
use relic_systems::ztopo::{pan_workload, run_tiles, tile_spec, BaselineTileCache, SynthTileCache};

/// The RELC-compiled mmap cache, generated at build time (see build.rs).
mod gen_mmap_cache {
    include!(concat!(env!("OUT_DIR"), "/gen_mmap_cache.rs"));
}

struct CompiledMmapCache {
    rel: gen_mmap_cache::Relation,
    next_addr: i64,
}

impl MmapCache for CompiledMmapCache {
    fn serve(&mut self, req: &Request) -> Outcome {
        if self.rel.update_path_set_stamp(&req.path, req.now) {
            return Outcome::Hit;
        }
        self.next_addr += 4096;
        let size = 1024 + (req.path.len() as i64) * 7;
        self.rel
            .insert(req.path.clone(), self.next_addr, size, req.now);
        Outcome::Miss
    }

    fn cleanup(&mut self, cutoff: i64) -> usize {
        let mut stale: Vec<String> = Vec::new();
        self.rel.query_all_to_path_stamp(|path, stamp| {
            if *stamp < cutoff {
                stale.push(path.clone());
            }
        });
        let mut removed = 0;
        for p in stale {
            if self.rel.remove_by_path(&p) {
                removed += 1;
            }
        }
        removed
    }

    fn live(&self) -> usize {
        self.rel.len()
    }
}

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let mut rows = vec![vec![
        "system".to_string(),
        "workload".to_string(),
        "baseline (s)".to_string(),
        "synthesized (s)".to_string(),
        "ratio".to_string(),
        "outputs equal".to_string(),
    ]];

    // thttpd mmap cache.
    {
        let reqs = request_stream(40_000 * scale, 2_000, 0x7177);
        let mut base = BaselineMmapCache::new();
        let (t_base, (o1, u1)) = time_once(|| run_cache(&mut base, &reqs, 1_000, 5_000));
        let (mut cat, cols, spec) = mmap_spec();
        let d = relic_systems::thttpd::default_decomposition(&mut cat);
        let mut synth = SynthMmapCache::new(&cat, cols, &spec, d).unwrap();
        let (t_synth, (o2, u2)) = time_once(|| run_cache(&mut synth, &reqs, 1_000, 5_000));
        rows.push(vec![
            "thttpd (interpreted)".to_string(),
            format!("{} requests", reqs.len()),
            format!("{:.3}", t_base.as_secs_f64()),
            format!("{:.3}", t_synth.as_secs_f64()),
            format!("{:.2}x", t_synth.as_secs_f64() / t_base.as_secs_f64()),
            format!("{}", o1 == o2 && u1 == u2),
        ]);
        let mut compiled = CompiledMmapCache {
            rel: gen_mmap_cache::Relation::new(),
            next_addr: 0,
        };
        let (t_gen, (o3, u3)) = time_once(|| run_cache(&mut compiled, &reqs, 1_000, 5_000));
        rows.push(vec![
            "thttpd (RELC-compiled)".to_string(),
            format!("{} requests", reqs.len()),
            format!("{:.3}", t_base.as_secs_f64()),
            format!("{:.3}", t_gen.as_secs_f64()),
            format!("{:.2}x", t_gen.as_secs_f64() / t_base.as_secs_f64()),
            format!("{}", o1 == o3 && u1 == u3),
        ]);
    }

    // IpCap flow accounting.
    {
        let trace = packet_trace(30_000 * scale, 256, 4096, 0xF13);
        let mut base = BaselineFlows::new();
        let (t_base, log1) =
            time_once(|| run_accounting(&mut base, &trace, 8_192).expect("accounting run"));
        let (mut cat, cols, spec) = flow_spec();
        let d = relic_systems::ipcap::default_decomposition(&mut cat);
        let mut synth = SynthFlows::new(&cat, cols, &spec, d).unwrap();
        let (t_synth, log2) =
            time_once(|| run_accounting(&mut synth, &trace, 8_192).expect("accounting run"));
        rows.push(vec![
            "IpCap".to_string(),
            format!("{} packets", trace.len()),
            format!("{:.3}", t_base.as_secs_f64()),
            format!("{:.3}", t_synth.as_secs_f64()),
            format!("{:.2}x", t_synth.as_secs_f64() / t_base.as_secs_f64()),
            format!("{}", log1 == log2),
        ]);
    }

    // ZTopo tile cache.
    {
        let reqs = pan_workload(8_000 * scale, 64, 64, 0x2707);
        let mut base = BaselineTileCache::new(128, 512);
        let (t_base, (o1, s1)) = time_once(|| run_tiles(&mut base, &reqs));
        let (mut cat, cols, spec) = tile_spec();
        let d = relic_systems::ztopo::default_decomposition(&mut cat);
        let mut synth = SynthTileCache::new(&cat, cols, &spec, d, 128, 512).unwrap();
        let (t_synth, (o2, s2)) = time_once(|| run_tiles(&mut synth, &reqs));
        rows.push(vec![
            "ZTopo".to_string(),
            format!("{} tile requests", reqs.len()),
            format!("{:.3}", t_base.as_secs_f64()),
            format!("{:.3}", t_synth.as_secs_f64()),
            format!("{:.2}x", t_synth.as_secs_f64() / t_base.as_secs_f64()),
            format!("{}", o1 == o2 && s1 == s2),
        ]);
    }

    println!("§6.2 — baseline vs synthesized behavioural + performance parity\n");
    println!("{}", render_table(&rows));
    println!("Note: the paper's generated C++ is compiled per decomposition; our");
    println!("synthesized path is interpreted, so a constant-factor overhead is");
    println!("expected (EXPERIMENTS.md). The required result is behavioural equality");
    println!("and the same complexity class (ratios stay bounded as scale grows).");
}
