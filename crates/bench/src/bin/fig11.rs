//! Figure 11: elapsed times for the directed-graph benchmark variants
//! (F, F+B, F+B+D) across decompositions of the edge relation.
//!
//! Usage: `cargo run --release -p relic-bench --bin fig11 [-- <nx> <ny> <extra>]`

use relic_bench::{fig11_candidates, render_table, time_once};
use relic_systems::graph::{graph_spec, road_network, GraphBench};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let nx = args.first().copied().unwrap_or(40);
    let ny = args.get(1).copied().unwrap_or(40);
    let extra = args.get(2).copied().unwrap_or(13);
    let (mut cat, cols, spec) = graph_spec();
    let workload = road_network(nx, ny, nx * ny / 10, 0xF16);
    println!(
        "Figure 11 — graph benchmark: {} nodes, {} edges (synthetic road network)",
        workload.nodes,
        workload.edges.len()
    );
    println!(
        "Variants: F = build + forward DFS; F+B = + backward DFS; F+B+D = + delete all edges.\n"
    );

    let candidates = fig11_candidates(&mut cat, &spec, extra);
    let mut rows = vec![vec![
        "rank".to_string(),
        "decomposition".to_string(),
        "F (s)".to_string(),
        "F+B (s)".to_string(),
        "F+B+D (s)".to_string(),
    ]];
    let mut results = Vec::new();
    for c in &candidates {
        // F: build + forward DFS.
        let (t_build, bench) = time_once(|| {
            GraphBench::build(&cat, cols, &spec, c.decomposition.clone(), &workload).unwrap()
        });
        let (t_f, _) = time_once(|| bench.dfs_forward());
        let f = t_build + t_f;
        // F+B.
        let (t_b, _) = time_once(|| bench.dfs_backward());
        let fb = f + t_b;
        // F+B+D.
        let mut bench = bench;
        let (t_d, _) = time_once(|| bench.delete_all_edges());
        let fbd = fb + t_d;
        results.push((c.label.clone(), f, fb, fbd));
    }
    results.sort_by_key(|r| r.1);
    for (i, (label, f, fb, fbd)) in results.iter().enumerate() {
        rows.push(vec![
            format!("{}", i + 1),
            label.clone(),
            format!("{:.3}", f.as_secs_f64()),
            format!("{:.3}", fb.as_secs_f64()),
            format!("{:.3}", fbd.as_secs_f64()),
        ]);
    }
    println!("{}", render_table(&rows));
    println!("Paper shape to check: the chain (#1) wins F but degrades badly on F+B");
    println!("(quadratic backward traversal); the join decompositions (#5/#9) cost a");
    println!("little more on F but stay flat on F+B and F+B+D, with the shared (#5)");
    println!("variant beating the unshared (#9) on allocation-heavy phases.");
}
