//! Shared infrastructure for the benchmark harness: the figure-specific
//! decomposition sets, candidate selection, and table printing used by both
//! the criterion benches (`benches/`) and the printable harness binaries
//! (`src/bin/`). See EXPERIMENTS.md for the mapping to the paper's tables
//! and figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use relic_autotune::{Autotuner, Workload};
use relic_decomp::{parse, Decomposition, EnumerateOptions};
use relic_spec::{Catalog, RelSpec};
use std::time::{Duration, Instant};

/// A labelled decomposition for reporting.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Short label (e.g. `#1 chain` or a canonical shape string).
    pub label: String,
    /// The decomposition.
    pub decomposition: Decomposition,
}

/// The three representative graph decompositions of Fig. 12.
///
/// * `#1` — chain: `src → dst → unit{weight}` (maps only); fastest forward
///   traversal, quadratic backward traversal.
/// * `#5` — forward and backward indexes *sharing* one physical tuple node,
///   reached by intrusive lists (removal needs no extra lookups).
/// * `#9` — the same two indexes with *separate* weight nodes.
pub fn fig12_decompositions(cat: &mut Catalog) -> Vec<Candidate> {
    let one = parse(
        cat,
        "let z : {src,dst} . {weight} = unit {weight} in
         let y : {src} . {dst,weight} = {dst} -[avl]-> z in
         let x : {} . {src,dst,weight} = {src} -[avl]-> y in x",
    )
    .expect("fig12 #1 parses");
    let five = parse(
        cat,
        "let w : {src,dst} . {weight} = unit {weight} in
         let y : {src} . {dst,weight} = {dst} -[ilist]-> w in
         let z : {dst} . {src,weight} = {src} -[ilist]-> w in
         let x : {} . {src,dst,weight} =
           ({src} -[avl]-> y) join ({dst} -[avl]-> z) in x",
    )
    .expect("fig12 #5 parses");
    let nine = parse(
        cat,
        "let l : {src,dst} . {weight} = unit {weight} in
         let r : {src,dst} . {weight} = unit {weight} in
         let y : {src} . {dst,weight} = {dst} -[ilist]-> l in
         let z : {dst} . {src,weight} = {src} -[ilist]-> r in
         let x : {} . {src,dst,weight} =
           ({src} -[avl]-> y) join ({dst} -[avl]-> z) in x",
    )
    .expect("fig12 #9 parses");
    vec![
        Candidate {
            label: "#1 chain (src->dst->unit)".to_string(),
            decomposition: one,
        },
        Candidate {
            label: "#5 join, shared leaf".to_string(),
            decomposition: five,
        },
        Candidate {
            label: "#9 join, unshared leaves".to_string(),
            decomposition: nine,
        },
    ]
}

/// Selects the graph-benchmark candidate set for Fig. 11: the Fig. 12
/// representatives plus the statically best `extra` enumerated shapes for a
/// mixed F+B+D workload. (The paper enumerated all 84 size ≤ 4 shapes and
/// timed out 68 of them; static pre-ranking keeps the harness fast while
/// preserving the interesting candidates. `enum_counts` reports the full
/// counts.)
pub fn fig11_candidates(cat: &mut Catalog, spec: &RelSpec, extra: usize) -> Vec<Candidate> {
    let mut out = fig12_decompositions(cat);
    let src = cat.col("src").expect("graph catalog");
    let dst = cat.col("dst").expect("graph catalog");
    let weight = cat.col("weight").expect("graph catalog");
    let tuner = Autotuner::new(spec)
        .with_options(EnumerateOptions {
            max_edges: 3,
            ..Default::default()
        })
        .with_relation_size(10_000.0);
    let workload = Workload::new()
        .query(src.into(), dst | weight, 1.0) // forward DFS
        .query(dst.into(), src | weight, 1.0) // backward DFS
        .inserts(1.0)
        .removes(src | dst, 1.0); // edge deletion
    let ranked = tuner.tune_static(&workload);
    let existing: Vec<String> = out
        .iter()
        .map(|c| c.decomposition.canonical_string(false))
        .collect();
    for (i, r) in ranked
        .into_iter()
        .filter(|r| r.cost.is_finite())
        .filter(|r| !existing.contains(&r.decomposition.canonical_string(false)))
        .take(extra)
        .enumerate()
    {
        out.push(Candidate {
            label: format!(
                "enum#{:02} ({} edges, cost {:.0})",
                i + 1,
                r.decomposition.edge_count(),
                r.cost
            ),
            decomposition: r.decomposition,
        });
    }
    out
}

/// Selects the IpCap candidate set for Fig. 13: the statically best `take`
/// decompositions of the flow relation for the accounting workload
/// (point query + update per packet, full scan + clear per flush).
pub fn fig13_candidates(cat: &Catalog, spec: &RelSpec, take: usize) -> Vec<Candidate> {
    let local = cat.col("local").expect("flow catalog");
    let remote = cat.col("remote").expect("flow catalog");
    let bytes = cat.col("bytes").expect("flow catalog");
    let pkts = cat.col("pkts").expect("flow catalog");
    let tuner = Autotuner::new(spec)
        .with_options(EnumerateOptions {
            max_edges: 3,
            max_branches: 2,
            ..Default::default()
        })
        .with_relation_size(4_096.0);
    let workload = Workload::new()
        .query(local | remote, bytes | pkts, 10.0) // per-packet lookup
        .inserts(1.0)
        .query(Default::default(), cat.all(), 0.1); // periodic flush scan
    let ranked = tuner.tune_static(&workload);
    ranked
        .into_iter()
        .filter(|r| r.cost.is_finite())
        .take(take)
        .enumerate()
        .map(|(i, r)| Candidate {
            label: format!("rank {:02} (static {:.0})", i + 1, r.cost),
            decomposition: r.decomposition,
        })
        .collect()
}

/// Times a closure once.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// Renders a fixed-width text table (first row = header).
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        out.push('\n');
        if ri == 0 {
            for (i, w) in widths.iter().enumerate() {
                out.push_str(&"-".repeat(*w));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relic_decomp::check_adequacy;
    use relic_systems::graph::graph_spec;

    #[test]
    fn fig12_set_is_adequate_and_distinct() {
        let (mut cat, _, spec) = graph_spec();
        let cs = fig12_decompositions(&mut cat);
        assert_eq!(cs.len(), 3);
        let mut canon: Vec<String> = cs
            .iter()
            .map(|c| c.decomposition.canonical_string(true))
            .collect();
        canon.dedup();
        assert_eq!(canon.len(), 3);
        for c in &cs {
            check_adequacy(&c.decomposition, &spec).unwrap();
        }
        // #5 shares the leaf: one fewer node than #9.
        assert_eq!(
            cs[1].decomposition.node_count() + 1,
            cs[2].decomposition.node_count()
        );
    }

    #[test]
    fn fig11_candidates_extend_fig12() {
        let (mut cat, _, spec) = graph_spec();
        let cs = fig11_candidates(&mut cat, &spec, 5);
        assert_eq!(cs.len(), 8);
        for c in &cs {
            check_adequacy(&c.decomposition, &spec).unwrap();
        }
    }

    #[test]
    fn fig13_candidates_are_ranked() {
        let (cat, _, spec) = relic_systems::ipcap::flow_spec();
        let cs = fig13_candidates(&cat, &spec, 8);
        assert_eq!(cs.len(), 8);
        for c in &cs {
            check_adequacy(&c.decomposition, &spec).unwrap();
        }
    }

    #[test]
    fn table_rendering() {
        let t = render_table(&[
            vec!["a".into(), "long-header".into()],
            vec!["1".into(), "2".into()],
        ]);
        assert!(t.contains("long-header"));
        assert!(t.contains("---"));
        assert!(render_table(&[]).is_empty());
    }
}
