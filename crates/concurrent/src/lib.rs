//! Thread-safe synthesized relations.
//!
//! The paper's follow-on work ("Concurrent Data Representation Synthesis",
//! PLDI 2012) extends RELC to emit concurrent containers by attaching locks
//! to decomposition nodes and acquiring them in a two-phase discipline
//! guided by the decomposition's *domains* — the valuations of the columns
//! bound on a path. This crate reproduces the essence of that design in a
//! deliberately simplified form, documented in DESIGN.md:
//!
//! * the relation is **partitioned by a set of shard columns** — the analog
//!   of locking on the valuation of the first-level key columns: every
//!   tuple routes to the shard owning its shard-column valuation,
//! * each shard is an independent [`SynthRelation`] behind a
//!   reader-writer lock — operations whose pattern *pins* the shard columns
//!   touch exactly one lock, mirroring how the PLDI'12 system takes only
//!   the locks on the domains a query visits,
//! * operations that do not pin the shard columns take **all shard locks in
//!   index order** (a total order, so the discipline is deadlock-free),
//!   like a whole-relation domain lock.
//!
//! Every individual operation is atomic (linearizable): it holds all the
//! locks it needs for its whole duration. Compound read-modify-write
//! sequences can be made atomic with
//! [`ConcurrentRelation::with_partition_mut`].
//!
//! # Per-shard batch lock discipline
//!
//! The batch mutations ([`bulk_load`](ConcurrentRelation::bulk_load),
//! [`insert_many`](ConcurrentRelation::insert_many)) first partition the
//! batch by shard **without holding any lock** — routing only hashes shard
//! columns — then visit the non-empty shards in index order, taking each
//! shard's write lock **once per batch** and running the underlying
//! [`SynthRelation`] batch operation under it. A batch of n tuples touching
//! s shards therefore costs s lock acquisitions instead of n, and two
//! concurrent batches over disjoint shards never contend. The trade-off is
//! granularity: a batch is atomic *per shard*, not across shards — readers
//! may observe a shard-prefix of a concurrent batch (each individual shard
//! load is still atomic and linearizable).
//!
//! # Wait-free snapshot reads
//!
//! Read-mostly traffic does not have to touch the shard locks at all: every
//! shard **publishes** an immutable [`relic_core::Snapshot`] of itself after
//! each mutation epoch, and [`ConcurrentRelation::read_view`] collects the
//! published snapshots into a [`ReadView`] without acquiring any shard lock.
//! A per-thread [`ReadHandle`] caches the view and refreshes only when the
//! relation's epoch counter moves, so a steady-state point query costs one
//! atomic load plus the snapshot probe — readers never wait on writers.
//! Writers mutate the (persistent, structure-sharing) store in place under
//! the shard lock and *retire* replaced snapshots onto per-shard limbo
//! lists; each handle pins the epochs it reads at, and retired state is
//! torn down writer-side once the minimum pinned epoch passes it — see the
//! [`epoch`] module for the reclamation design and the [`snapshot`] module
//! for the view lifecycle and consistency contract.
//!
//! # Adaptive migration epochs
//!
//! The representation itself is a runtime decision:
//! [`ConcurrentRelation::migrate_to`] re-represents every shard under a new
//! decomposition, and [`ConcurrentRelation::recommend_and_migrate`] first
//! aggregates the shards' measured workload profiles and only migrates when
//! the autotuner's best candidate clears an improvement margin. Both follow
//! McKenney's ordered-acquisition discipline: every shard write lock is
//! taken in **index order** — the same total order every other
//! whole-relation operation uses, so the acquisition phase cannot deadlock —
//! and held until the last shard has swapped. The swap is therefore one
//! epoch: no reader or writer ever observes two decompositions at once, and
//! a failing shard rolls the earlier ones back before the error surfaces.
//!
//! # Example
//!
//! ```
//! use relic_concurrent::ConcurrentRelation;
//! use relic_core::SynthRelation;
//! use relic_decomp::parse;
//! use relic_spec::{Catalog, RelSpec, Tuple, Value};
//!
//! let mut cat = Catalog::new();
//! let d = parse(
//!     &mut cat,
//!     "let u : {host,ts} . {bytes} = unit {bytes} in
//!      let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
//!      let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
//! )?;
//! let host = cat.col("host").unwrap();
//! let ts = cat.col("ts").unwrap();
//! let bytes = cat.col("bytes").unwrap();
//! let spec = RelSpec::new(host | ts | bytes).with_fd(host | ts, bytes.into());
//! // Partition by host: per-host traffic from different threads never
//! // contends on the same lock.
//! let log = ConcurrentRelation::new(&cat, spec, d, host.into(), 8)?;
//! std::thread::scope(|s| {
//!     for h in 0..4i64 {
//!         let log = &log;
//!         s.spawn(move || {
//!             for t in 0..100i64 {
//!                 log.insert(Tuple::from_pairs([
//!                     (host, Value::from(h)),
//!                     (ts, Value::from(t)),
//!                     (bytes, Value::from(t % 7)),
//!                 ]))
//!                 .unwrap();
//!             }
//!         });
//!     }
//! });
//! assert_eq!(log.len(), 400);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epoch;
pub mod snapshot;

pub use snapshot::{ReadHandle, ReadView};

use relic_autotune::{Autotuner, Recommendation, Workload};
use relic_containers::FxHasher;
use relic_core::{BuildError, MigrateError, OpError, Snapshot, SynthRelation, WorkloadProfile};
use relic_decomp::{Decomposition, EnumerateOptions};
use relic_spec::{Catalog, ColSet, Pattern, RelSpec, Relation, Tuple};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The shard index owning a tuple's shard-column valuation, for a relation
/// of `shards` partitions routed by `shard_cols` — shared by the locked
/// paths and [`ReadView`] routing so both land on the same shard.
pub(crate) fn route_tuple(shard_cols: ColSet, shards: usize, t: &Tuple) -> usize {
    let mut h = FxHasher::new();
    for c in shard_cols.iter() {
        t.get(c).expect("shard column bound").hash(&mut h);
    }
    (h.finish() % shards as u64) as usize
}

/// Errors specific to building a concurrent relation.
#[derive(Debug)]
pub enum ConcurrentBuildError {
    /// The underlying synthesized relation could not be built.
    Build(BuildError),
    /// The shard columns are not a subset of the relation's columns.
    ForeignShardColumns {
        /// The offending columns.
        cols: ColSet,
    },
    /// Zero shards requested.
    ZeroShards,
}

impl std::fmt::Display for ConcurrentBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConcurrentBuildError::Build(e) => write!(f, "{e}"),
            ConcurrentBuildError::ForeignShardColumns { cols } => {
                write!(f, "shard columns {cols:?} outside the relation")
            }
            ConcurrentBuildError::ZeroShards => write!(f, "shard count must be at least 1"),
        }
    }
}

impl std::error::Error for ConcurrentBuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConcurrentBuildError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildError> for ConcurrentBuildError {
    fn from(e: BuildError) -> Self {
        ConcurrentBuildError::Build(e)
    }
}

/// A coherent reading of the reclamation-pressure gauges, collected by
/// [`ConcurrentRelation::pressure`] in one pass. A serving front end's
/// admission control sheds writes when these cross its thresholds:
/// applying more mutations while readers pin old epochs only grows the
/// limbo lists it cannot drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryPressure {
    /// Estimated heap bytes parked on the limbo lists
    /// (see [`ConcurrentRelation::limbo_bytes`]).
    pub limbo_bytes: usize,
    /// Retired snapshots currently parked
    /// (see [`ConcurrentRelation::limbo_len`]).
    pub limbo_len: usize,
    /// Publish epochs the slowest pinned reader trails by
    /// (see [`ConcurrentRelation::pinned_epoch_lag`]).
    pub pinned_epoch_lag: u64,
}

/// One shard's publish slot: the frozen snapshot readers collect, paired
/// with the *writer stamp* of the last stamped publish.
///
/// The stamp is an opaque `u64` supplied by a layering client (the
/// durability layer stamps each publish with the shard's last write-ahead
/// log sequence number); it is swapped **atomically with the snapshot**
/// under the slot's latch, so a collector always observes a consistent
/// `(state, stamp)` pair — the invariant a fuzzy-free checkpoint needs.
/// Unstamped publishes keep the previous stamp.
#[derive(Debug)]
struct PublishSlot {
    snap: Option<Arc<Snapshot>>,
    stamp: u64,
}

/// A thread-safe relation: `shards` independent [`SynthRelation`]s, each
/// owning the tuples whose shard-column valuation hashes to it.
///
/// See the [crate docs](crate) for the locking discipline and its
/// relationship to the PLDI 2012 concurrent-synthesis design.
#[derive(Debug)]
pub struct ConcurrentRelation {
    shards: Vec<RwLock<SynthRelation>>,
    /// Per-shard publish slots: the shard's current [`Snapshot`] plus its
    /// writer stamp, swapped under the slot's latch by the writer that
    /// finished a mutation epoch. The snapshot is `None` only inside a
    /// writer's prune→publish window (the writer still holds the shard's
    /// write lock then). See the [`snapshot`] module.
    published: Vec<RwLock<PublishSlot>>,
    /// Monotonic publish counter: bumped (`Release`) after every publish so
    /// cached [`ReadHandle`]s can detect staleness with one `Acquire` load.
    epoch: AtomicU64,
    /// Per-shard publish counters: bumped when the shard's slot is swapped,
    /// so a handle serving a *pinned* point query refreshes only the one
    /// shard it routes to instead of re-collecting the whole view.
    shard_epochs: Vec<AtomicU64>,
    /// Migration seqlock: odd while a migration's all-shard publish burst is
    /// in flight. [`read_view`](ConcurrentRelation::read_view) retries
    /// collection around odd windows, making migration epochs atomic across
    /// a view (no mixed-decomposition views, ever).
    migration_epoch: AtomicU64,
    /// Reader pin registry: every live [`ReadHandle`]'s per-shard epoch
    /// pins, scanned by writers for grace-period detection (see the
    /// [`epoch`] module).
    registry: epoch::EpochRegistry,
    /// Per-shard limbo lists: retired published snapshots awaiting their
    /// grace period, drained writer-side after each mutation's lock
    /// release.
    limbo: Vec<epoch::ShardLimbo>,
    shard_cols: ColSet,
    cols: ColSet,
}

impl ConcurrentRelation {
    /// Creates an empty concurrent relation with `shards` partitions, routed
    /// by the valuation of `shard_cols`.
    ///
    /// Every shard uses the same decomposition; adequacy is checked once per
    /// shard exactly as for [`SynthRelation::new`]. Choosing shard columns
    /// that most operations pin (e.g. the leading key of the hot path)
    /// minimizes whole-relation locking.
    ///
    /// # Errors
    ///
    /// [`ConcurrentBuildError`] if the decomposition is inadequate, the
    /// shard columns are foreign, or `shards == 0`.
    pub fn new(
        cat: &Catalog,
        spec: RelSpec,
        d: Decomposition,
        shard_cols: ColSet,
        shards: usize,
    ) -> Result<Self, ConcurrentBuildError> {
        if shards == 0 {
            return Err(ConcurrentBuildError::ZeroShards);
        }
        let foreign = shard_cols - spec.cols();
        if !foreign.is_empty() {
            return Err(ConcurrentBuildError::ForeignShardColumns { cols: foreign });
        }
        let cols = spec.cols();
        let mut v = Vec::with_capacity(shards);
        for _ in 0..shards {
            v.push(SynthRelation::new(cat, spec.clone(), d.clone())?);
        }
        // Publish each shard's (empty) state up front, so readers always
        // find a snapshot without ever touching a shard lock.
        let published = v
            .iter()
            .map(|r| {
                RwLock::new(PublishSlot {
                    snap: Some(Arc::new(r.snapshot())),
                    stamp: 0,
                })
            })
            .collect();
        Ok(ConcurrentRelation {
            shard_epochs: (0..v.len()).map(|_| AtomicU64::new(0)).collect(),
            registry: epoch::EpochRegistry::new(v.len()),
            limbo: (0..v.len()).map(|_| epoch::ShardLimbo::default()).collect(),
            shards: v.into_iter().map(RwLock::new).collect(),
            published,
            epoch: AtomicU64::new(0),
            migration_epoch: AtomicU64::new(0),
            shard_cols,
            cols,
        })
    }

    /// The number of partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The columns tuples are routed by.
    pub fn shard_cols(&self) -> ColSet {
        self.shard_cols
    }

    /// The shard index owning a tuple's shard-column valuation.
    fn route(&self, t: &Tuple) -> usize {
        route_tuple(self.shard_cols, self.shards.len(), t)
    }

    /// Does this pattern pin the shard columns (single-shard operation)?
    fn pins(&self, dom: ColSet) -> bool {
        self.shard_cols.is_subset(dom)
    }

    /// Shared access to shard `i`. Lock poisoning (a panic inside an earlier
    /// critical section) is unrecoverable for an in-memory structure, so
    /// every lock site funnels through this pair of helpers and panics with
    /// one consistent message.
    fn read_shard(&self, i: usize) -> RwLockReadGuard<'_, SynthRelation> {
        self.shards[i].read().expect("shard lock poisoned")
    }

    /// Exclusive access to shard `i` (see
    /// [`read_shard`](ConcurrentRelation::read_shard)).
    fn write_shard(&self, i: usize) -> RwLockWriteGuard<'_, SynthRelation> {
        self.shards[i].write().expect("shard lock poisoned")
    }

    fn read_all(&self) -> Vec<RwLockReadGuard<'_, SynthRelation>> {
        // Index order — a total order, hence deadlock-free.
        (0..self.shards.len()).map(|i| self.read_shard(i)).collect()
    }

    fn write_all(&self) -> Vec<RwLockWriteGuard<'_, SynthRelation>> {
        (0..self.shards.len())
            .map(|i| self.write_shard(i))
            .collect()
    }

    // -- snapshot publication (see the `snapshot` module docs) --------------

    /// Shared access to shard `i`'s publish slot. Slot locks recover from
    /// poisoning (`into_inner`): the slot holds only whole-value swaps (an
    /// `Option<Arc>` replace and a stamp word), so a panic elsewhere in a
    /// critical section cannot leave it torn — unlike the shard locks,
    /// whose mid-mutation state is genuinely unrecoverable and which keep
    /// the panic funnel.
    fn slot_read(&self, i: usize) -> RwLockReadGuard<'_, PublishSlot> {
        self.published[i].read().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive access to shard `i`'s publish slot (see
    /// [`slot_read`](ConcurrentRelation::slot_read) for the poison policy).
    fn slot_write(&self, i: usize) -> RwLockWriteGuard<'_, PublishSlot> {
        self.published[i].write().unwrap_or_else(|e| e.into_inner())
    }

    /// Drops shard `i`'s published snapshot when no reader holds it, so the
    /// upcoming mutation runs fully in place (the store stays unshared).
    /// Called with the shard's write lock held (the slot's `None` window is
    /// therefore invisible to anyone holding any shard lock).
    fn prune_slot(&self, i: usize) {
        let mut slot = self.slot_write(i);
        if slot
            .snap
            .as_ref()
            .is_some_and(|s| Arc::strong_count(s) == 1)
        {
            slot.snap = None;
        }
    }

    /// Publishes shard `i`'s current state (O(1): the snapshot shares the
    /// persistent store). Called with the shard's write lock held, after
    /// the mutation epoch completed. Does not bump the epoch counter —
    /// callers bump once per logical operation via
    /// [`bump_epoch`](ConcurrentRelation::bump_epoch).
    fn publish_slot(&self, i: usize, shard: &SynthRelation) {
        self.publish_slot_stamped(i, shard, None);
    }

    /// [`publish_slot`](ConcurrentRelation::publish_slot) with an optional
    /// writer stamp; `None` keeps the slot's previous stamp. Snapshot and
    /// stamp swap together under the slot's latch, so collectors always see
    /// a consistent pair.
    ///
    /// The replaced snapshot, if any reader still references it, is
    /// *retired* onto shard `i`'s limbo list tagged with the pre-swap
    /// epoch — its teardown is deferred to
    /// [`drain_limbo`](ConcurrentRelation::drain_limbo) once the grace
    /// period expires (see the [`epoch`] module). An unreferenced
    /// replacement drops immediately (the writer already holds the last
    /// `Arc`).
    fn publish_slot_stamped(&self, i: usize, shard: &SynthRelation, stamp: Option<u64>) {
        let old = {
            let mut slot = self.slot_write(i);
            let old = slot.snap.replace(Arc::new(shard.snapshot()));
            if let Some(s) = stamp {
                slot.stamp = s;
            }
            old
        };
        let retire_epoch = self.shard_epochs[i].fetch_add(1, Ordering::Release);
        if let Some(snap) = old {
            if Arc::strong_count(&snap) > 1 {
                self.limbo[i].retire(retire_epoch, snap);
            }
        }
    }

    /// Drains shard `i`'s limbo list past the grace period: every retired
    /// snapshot no pinned reader can still hold is dropped **here, on the
    /// writer/maintenance thread, outside every lock** — reclamation cost
    /// never lands on a reader's query and never extends a shard critical
    /// section. Returns the number of snapshots freed.
    fn drain_limbo(&self, i: usize) -> usize {
        self.limbo[i].drain(self.registry.min_pinned(i))
    }

    /// Announces a completed publish to cached [`ReadHandle`]s.
    fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The write-side epoch discipline for one shard: write-lock, prune the
    /// unreferenced published snapshot (making the mutation in-place when no
    /// reader holds a view), run the mutation, republish, bump the epoch.
    /// Every single-shard mutation funnels through here, so a published
    /// snapshot is always a committed per-shard state and a batch applied to
    /// a shard is never visible half-done.
    fn mutate_shard<T>(&self, i: usize, f: impl FnOnce(&mut SynthRelation) -> T) -> T {
        let out = {
            let mut guard = self.write_shard(i);
            self.prune_slot(i);
            let out = f(&mut guard);
            self.publish_slot(i, &guard);
            self.bump_epoch();
            out
        };
        // After the write lock is released: reclaim whatever this (or any
        // earlier) epoch retired, now that the grace period may have
        // expired.
        self.drain_limbo(i);
        out
    }

    /// The all-shard analog of [`mutate_shard`](ConcurrentRelation::mutate_shard)
    /// for operations that hold every write lock (unpinned removals and
    /// updates): prune all, mutate, republish all, one epoch bump.
    fn mutate_all<T>(&self, f: impl FnOnce(&mut [RwLockWriteGuard<'_, SynthRelation>]) -> T) -> T {
        let out = {
            let mut guards = self.write_all();
            for i in 0..guards.len() {
                self.prune_slot(i);
            }
            let out = f(&mut guards);
            for (i, g) in guards.iter().enumerate() {
                self.publish_slot(i, g);
            }
            self.bump_epoch();
            out
        };
        self.drain_all_limbo();
        out
    }

    /// [`drain_limbo`](ConcurrentRelation::drain_limbo) across every shard.
    fn drain_all_limbo(&self) -> usize {
        (0..self.shards.len()).map(|i| self.drain_limbo(i)).sum()
    }

    /// Republishes every (already write-locked) shard as **one migration
    /// epoch**: the seqlock counter is odd while the slots are being
    /// swapped, and [`read_view`](ConcurrentRelation::read_view) retries
    /// collection around odd windows — so no view ever holds a mix of pre-
    /// and post-migration shards.
    fn publish_all_migration(&self, guards: &[RwLockWriteGuard<'_, SynthRelation>]) {
        self.publish_all_migration_stamped(guards, None);
    }

    /// [`publish_all_migration`](ConcurrentRelation::publish_all_migration)
    /// with an optional writer stamp applied to every shard's slot.
    fn publish_all_migration_stamped(
        &self,
        guards: &[RwLockWriteGuard<'_, SynthRelation>],
        stamp: Option<u64>,
    ) {
        self.migration_epoch.fetch_add(1, Ordering::Release);
        for (i, g) in guards.iter().enumerate() {
            self.publish_slot_stamped(i, g, stamp);
        }
        self.bump_epoch();
        self.migration_epoch.fetch_add(1, Ordering::Release);
    }

    /// `insert r t` — routes to one shard, write-locking only it.
    ///
    /// # Errors
    ///
    /// As for [`SynthRelation::insert`].
    pub fn insert(&self, t: Tuple) -> Result<bool, OpError> {
        if !self.pins(t.dom()) {
            // A full tuple always binds all columns; this is only reachable
            // for malformed tuples, which the shard rejects with a proper
            // error.
            return self.mutate_shard(0, |s| s.insert(t));
        }
        let i = self.route(&t);
        self.mutate_shard(i, |s| s.insert(t))
    }

    /// `bulk_load` — partitions the batch by shard (lock-free), then runs
    /// [`SynthRelation::bulk_load`] under each affected shard's write lock,
    /// taken **once per batch** in index order. Returns the total number of
    /// tuples inserted.
    ///
    /// Atomicity is per shard: a concurrent reader may observe some shards
    /// already loaded and others not yet. Malformed tuples (not binding the
    /// shard columns) route to shard 0, which rejects them exactly as
    /// [`insert`](ConcurrentRelation::insert) does.
    ///
    /// # Errors
    ///
    /// The first error any shard reports, in shard index order; loads into
    /// earlier shards (and the failing shard's accepted prefix) persist. The
    /// per-shard semantics are those of [`SynthRelation::bulk_load`].
    pub fn bulk_load<I: IntoIterator<Item = Tuple>>(&self, tuples: I) -> Result<usize, OpError> {
        self.batch_mutate(tuples, |shard, group| shard.bulk_load(group))
    }

    /// `insert_many` — like [`bulk_load`](ConcurrentRelation::bulk_load)
    /// but each shard runs [`SynthRelation::insert_many`] (no structural
    /// re-sort within the shard), which preserves more of the caller's
    /// ordering for clustered streams.
    ///
    /// # Errors
    ///
    /// As for [`bulk_load`](ConcurrentRelation::bulk_load).
    pub fn insert_many<I: IntoIterator<Item = Tuple>>(&self, tuples: I) -> Result<usize, OpError> {
        self.batch_mutate(tuples, |shard, group| shard.insert_many(group))
    }

    /// Groups `tuples` by owning shard, then applies `op` once per
    /// non-empty shard under its write lock (index order).
    fn batch_mutate<I: IntoIterator<Item = Tuple>>(
        &self,
        tuples: I,
        op: impl Fn(&mut SynthRelation, Vec<Tuple>) -> Result<usize, OpError>,
    ) -> Result<usize, OpError> {
        let mut groups: Vec<Vec<Tuple>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for t in tuples {
            let i = if self.pins(t.dom()) {
                self.route(&t)
            } else {
                0
            };
            groups[i].push(t);
        }
        let mut inserted = 0;
        for (i, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            // `mutate_shard` publishes after the whole per-shard group —
            // even on error (the accepted prefix persists and must be
            // visible), which is why the `?` sits outside the call.
            inserted += self.mutate_shard(i, |shard| op(shard, group))?;
        }
        Ok(inserted)
    }

    /// `remove r s` — one shard if `pattern` pins the shard columns, all
    /// shards (in order) otherwise. Returns the number of tuples removed.
    ///
    /// # Errors
    ///
    /// As for [`SynthRelation::remove`].
    pub fn remove(&self, pattern: &Tuple) -> Result<usize, OpError> {
        if self.pins(pattern.dom()) {
            let i = self.route(pattern);
            self.mutate_shard(i, |s| s.remove(pattern))
        } else {
            self.mutate_all(|guards| {
                let mut n = 0;
                for g in guards.iter_mut() {
                    n += g.remove(pattern)?;
                }
                Ok(n)
            })
        }
    }

    /// `remove_where r P` — predicate removal across the partitions; one
    /// shard when the *equality* part of `P` pins the shard columns.
    /// Returns the number of tuples removed.
    ///
    /// # Errors
    ///
    /// As for [`SynthRelation::remove_where`].
    pub fn remove_where(&self, pattern: &Pattern) -> Result<usize, OpError> {
        let eq = pattern.eq_tuple();
        if self.pins(eq.dom()) {
            let i = self.route(&eq);
            self.mutate_shard(i, |s| s.remove_where(pattern))
        } else {
            self.mutate_all(|guards| {
                let mut n = 0;
                for g in guards.iter_mut() {
                    n += g.remove_where(pattern)?;
                }
                Ok(n)
            })
        }
    }

    /// `update r s u` — one shard if `pattern` pins the shard columns and
    /// the changes do not touch them; all shards otherwise. (Changing a
    /// shard column would migrate the tuple between shards; the underlying
    /// update restriction — the pattern must be a key disjoint from the
    /// changes — already forbids it whenever shard columns are part of the
    /// pattern.)
    ///
    /// # Errors
    ///
    /// As for [`SynthRelation::update`].
    pub fn update(&self, pattern: &Tuple, changes: &Tuple) -> Result<bool, OpError> {
        if self.pins(pattern.dom()) {
            let i = self.route(pattern);
            self.mutate_shard(i, |s| s.update(pattern, changes))
        } else {
            self.mutate_all(|guards| {
                let mut any = false;
                for g in guards.iter_mut() {
                    any |= g.update(pattern, changes)?;
                }
                Ok(any)
            })
        }
    }

    /// `query r s C` — read-locks one shard if `pattern` pins the shard
    /// columns, all shards otherwise. Results are set-semantic and sorted,
    /// as for [`SynthRelation::query`].
    ///
    /// # Errors
    ///
    /// As for [`SynthRelation::query`].
    pub fn query(&self, pattern: &Tuple, out: ColSet) -> Result<Vec<Tuple>, OpError> {
        if self.pins(pattern.dom()) {
            let i = self.route(pattern);
            self.read_shard(i).query(pattern, out)
        } else {
            let guards = self.read_all();
            let mut set = std::collections::BTreeSet::new();
            for g in &guards {
                set.extend(g.query(pattern, out)?);
            }
            Ok(set.into_iter().collect())
        }
    }

    /// `query_where r P C` (comparison queries) across the partitions; one
    /// shard when the *equality* part of `P` pins the shard columns.
    ///
    /// # Errors
    ///
    /// As for [`SynthRelation::query_where`].
    pub fn query_where(&self, pattern: &Pattern, out: ColSet) -> Result<Vec<Tuple>, OpError> {
        let eq = pattern.eq_tuple();
        if self.pins(eq.dom()) {
            let i = self.route(&eq);
            self.read_shard(i).query_where(pattern, out)
        } else {
            let guards = self.read_all();
            let mut set = std::collections::BTreeSet::new();
            for g in &guards {
                set.extend(g.query_where(pattern, out)?);
            }
            Ok(set.into_iter().collect())
        }
    }

    /// Number of tuples across all shards (read-locks every shard, so the
    /// count is a consistent snapshot).
    pub fn len(&self) -> usize {
        self.read_all().iter().map(|g| g.len()).sum()
    }

    /// Is the relation empty? Short-circuits on the first non-empty shard,
    /// read-locking shards one at a time instead of computing a full
    /// all-shard [`len`](ConcurrentRelation::len). (Like any lock-at-a-time
    /// aggregate, the answer is about a moment between the first and last
    /// shard inspected; `len` still takes all locks for a consistent
    /// snapshot.)
    pub fn is_empty(&self) -> bool {
        (0..self.shards.len()).all(|i| self.read_shard(i).is_empty())
    }

    /// Runs `f` with exclusive access to the shard owning `key`'s
    /// valuation — an atomic compound operation on one partition (e.g.
    /// read-modify-write), the analog of holding a domain lock across a
    /// client-side critical section.
    ///
    /// `key` must bind all shard columns.
    ///
    /// # Panics
    ///
    /// Panics if `key` does not bind every shard column.
    pub fn with_partition_mut<T>(&self, key: &Tuple, f: impl FnOnce(&mut SynthRelation) -> T) -> T {
        assert!(
            self.pins(key.dom()),
            "with_partition_mut requires all shard columns bound"
        );
        let i = self.route(key);
        self.mutate_shard(i, f)
    }

    /// Runs `f` with shared access to the shard owning `key`'s valuation.
    ///
    /// # Panics
    ///
    /// Panics if `key` does not bind every shard column.
    pub fn with_partition<T>(&self, key: &Tuple, f: impl FnOnce(&SynthRelation) -> T) -> T {
        assert!(
            self.pins(key.dom()),
            "with_partition requires all shard columns bound"
        );
        let i = self.route(key);
        f(&self.read_shard(i))
    }

    // -- durability hooks ---------------------------------------------------
    //
    // A layering client (e.g. `relic_persist`'s `DurableRelation`) that logs
    // mutations needs three things this crate alone can provide: (1) the
    // shard a batch group routes to, so a batch can be logged *per shard*;
    // (2) a critical section in which to assign each logged record its
    // sequence number **before applying it**, so per-shard log order equals
    // per-shard apply order; and (3) a publish that carries the shard's
    // last logged sequence number as its writer stamp — under the existing
    // publish-before-unlock discipline — so a checkpoint built from
    // published snapshots knows, per shard, exactly which log prefix the
    // snapshot contains (no fuzzy replay, no idempotency hacks).

    /// The index of the shard owning tuple `t`'s shard-column valuation
    /// (shard 0 for malformed tuples that do not bind the shard columns,
    /// matching [`insert`](ConcurrentRelation::insert)'s routing). Layering
    /// clients use this to group a batch per shard before logging each
    /// group under its shard's lock.
    pub fn owning_shard(&self, t: &Tuple) -> usize {
        if self.pins(t.dom()) {
            self.route(t)
        } else {
            0
        }
    }

    /// Runs `f` with exclusive access to shard `i` under the write-side
    /// epoch discipline (prune → mutate → publish-before-unlock) — the
    /// by-index analog of
    /// [`with_partition_mut`](ConcurrentRelation::with_partition_mut), for
    /// layers that partition batches themselves. `f` returns `(result,
    /// stamp)`; `Some(s)` stamps the published snapshot with `s` (see
    /// [`ReadView::shard_stamp`](crate::ReadView::shard_stamp)), `None`
    /// keeps the previous stamp.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn with_shard_mut_stamped<T>(
        &self,
        i: usize,
        f: impl FnOnce(&mut SynthRelation) -> (T, Option<u64>),
    ) -> T {
        assert!(i < self.shards.len(), "shard index out of range");
        let out = {
            let mut guard = self.write_shard(i);
            self.prune_slot(i);
            let (out, stamp) = f(&mut guard);
            self.publish_slot_stamped(i, &guard, stamp);
            self.bump_epoch();
            out
        };
        self.drain_limbo(i);
        out
    }

    /// Runs `f` with exclusive access to **every** shard (locks taken in
    /// index order — the crate's total lock order) as one compound epoch:
    /// the whole-relation analog of
    /// [`with_shard_mut_stamped`](ConcurrentRelation::with_shard_mut_stamped)
    /// for unpinned mutations a layering client must log and apply under
    /// one continuous hold. The returned stamp (if `Some`) is applied to
    /// every shard's publish.
    pub fn with_all_shards_mut_stamped<T>(
        &self,
        f: impl FnOnce(&mut [&mut SynthRelation]) -> (T, Option<u64>),
    ) -> T {
        let out = {
            let mut guards = self.write_all();
            for i in 0..guards.len() {
                self.prune_slot(i);
            }
            let (out, stamp) = {
                let mut refs: Vec<&mut SynthRelation> =
                    guards.iter_mut().map(|g| &mut **g).collect();
                f(&mut refs)
            };
            for (i, g) in guards.iter().enumerate() {
                self.publish_slot_stamped(i, g, stamp);
            }
            self.bump_epoch();
            out
        };
        self.drain_all_limbo();
        out
    }

    /// [`migrate_to`](ConcurrentRelation::migrate_to) with a durability
    /// stamp: `stamp` runs after every shard write lock is held (so a
    /// logging client can assign the migration marker its sequence number
    /// with no concurrent writer able to slip a record in between) and the
    /// returned value stamps every shard's post-migration publish. On error
    /// nothing is republished: the slots keep their pre-migration snapshots
    /// and stamps, and a replay of the logged marker fails the same way
    /// against the same per-shard states.
    ///
    /// # Errors
    ///
    /// As for [`migrate_to`](ConcurrentRelation::migrate_to).
    pub fn migrate_to_stamped(
        &self,
        d: Decomposition,
        stamp: impl FnOnce() -> u64,
    ) -> Result<(), MigrateError> {
        let res = {
            let mut guards = self.write_all();
            let s = stamp();
            let res = Self::migrate_shards(&mut guards, d);
            if res.is_ok() {
                self.publish_all_migration_stamped(&guards, Some(s));
            }
            res
        };
        self.drain_all_limbo();
        res
    }

    /// The aggregated workload profile across all shards (read-locks every
    /// shard, so the snapshot is consistent).
    ///
    /// Per-shard counters sum: an operation that pinned the shard columns
    /// counted once in its owning shard, while an unpinned operation visited
    /// — and counted in — every shard. The aggregate therefore weights
    /// unpinned traffic by the shard count, which is exactly its relative
    /// cost under this locking discipline.
    pub fn profile(&self) -> WorkloadProfile {
        let guards = self.read_all();
        let mut p = WorkloadProfile::default();
        for g in &guards {
            p.merge(&g.profile());
        }
        p
    }

    /// Zeroes every shard's workload recorder, starting a fresh observation
    /// window (takes all read locks; the reset itself is per-shard atomic).
    pub fn reset_profile(&self) {
        for g in &self.read_all() {
            g.reset_profile();
        }
    }

    /// Migrates every shard to decomposition `d` as **one epoch**: all
    /// shard write locks are taken in index order (the crate's total lock
    /// order, so the acquisition cannot deadlock against any other
    /// whole-relation operation) and held until every shard has swapped —
    /// no reader or writer can ever observe a mix of representations.
    ///
    /// Each shard preserves its tuple set and workload profile exactly as
    /// [`SynthRelation::migrate_to`] does. If a shard's rebuild fails, the
    /// already-migrated shards are rolled back to the prior decomposition
    /// before the error is returned, so the epoch is all-or-nothing.
    ///
    /// # Errors
    ///
    /// As for [`SynthRelation::migrate_to`].
    pub fn migrate_to(&self, d: Decomposition) -> Result<(), MigrateError> {
        let res = {
            let mut guards = self.write_all();
            let res = Self::migrate_shards(&mut guards, d);
            if res.is_ok() {
                // One migration epoch: all shards republished inside the
                // seqlock window, so a view is never mixed-decomposition.
                // (On error the rollback restored the published tuple set,
                // so the standing snapshots remain correct.)
                self.publish_all_migration(&guards);
            }
            res
        };
        // The retired pre-migration snapshots (the whole old
        // representation) tear down here — or on a later drain once the
        // last pinned reader refreshes — never on a reader's query path.
        self.drain_all_limbo();
        res
    }

    /// The locked core of [`migrate_to`](ConcurrentRelation::migrate_to):
    /// migrates every already-write-locked shard, rolling back on failure.
    fn migrate_shards(
        guards: &mut [RwLockWriteGuard<'_, SynthRelation>],
        d: Decomposition,
    ) -> Result<(), MigrateError> {
        let old = guards[0].decomposition().clone();
        for i in 0..guards.len() {
            if let Err(e) = guards[i].migrate_to(d.clone()) {
                for g in guards[..i].iter_mut() {
                    // The prior decomposition held these exact tuples a
                    // moment ago, so rolling back cannot fail.
                    g.migrate_to(old.clone())
                        .expect("rollback to the prior decomposition");
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// The adaptive convenience: aggregates the shards' measured workload,
    /// ranks candidate decompositions for it, and — when the best candidate
    /// beats the current representation's observed-fan-out cost by at least
    /// `min_improvement` — migrates every shard to it in one epoch (same
    /// lock discipline as [`migrate_to`](ConcurrentRelation::migrate_to);
    /// the decision and the migration happen under one continuous hold of
    /// all write locks, so the profile that justified the migration is the
    /// profile that was live when it ran).
    ///
    /// Every evaluation (migrating or not) resets the shards' recorders, so
    /// each call scores exactly one observation window and a phase shift
    /// stops being averaged against history after one window — the same
    /// sliding-window discipline as `AdaptiveRelation::retune`. Returns the
    /// estimated improvement factor when a migration happened, `None`
    /// otherwise (nothing recorded, no feasible candidate, margin not met,
    /// or the best candidate is the current decomposition).
    ///
    /// Candidate cost models are sized by the mean shard population (each
    /// shard holds roughly `len / shard_count` tuples under hash routing),
    /// and the current cost averages each shard's observed fan-outs.
    ///
    /// # Errors
    ///
    /// As for [`migrate_to`](ConcurrentRelation::migrate_to).
    pub fn recommend_and_migrate(
        &self,
        opts: &EnumerateOptions,
        min_improvement: f64,
    ) -> Result<Option<f64>, MigrateError> {
        let mut guards = self.write_all();
        let mut profile = WorkloadProfile::default();
        for g in guards.iter() {
            profile.merge(&g.profile());
        }
        if profile.is_empty() {
            return Ok(None);
        }
        let workload = Workload::from_profile(&profile);
        let spec = guards[0].spec().clone();
        let total: usize = guards.iter().map(|g| g.len()).sum();
        let per_shard = (total as f64 / guards.len() as f64).max(1.0);
        let tuner = Autotuner::new(&spec)
            .with_options(opts.clone())
            .with_relation_size(per_shard);
        let current_cost: f64 = guards
            .iter()
            .map(|g| {
                tuner.static_cost_with_model(g.decomposition(), g.observed_cost_model(), &workload)
            })
            .sum::<f64>()
            / guards.len() as f64;
        // This window has been scored; the next call observes a fresh one
        // whatever we decide below.
        for g in guards.iter() {
            g.reset_profile();
        }
        let Some(best) = tuner
            .tune_static(&workload)
            .into_iter()
            .next()
            .filter(|t| t.cost.is_finite())
        else {
            return Ok(None);
        };
        let rec = Recommendation {
            best,
            current_cost,
            workload,
        };
        if !rec.should_migrate(min_improvement)
            || rec.best.decomposition == *guards[0].decomposition()
        {
            return Ok(None);
        }
        let improvement = rec.improvement();
        Self::migrate_shards(&mut guards, rec.best.decomposition)?;
        self.publish_all_migration(&guards);
        drop(guards);
        self.drain_all_limbo();
        Ok(Some(improvement))
    }

    // -- reclamation introspection (see the `epoch` module) -----------------

    /// Drains every shard's limbo list past its grace period, returning the
    /// number of retired snapshots freed. Mutations drain opportunistically
    /// after releasing their locks; call this for on-demand reclamation
    /// (maintenance ticks, memory pressure, tests) — e.g. after dropping a
    /// long-held [`ReadHandle`] whose pin was blocking a chain of retired
    /// stores.
    pub fn reclaim(&self) -> usize {
        self.drain_all_limbo()
    }

    /// Estimated heap bytes parked on the limbo lists: retired snapshots
    /// whose grace period has not yet expired (typically because a pinned
    /// reader has not refreshed past their retirement). Sizes are the
    /// stores' O(1) running estimates
    /// ([`relic_core::Snapshot::store_approx_bytes`]); versions sharing
    /// structure each count in full, so this is an upper bound on what a
    /// drain can actually return to the allocator.
    pub fn limbo_bytes(&self) -> usize {
        self.limbo.iter().map(|l| l.bytes()).sum()
    }

    /// Number of retired snapshots currently parked across all limbo lists.
    pub fn limbo_len(&self) -> usize {
        self.limbo.iter().map(|l| l.len()).sum()
    }

    /// How far the slowest pinned reader lags the newest published state,
    /// in per-shard publish epochs (the maximum over shards of
    /// `shard_epoch - min pinned epoch`; 0 with no pinned readers). A large
    /// or growing lag means some [`ReadHandle`] is not refreshing and its
    /// pins are holding retired snapshots in limbo.
    pub fn pinned_epoch_lag(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| {
                let min = self.registry.min_pinned(i);
                if min == epoch::UNPINNED {
                    0
                } else {
                    self.shard_epochs[i]
                        .load(Ordering::Acquire)
                        .saturating_sub(min)
                }
            })
            .max()
            .unwrap_or(0)
    }

    /// One coherent snapshot of the reclamation-pressure gauges
    /// ([`limbo_bytes`](ConcurrentRelation::limbo_bytes),
    /// [`limbo_len`](ConcurrentRelation::limbo_len),
    /// [`pinned_epoch_lag`](ConcurrentRelation::pinned_epoch_lag)) — the
    /// per-worker admission-control probe of a serving front end, which
    /// wants all three without three separate shard walks.
    pub fn pressure(&self) -> MemoryPressure {
        let (mut bytes, mut len) = (0usize, 0usize);
        for l in self.limbo.iter() {
            bytes += l.bytes();
            len += l.len();
        }
        MemoryPressure {
            limbo_bytes: bytes,
            limbo_len: len,
            pinned_epoch_lag: self.pinned_epoch_lag(),
        }
    }

    /// Arms or disarms whole-store deep-clone-on-write in every shard (see
    /// [`SynthRelation::set_cow_store_clones`]; off by default). The
    /// benchmark harness's CoW comparison arm only.
    pub fn set_cow_store_clones(&self, on: bool) {
        for i in 0..self.shards.len() {
            self.write_shard(i).set_cow_store_clones(on);
        }
    }

    /// A consistent snapshot of the whole relation as a reference
    /// [`Relation`] (read-locks every shard for the duration).
    pub fn to_relation(&self) -> Relation {
        let guards = self.read_all();
        let mut out = Relation::empty(self.cols);
        for g in &guards {
            for t in g.to_relation().iter() {
                out.insert(t.clone());
            }
        }
        out
    }

    /// Validates every shard's instance against Fig. 5 well-formedness (for
    /// tests).
    ///
    /// # Errors
    ///
    /// The first shard's failure message, if any shard is ill-formed.
    pub fn validate(&self) -> Result<(), String> {
        for (i, g) in self.read_all().iter().enumerate() {
            g.validate().map_err(|e| format!("shard {i}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relic_decomp::parse;
    use relic_spec::{Pred, Value};

    fn setup(shards: usize) -> (Catalog, ConcurrentRelation) {
        let mut cat = Catalog::new();
        let d = parse(
            &mut cat,
            "let u : {host,ts} . {bytes} = unit {bytes} in
             let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
             let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
        )
        .unwrap();
        let host = cat.col("host").unwrap();
        let ts = cat.col("ts").unwrap();
        let bytes = cat.col("bytes").unwrap();
        let spec = RelSpec::new(cat.all()).with_fd(host | ts, bytes.set());
        let r = ConcurrentRelation::new(&cat, spec, d, host.set(), shards).unwrap();
        (cat, r)
    }

    fn tup(cat: &Catalog, h: i64, t: i64, b: i64) -> Tuple {
        Tuple::from_pairs([
            (cat.col("host").unwrap(), Value::from(h)),
            (cat.col("ts").unwrap(), Value::from(t)),
            (cat.col("bytes").unwrap(), Value::from(b)),
        ])
    }

    #[test]
    fn concurrent_relation_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConcurrentRelation>();
    }

    #[test]
    fn build_rejects_bad_inputs() {
        let (cat, _) = setup(4);
        let mut cat2 = cat.clone();
        let alien = cat2.intern("alien");
        let d = parse(
            &mut Catalog::new(),
            "let u : {a} . {} = unit {} in let x : {} . {a} = {a} -[htable]-> u in x",
        );
        // Columns from a different catalog -> foreign shard columns.
        let mut cat3 = Catalog::new();
        let d3 = parse(
            &mut cat3,
            "let u : {a} . {} = unit {} in let x : {} . {a} = {a} -[htable]-> u in x",
        )
        .unwrap();
        let spec3 = RelSpec::new(cat3.all());
        let err =
            ConcurrentRelation::new(&cat3, spec3.clone(), d3.clone(), alien.set(), 2).unwrap_err();
        assert!(matches!(
            err,
            ConcurrentBuildError::ForeignShardColumns { .. }
        ));
        let err = ConcurrentRelation::new(&cat3, spec3, d3, ColSet::EMPTY, 0).unwrap_err();
        assert!(matches!(err, ConcurrentBuildError::ZeroShards));
        let _ = d;
    }

    #[test]
    fn sequential_ops_agree_with_reference() {
        let (cat, r) = setup(4);
        let host = cat.col("host").unwrap();
        let ts = cat.col("ts").unwrap();
        let bytes = cat.col("bytes").unwrap();
        let mut m = Relation::empty(cat.all());
        for h in 0..6i64 {
            for t in 0..10i64 {
                let tu = tup(&cat, h, t, h + t);
                r.insert(tu.clone()).unwrap();
                m.insert(tu);
            }
        }
        assert_eq!(r.len(), m.len());
        // Pinned query (single shard).
        let pat = Tuple::from_pairs([(host, Value::from(3))]);
        assert_eq!(
            r.query(&pat, ts | bytes).unwrap(),
            m.query(&pat, ts | bytes)
        );
        // Unpinned query (all shards, merged + sorted).
        let pat = Tuple::from_pairs([(ts, Value::from(7))]);
        assert_eq!(
            r.query(&pat, host | bytes).unwrap(),
            m.query(&pat, host | bytes)
        );
        // Unpinned remove crosses shards.
        let n = r.remove(&pat).unwrap();
        assert_eq!(n, m.remove(&pat));
        // Pinned update.
        let key = Tuple::from_pairs([(host, Value::from(2)), (ts, Value::from(3))]);
        let chg = Tuple::from_pairs([(bytes, Value::from(99))]);
        assert!(r.update(&key, &chg).unwrap());
        m.update(&key, &chg);
        assert_eq!(r.to_relation(), m);
        r.validate().unwrap();
    }

    #[test]
    fn range_queries_cross_shards() {
        let (cat, r) = setup(3);
        let host = cat.col("host").unwrap();
        let ts = cat.col("ts").unwrap();
        let mut m = Relation::empty(cat.all());
        for h in 0..5i64 {
            for t in 0..20i64 {
                let tu = tup(&cat, h, t, t % 4);
                r.insert(tu.clone()).unwrap();
                m.insert(tu);
            }
        }
        let p = Pattern::new().with(ts, Pred::Between(Value::from(5), Value::from(8)));
        assert_eq!(
            r.query_where(&p, host | ts).unwrap(),
            m.query_where(&p, host | ts)
        );
        let p = Pattern::new()
            .with(host, Pred::Eq(Value::from(1)))
            .with(ts, Pred::Ge(Value::from(17)));
        assert_eq!(
            r.query_where(&p, ts.set()).unwrap(),
            m.query_where(&p, ts.set())
        );
    }

    #[test]
    fn bulk_load_groups_by_shard_and_matches_per_tuple_inserts() {
        let (cat, bulk) = setup(4);
        let (_, loop_rel) = setup(4);
        let tuples: Vec<Tuple> = (0..8i64)
            .flat_map(|h| (0..25i64).map(move |t| (h, t)))
            .map(|(h, t)| tup(&cat, h, t, h + t))
            .collect();
        let n = bulk.bulk_load(tuples.clone()).unwrap();
        assert_eq!(n, 200);
        for t in tuples {
            loop_rel.insert(t).unwrap();
        }
        assert_eq!(bulk.to_relation(), loop_rel.to_relation());
        assert_eq!(bulk.len(), 200);
        bulk.validate().unwrap();
        // Duplicates across a second batch are no-ops; new tuples count.
        let n = bulk
            .insert_many(vec![tup(&cat, 0, 0, 0), tup(&cat, 99, 0, 7)])
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(bulk.len(), 201);
    }

    #[test]
    fn bulk_load_reports_shard_errors() {
        let (cat, r) = setup(2);
        r.insert(tup(&cat, 1, 1, 5)).unwrap();
        // Same (host, ts) key, different bytes: an FD violation inside the
        // owning shard.
        let err = r
            .bulk_load(vec![tup(&cat, 2, 2, 2), tup(&cat, 1, 1, 6)])
            .unwrap_err();
        assert!(matches!(err, OpError::FdViolation { .. }));
        // The clean tuple persists (per-shard atomicity).
        assert!(r.to_relation().contains(&tup(&cat, 2, 2, 2)));
        r.validate().unwrap();
    }

    #[test]
    fn concurrent_bulk_loads_on_disjoint_shards() {
        let (cat, r) = setup(8);
        std::thread::scope(|s| {
            for h in 0..8i64 {
                let r = &r;
                let cat = &cat;
                s.spawn(move || {
                    let batch: Vec<Tuple> = (0..100i64).map(|t| tup(cat, h, t, t % 5)).collect();
                    assert_eq!(r.bulk_load(batch).unwrap(), 100);
                });
            }
        });
        assert_eq!(r.len(), 800);
        r.validate().unwrap();
    }

    #[test]
    fn profile_aggregates_across_shards() {
        let (cat, r) = setup(4);
        let host = cat.col("host").unwrap();
        let ts = cat.col("ts").unwrap();
        let bytes = cat.col("bytes").unwrap();
        for h in 0..8i64 {
            r.insert(tup(&cat, h, 1, 0)).unwrap();
        }
        // Pinned query: counted once, in one shard.
        r.query(&Tuple::from_pairs([(host, Value::from(3))]), ts | bytes)
            .unwrap();
        // Unpinned query: counted once per shard it visited.
        r.query(&Tuple::from_pairs([(ts, Value::from(1))]), host | bytes)
            .unwrap();
        let p = r.profile();
        assert_eq!(p.inserts, 8);
        let pinned = p
            .queries
            .iter()
            .find(|&&(a, _, _, _)| a == host.set())
            .unwrap();
        assert_eq!(pinned.3, 1);
        let unpinned = p
            .queries
            .iter()
            .find(|&&(a, _, _, _)| a == ts.set())
            .unwrap();
        assert_eq!(unpinned.3, 4, "unpinned traffic weighs in every shard");
        r.reset_profile();
        assert!(r.profile().is_empty());
    }

    #[test]
    fn migrate_to_swaps_every_shard_in_one_epoch() {
        let (mut cat, r) = setup(4);
        for h in 0..12i64 {
            for t in 0..6i64 {
                r.insert(tup(&cat, h, t, h * t)).unwrap();
            }
        }
        let before = r.to_relation();
        let flat = parse(
            &mut cat,
            "let u : {host,ts} . {bytes} = unit {bytes} in
             let x : {} . {host,ts,bytes} = {host,ts} -[avl]-> u in x",
        )
        .unwrap();
        r.migrate_to(flat.clone()).unwrap();
        assert_eq!(r.to_relation(), before);
        r.validate().unwrap();
        // Every shard swapped; the relation keeps operating.
        let key = Tuple::from_pairs([
            (cat.col("host").unwrap(), Value::from(2)),
            (cat.col("ts").unwrap(), Value::from(2)),
        ]);
        r.with_partition(&key, |shard| {
            assert_eq!(shard.decomposition(), &flat);
        });
        r.insert(tup(&cat, 99, 0, 1)).unwrap();
        assert_eq!(r.len(), 73);
        r.validate().unwrap();
    }

    #[test]
    fn recommend_and_migrate_reacts_to_a_phase_shift() {
        use relic_decomp::DsKind;
        // Start from a representation hashed flat on the full key — ideal
        // for pinned point reads, mismatched for the by-ts phase below.
        let mut cat = Catalog::new();
        let d = parse(
            &mut cat,
            "let u : {host,ts} . {bytes} = unit {bytes} in
             let x : {} . {host,ts,bytes} = {host,ts} -[htable]-> u in x",
        )
        .unwrap();
        let host = cat.col("host").unwrap();
        let ts = cat.col("ts").unwrap();
        let bytes = cat.col("bytes").unwrap();
        let spec = RelSpec::new(cat.all()).with_fd(host | ts, bytes.set());
        let r = ConcurrentRelation::new(&cat, spec, d, host.set(), 4).unwrap();
        for h in 0..16i64 {
            for t in 0..32i64 {
                r.insert(tup(&cat, h, t, h + t)).unwrap();
            }
        }
        let opts = EnumerateOptions {
            max_edges: 2,
            structures: vec![DsKind::HashTable, DsKind::AvlTree],
            ..Default::default()
        };
        // Nothing recorded yet.
        r.reset_profile();
        assert!(r.recommend_and_migrate(&opts, 1.5).unwrap().is_none());
        // A by-ts phase: unpinned window queries and removals.
        for t in 0..12i64 {
            r.query(&Tuple::from_pairs([(ts, Value::from(t))]), host | bytes)
                .unwrap();
        }
        for t in 0..4i64 {
            r.remove(&Tuple::from_pairs([(ts, Value::from(t))]))
                .unwrap();
        }
        let before = r.to_relation();
        let improvement = r
            .recommend_and_migrate(&opts, 1.5)
            .unwrap()
            .expect("mismatched representation must migrate");
        assert!(improvement >= 1.5);
        assert_eq!(r.to_relation(), before, "migration preserves the tuples");
        r.validate().unwrap();
        // Recorders were reset for the next window.
        assert!(r.profile().is_empty());
        // The same phase no longer triggers churn — and a declined
        // evaluation still consumes its observation window, so old-phase
        // traffic can never dilute a later shift.
        for t in 4..12i64 {
            r.query(&Tuple::from_pairs([(ts, Value::from(t))]), host | bytes)
                .unwrap();
            r.remove(&Tuple::from_pairs([(ts, Value::from(t))]))
                .unwrap();
        }
        assert!(r.recommend_and_migrate(&opts, 1.5).unwrap().is_none());
        assert!(
            r.profile().is_empty(),
            "declined evaluation keeps its window"
        );
        r.validate().unwrap();
    }

    #[test]
    fn is_empty_short_circuits() {
        let (cat, r) = setup(4);
        assert!(r.is_empty());
        r.insert(tup(&cat, 3, 1, 0)).unwrap();
        assert!(!r.is_empty());
        r.remove(&Tuple::from_pairs([
            (cat.col("host").unwrap(), Value::from(3)),
            (cat.col("ts").unwrap(), Value::from(1)),
        ]))
        .unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn with_partition_mut_is_atomic_rmw() {
        let (cat, r) = setup(4);
        let host = cat.col("host").unwrap();
        let ts = cat.col("ts").unwrap();
        let bytes = cat.col("bytes").unwrap();
        r.insert(tup(&cat, 1, 1, 0)).unwrap();
        let key = Tuple::from_pairs([(host, Value::from(1)), (ts, Value::from(1))]);
        // 8 threads × 50 increments, each a locked read-modify-write.
        std::thread::scope(|s| {
            for _ in 0..8 {
                let r = &r;
                let key = key.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        r.with_partition_mut(&key, |shard| {
                            let cur = shard.query(&key, bytes.set()).unwrap()[0]
                                .get(bytes)
                                .and_then(|v| v.as_int())
                                .unwrap();
                            let chg = Tuple::from_pairs([(bytes, Value::from(cur + 1))]);
                            shard.update(&key, &chg).unwrap();
                        });
                    }
                });
            }
        });
        let got = r.query(&key, bytes.set()).unwrap()[0]
            .get(bytes)
            .and_then(|v| v.as_int())
            .unwrap();
        assert_eq!(got, 400, "all increments must survive");
    }

    #[test]
    fn concurrent_disjoint_writers_preserve_all_tuples() {
        let (cat, r) = setup(8);
        std::thread::scope(|s| {
            for h in 0..8i64 {
                let r = &r;
                let cat = &cat;
                s.spawn(move || {
                    for t in 0..200i64 {
                        r.insert(tup(cat, h, t, t % 9)).unwrap();
                    }
                    // Interleave some removals on this thread's own host.
                    for t in (0..200i64).step_by(4) {
                        let pat = Tuple::from_pairs([
                            (cat.col("host").unwrap(), Value::from(h)),
                            (cat.col("ts").unwrap(), Value::from(t)),
                        ]);
                        assert_eq!(r.remove(&pat).unwrap(), 1);
                    }
                });
            }
        });
        assert_eq!(r.len(), 8 * (200 - 50));
        r.validate().unwrap();
    }

    #[test]
    fn readers_run_against_writers_without_corruption() {
        let (cat, r) = setup(4);
        let host = cat.col("host").unwrap();
        std::thread::scope(|s| {
            for h in 0..4i64 {
                let r = &r;
                let cat = &cat;
                s.spawn(move || {
                    for t in 0..300i64 {
                        r.insert(tup(cat, h, t, t)).unwrap();
                    }
                });
            }
            // Concurrent readers: counts are monotonic per host and never
            // exceed the writer's total.
            for h in 0..4i64 {
                let r = &r;
                s.spawn(move || {
                    let mut last = 0usize;
                    for _ in 0..50 {
                        let pat = Tuple::from_pairs([(host, Value::from(h))]);
                        let n = r.query(&pat, ColSet::EMPTY).map(|v| v.len()).unwrap();
                        let _ = n;
                        let full = r.with_partition(&pat, |shard| shard.len());
                        assert!(full >= last);
                        last = full;
                    }
                });
            }
        });
        assert_eq!(r.len(), 1200);
        r.validate().unwrap();
    }
}
