//! Wait-free snapshot reads: per-shard epoch-published [`Snapshot`]s, the
//! [`ReadView`] taken from them, and the cached [`ReadHandle`].
//!
//! # Design
//!
//! Every shard of a [`ConcurrentRelation`] *publishes* an immutable
//! [`Snapshot`] of itself after each mutation epoch (a single mutation, or
//! one shard's slice of a batch): the writer, still holding the shard's
//! write lock, swaps an `Arc<Snapshot>` into the shard's publish slot. The
//! snapshot shares the shard's instance store structurally (the store is a
//! persistent chunked structure — see [`SynthRelation::snapshot`]), so
//! publishing is O(1) and a snapshot-holding reader costs the writer only
//! path-copies of the instances it actually touches, not a store clone per
//! epoch. Replaced snapshots still referenced by readers are *retired*
//! onto per-shard limbo lists and torn down writer-side after a grace
//! period (see the [`crate::epoch`] module); mutations while no reader
//! holds a view stay fully in place — the writer *prunes* an unreferenced
//! published snapshot before mutating.
//!
//! Readers never take a shard lock:
//!
//! * [`ConcurrentRelation::read_view`] collects each shard's published
//!   `Arc` under the publish slot's latch — a critical section of one
//!   reference-count increment, never held across a shard mutation.
//! * A [`ReadHandle`] caches the view and re-collects only when the
//!   relation's epoch counter has moved. In the steady state a query
//!   through a handle costs **one relaxed-consistency atomic load** on top
//!   of the snapshot query itself: no lock, no reference-count traffic, no
//!   waiting on writers — wait-free in the practical sense that no reader
//!   step can be blocked or retried because of a writer's progress. (The
//!   only loop on the read side is the migration seqlock below, which
//!   retries a view *collection* — not a query — while a migration's
//!   publish burst is in flight.)
//!
//! # Consistency
//!
//! Each shard's snapshot is a committed, per-shard-atomic state: a batch
//! applied to a shard is visible either not at all or in full, because the
//! publish happens after the shard's whole slice of the batch under the
//! same write-lock hold. Across shards a view is *per-shard consistent*
//! (shard A's snapshot may be one epoch fresher than shard B's — the same
//! granularity the locked batch API already exposes), with one exception:
//! **migration epochs are atomic across the whole view.** A
//! [`migrate_to`](ConcurrentRelation::migrate_to) publishes all shards
//! inside a seqlock window and `read_view` retries collection around it, so
//! every view holds shards of exactly one decomposition — readers that took
//! their view before the migration keep answering from the pre-migration
//! representation, views taken after are entirely post-migration, and no
//! view ever mixes the two.
//!
//! [`SynthRelation::snapshot`]: relic_core::SynthRelation::snapshot

use crate::ConcurrentRelation;
use relic_core::{Bindings, OpError, Snapshot};
use relic_spec::{ColSet, Pattern, Relation, Tuple};
use std::collections::BTreeSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A consistent per-shard snapshot vector: one frozen [`Snapshot`] per
/// shard, all of the same decomposition (migration epochs are atomic across
/// the view), each individually a committed per-shard state.
///
/// A view is fully detached from the relation: queries against it never
/// touch a lock, never block, and keep answering from the captured state
/// even while writers mutate or migrate the live relation. Point queries
/// whose pattern pins the shard columns route to exactly one shard's
/// snapshot; unpinned queries merge across all shards, exactly like the
/// locked query path.
#[derive(Debug, Clone)]
pub struct ReadView {
    pub(crate) shards: Vec<Arc<Snapshot>>,
    pub(crate) shard_cols: ColSet,
    pub(crate) epoch: u64,
    /// The per-shard publish epochs the slots were collected at, so a
    /// [`ReadHandle`] can refresh exactly the shard a pinned query routes
    /// to.
    pub(crate) shard_epochs: Vec<u64>,
    /// The per-shard writer stamps collected atomically with the
    /// snapshots (see
    /// [`with_shard_mut_stamped`](ConcurrentRelation::with_shard_mut_stamped)).
    pub(crate) shard_stamps: Vec<u64>,
}

impl ReadView {
    /// The publish epoch this view was collected at (monotonic; used by
    /// [`ReadHandle`] to detect staleness).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shard snapshots in the view.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The columns tuples are routed by.
    pub fn shard_cols(&self) -> ColSet {
        self.shard_cols
    }

    /// The frozen snapshot of shard `i`.
    pub fn shard(&self, i: usize) -> &Snapshot {
        &self.shards[i]
    }

    /// Shard `i`'s writer stamp: the opaque `u64` the last *stamped*
    /// publish attached to the shard's snapshot (0 if none ever was). The
    /// durability layer stamps each publish with the shard's last logged
    /// write-ahead sequence number, making `(shard(i), shard_stamp(i))` a
    /// consistent pair — shard `i`'s snapshot contains exactly the logged
    /// ops with sequence ≤ the stamp.
    pub fn shard_stamp(&self, i: usize) -> u64 {
        self.shard_stamps[i]
    }

    /// Does this pattern pin the shard columns (single-shard read)?
    fn pins(&self, dom: ColSet) -> bool {
        self.shard_cols.is_subset(dom)
    }

    /// The shard snapshot owning `t`'s shard-column valuation.
    fn routed(&self, t: &Tuple) -> &Snapshot {
        &self.shards[crate::route_tuple(self.shard_cols, self.shards.len(), t)]
    }

    /// `query r s C` against the view: one shard snapshot if `pattern` pins
    /// the shard columns, the sorted set-semantic merge of all shards
    /// otherwise — the wait-free analog of
    /// [`ConcurrentRelation::query`].
    ///
    /// # Errors
    ///
    /// As for [`relic_core::Snapshot::query`].
    pub fn query(&self, pattern: &Tuple, out: ColSet) -> Result<Vec<Tuple>, OpError> {
        if self.pins(pattern.dom()) {
            self.routed(pattern).query(pattern, out)
        } else {
            let mut set = BTreeSet::new();
            for s in &self.shards {
                set.extend(s.query(pattern, out)?);
            }
            Ok(set.into_iter().collect())
        }
    }

    /// Streaming variant of [`query`](ReadView::query): calls `f` per match
    /// without materializing results (duplicates possible, as for
    /// [`relic_core::Snapshot::query_for_each`]; unpinned patterns stream
    /// shard by shard).
    ///
    /// # Errors
    ///
    /// As for [`relic_core::Snapshot::query_for_each`].
    pub fn query_for_each(
        &self,
        pattern: &Tuple,
        out: ColSet,
        mut f: impl FnMut(&Tuple),
    ) -> Result<(), OpError> {
        if self.pins(pattern.dom()) {
            self.routed(pattern).query_for_each(pattern, out, f)
        } else {
            for s in &self.shards {
                s.query_for_each(pattern, out, &mut f)?;
            }
            Ok(())
        }
    }

    /// The raw zero-allocation streaming path for pinned point queries: the
    /// wait-free analog of
    /// [`relic_core::SynthRelation::query_for_each_bindings`], routed to the
    /// owning shard's snapshot. Falls back to per-shard streaming for
    /// unpinned patterns.
    ///
    /// # Errors
    ///
    /// As for [`relic_core::Snapshot::query_for_each_bindings`].
    pub fn query_for_each_bindings(
        &self,
        scratch: &mut Bindings,
        pattern: &Tuple,
        out: ColSet,
        mut f: impl FnMut(&Bindings),
    ) -> Result<(), OpError> {
        if self.pins(pattern.dom()) {
            self.routed(pattern)
                .query_for_each_bindings(scratch, pattern, out, f)
        } else {
            for s in &self.shards {
                s.query_for_each_bindings(scratch, pattern, out, &mut f)?;
            }
            Ok(())
        }
    }

    /// `query_where r P C` against the view (comparison queries); one shard
    /// when the equality part of `P` pins the shard columns.
    ///
    /// # Errors
    ///
    /// As for [`relic_core::Snapshot::query_where`].
    pub fn query_where(&self, pattern: &Pattern, out: ColSet) -> Result<Vec<Tuple>, OpError> {
        let eq = pattern.eq_tuple();
        if self.pins(eq.dom()) {
            self.routed(&eq).query_where(pattern, out)
        } else {
            let mut set = BTreeSet::new();
            for s in &self.shards {
                set.extend(s.query_where(pattern, out)?);
            }
            Ok(set.into_iter().collect())
        }
    }

    /// Raw streaming comparison queries: the wait-free analog of
    /// [`relic_core::Snapshot::query_where_for_each_bindings`], routed to
    /// one shard when the equality part of `P` pins the shard columns and
    /// streamed shard by shard otherwise. With a reused `scratch` this is
    /// the zero-allocation-per-emitted-tuple path over a frozen view —
    /// what a streaming join executor runs its durable legs through.
    ///
    /// # Errors
    ///
    /// As for [`relic_core::Snapshot::query_where_for_each_bindings`].
    pub fn query_where_for_each_bindings(
        &self,
        scratch: &mut Bindings,
        pattern: &Pattern,
        out: ColSet,
        mut f: impl FnMut(&Bindings),
    ) -> Result<(), OpError> {
        let eq = pattern.eq_tuple();
        if self.pins(eq.dom()) {
            self.routed(&eq)
                .query_where_for_each_bindings(scratch, pattern, out, f)
        } else {
            for s in &self.shards {
                s.query_where_for_each_bindings(scratch, pattern, out, &mut f)?;
            }
            Ok(())
        }
    }

    /// Does any tuple in the view extend `pattern`? Routed like
    /// [`query`](ReadView::query).
    ///
    /// # Errors
    ///
    /// As for [`relic_core::Snapshot::contains_matching`].
    pub fn contains_matching(&self, pattern: &Tuple) -> Result<bool, OpError> {
        if self.pins(pattern.dom()) {
            self.routed(pattern).contains_matching(pattern)
        } else {
            for s in &self.shards {
                if s.contains_matching(pattern)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
    }

    /// Number of tuples across the view's shard snapshots.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// The whole view as a reference [`Relation`] (linear; for tests and
    /// full scans).
    pub fn to_relation(&self) -> Relation {
        let cols = self.shards[0].spec().cols();
        let mut out = Relation::empty(cols);
        for s in &self.shards {
            for t in s.to_relation().iter() {
                out.insert(t.clone());
            }
        }
        out
    }
}

/// A cached [`ReadView`] bound to its relation: the steady-state wait-free
/// read path.
///
/// A **pinned** query (the pattern binds all shard columns) routes to one
/// shard and refreshes only that shard's cached slot, and only when that
/// shard's publish epoch moved — one `Acquire` load per query when nothing
/// changed, no locks and no `Arc` traffic at all, regardless of write
/// activity on *other* shards. Unpinned queries check the whole-relation
/// epoch and re-collect the full view when stale. Each reader thread owns
/// its handle (`ReadHandle` is `Send` but, like any cached cursor, not
/// meant to be shared).
///
/// After a pinned refresh the cached vector may briefly hold shards of
/// mixed recency (never observable by the pinned query itself, which
/// touches one shard); the next unpinned access re-collects a coherent
/// view, and migration epochs stay atomic because they bump every epoch
/// counter at once.
#[derive(Debug)]
pub struct ReadHandle<'a> {
    rel: &'a ConcurrentRelation,
    view: ReadView,
    /// This reader's epoch pins, one per shard (see the [`crate::epoch`]
    /// module): registered at handle creation, re-stored on every
    /// view/shard refresh, cleared on drop. While a pin holds an epoch,
    /// writers keep every snapshot retired at or after it on the limbo
    /// list instead of tearing it down — so reclamation cost never lands
    /// on this reader, and a dropped (or refreshed) handle is what lets
    /// the retired chain drain.
    slot: Arc<crate::epoch::ReaderSlot>,
}

impl<'a> ReadHandle<'a> {
    pub(crate) fn new(rel: &'a ConcurrentRelation) -> Self {
        let view = rel.read_view();
        let slot = rel.registry.register();
        let handle = ReadHandle { rel, view, slot };
        handle.pin_all();
        handle
    }

    /// Stores every shard's collected epoch into this reader's pins.
    fn pin_all(&self) {
        for (i, &e) in self.view.shard_epochs.iter().enumerate() {
            self.slot.pin(i, e);
        }
    }

    /// The freshest coherent view, re-collected only if a publish happened
    /// since the cached one (one `Acquire` load when nothing changed).
    /// Re-collection advances this reader's epoch pins, releasing retired
    /// snapshots the old view was keeping on limbo.
    pub fn view(&mut self) -> &ReadView {
        if self.rel.epoch_now() != self.view.epoch {
            self.view = self.rel.read_view();
            self.pin_all();
        }
        &self.view
    }

    /// The cached view, without any staleness check — the strictly
    /// wait-free path (the view may lag the relation by design).
    pub fn cached(&self) -> &ReadView {
        &self.view
    }

    /// Refreshes the cached slot of shard `i` iff its publish epoch moved,
    /// advancing the shard's pin with it (the other shards' pins stay — the
    /// handle still holds their older snapshots).
    fn refresh_shard(&mut self, i: usize) {
        let e = self.rel.shard_epoch_now(i);
        if e != self.view.shard_epochs[i] {
            let (snap, stamp) = self.rel.shard_view(i);
            self.view.shards[i] = snap;
            self.view.shard_stamps[i] = stamp;
            self.view.shard_epochs[i] = e;
            self.slot.pin(i, e);
        }
    }

    /// For a pinned pattern: the index of the (just refreshed) owning
    /// shard's snapshot.
    fn pinned_shard(&mut self, routed_on: &Tuple) -> usize {
        let i = crate::route_tuple(self.view.shard_cols, self.view.shards.len(), routed_on);
        self.refresh_shard(i);
        i
    }

    /// [`ReadView::query`] on fresh state: a pinned pattern refreshes and
    /// probes one shard; an unpinned one goes through the coherent
    /// [`view`](ReadHandle::view).
    ///
    /// # Errors
    ///
    /// As for [`ReadView::query`].
    pub fn query(&mut self, pattern: &Tuple, out: ColSet) -> Result<Vec<Tuple>, OpError> {
        if self.view.pins(pattern.dom()) {
            let i = self.pinned_shard(pattern);
            self.view.shards[i].query(pattern, out)
        } else {
            self.view().query(pattern, out)
        }
    }

    /// [`ReadView::query_for_each`] on fresh state (pinned fast path as for
    /// [`query`](ReadHandle::query)).
    ///
    /// # Errors
    ///
    /// As for [`ReadView::query_for_each`].
    pub fn query_for_each(
        &mut self,
        pattern: &Tuple,
        out: ColSet,
        f: impl FnMut(&Tuple),
    ) -> Result<(), OpError> {
        if self.view.pins(pattern.dom()) {
            let i = self.pinned_shard(pattern);
            self.view.shards[i].query_for_each(pattern, out, f)
        } else {
            self.view().query_for_each(pattern, out, f)
        }
    }

    /// The raw zero-allocation point-read path: routes a pinned pattern to
    /// its (freshly checked) shard snapshot and streams bindings.
    ///
    /// # Errors
    ///
    /// As for [`ReadView::query_for_each_bindings`].
    pub fn query_for_each_bindings(
        &mut self,
        scratch: &mut Bindings,
        pattern: &Tuple,
        out: ColSet,
        f: impl FnMut(&Bindings),
    ) -> Result<(), OpError> {
        if self.view.pins(pattern.dom()) {
            let i = self.pinned_shard(pattern);
            self.view.shards[i].query_for_each_bindings(scratch, pattern, out, f)
        } else {
            self.view()
                .query_for_each_bindings(scratch, pattern, out, f)
        }
    }

    /// [`ReadView::query_where`] on fresh state (pinned fast path when the
    /// equality part of `P` pins the shard columns).
    ///
    /// # Errors
    ///
    /// As for [`ReadView::query_where`].
    pub fn query_where(&mut self, pattern: &Pattern, out: ColSet) -> Result<Vec<Tuple>, OpError> {
        let eq = pattern.eq_tuple();
        if self.view.pins(eq.dom()) {
            let i = self.pinned_shard(&eq);
            self.view.shards[i].query_where(pattern, out)
        } else {
            self.view().query_where(pattern, out)
        }
    }

    /// The raw zero-allocation streaming path for comparison queries
    /// (pinned fast path when the equality part of `P` pins the shard
    /// columns).
    ///
    /// # Errors
    ///
    /// As for [`ReadView::query_where_for_each_bindings`].
    pub fn query_where_for_each_bindings(
        &mut self,
        scratch: &mut Bindings,
        pattern: &Pattern,
        out: ColSet,
        f: impl FnMut(&Bindings),
    ) -> Result<(), OpError> {
        let eq = pattern.eq_tuple();
        if self.view.pins(eq.dom()) {
            let i = self.pinned_shard(&eq);
            self.view.shards[i].query_where_for_each_bindings(scratch, pattern, out, f)
        } else {
            self.view()
                .query_where_for_each_bindings(scratch, pattern, out, f)
        }
    }

    /// [`ReadView::contains_matching`] on fresh state (pinned fast path as
    /// for [`query`](ReadHandle::query)).
    ///
    /// # Errors
    ///
    /// As for [`ReadView::contains_matching`].
    pub fn contains_matching(&mut self, pattern: &Tuple) -> Result<bool, OpError> {
        if self.view.pins(pattern.dom()) {
            let i = self.pinned_shard(pattern);
            self.view.shards[i].contains_matching(pattern)
        } else {
            self.view().contains_matching(pattern)
        }
    }

    /// [`ReadView::len`] on the fresh coherent view.
    pub fn len(&mut self) -> usize {
        self.view().len()
    }

    /// Is the fresh view empty?
    pub fn is_empty(&mut self) -> bool {
        self.view().is_empty()
    }
}

impl Drop for ReadHandle<'_> {
    fn drop(&mut self) {
        // Release every pin so retired snapshots this handle was holding in
        // limbo become reclaimable at the next drain. (The snapshots the
        // handle itself held are released by the `ReadView` drop; `Arc`
        // sharing keeps any still-referenced state alive regardless.)
        self.slot.unpin_all();
    }
}

impl ConcurrentRelation {
    /// The current publish epoch (monotonic; bumped on every publish).
    pub(crate) fn epoch_now(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Shard `i`'s publish epoch (monotonic; bumped per slot swap).
    pub(crate) fn shard_epoch_now(&self, i: usize) -> u64 {
        self.shard_epochs[i].load(Ordering::Acquire)
    }

    /// Collects a [`ReadView`]: each shard's currently published snapshot,
    /// without taking any shard lock. Retries collection around a
    /// migration's publish burst (seqlock), so the returned view never
    /// mixes decompositions.
    pub fn read_view(&self) -> ReadView {
        loop {
            let m1 = self.migration_epoch.load(Ordering::Acquire);
            if m1 % 2 == 1 {
                // A migration is publishing right now; its window is a few
                // Arc swaps.
                std::hint::spin_loop();
                continue;
            }
            let epoch = self.epoch.load(Ordering::Acquire);
            let mut shards = Vec::with_capacity(self.shards.len());
            let mut shard_epochs = Vec::with_capacity(self.shards.len());
            let mut shard_stamps = Vec::with_capacity(self.shards.len());
            for i in 0..self.shards.len() {
                // Epoch first, slot second: a publish racing in between
                // leaves the recorded epoch *behind* the collected snapshot,
                // which costs one redundant refresh later — never a missed
                // one.
                shard_epochs.push(self.shard_epoch_now(i));
                let (snap, stamp) = self.shard_view(i);
                shards.push(snap);
                shard_stamps.push(stamp);
            }
            if self.migration_epoch.load(Ordering::Acquire) == m1 {
                return ReadView {
                    shards,
                    shard_cols: self.shard_cols(),
                    epoch,
                    shard_epochs,
                    shard_stamps,
                };
            }
        }
    }

    /// A cached [`ReadHandle`] for a reader thread: collects one view now,
    /// then refreshes only when the epoch moves.
    pub fn read_handle(&self) -> ReadHandle<'_> {
        ReadHandle::new(self)
    }

    /// Shard `i`'s published writer stamp — the sequence number of the last
    /// logged operation the shard's visible state contains (0 if the shard
    /// was never stamped). Lock-free: reads the publish slot only.
    pub fn shard_stamp(&self, i: usize) -> u64 {
        self.shard_view(i).1
    }

    /// Every shard's published writer stamp, in shard order — the catch-up
    /// cursor vector replication followers resume from: shard `i`'s state
    /// contains exactly the logged operations with `seq <=
    /// shard_stamps()[i]`, so re-applying a shipped tail through the
    /// watermark-checked replay is idempotent from any crash point.
    ///
    /// Stamps are collected per shard without a cross-shard barrier; a
    /// concurrent writer may land between reads. That skew is harmless for
    /// catch-up (the minimum is a safe resume point) but means the vector
    /// is not a consistent cut — use [`read_view`](Self::read_view) when
    /// one is needed.
    pub fn shard_stamps(&self) -> Vec<u64> {
        (0..self.shard_count())
            .map(|i| self.shard_stamp(i))
            .collect()
    }

    /// Shard `i`'s published snapshot and its writer stamp (read together
    /// under the slot's latch, so the pair is always consistent). The
    /// snapshot is `None` only inside a writer's prune→publish window; the
    /// fallback waits that writer out on the shard's read lock (the one
    /// place a reader can touch it) and re-reads the slot the writer
    /// republished.
    fn shard_view(&self, i: usize) -> (Arc<Snapshot>, u64) {
        {
            let slot = self.slot_read(i);
            if let Some(s) = slot.snap.as_ref() {
                return (Arc::clone(s), slot.stamp);
            }
        }
        let shard = self.read_shard(i);
        let slot = self.slot_read(i);
        if let Some(s) = slot.snap.as_ref() {
            return (Arc::clone(s), slot.stamp);
        }
        // Unreachable in practice: every mutation republishes before
        // releasing its write lock. Build directly rather than panic.
        (Arc::new(shard.snapshot()), slot.stamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relic_core::SynthRelation;
    use relic_decomp::parse;
    use relic_spec::{Catalog, Pred, RelSpec, Value};

    fn setup(shards: usize) -> (Catalog, ConcurrentRelation) {
        let mut cat = Catalog::new();
        let d = parse(
            &mut cat,
            "let u : {host,ts} . {bytes} = unit {bytes} in
             let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
             let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
        )
        .unwrap();
        let host = cat.col("host").unwrap();
        let ts = cat.col("ts").unwrap();
        let bytes = cat.col("bytes").unwrap();
        let spec = RelSpec::new(cat.all()).with_fd(host | ts, bytes.set());
        let r = ConcurrentRelation::new(&cat, spec, d, host.set(), shards).unwrap();
        (cat, r)
    }

    fn tup(cat: &Catalog, h: i64, t: i64, b: i64) -> Tuple {
        Tuple::from_pairs([
            (cat.col("host").unwrap(), Value::from(h)),
            (cat.col("ts").unwrap(), Value::from(t)),
            (cat.col("bytes").unwrap(), Value::from(b)),
        ])
    }

    #[test]
    fn read_view_matches_locked_reads() {
        let (cat, r) = setup(4);
        let host = cat.col("host").unwrap();
        let ts = cat.col("ts").unwrap();
        let bytes = cat.col("bytes").unwrap();
        for h in 0..6i64 {
            for t in 0..10i64 {
                r.insert(tup(&cat, h, t, h + t)).unwrap();
            }
        }
        let view = r.read_view();
        assert_eq!(view.len(), r.len());
        assert_eq!(view.to_relation(), r.to_relation());
        // Pinned point query routes to one shard.
        let pat = Tuple::from_pairs([(host, Value::from(3))]);
        assert_eq!(
            view.query(&pat, ts | bytes).unwrap(),
            r.query(&pat, ts | bytes).unwrap()
        );
        // Unpinned query merges across shards, sorted.
        let pat = Tuple::from_pairs([(ts, Value::from(7))]);
        assert_eq!(
            view.query(&pat, host | bytes).unwrap(),
            r.query(&pat, host | bytes).unwrap()
        );
        // Comparison queries.
        let p = Pattern::new().with(ts, Pred::Between(Value::from(2), Value::from(5)));
        assert_eq!(
            view.query_where(&p, host | ts).unwrap(),
            r.query_where(&p, host | ts).unwrap()
        );
        let p = Pattern::new()
            .with(host, Pred::Eq(Value::from(1)))
            .with(ts, Pred::Ge(Value::from(8)));
        assert_eq!(
            view.query_where(&p, ts.set()).unwrap(),
            r.query_where(&p, ts.set()).unwrap()
        );
        assert!(view.contains_matching(&pat).unwrap());
    }

    #[test]
    fn where_bindings_stream_matches_collected_query_where() {
        let (cat, r) = setup(4);
        let host = cat.col("host").unwrap();
        let ts = cat.col("ts").unwrap();
        let bytes = cat.col("bytes").unwrap();
        for h in 0..5i64 {
            for t in 0..8i64 {
                r.insert(tup(&cat, h, t, h * 10 + t)).unwrap();
            }
        }
        let mut scratch = Bindings::new();
        for p in [
            // Pinned: equality on the shard column + a range.
            Pattern::new()
                .with(host, Pred::Eq(Value::from(2)))
                .with(ts, Pred::Between(Value::from(1), Value::from(5))),
            // Unpinned: range only, streamed across every shard.
            Pattern::new().with(ts, Pred::Ge(Value::from(6))),
        ] {
            let out = host | ts | bytes;
            let want = r.query_where(&p, out).unwrap();
            let view = r.read_view();
            let mut got = BTreeSet::new();
            view.query_where_for_each_bindings(&mut scratch, &p, out, |b| {
                got.insert(b.project(out));
            })
            .unwrap();
            assert_eq!(got.into_iter().collect::<Vec<_>>(), want);
            let mut handle = r.read_handle();
            let mut got = BTreeSet::new();
            handle
                .query_where_for_each_bindings(&mut scratch, &p, out, |b| {
                    got.insert(b.project(out));
                })
                .unwrap();
            assert_eq!(got.into_iter().collect::<Vec<_>>(), want);
        }
    }

    #[test]
    fn views_are_frozen_and_handles_refresh() {
        let (cat, r) = setup(2);
        r.insert(tup(&cat, 1, 1, 1)).unwrap();
        let frozen = r.read_view();
        let mut handle = r.read_handle();
        assert_eq!(handle.len(), 1);
        r.insert(tup(&cat, 2, 2, 2)).unwrap();
        r.insert(tup(&cat, 1, 9, 9)).unwrap();
        // The detached view stays at its epoch; the handle moves.
        assert_eq!(frozen.len(), 1);
        assert_eq!(handle.len(), 3);
        assert_eq!(handle.view().to_relation(), r.to_relation());
        // The cached accessor does not refresh by itself.
        r.insert(tup(&cat, 3, 3, 3)).unwrap();
        assert_eq!(handle.cached().len(), 3);
        assert_eq!(handle.len(), 4);
    }

    #[test]
    fn batch_publish_is_per_shard_atomic() {
        let (cat, r) = setup(4);
        let batch: Vec<Tuple> = (0..8i64)
            .flat_map(|h| (0..5i64).map(move |t| (h, t)))
            .map(|(h, t)| tup(&cat, h, t, h))
            .collect();
        r.insert_many(batch).unwrap();
        let view = r.read_view();
        // Every shard reflects its whole slice of the batch.
        assert_eq!(view.len(), 40);
        assert_eq!(view.to_relation(), r.to_relation());
    }

    #[test]
    fn epoch_moves_on_every_mutation_kind() {
        let (cat, r) = setup(2);
        let mut last = r.epoch_now();
        let mut bumped = |r: &ConcurrentRelation, what: &str| {
            let e = r.epoch_now();
            assert!(e > last, "{what} must publish");
            last = e;
        };
        r.insert(tup(&cat, 1, 1, 1)).unwrap();
        bumped(&r, "insert");
        r.bulk_load((0..4i64).map(|t| tup(&cat, 2, t, t))).unwrap();
        bumped(&r, "bulk_load");
        r.update(
            &Tuple::from_pairs([
                (cat.col("host").unwrap(), Value::from(1)),
                (cat.col("ts").unwrap(), Value::from(1)),
            ]),
            &Tuple::from_pairs([(cat.col("bytes").unwrap(), Value::from(5))]),
        )
        .unwrap();
        bumped(&r, "update");
        r.remove(&Tuple::from_pairs([(
            cat.col("ts").unwrap(),
            Value::from(0),
        )]))
        .unwrap();
        bumped(&r, "remove");
        r.with_partition_mut(&tup(&cat, 1, 1, 1), |s: &mut SynthRelation| {
            s.insert(tup(&cat, 1, 7, 7)).unwrap();
        });
        bumped(&r, "with_partition_mut");
    }
}
