//! Epoch-based reclamation: reader pin slots, grace-period detection, and
//! per-shard limbo lists for retired snapshots.
//!
//! # Why
//!
//! The store is a persistent structure (`relic_core::Store`): publishing a
//! snapshot is O(1) and writers path-copy only what they touch. What is
//! *not* O(1) is tearing a retired version down: when the last `Arc` to a
//! replaced snapshot drops, the cascade of instance/container frees runs on
//! whichever thread happened to hold that last reference. Before this
//! module existed, that was frequently a **reader** — e.g. a read handle
//! refreshing across a migration paid the teardown of the entire
//! pre-migration store on its next query (BENCH_4 measured 119µs for
//! exactly this). The RCU playbook (McKenney, "Is Parallel Programming
//! Hard", ch. 9) fixes the asymmetry: retired state parks on a limbo list
//! and is freed by the *write side* once a grace period proves no reader
//! still holds it.
//!
//! # Epoch lifecycle
//!
//! Epochs here are the per-shard publish counters the snapshot layer
//! already maintains (`ConcurrentRelation::shard_epoch_now`): shard `i`'s
//! counter increments on every slot swap.
//!
//! * **Pin** — a [`ReadHandle`](crate::ReadHandle) owns a `ReaderSlot`
//!   with one pin word per shard. Collecting or refreshing a view stores
//!   the collected shard epoch into the corresponding pin (`Release`);
//!   dropping the handle stores `UNPINNED`. The read path takes **no
//!   lock**: registration happens once at handle creation, pin updates are
//!   single atomic stores.
//! * **Retire** — a writer replacing shard `i`'s published snapshot while
//!   readers still reference it pushes the old `Arc` onto shard `i`'s
//!   `ShardLimbo` tagged with the pre-swap epoch. (With no readers the
//!   prune fast path already dropped the snapshot before the mutation, and
//!   the store mutated fully in place.)
//! * **Grace period** — retired state tagged with epoch `R` is reclaimable
//!   once `min_pinned(i) > R`: every handle pinned at or before `R` has
//!   refreshed past the retirement (or unpinned). Writers detect this with
//!   one `Acquire` scan of the registered slots.
//! * **Reclaim** — each mutation drains its shard's limbo *after releasing
//!   the shard write lock*, so teardown never extends a critical section;
//!   [`ConcurrentRelation::reclaim`](crate::ConcurrentRelation::reclaim)
//!   drains every shard on demand (maintenance, tests, memory pressure).
//!
//! # Safety vs. performance
//!
//! Memory safety never depends on this module: snapshots are `Arc`-shared,
//! so a detached [`ReadView`](crate::ReadView) (which does not pin) keeps
//! whatever it holds alive. The pins and grace periods decide *which
//! thread* pays the final teardown and *when*: a limbo entry is dropped
//! only after every pinned reader moved past it, which makes the limbo
//! drop the last drop — the heavy cascade free always lands on the writer
//! or an explicit `reclaim()`, never on a reader's query. Conservatively,
//! a pinned handle also delays reclamation of snapshots it technically no
//! longer holds for the shards it has not refreshed — bounded by the
//! handle's staleness, observable via
//! [`pinned_epoch_lag`](crate::ConcurrentRelation::pinned_epoch_lag).
//!
//! Interaction with **migration epochs**: a migration republishes every
//! shard inside the seqlock window, retiring every pre-migration snapshot
//! into its shard's limbo in the same burst. Pre-migration readers keep
//! answering from their pinned (whole, single-decomposition) views; as
//! they refresh, the grace period expires shard by shard and the old
//! representation's entire store chain is torn down writer-side.
//! **Checkpoint serialization** (`relic_persist`) walks pinned views the
//! same way any reader does — a long-running checkpoint simply holds its
//! epoch pinned, visible as `limbo_bytes()` growth until it completes.

use relic_core::Snapshot;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The pin value meaning "this reader holds no epoch for this shard".
pub(crate) const UNPINNED: u64 = u64::MAX;

/// One reader's pin words, one per shard. Owned (via `Arc`) by a
/// `ReadHandle`; scanned by writers computing grace periods.
#[derive(Debug)]
pub(crate) struct ReaderSlot {
    pins: Box<[AtomicU64]>,
}

impl ReaderSlot {
    fn new(shards: usize) -> Self {
        ReaderSlot {
            pins: (0..shards).map(|_| AtomicU64::new(UNPINNED)).collect(),
        }
    }

    /// Pins shard `i` at epoch `e` (`Release`: the pin is visible before
    /// any later writer scan that could retire what the reader collected).
    pub(crate) fn pin(&self, i: usize, e: u64) {
        self.pins[i].store(e, Ordering::Release);
    }

    /// Clears every pin (handle drop / full-view release).
    pub(crate) fn unpin_all(&self) {
        for p in self.pins.iter() {
            p.store(UNPINNED, Ordering::Release);
        }
    }
}

/// The reader registry: every live `ReadHandle`'s [`ReaderSlot`], scanned
/// by writers to detect grace periods. Registration/deregistration are the
/// only locked operations; the per-query read path never touches the lock.
#[derive(Debug)]
pub(crate) struct EpochRegistry {
    readers: Mutex<Vec<Arc<ReaderSlot>>>,
    shards: usize,
}

impl EpochRegistry {
    pub(crate) fn new(shards: usize) -> Self {
        EpochRegistry {
            readers: Mutex::new(Vec::new()),
            shards,
        }
    }

    /// Registers a new reader, returning its slot. Slots whose handle has
    /// dropped (registry holds the only `Arc`) are pruned opportunistically
    /// here and during scans.
    pub(crate) fn register(&self) -> Arc<ReaderSlot> {
        let slot = Arc::new(ReaderSlot::new(self.shards));
        // A poisoned registry lock only means some thread panicked while
        // pushing/scanning a Vec of `Arc`s — the Vec itself is never left
        // half-updated (push/retain are the only mutations), so recovery is
        // sound; see the crate's lock-error policy.
        let mut readers = self.readers.lock().unwrap_or_else(|e| e.into_inner());
        readers.retain(|s| Arc::strong_count(s) > 1);
        readers.push(Arc::clone(&slot));
        slot
    }

    /// The minimum epoch any live reader has pinned for shard `i`
    /// ([`UNPINNED`] when none has): retired state tagged `< min` is past
    /// its grace period.
    pub(crate) fn min_pinned(&self, i: usize) -> u64 {
        let mut readers = self.readers.lock().unwrap_or_else(|e| e.into_inner());
        readers.retain(|s| Arc::strong_count(s) > 1);
        readers
            .iter()
            .map(|s| s.pins[i].load(Ordering::Acquire))
            .min()
            .unwrap_or(UNPINNED)
    }
}

/// A retired snapshot awaiting its grace period.
#[derive(Debug)]
struct Retired {
    /// Shard epoch at retirement: reclaimable once `min_pinned > epoch`.
    epoch: u64,
    /// The snapshot's `store_approx_bytes()` at retirement, for
    /// `limbo_bytes()` accounting.
    bytes: usize,
    /// Held only to defer its drop: popping the entry after the grace
    /// period is what finally tears the retired snapshot down.
    #[allow(dead_code)]
    snap: Arc<Snapshot>,
}

/// One shard's limbo list: retired published snapshots in retirement-epoch
/// order, drained from the front as grace periods expire.
#[derive(Debug, Default)]
pub(crate) struct ShardLimbo {
    entries: Mutex<VecDeque<Retired>>,
    /// Mirror of the queued entries' byte estimates, readable without the
    /// lock for cheap `limbo_bytes()` polling.
    bytes: AtomicUsize,
}

impl ShardLimbo {
    /// Parks a retired snapshot tagged with its retirement epoch.
    pub(crate) fn retire(&self, epoch: u64, snap: Arc<Snapshot>) {
        let bytes = snap.store_approx_bytes();
        // Retirement epochs are monotone per shard (tagged under the shard
        // write lock), so push_back keeps the queue ordered and draining
        // from the front is exact. Lock recovery is sound for the same
        // reason as the registry: push/pop of whole entries only.
        let mut q = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(Retired { epoch, bytes, snap });
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Pops every entry whose grace period has expired (`epoch <
    /// min_pinned`) and **drops them after releasing the limbo lock** — the
    /// teardown cascade never runs inside any lock. Returns the number of
    /// entries freed.
    pub(crate) fn drain(&self, min_pinned: u64) -> usize {
        let mut expired: Vec<Retired> = Vec::new();
        {
            let mut q = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            while q.front().is_some_and(|r| r.epoch < min_pinned) {
                if let Some(r) = q.pop_front() {
                    self.bytes.fetch_sub(r.bytes, Ordering::Relaxed);
                    expired.push(r);
                }
            }
        }
        let n = expired.len();
        drop(expired);
        n
    }

    /// Estimated bytes parked in this shard's limbo.
    pub(crate) fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Number of retired snapshots parked in this shard's limbo.
    pub(crate) fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}
