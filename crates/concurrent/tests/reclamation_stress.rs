//! Reclamation-safety stress tests for the epoch-based write path.
//!
//! The invariant being re-proven (the tentpole changed it): published
//! snapshots no longer own immutable clones — they pin epochs over a
//! shared persistent store, writers mutate in place, and replaced
//! snapshots park on per-shard limbo lists until no pinned reader can
//! hold them. These tests check, under single-threaded determinism,
//! multi-threaded churn, and randomized (proptest) schedules:
//!
//! * a pinned [`ReadHandle`](relic_concurrent::ReadHandle) keeps exactly
//!   its frozen state answerable — hundreds of mutation epochs and full
//!   migrations later, its cached view still replays the model state at
//!   its pin time, bit for bit;
//! * retired snapshots accumulate on limbo (`limbo_len`/`limbo_bytes`)
//!   precisely while a stale pin exists, and dropping the pinning handle
//!   lets the whole retired chain drain;
//! * no view ever observes a partially-drained limbo state: draining is
//!   invisible to readers — every live view keeps answering exactly its
//!   pin-time model no matter how many grace periods expire around it;
//! * the multi-threaded melee still replays exactly against the
//!   single-threaded reference model (commuting per-thread histories).

use proptest::prelude::*;
use relic_concurrent::ConcurrentRelation;
use relic_decomp::parse;
use relic_spec::{Catalog, ColId, RelSpec, Relation, Tuple, Value};
use std::sync::atomic::{AtomicBool, Ordering};

struct Cols {
    host: ColId,
    ts: ColId,
    bytes: ColId,
}

fn setup(shards: usize) -> (Catalog, Cols, ConcurrentRelation) {
    let mut cat = Catalog::new();
    let d = parse(
        &mut cat,
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
         let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
    )
    .unwrap();
    let cols = Cols {
        host: cat.col("host").unwrap(),
        ts: cat.col("ts").unwrap(),
        bytes: cat.col("bytes").unwrap(),
    };
    let spec = RelSpec::new(cat.all()).with_fd(cols.host | cols.ts, cols.bytes.set());
    let r = ConcurrentRelation::new(&cat, spec, d, cols.host.set(), shards).unwrap();
    (cat, cols, r)
}

fn tup(cols: &Cols, h: i64, t: i64, b: i64) -> Tuple {
    Tuple::from_pairs([
        (cols.host, Value::from(h)),
        (cols.ts, Value::from(t)),
        (cols.bytes, Value::from(b)),
    ])
}

/// Satellite test for the retention fix: a long-held `ReadHandle` parks
/// the retired chain on limbo (observable via `limbo_len`/`limbo_bytes`/
/// `pinned_epoch_lag`), `reclaim` cannot free past the pin, and dropping
/// the handle lets the entire chain drain.
#[test]
fn dropped_handle_lets_the_retired_chain_drain() {
    let (_cat, cols, r) = setup(4);
    for h in 0..8i64 {
        for t in 0..4i64 {
            r.insert(tup(&cols, h, t, h + t)).unwrap();
        }
    }
    // Settle: nothing pinned yet, limbo must be drainable to empty.
    r.reclaim();

    // A stale pin: `hoarder` collects once and never refreshes. Its model
    // is the committed state right now.
    let frozen = r.to_relation();
    let hoarder = r.read_handle();
    // An active reader: refreshes after every epoch, so each mutation
    // replaces a still-referenced published snapshot (which must then be
    // retired, not torn down).
    let mut active = r.read_handle();

    const EPOCHS: usize = 300;
    for e in 0..EPOCHS {
        let h = (e % 8) as i64;
        let t = (e % 4) as i64;
        let chg = Tuple::from_pairs([(cols.bytes, Value::from(e as i64))]);
        let key = Tuple::from_pairs([(cols.host, Value::from(h)), (cols.ts, Value::from(t))]);
        r.update(&key, &chg).unwrap();
        let v = active.view();
        assert_eq!(v.len(), frozen.len());
    }

    // The chain is parked: retired snapshots accumulated behind the
    // hoarder's pin, and the writer-side drains could not free them.
    assert!(r.limbo_len() > 0, "stale pin must park retired snapshots");
    assert!(r.limbo_bytes() > 0, "parked snapshots must be accounted");
    // Pigeonhole: the heaviest of the 4 shards absorbed ≥ EPOCHS/4
    // publishes, all behind the hoarder's pin.
    assert!(
        r.pinned_epoch_lag() >= EPOCHS as u64 / 4,
        "the stale pin must show up as epoch lag"
    );
    assert_eq!(
        r.reclaim(),
        0,
        "reclaim must not free snapshots a pinned reader may hold"
    );
    let parked = r.limbo_len();

    // The hoarder still answers exactly from its pin-time state.
    for h in 0..8i64 {
        let pat = Tuple::from_pairs([(cols.host, Value::from(h))]);
        assert_eq!(
            hoarder.cached().query(&pat, cols.ts | cols.bytes).unwrap(),
            frozen.query(&pat, cols.ts | cols.bytes),
            "a pinned view diverged from its pin-time state"
        );
    }

    // Dropping the pin lets the whole chain drain.
    drop(hoarder);
    let freed = r.reclaim();
    assert!(freed >= parked.saturating_sub(1), "the chain must drain");
    assert_eq!(r.limbo_len(), 0, "limbo must be empty after the drain");
    assert_eq!(r.limbo_bytes(), 0, "limbo bytes must return to zero");

    // The active handle is pinned at the current epochs: no lag left.
    active.view();
    assert_eq!(r.pinned_epoch_lag(), 0, "a fresh pin has no lag");
    drop(active);
    r.validate().unwrap();
}

/// A deterministic splitmix64 stream, seeded per thread.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One committed operation, as logged by a writer thread (the commuting
/// per-thread histories trick from `concurrent_stress.rs`: every op pins
/// `host`, threads own disjoint host slices).
enum Op {
    Insert(Tuple, bool),
    Remove(Tuple, usize),
    Update(Tuple, Tuple, bool),
}

fn replay(model: &mut Relation, op: &Op) {
    match op {
        Op::Insert(t, inserted) => {
            let had = model.contains(t);
            if *inserted {
                assert!(!had, "insert reported new but model already held it");
                model.insert(t.clone());
            } else {
                assert!(had, "no-op insert must be an exact duplicate");
            }
        }
        Op::Remove(pat, removed) => {
            assert_eq!(model.remove(pat), *removed, "remove count diverged");
        }
        Op::Update(key, chg, changed) => {
            let matched = !model.select(key).is_empty();
            assert_eq!(matched, *changed, "update outcome diverged");
            model.update(key, chg);
        }
    }
}

/// The reclamation melee: readers hold pinned views across hundreds of
/// mutation epochs *including full migrations* while writers churn and
/// drains run after every epoch — then the committed history replays
/// exactly against the reference model and limbo drains to empty.
#[test]
fn pinned_views_survive_hundreds_of_epochs_and_migrations() {
    const WRITERS: usize = 3;
    const OPS: usize = 250;
    const HOSTS_PER_WRITER: i64 = 5;
    const TS_DOM: u64 = 8;
    let (mut cat, cols, r) = setup(4);
    let d_flat = parse(
        &mut cat,
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let x : {} . {host,ts,bytes} = {host,ts} -[avl]-> u in x",
    )
    .unwrap();
    let d_nested = r.read_view().shard(0).decomposition().clone();
    // A stable slice (hosts ≥ 1000) no writer touches: the long-held
    // views check their frozen answers against it.
    let mut stable = Relation::empty(cat.all());
    for h in 1000..1006i64 {
        for t in 0..4i64 {
            let tu = tup(&cols, h, t, h - t);
            r.insert(tu.clone()).unwrap();
            stable.insert(tu);
        }
    }
    let done = AtomicBool::new(false);
    let r = &r;
    let cols = &cols;
    let stable = &stable;
    let logs: Vec<Vec<Op>> = std::thread::scope(|s| {
        // Long-held readers: each pins a handle, holds it across many
        // epochs (validating the frozen stable slice on every poll), and
        // only then refreshes — so grace periods are long and limbo
        // genuinely accumulates while they hold.
        let readers: Vec<_> = (0..2)
            .map(|ri| {
                let done = &done;
                s.spawn(move || {
                    let mut held = 0usize;
                    while !done.load(Ordering::Acquire) {
                        let handle = r.read_handle();
                        let pin_time = handle.cached().to_relation();
                        // Hold the pin across ~100 polls of the melee.
                        for _ in 0..100 {
                            for h in [1000i64, 1003 + ri as i64] {
                                let pat = Tuple::from_pairs([(cols.host, Value::from(h))]);
                                assert_eq!(
                                    handle.cached().query(&pat, cols.ts | cols.bytes).unwrap(),
                                    stable.query(&pat, cols.ts | cols.bytes),
                                    "a pinned view lost stable data mid-hold"
                                );
                            }
                            assert_eq!(
                                handle.cached().len(),
                                pin_time.len(),
                                "a pinned view's cardinality drifted"
                            );
                        }
                        // The full frozen state still replays exactly.
                        assert_eq!(
                            handle.cached().to_relation(),
                            pin_time,
                            "a pinned view diverged from its pin-time state"
                        );
                        drop(handle);
                        held += 1;
                    }
                    held
                })
            })
            .collect();
        let migrator = s.spawn(move || {
            for i in 0..10 {
                let target = if i % 2 == 0 { &d_flat } else { &d_nested };
                r.migrate_to(target.clone()).unwrap();
            }
        });
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                s.spawn(move || {
                    let mut rng = Rng(0xEB0C_0000 + w as u64);
                    let mut log: Vec<Op> = Vec::with_capacity(OPS);
                    let base = w as i64 * HOSTS_PER_WRITER;
                    for _ in 0..OPS {
                        let h = base + rng.below(HOSTS_PER_WRITER as u64) as i64;
                        let t = rng.below(TS_DOM) as i64;
                        match rng.below(10) {
                            0..=5 => {
                                let tu = tup(cols, h, t, (t * 3) % 7);
                                if let Ok(ins) = r.insert(tu.clone()) {
                                    log.push(Op::Insert(tu, ins));
                                }
                            }
                            6 | 7 => {
                                let key = Tuple::from_pairs([
                                    (cols.host, Value::from(h)),
                                    (cols.ts, Value::from(t)),
                                ]);
                                let chg = Tuple::from_pairs([(
                                    cols.bytes,
                                    Value::from(rng.below(512) as i64),
                                )]);
                                let did = r.update(&key, &chg).unwrap();
                                log.push(Op::Update(key, chg, did));
                            }
                            _ => {
                                let pat = if rng.below(2) == 0 {
                                    Tuple::from_pairs([
                                        (cols.host, Value::from(h)),
                                        (cols.ts, Value::from(t)),
                                    ])
                                } else {
                                    Tuple::from_pairs([(cols.host, Value::from(h))])
                                };
                                let n = r.remove(&pat).unwrap();
                                log.push(Op::Remove(pat, n));
                            }
                        }
                    }
                    log
                })
            })
            .collect();
        migrator.join().expect("migrator thread");
        let logs: Vec<Vec<Op>> = writers
            .into_iter()
            .map(|h| h.join().expect("writer thread"))
            .collect();
        done.store(true, Ordering::Release);
        for h in readers {
            let held = h.join().expect("reader thread");
            assert!(held > 0, "each reader must have held pinned views");
        }
        logs
    });
    // Exact replay: thread by thread (disjoint pinned keyspaces commute).
    let mut model = stable.clone();
    for log in &logs {
        for op in log {
            replay(&mut model, op);
        }
    }
    r.validate().unwrap();
    assert_eq!(r.to_relation(), model, "locked α diverged from the model");
    let view = r.read_view();
    assert_eq!(view.to_relation(), model, "view α diverged from the model");
    // Every handle is gone: the retired chain must fully drain.
    drop(view);
    r.reclaim();
    assert_eq!(r.limbo_len(), 0, "limbo must drain once all pins drop");
    assert_eq!(r.limbo_bytes(), 0);
    assert_eq!(r.pinned_epoch_lag(), 0);
}

/// A randomized schedule step for the proptest below.
#[derive(Debug, Clone)]
enum Step {
    Insert(i64, i64, i64),
    Remove(i64),
    Update(i64, i64, i64),
    Migrate,
    NewHandle,
    DropHandle(usize),
    RefreshHandle(usize),
    Reclaim,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // Uniform choice (the vendored prop_oneof! has no weights): inserts
    // and updates appear twice to bias the schedule toward mutation.
    prop_oneof![
        (0i64..6, 0i64..4, 0i64..16).prop_map(|(h, t, b)| Step::Insert(h, t, b)),
        (0i64..6, 0i64..4, 0i64..16).prop_map(|(h, t, b)| Step::Insert(h, t, b)),
        (0i64..6).prop_map(Step::Remove),
        (0i64..6, 0i64..4, 0i64..16).prop_map(|(h, t, b)| Step::Update(h, t, b)),
        (0i64..6, 0i64..4, 0i64..16).prop_map(|(h, t, b)| Step::Update(h, t, b)),
        Just(Step::Migrate),
        Just(Step::NewHandle),
        Just(Step::NewHandle),
        (0usize..4).prop_map(Step::DropHandle),
        (0usize..4).prop_map(Step::RefreshHandle),
        (0usize..4).prop_map(Step::RefreshHandle),
        Just(Step::Reclaim),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No view ever observes a partially-drained limbo state: under a
    /// randomized schedule of mutations, migrations, handle churn, and
    /// explicit `reclaim` calls, every live handle's cached view replays
    /// *exactly* the model state at its pin time after every step —
    /// drains (and the retired snapshots they tear down) are never
    /// visible to any reader. Limbo accounting invariants hold
    /// throughout, and dropping every handle drains limbo to empty.
    #[test]
    fn views_never_observe_partial_drains(
        steps in proptest::collection::vec(step_strategy(), 10..80),
        shards in 1usize..4,
    ) {
        let (mut cat, cols, r) = setup(shards);
        let d_flat = parse(
            &mut cat,
            "let u : {host,ts} . {bytes} = unit {bytes} in
             let x : {} . {host,ts,bytes} = {host,ts} -[avl]-> u in x",
        )
        .unwrap();
        let d_nested = r.read_view().shard(0).decomposition().clone();
        let mut model = Relation::empty(cat.all());
        // Live handles, each paired with the model state at its pin time.
        let mut handles: Vec<(relic_concurrent::ReadHandle<'_>, Relation)> = Vec::new();
        let mut migrations = 0usize;
        for step in &steps {
            match step {
                Step::Insert(h, t, b) => {
                    let tu = tup(&cols, *h, *t, *b);
                    if r.insert(tu.clone()).unwrap_or(false) {
                        model.insert(tu);
                    }
                }
                Step::Remove(h) => {
                    let pat = Tuple::from_pairs([(cols.host, Value::from(*h))]);
                    let n = r.remove(&pat).unwrap();
                    prop_assert_eq!(model.remove(&pat), n);
                }
                Step::Update(h, t, b) => {
                    let key = Tuple::from_pairs([
                        (cols.host, Value::from(*h)),
                        (cols.ts, Value::from(*t)),
                    ]);
                    let chg = Tuple::from_pairs([(cols.bytes, Value::from(*b))]);
                    let did = r.update(&key, &chg).unwrap();
                    prop_assert_eq!(did, !model.select(&key).is_empty());
                    model.update(&key, &chg);
                }
                Step::Migrate => {
                    migrations += 1;
                    let target = if migrations % 2 == 1 { &d_flat } else { &d_nested };
                    r.migrate_to(target.clone()).unwrap();
                }
                Step::NewHandle => {
                    if handles.len() < 4 {
                        handles.push((r.read_handle(), model.clone()));
                    }
                }
                Step::DropHandle(i) => {
                    if !handles.is_empty() {
                        handles.remove(i % handles.len());
                    }
                }
                Step::RefreshHandle(i) => {
                    if !handles.is_empty() {
                        let n = handles.len();
                        let (h, m) = &mut handles[i % n];
                        h.view();
                        *m = model.clone();
                    }
                }
                Step::Reclaim => {
                    r.reclaim();
                }
            }
            // The reclamation-safety property: after *every* step, every
            // live handle still replays exactly its pin-time model —
            // whatever was retired or drained around it.
            for (h, m) in &handles {
                prop_assert_eq!(
                    &h.cached().to_relation(),
                    m,
                    "a view observed state changing under its pin"
                );
            }
            // Accounting never goes inconsistent.
            if r.limbo_len() == 0 {
                prop_assert_eq!(r.limbo_bytes(), 0);
            }
        }
        r.validate().unwrap();
        prop_assert_eq!(&r.to_relation(), &model);
        handles.clear();
        r.reclaim();
        prop_assert_eq!(r.limbo_len(), 0, "limbo must drain once all pins drop");
        prop_assert_eq!(r.limbo_bytes(), 0);
    }
}
