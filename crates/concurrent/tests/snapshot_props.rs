//! Property tests for the published-snapshot read path.
//!
//! The central property is **batch atomicity per shard**: for every
//! published epoch, a shard's snapshot reflects either none or all of any
//! `insert_many`/`bulk_load` batch slice applied to that shard — a reader
//! can never observe a torn per-shard batch. The harness stamps every
//! batch with a unique payload value and a private `ts` range, runs a
//! writer applying the batches while a reader samples views, and checks
//! that each host's count of batch-stamped tuples is always zero or full
//! (a host's tuples all route to one shard, so per-host atomicity *is*
//! per-shard atomicity here — and hosts sharing a shard additionally land
//! in the same per-shard group, which only strengthens the guarantee).
//!
//! A second property pins down migration-vs-snapshot interaction
//! deterministically: views taken before a `migrate_to` stay entirely on
//! the pre-migration representation and keep answering, views taken after
//! are entirely post-migration, and both agree on every answer.

use proptest::prelude::*;
use relic_concurrent::ConcurrentRelation;
use relic_decomp::parse;
use relic_spec::{Catalog, ColId, Pattern, Pred, RelSpec, Tuple, Value};
use std::sync::atomic::{AtomicBool, Ordering};

struct Cols {
    host: ColId,
    ts: ColId,
    bytes: ColId,
}

fn setup(shards: usize) -> (Catalog, Cols, ConcurrentRelation) {
    let mut cat = Catalog::new();
    let d = parse(
        &mut cat,
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
         let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
    )
    .unwrap();
    let cols = Cols {
        host: cat.col("host").unwrap(),
        ts: cat.col("ts").unwrap(),
        bytes: cat.col("bytes").unwrap(),
    };
    let spec = RelSpec::new(cat.all()).with_fd(cols.host | cols.ts, cols.bytes.set());
    let r = ConcurrentRelation::new(&cat, spec, d, cols.host.set(), shards).unwrap();
    (cat, cols, r)
}

fn tup(cols: &Cols, h: i64, t: i64, b: i64) -> Tuple {
    Tuple::from_pairs([
        (cols.host, Value::from(h)),
        (cols.ts, Value::from(t)),
        (cols.bytes, Value::from(b)),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A snapshot never observes a torn per-shard batch: while a writer
    /// applies stamped `insert_many`/`bulk_load` batches, every sampled
    /// view shows, per host and per batch, either none or all of that
    /// host's slice of the batch.
    #[test]
    fn snapshots_never_observe_torn_batches(
        hosts in proptest::collection::vec(0i64..12, 1..6),
        per_host in 2usize..7,
        batches in 2usize..6,
        shards in 1usize..5,
        use_bulk in proptest::bool::ANY,
    ) {
        // Distinct hosts only (duplicates would double a batch's slice and
        // make "full" ambiguous).
        let mut hosts = hosts;
        hosts.sort_unstable();
        hosts.dedup();
        let (_cat, cols, r) = setup(shards);
        let cols = &cols;
        let r = &r;
        let hosts = &hosts;
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let done = &done;
            let writer = s.spawn(move || {
                for b in 0..batches {
                    // Batch b: `per_host` tuples for every host, all
                    // stamped bytes = b, in b's private ts range.
                    let t0 = (b * per_host) as i64;
                    let batch: Vec<Tuple> = hosts
                        .iter()
                        .flat_map(|&h| {
                            (0..per_host as i64).map(move |i| (h, t0 + i))
                        })
                        .map(|(h, t)| tup(cols, h, t, b as i64))
                        .collect();
                    let n = if use_bulk {
                        r.bulk_load(batch).unwrap()
                    } else {
                        r.insert_many(batch).unwrap()
                    };
                    assert_eq!(n, hosts.len() * per_host);
                }
                done.store(true, Ordering::Release);
            });
            let sampler = s.spawn(move || {
                let mut samples = 0usize;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let view = r.read_view();
                    for &h in hosts {
                        for b in 0..batches as i64 {
                            let t0 = b * per_host as i64;
                            let p = Pattern::new()
                                .with(cols.host, Pred::Eq(Value::from(h)))
                                .with(cols.ts, Pred::Between(
                                    Value::from(t0),
                                    Value::from(t0 + per_host as i64 - 1),
                                ));
                            let got = view.query_where(&p, cols.ts | cols.bytes).unwrap();
                            assert!(
                                got.is_empty() || got.len() == per_host,
                                "torn batch: host {h} shows {} of {} tuples of batch {b}",
                                got.len(),
                                per_host,
                            );
                            // And the stamp is uniform: no mixing with
                            // another batch's range.
                            for t in &got {
                                assert_eq!(
                                    t.get(cols.bytes).and_then(Value::as_int),
                                    Some(b),
                                    "batch {b} range shows foreign payload"
                                );
                            }
                        }
                    }
                    samples += 1;
                    if finished {
                        break;
                    }
                }
                samples
            });
            writer.join().expect("writer thread");
            let samples = sampler.join().expect("sampler thread");
            assert!(samples > 0);
        });
        // Terminal state: everything visible.
        let view = r.read_view();
        prop_assert_eq!(view.len(), hosts.len() * per_host * batches);
        r.validate().map_err(TestCaseError::fail)?;
    }

    /// Pre-migration views stay on the old representation and keep
    /// answering; post-migration views are entirely on the new one; both
    /// agree on every answer (the tuple set is preserved).
    #[test]
    fn old_views_survive_migration_new_views_follow(
        seed in proptest::collection::vec((0i64..6, 0i64..8), 1..24),
        shards in 1usize..5,
    ) {
        let (mut cat, cols, r) = setup(shards);
        for &(h, t) in &seed {
            let _ = r.insert(tup(&cols, h, t, h + t));
        }
        let before = r.read_view();
        let old_d = before.shard(0).decomposition().clone();
        for i in 0..before.shard_count() {
            prop_assert_eq!(before.shard(i).decomposition(), &old_d);
        }
        let flat = parse(
            &mut cat,
            "let u : {host,ts} . {bytes} = unit {bytes} in
             let x : {} . {host,ts,bytes} = {host,ts} -[avl]-> u in x",
        )
        .unwrap();
        r.migrate_to(flat.clone()).unwrap();
        let after = r.read_view();
        for i in 0..after.shard_count() {
            prop_assert_eq!(after.shard(i).decomposition(), &flat);
            prop_assert_eq!(before.shard(i).decomposition(), &old_d);
        }
        prop_assert_eq!(before.to_relation(), after.to_relation());
        for h in 0..6i64 {
            let pat = Tuple::from_pairs([(cols.host, Value::from(h))]);
            prop_assert_eq!(
                before.query(&pat, cols.ts | cols.bytes).unwrap(),
                after.query(&pat, cols.ts | cols.bytes).unwrap()
            );
        }
        // The old view keeps answering even after further mutations and a
        // second migration retire its representation entirely.
        let frozen = before.to_relation();
        r.insert(tup(&cols, 50, 0, 0)).unwrap();
        r.migrate_to(old_d).unwrap();
        prop_assert_eq!(before.to_relation(), frozen);
        r.validate().map_err(TestCaseError::fail)?;
    }
}
