//! Concurrent stress/model tests: randomized multi-threaded op mixes
//! against [`ConcurrentRelation`] with wait-free readers spinning on
//! [`read_view`](ConcurrentRelation::read_view), then an exact replay of
//! the committed history against the single-threaded reference model.
//!
//! The harness exploits commutativity: each writer thread owns a disjoint
//! slice of the `host` keyspace (the shard columns), and every operation it
//! issues *pins* `host` — so the committed histories of different threads
//! commute, and replaying the per-thread logs in any thread order (here:
//! thread by thread, in-thread order preserved) must land on exactly the
//! final state. Readers run during the melee and check, on every view they
//! collect, invariants no interleaving is allowed to break:
//!
//! * the view's bookkeeping agrees with its α (`len == to_relation().len`),
//! * the specification's functional dependencies hold on the view — an
//!   FD-violating view would mean a reader caught a shard mid-mutation
//!   (published snapshots are committed per-shard states, so this can
//!   never happen),
//! * pinned point queries against the view agree with the view's own α.

use relic_concurrent::ConcurrentRelation;
use relic_decomp::parse;
use relic_spec::{Catalog, RelSpec, Relation, Tuple, Value};
use std::sync::atomic::{AtomicBool, Ordering};

/// A deterministic splitmix64 stream, seeded per thread.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Cols {
    host: relic_spec::ColId,
    ts: relic_spec::ColId,
    bytes: relic_spec::ColId,
}

fn setup(shards: usize) -> (Catalog, Cols, ConcurrentRelation) {
    let mut cat = Catalog::new();
    let d = parse(
        &mut cat,
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
         let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
    )
    .unwrap();
    let cols = Cols {
        host: cat.col("host").unwrap(),
        ts: cat.col("ts").unwrap(),
        bytes: cat.col("bytes").unwrap(),
    };
    let spec = RelSpec::new(cat.all()).with_fd(cols.host | cols.ts, cols.bytes.set());
    let r = ConcurrentRelation::new(&cat, spec, d, cols.host.set(), shards).unwrap();
    (cat, cols, r)
}

fn tup(cols: &Cols, h: i64, t: i64, b: i64) -> Tuple {
    Tuple::from_pairs([
        (cols.host, Value::from(h)),
        (cols.ts, Value::from(t)),
        (cols.bytes, Value::from(b)),
    ])
}

/// One committed operation, as logged by a writer thread.
enum Op {
    /// `insert` returned `Ok(inserted)`.
    Insert(Tuple, bool),
    /// `insert_many` over the batch returned `Ok(n)` or `Err` after the
    /// fold prefix; `accepted` is the returned count on success, or the
    /// fold-prefix count reconstructed by the replay on error.
    InsertMany(Vec<Tuple>, Option<usize>),
    /// A pinned `remove` returned `Ok(n)`.
    Remove(Tuple, usize),
    /// A pinned `update` returned `Ok(changed)`.
    Update(Tuple, Tuple, bool),
}

/// Replays a committed op against the reference model, asserting the
/// logged outcome. `insert_many` is replayed as the fold it is specified
/// to be equivalent to (exact duplicates are no-ops, the first
/// FD-conflicting tuple stops the fold).
fn replay(model: &mut Relation, cols: &Cols, op: &Op) {
    match op {
        Op::Insert(t, inserted) => {
            let had = model.contains(t);
            if *inserted {
                assert!(!had, "insert reported new but model already held it");
                model.insert(t.clone());
            } else {
                // A false insert is an exact duplicate (FD errors are not
                // logged as committed ops).
                assert!(had, "no-op insert must be an exact duplicate");
            }
        }
        Op::InsertMany(batch, accepted) => {
            let mut n = 0usize;
            for t in batch {
                if model.contains(t) {
                    continue; // exact duplicate: fold no-op
                }
                let key = t.project(cols.host | cols.ts);
                if !model.query(&key, cols.bytes.set()).is_empty() {
                    break; // FD conflict: the fold stops here
                }
                model.insert(t.clone());
                n += 1;
            }
            if let Some(accepted) = accepted {
                assert_eq!(n, *accepted, "insert_many accepted-count diverged");
            }
        }
        Op::Remove(pat, removed) => {
            let n = model.remove(pat);
            assert_eq!(n, *removed, "remove count diverged");
        }
        Op::Update(key, chg, changed) => {
            let matched = !model.select(key).is_empty();
            assert_eq!(matched, *changed, "update outcome diverged");
            model.update(key, chg);
        }
    }
}

/// The main stress/model test: 4 writer threads on disjoint host slices,
/// 3 wait-free readers spinning on views, then exact replay agreement.
#[test]
fn randomized_mix_replays_exactly_against_the_model() {
    const WRITERS: usize = 4;
    const READERS: usize = 3;
    const OPS: usize = 300;
    const HOSTS_PER_WRITER: i64 = 6;
    const TS_DOM: u64 = 12;
    let (cat, cols, r) = setup(8);
    let r = &r;
    let cols = &cols;
    let done = AtomicBool::new(false);
    let logs: Vec<Vec<Op>> = std::thread::scope(|s| {
        let readers: Vec<_> = (0..READERS)
            .map(|ri| {
                let done = &done;
                s.spawn(move || {
                    let mut views = 0usize;
                    let mut rng = Rng(0xC0FFEE + ri as u64);
                    while !done.load(Ordering::Acquire) {
                        let view = r.read_view();
                        let alpha = view.to_relation();
                        assert_eq!(view.len(), alpha.len(), "view bookkeeping diverged from α");
                        let spec = view.shard(0).spec().clone();
                        assert!(
                            spec.fds().holds_on(&alpha),
                            "a view observed an FD-violating (mid-mutation) state"
                        );
                        // A pinned point query answers from the same frozen
                        // state as the view's α.
                        let h = rng.below((WRITERS as u64) * HOSTS_PER_WRITER as u64) as i64;
                        let pat = Tuple::from_pairs([(cols.host, Value::from(h))]);
                        assert_eq!(
                            view.query(&pat, cols.ts | cols.bytes).unwrap(),
                            alpha.query(&pat, cols.ts | cols.bytes),
                            "pinned view query diverged from the view's α"
                        );
                        views += 1;
                    }
                    views
                })
            })
            .collect();
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                s.spawn(move || {
                    let mut rng = Rng(0xBADD_CAFE + w as u64);
                    let mut log: Vec<Op> = Vec::with_capacity(OPS);
                    let base = w as i64 * HOSTS_PER_WRITER;
                    let host = |rng: &mut Rng| base + rng.below(HOSTS_PER_WRITER as u64) as i64;
                    for _ in 0..OPS {
                        match rng.below(10) {
                            // 0-4: single insert (sometimes an exact dup,
                            // sometimes an FD conflict — conflicts are
                            // rejected and not logged).
                            0..=4 => {
                                let (h, t) = (host(&mut rng), rng.below(TS_DOM) as i64);
                                let b = (t * 7) % 5 + rng.below(2) as i64 * 1000;
                                let tu = tup(cols, h, t, b);
                                // An Err is an FD conflict: not committed,
                                // not logged.
                                if let Ok(ins) = r.insert(tu.clone()) {
                                    log.push(Op::Insert(tu, ins));
                                }
                            }
                            // 5-6: a pinned batch over this writer's hosts.
                            5 | 6 => {
                                let n = 2 + rng.below(6) as i64;
                                let h = host(&mut rng);
                                let t0 = rng.below(TS_DOM) as i64;
                                let batch: Vec<Tuple> = (0..n)
                                    .map(|i| {
                                        let t = (t0 + i) % TS_DOM as i64;
                                        tup(cols, h, t, (t * 7) % 5)
                                    })
                                    .collect();
                                match r.insert_many(batch.clone()) {
                                    Ok(acc) => log.push(Op::InsertMany(batch, Some(acc))),
                                    Err(_) => log.push(Op::InsertMany(batch, None)),
                                }
                            }
                            // 7: pinned removal (full key or whole host).
                            7 => {
                                let h = host(&mut rng);
                                let pat = if rng.below(2) == 0 {
                                    Tuple::from_pairs([
                                        (cols.host, Value::from(h)),
                                        (cols.ts, Value::from(rng.below(TS_DOM) as i64)),
                                    ])
                                } else {
                                    Tuple::from_pairs([(cols.host, Value::from(h))])
                                };
                                let n = r.remove(&pat).unwrap();
                                log.push(Op::Remove(pat, n));
                            }
                            // 8: pinned key update of the payload.
                            8 => {
                                let key = Tuple::from_pairs([
                                    (cols.host, Value::from(host(&mut rng))),
                                    (cols.ts, Value::from(rng.below(TS_DOM) as i64)),
                                ]);
                                let chg = Tuple::from_pairs([(
                                    cols.bytes,
                                    Value::from(rng.below(2000) as i64),
                                )]);
                                let did = r.update(&key, &chg).unwrap();
                                log.push(Op::Update(key, chg, did));
                            }
                            // 9: atomic read-modify-write in the partition.
                            _ => {
                                let h = host(&mut rng);
                                let t = rng.below(TS_DOM) as i64;
                                let key = Tuple::from_pairs([
                                    (cols.host, Value::from(h)),
                                    (cols.ts, Value::from(t)),
                                ]);
                                let op = r.with_partition_mut(&key, |shard| {
                                    match shard.query(&key, cols.bytes.set()).unwrap().first() {
                                        Some(row) => {
                                            let cur = row
                                                .get(cols.bytes)
                                                .and_then(Value::as_int)
                                                .unwrap();
                                            let chg = Tuple::from_pairs([(
                                                cols.bytes,
                                                Value::from(cur + 1),
                                            )]);
                                            shard.update(&key, &chg).unwrap();
                                            Op::Update(key.clone(), chg, true)
                                        }
                                        None => {
                                            let tu = tup(cols, h, t, 1);
                                            shard.insert(tu.clone()).unwrap();
                                            Op::Insert(tu, true)
                                        }
                                    }
                                });
                                log.push(op);
                            }
                        }
                    }
                    log
                })
            })
            .collect();
        let logs: Vec<Vec<Op>> = writers
            .into_iter()
            .map(|h| h.join().expect("writer thread"))
            .collect();
        done.store(true, Ordering::Release);
        for h in readers {
            let views = h.join().expect("reader thread");
            assert!(views > 0, "each reader must have validated views");
        }
        logs
    });
    // Replay: thread by thread (the histories commute — disjoint pinned
    // keyspaces), in-thread order preserved.
    let mut model = Relation::empty(cat.all());
    for log in &logs {
        for op in log {
            replay(&mut model, cols, op);
        }
    }
    r.validate().unwrap();
    // Exact tuple-set agreement, through both the locked path and a view.
    assert_eq!(r.to_relation(), model, "locked α diverged from the model");
    let view = r.read_view();
    assert_eq!(view.to_relation(), model, "view α diverged from the model");
    assert_eq!(view.len(), model.len());
    // Query-answer agreement across representative signatures.
    for h in 0..(WRITERS as i64 * HOSTS_PER_WRITER) {
        let pat = Tuple::from_pairs([(cols.host, Value::from(h))]);
        assert_eq!(
            view.query(&pat, cols.ts | cols.bytes).unwrap(),
            model.query(&pat, cols.ts | cols.bytes)
        );
    }
    for t in 0..TS_DOM as i64 {
        let pat = Tuple::from_pairs([(cols.ts, Value::from(t))]);
        assert_eq!(
            view.query(&pat, cols.host | cols.bytes).unwrap(),
            model.query(&pat, cols.host | cols.bytes)
        );
    }
    assert_eq!(
        view.query(&Tuple::empty(), cat.all()).unwrap(),
        model.query(&Tuple::empty(), cat.all())
    );
}

/// Migration-vs-snapshot interaction, under concurrency: while one thread
/// flip-flops the representation with `migrate_to` (each an all-shard
/// epoch) and another churns pinned writes, readers collect views and must
/// always see (a) a single decomposition across every shard of a view —
/// never a mix — and (b) exactly the committed tuple set for stable hosts.
#[test]
fn migration_epochs_are_atomic_to_readers() {
    let (mut cat, cols, r) = setup(4);
    let d_flat = parse(
        &mut cat,
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let x : {} . {host,ts,bytes} = {host,ts} -[avl]-> u in x",
    )
    .unwrap();
    let d_nested = r.read_view().shard(0).decomposition().clone();
    // Stable data on hosts 0..8 that no writer touches: every view must
    // answer for it identically, whatever representation it lands on.
    let mut stable = Relation::empty(cat.all());
    for h in 0..8i64 {
        for t in 0..6i64 {
            let tu = tup(&cols, h, t, h * t);
            r.insert(tu.clone()).unwrap();
            stable.insert(tu);
        }
    }
    let done = AtomicBool::new(false);
    let r = &r;
    let cols = &cols;
    std::thread::scope(|s| {
        let done_ref = &done;
        let migrator = {
            let (d_flat, d_nested) = (d_flat.clone(), d_nested.clone());
            s.spawn(move || {
                for i in 0..24 {
                    let target = if i % 2 == 0 { &d_flat } else { &d_nested };
                    r.migrate_to(target.clone()).unwrap();
                }
            })
        };
        // A churn writer on hosts ≥ 100 (disjoint from the stable slice).
        let churn = s.spawn(move || {
            let mut rng = Rng(7);
            while !done_ref.load(Ordering::Acquire) {
                let h = 100 + rng.below(4) as i64;
                let t = rng.below(8) as i64;
                r.insert(tup(cols, h, t, 0)).ok();
                if rng.below(3) == 0 {
                    r.remove(&Tuple::from_pairs([(cols.host, Value::from(h))]))
                        .unwrap();
                }
            }
        });
        for _ in 0..2 {
            let stable = &stable;
            s.spawn(move || {
                let mut last_epoch = 0u64;
                while !done_ref.load(Ordering::Acquire) {
                    let view = r.read_view();
                    let d0 = view.shard(0).decomposition();
                    for i in 1..view.shard_count() {
                        assert_eq!(
                            view.shard(i).decomposition(),
                            d0,
                            "a view mixed pre- and post-migration shards"
                        );
                    }
                    // The stable slice answers identically on every view.
                    for h in [0i64, 3, 7] {
                        let pat = Tuple::from_pairs([(cols.host, Value::from(h))]);
                        assert_eq!(
                            view.query(&pat, cols.ts | cols.bytes).unwrap(),
                            stable.query(&pat, cols.ts | cols.bytes),
                            "stable data diverged across a migration epoch"
                        );
                    }
                    assert!(view.epoch() >= last_epoch, "epochs are monotonic");
                    last_epoch = view.epoch();
                }
            });
        }
        migrator.join().expect("migrator thread");
        done.store(true, Ordering::Release);
        churn.join().expect("churn thread");
    });
    r.validate().unwrap();
    // Old views taken before a final migration stay on their decomposition.
    let before = r.read_view();
    let old_d = before.shard(0).decomposition().clone();
    r.migrate_to(if old_d == d_flat { d_nested } else { d_flat })
        .unwrap();
    let after = r.read_view();
    assert_eq!(before.shard(0).decomposition(), &old_d);
    assert_ne!(
        after.shard(0).decomposition(),
        &old_d,
        "new views are post-migration"
    );
    assert_eq!(before.to_relation(), after.to_relation());
}
