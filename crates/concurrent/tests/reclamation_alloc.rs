//! Allocator-level proof that retired stores actually free.
//!
//! The epoch machinery's introspection counters (`limbo_bytes`) are
//! estimates; this harness measures ground truth. A counting
//! [`GlobalAlloc`] wrapper tracks live heap bytes for the whole test
//! binary (which is why this suite lives in its own integration-test
//! binary). The test parks hundreds of retired snapshots behind a stale
//! reader pin, confirms real heap growth while they are parked, then
//! drops the pin, reclaims, and asserts the heap returns to (near) the
//! pre-churn baseline — i.e. the limbo chain was the last owner and its
//! drain physically freed the retired stores, not just forgot them.
//!
//! Run under `RUSTFLAGS="-C debug-assertions"` in CI (the reclamation
//! job) so release-mode codegen keeps the store's internal invariant
//! checks armed while the allocator accounting runs.

use relic_concurrent::ConcurrentRelation;
use relic_decomp::parse;
use relic_spec::{Catalog, ColId, RelSpec, Tuple, Value};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Live-byte counting wrapper around the system allocator.
struct Counting;

static LIVE: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates every operation to `System` unchanged; only the
// accounting is added. The default `realloc`/`alloc_zeroed` impls route
// through `alloc`/`dealloc`, so overriding the pair keeps LIVE exact.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            LIVE.fetch_add(layout.size(), Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

fn live() -> usize {
    LIVE.load(Ordering::Relaxed)
}

struct Cols {
    host: ColId,
    ts: ColId,
    bytes: ColId,
}

fn setup(shards: usize) -> (Catalog, Cols, ConcurrentRelation) {
    let mut cat = Catalog::new();
    let d = parse(
        &mut cat,
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
         let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
    )
    .unwrap();
    let cols = Cols {
        host: cat.col("host").unwrap(),
        ts: cat.col("ts").unwrap(),
        bytes: cat.col("bytes").unwrap(),
    };
    let spec = RelSpec::new(cat.all()).with_fd(cols.host | cols.ts, cols.bytes.set());
    let r = ConcurrentRelation::new(&cat, spec, d, cols.host.set(), shards).unwrap();
    (cat, cols, r)
}

fn tup(cols: &Cols, h: i64, t: i64, b: i64) -> Tuple {
    Tuple::from_pairs([
        (cols.host, Value::from(h)),
        (cols.ts, Value::from(t)),
        (cols.bytes, Value::from(b)),
    ])
}

/// Retired snapshots parked behind a stale pin hold real heap; dropping
/// the pin and reclaiming returns the heap to the pre-churn baseline.
#[test]
fn retired_stores_physically_free_on_drain() {
    const HOSTS: i64 = 16;
    const TS: i64 = 16;
    const EPOCHS: usize = 400;
    let (_cat, cols, r) = setup(4);
    for h in 0..HOSTS {
        for t in 0..TS {
            r.insert(tup(&cols, h, t, h * t)).unwrap();
        }
    }
    // Warm every lazily-grown structure the churn will exercise (update
    // path-copies, snapshot publication, handle registration), so the
    // baseline includes their steady-state capacity.
    {
        let mut warm = r.read_handle();
        for e in 0..8usize {
            let key = Tuple::from_pairs([
                (cols.host, Value::from((e as i64) % HOSTS)),
                (cols.ts, Value::from(0i64)),
            ]);
            let chg = Tuple::from_pairs([(cols.bytes, Value::from(-1i64))]);
            r.update(&key, &chg).unwrap();
            warm.view();
        }
    }
    r.reclaim();
    assert_eq!(r.limbo_len(), 0);
    let base = live();

    // The churn: a stale pin parks every epoch's retired snapshot while
    // an active reader keeps each replaced snapshot referenced at
    // retirement time (so it must park, not drop inline).
    let hoarder = r.read_handle();
    let mut active = r.read_handle();
    for e in 0..EPOCHS {
        let key = Tuple::from_pairs([
            (cols.host, Value::from((e as i64) % HOSTS)),
            (cols.ts, Value::from((e as i64 / HOSTS) % TS)),
        ]);
        let chg = Tuple::from_pairs([(cols.bytes, Value::from(e as i64))]);
        r.update(&key, &chg).unwrap();
        active.view();
    }
    let parked = r.limbo_len();
    assert!(parked > EPOCHS / 2, "the stale pin must park the churn");
    let held = live();
    assert!(
        held > base,
        "parked retired snapshots must hold real heap (held {held} vs base {base})"
    );
    let retained = held - base;

    // Drop the pins, drain, and the retired stores must physically free:
    // at least 80% of the heap the churn retained comes back.
    drop(hoarder);
    drop(active);
    let freed = r.reclaim();
    assert!(freed >= parked, "the whole chain must drain");
    assert_eq!(r.limbo_len(), 0);
    assert_eq!(r.limbo_bytes(), 0);
    let end = live();
    let leaked = end.saturating_sub(base);
    assert!(
        leaked < retained / 5,
        "retired stores must free on drain: base {base}, held {held}, end {end}"
    );
    r.validate().unwrap();
}
