//! Borrowed-key lookups must agree exactly with owned-key lookups across all
//! five container kinds: for `Box<[T]>`-style composite keys (the runtime's
//! `Key = Box<[Value]>`), probing with a `&[T]` slice must find precisely the
//! entries an owned `Box<[T]>` probe finds — same hash (for `htable`), same
//! ordering (for `avl`/`sortedvec`), same equality (for `vec`/`dlist`).
//!
//! This is the container-level contract the zero-allocation query hot path
//! is built on.

use proptest::prelude::*;
use relic_containers::{AssocVec, AvlMap, DListMap, HashTable, SortedVecMap};

type K = Box<[i64]>;

fn owned(k: &[i64]) -> K {
    k.to_vec().into_boxed_slice()
}

/// Drives one container kind through the same op sequence twice — once
/// probing with owned keys, once with borrowed slices — and checks the
/// results coincide op by op.
macro_rules! check_container {
    ($ops:expr, $make:expr) => {{
        let mut by_owned = $make;
        let mut by_borrowed = $make;
        for (op, ref key, v) in $ops.iter().cloned() {
            let k: &[i64] = key;
            match op {
                // Insert always takes an owned key (entries are stored).
                0 => {
                    let a = by_owned.insert(owned(k), v);
                    let b = by_borrowed.insert(owned(k), v);
                    prop_assert_eq!(a, b);
                }
                1 => {
                    let a = by_owned.remove(&owned(k));
                    let b = by_borrowed.remove(k);
                    prop_assert_eq!(a, b);
                }
                2 => {
                    let a = by_owned.get(&owned(k));
                    let b = by_borrowed.get(k);
                    prop_assert_eq!(a, b);
                }
                _ => {
                    let a = by_owned.get_mut(&owned(k)).map(|v| {
                        *v += 1;
                        *v
                    });
                    let b = by_borrowed.get_mut(k).map(|v| {
                        *v += 1;
                        *v
                    });
                    prop_assert_eq!(a, b);
                }
            }
            prop_assert_eq!(by_owned.len(), by_borrowed.len());
        }
        // Final contents identical (sorted comparison covers unordered kinds).
        let mut a: Vec<(K, i64)> = by_owned.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let mut b: Vec<(K, i64)> = by_borrowed.iter().map(|(k, v)| (k.clone(), *v)).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Owned and borrowed probes agree for every container kind, on
    /// composite keys with shared prefixes (the adversarial case for
    /// ordering- and hash-consistency).
    #[test]
    fn borrowed_agrees_with_owned(
        ops in proptest::collection::vec(
            (0u8..4, proptest::collection::vec(-3i64..3, 1..3), 0i64..100),
            0..120,
        )
    ) {
        check_container!(ops, HashTable::<K, i64>::new());
        check_container!(ops, AvlMap::<K, i64>::new());
        check_container!(ops, SortedVecMap::<K, i64>::new());
        check_container!(ops, AssocVec::<K, i64>::new());
        check_container!(ops, DListMap::<K, i64>::new());
    }
}

/// The ordered kinds must see borrowed and owned keys at the same position:
/// a borrowed probe for a key that sorts between two stored keys must miss,
/// and range iteration order must match the owned keys' order.
#[test]
fn ordered_kinds_place_borrowed_keys_consistently() {
    let keys: Vec<Vec<i64>> = vec![vec![0, 0], vec![0, 5], vec![1, -2], vec![1, 0], vec![2, 7]];
    let avl: AvlMap<K, usize> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| (owned(k), i))
        .collect();
    let sv: SortedVecMap<K, usize> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| (owned(k), i))
        .collect();
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(avl.get(k.as_slice()), Some(&i));
        assert_eq!(sv.get(k.as_slice()), Some(&i));
    }
    // Misses that interleave the stored keys.
    for miss in [vec![0, 1], vec![1, -3], vec![3, 0], vec![0]] {
        assert_eq!(avl.get(miss.as_slice()), None);
        assert_eq!(sv.get(miss.as_slice()), None);
    }
}

/// A borrowed probe must hash identically to the owned key even after the
/// table grows through several doublings (bucket index depends on the hash).
#[test]
fn hash_table_growth_keeps_borrowed_probes_consistent() {
    let mut t: HashTable<K, i64> = HashTable::new();
    let mut keys = Vec::new();
    for a in 0..40i64 {
        for b in 0..5i64 {
            let k = vec![a, b, a ^ b];
            t.insert(owned(&k), a * 10 + b);
            keys.push(k);
        }
    }
    assert_eq!(t.len(), 200);
    for k in &keys {
        assert_eq!(
            t.get(k.as_slice()),
            t.get(&owned(k)),
            "borrowed and owned probes disagree for {k:?}"
        );
        assert!(t.get(k.as_slice()).is_some());
    }
}
