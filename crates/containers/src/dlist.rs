//! An arena-backed doubly-linked list keyed map (the paper's `dlist`).

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Entry<K, V> {
    key: K,
    val: V,
    prev: u32,
    next: u32,
}

/// A doubly-linked list of key/value pairs.
///
/// Lookup and removal by key are O(n) scans; insertion is O(1) at the back,
/// preserving insertion order under iteration. Entries live in a `Vec` arena
/// with a free list (no per-entry allocation, no `unsafe`).
///
/// [`DListMap::remove_handle`] removes an entry in O(1) given its handle —
/// the property intrusive lists exploit in the paper's decomposition 5
/// discussion (Fig. 12).
#[derive(Debug, Clone)]
pub struct DListMap<K, V> {
    arena: Vec<Option<Entry<K, V>>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
}

impl<K, V> Default for DListMap<K, V> {
    fn default() -> Self {
        DListMap {
            arena: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }
}

impl<K: Eq, V> DListMap<K, V> {
    /// Creates an empty list.
    pub fn new() -> Self {
        DListMap::default()
    }

    /// Reserves arena capacity for at least `additional` more entries.
    pub fn reserve(&mut self, additional: usize) {
        self.arena
            .reserve(additional.saturating_sub(self.free.len()));
    }

    /// Builds a list from a batch of entries with the arena pre-sized once.
    /// Duplicate keys follow [`insert`](DListMap::insert)'s replace
    /// semantics (the last entry wins); list order is first-insertion order.
    pub fn from_batch(entries: Vec<(K, V)>) -> Self {
        let mut m = DListMap::new();
        m.reserve(entries.len());
        for (k, v) in entries {
            m.insert(k, v);
        }
        m
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn entry(&self, i: u32) -> &Entry<K, V> {
        self.arena[i as usize].as_ref().expect("live entry")
    }

    fn entry_mut(&mut self, i: u32) -> &mut Entry<K, V> {
        self.arena[i as usize].as_mut().expect("live entry")
    }

    /// Scans for `k` comparing through the key's borrowed form, so probes
    /// need not own a key.
    fn find<Q>(&self, k: &Q) -> Option<u32>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + ?Sized,
    {
        let mut i = self.head;
        while i != NIL {
            if self.entry(i).key.borrow() == k {
                return Some(i);
            }
            i = self.entry(i).next;
        }
        None
    }

    /// Inserts `k → v`, returning the previous value for `k`, if any.
    /// New keys are appended at the back.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        if let Some(i) = self.find(&k) {
            return Some(std::mem::replace(&mut self.entry_mut(i).val, v));
        }
        let entry = Entry {
            key: k,
            val: v,
            prev: self.tail,
            next: NIL,
        };
        let i = if let Some(slot) = self.free.pop() {
            self.arena[slot as usize] = Some(entry);
            slot
        } else {
            self.arena.push(Some(entry));
            (self.arena.len() - 1) as u32
        };
        if self.tail != NIL {
            self.entry_mut(self.tail).next = i;
        } else {
            self.head = i;
        }
        self.tail = i;
        self.len += 1;
        None
    }

    /// Looks up the value for `k` (linear scan; `k` may be any borrowed form
    /// of the key, e.g. `&[Value]` for a `Box<[Value]>`-keyed list).
    pub fn get<Q>(&self, k: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + ?Sized,
    {
        self.find(k).map(|i| &self.entry(i).val)
    }

    /// Looks up the value for `k` (any borrowed form), mutably.
    pub fn get_mut<Q>(&mut self, k: &Q) -> Option<&mut V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match self.find(k) {
            Some(i) => Some(&mut self.entry_mut(i).val),
            None => None,
        }
    }

    /// The handle of `k`'s entry, usable with [`DListMap::remove_handle`].
    pub fn handle<Q>(&self, k: &Q) -> Option<u32>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + ?Sized,
    {
        self.find(k)
    }

    /// Removes the entry for `k` (any borrowed form), returning its value
    /// (linear scan).
    pub fn remove<Q>(&mut self, k: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + ?Sized,
    {
        let i = self.find(k)?;
        Some(self.unlink(i).1)
    }

    /// Removes an entry by handle in O(1), returning its key and value.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not refer to a live entry.
    pub fn remove_handle(&mut self, i: u32) -> (K, V) {
        self.unlink(i)
    }

    fn unlink(&mut self, i: u32) -> (K, V) {
        let entry = self.arena[i as usize].take().expect("live entry");
        if entry.prev != NIL {
            self.entry_mut(entry.prev).next = entry.next;
        } else {
            self.head = entry.next;
        }
        if entry.next != NIL {
            self.entry_mut(entry.next).prev = entry.prev;
        } else {
            self.tail = entry.prev;
        }
        self.free.push(i);
        self.len -= 1;
        (entry.key, entry.val)
    }

    /// Iterates entries in list (insertion) order.
    pub fn iter(&self) -> DListIter<'_, K, V> {
        DListIter {
            list: self,
            cur: self.head,
        }
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.arena.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        let mut count = 0;
        let mut prev = NIL;
        let mut i = self.head;
        while i != NIL {
            let e = self.entry(i);
            assert_eq!(e.prev, prev, "prev link broken");
            prev = i;
            i = e.next;
            count += 1;
        }
        assert_eq!(self.tail, prev, "tail out of sync");
        assert_eq!(count, self.len, "len out of sync");
    }
}

impl<K: Eq, V> FromIterator<(K, V)> for DListMap<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut m = DListMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<K: Eq, V> Extend<(K, V)> for DListMap<K, V> {
    fn extend<T: IntoIterator<Item = (K, V)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

/// Iterator over a [`DListMap`] in list order.
#[derive(Debug)]
pub struct DListIter<'a, K, V> {
    list: &'a DListMap<K, V>,
    cur: u32,
}

impl<'a, K: Eq, V> Iterator for DListIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let e = self.list.entry(self.cur);
        self.cur = e.next;
        Some((&e.key, &e.val))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn basic_ops() {
        let mut m = DListMap::new();
        assert_eq!(m.insert(1, "a"), None);
        assert_eq!(m.insert(2, "b"), None);
        assert_eq!(m.insert(1, "A"), Some("a"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&2), Some(&"b"));
        assert_eq!(m.remove(&1), Some("A"));
        assert_eq!(m.remove(&1), None);
        m.check_invariants();
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut m = DListMap::new();
        for i in [5, 1, 9, 3] {
            m.insert(i, ());
        }
        let keys: Vec<i32> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![5, 1, 9, 3]);
    }

    #[test]
    fn remove_head_middle_tail() {
        let mut m: DListMap<i32, i32> = (0..5).map(|i| (i, i)).collect();
        assert_eq!(m.remove(&0), Some(0)); // head
        m.check_invariants();
        assert_eq!(m.remove(&2), Some(2)); // middle
        m.check_invariants();
        assert_eq!(m.remove(&4), Some(4)); // tail
        m.check_invariants();
        let keys: Vec<i32> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3]);
    }

    #[test]
    fn remove_by_handle_is_constant_time_unlink() {
        let mut m: DListMap<i32, i32> = (0..5).map(|i| (i, i * 10)).collect();
        let h = m.handle(&3).unwrap();
        assert_eq!(m.remove_handle(h), (3, 30));
        assert_eq!(m.get(&3), None);
        assert_eq!(m.len(), 4);
        m.check_invariants();
    }

    #[test]
    fn slot_reuse() {
        let mut m = DListMap::new();
        for i in 0..50 {
            m.insert(i, i);
        }
        for i in 0..50 {
            m.remove(&i);
        }
        let cap = m.arena.len();
        for i in 0..50 {
            m.insert(i, i);
        }
        assert_eq!(m.arena.len(), cap);
        m.check_invariants();
    }

    #[test]
    fn singleton_edge_cases() {
        let mut m = DListMap::new();
        m.insert(1, 1);
        assert_eq!(m.remove(&1), Some(1));
        assert!(m.is_empty());
        m.check_invariants();
        m.insert(2, 2);
        assert_eq!(m.iter().count(), 1);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn from_batch_presizes_and_keeps_first_insertion_order() {
        let m: DListMap<i64, i64> = DListMap::from_batch(vec![(5, 0), (1, 1), (5, 2), (9, 3)]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&5), Some(&2), "last entry wins");
        let keys: Vec<i64> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![5, 1, 9]);
        m.check_invariants();
        let mut m2: DListMap<i64, i64> = DListMap::new();
        m2.reserve(32);
        assert!(m2.arena.capacity() >= 32);
    }

    proptest! {
        #[test]
        fn behaves_like_std_hashmap(ops in proptest::collection::vec((0u8..3, 0i64..30, 0i64..100), 0..200)) {
            let mut sut: DListMap<i64, i64> = DListMap::new();
            let mut model: HashMap<i64, i64> = HashMap::new();
            for (op, k, v) in ops {
                match op {
                    0 => prop_assert_eq!(sut.insert(k, v), model.insert(k, v)),
                    1 => prop_assert_eq!(sut.remove(&k), model.remove(&k)),
                    _ => prop_assert_eq!(sut.get(&k), model.get(&k)),
                }
                sut.check_invariants();
                prop_assert_eq!(sut.len(), model.len());
            }
        }
    }
}
