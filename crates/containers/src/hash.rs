//! A separate-chaining hash table with a deterministic hasher.

use std::borrow::Borrow;
use std::hash::{Hash, Hasher};

/// A fast, deterministic, non-cryptographic hasher (FxHash-style
/// multiply-rotate). Determinism keeps benchmark runs and test failures
/// reproducible; the table is not exposed to untrusted keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    /// Creates a hasher with the fixed initial state.
    pub fn new() -> Self {
        FxHasher::default()
    }

    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }
}

fn hash_of<K: Hash + ?Sized>(k: &K) -> u64 {
    let mut h = FxHasher::new();
    k.hash(&mut h);
    h.finish()
}

/// A separate-chaining hash table (the paper's `htable` primitive).
///
/// Buckets are growable vectors; the table doubles when the load factor
/// exceeds 7/8. Expected lookup cost is O(1); the query-planner cost model
/// treats `m_htable(n)` as a small constant.
#[derive(Debug, Clone)]
pub struct HashTable<K, V> {
    buckets: Vec<Vec<(K, V)>>,
    len: usize,
}

impl<K, V> Default for HashTable<K, V> {
    fn default() -> Self {
        HashTable {
            buckets: Vec::new(),
            len: 0,
        }
    }
}

impl<K: Hash + Eq, V> HashTable<K, V> {
    /// Creates an empty table (no allocation until first insert).
    pub fn new() -> Self {
        HashTable::default()
    }

    /// Creates a table pre-sized for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        let nbuckets = (cap * 8 / 7).next_power_of_two().max(8);
        HashTable {
            buckets: (0..nbuckets).map(|_| Vec::new()).collect(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bucket index for any borrowed form of a key. Because `Hash` for a
    /// key and for its `Borrow` target are required to agree (the `Borrow`
    /// contract, and what [`FxHasher`]'s structural hashing provides for
    /// slice-like keys), borrowed-key probes land in the same bucket as the
    /// owned insertion did.
    fn bucket_of<Q>(&self, k: &Q) -> usize
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        debug_assert!(!self.buckets.is_empty());
        (hash_of(k) as usize) & (self.buckets.len() - 1)
    }

    fn grow(&mut self) {
        self.rehash((self.buckets.len() * 2).max(8));
    }

    /// Redistributes all entries over `new_size` buckets (a power of two).
    fn rehash(&mut self, new_size: usize) {
        debug_assert!(new_size.is_power_of_two());
        let mut new_buckets: Vec<Vec<(K, V)>> = (0..new_size).map(|_| Vec::new()).collect();
        for bucket in self.buckets.drain(..) {
            for (k, v) in bucket {
                let i = (hash_of(&k) as usize) & (new_size - 1);
                new_buckets[i].push((k, v));
            }
        }
        self.buckets = new_buckets;
    }

    /// Reserves bucket capacity for at least `additional` more entries, so a
    /// batch of insertions triggers at most one rehash instead of O(log n).
    pub fn reserve(&mut self, additional: usize) {
        let need = self.len + additional;
        let nbuckets = (need.max(1) * 8 / 7).next_power_of_two().max(8);
        if nbuckets > self.buckets.len() {
            self.rehash(nbuckets);
        }
    }

    /// Builds a table from a batch of entries, pre-sized so the load never
    /// triggers a rehash. Duplicate keys follow
    /// [`insert`](HashTable::insert)'s replace semantics (the last entry
    /// wins).
    pub fn from_batch(entries: Vec<(K, V)>) -> Self {
        let mut t = HashTable::with_capacity(entries.len());
        for (k, v) in entries {
            t.insert(k, v);
        }
        t
    }

    /// Inserts `k → v`, returning the previous value for `k`, if any.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        if self.buckets.is_empty() || self.len + 1 > self.buckets.len() * 7 / 8 {
            self.grow();
        }
        let i = self.bucket_of(&k);
        for entry in &mut self.buckets[i] {
            if entry.0 == k {
                return Some(std::mem::replace(&mut entry.1, v));
            }
        }
        self.buckets[i].push((k, v));
        self.len += 1;
        None
    }

    /// Looks up the value for `k`, which may be any borrowed form of the key
    /// (e.g. `&[Value]` for a `Box<[Value]>`-keyed table) — the zero-copy
    /// probe the query hot path relies on.
    pub fn get<Q>(&self, k: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        if self.buckets.is_empty() {
            return None;
        }
        let i = self.bucket_of(k);
        self.buckets[i]
            .iter()
            .find(|(kk, _)| kk.borrow() == k)
            .map(|(_, v)| v)
    }

    /// Looks up the value for `k` (any borrowed form), mutably.
    pub fn get_mut<Q>(&mut self, k: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        if self.buckets.is_empty() {
            return None;
        }
        let i = self.bucket_of(k);
        self.buckets[i]
            .iter_mut()
            .find(|(kk, _)| kk.borrow() == k)
            .map(|(_, v)| v)
    }

    /// Removes the entry for `k` (any borrowed form), returning its value.
    pub fn remove<Q>(&mut self, k: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        if self.buckets.is_empty() {
            return None;
        }
        let i = self.bucket_of(k);
        let pos = self.buckets[i]
            .iter()
            .position(|(kk, _)| kk.borrow() == k)?;
        let (_, v) = self.buckets[i].swap_remove(pos);
        self.len -= 1;
        Some(v)
    }

    /// Iterates entries in unspecified (but deterministic) order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter().map(|(k, v)| (k, v)))
    }

    /// Removes all entries, keeping allocated buckets.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
    }
}

impl<K: Hash + Eq, V> FromIterator<(K, V)> for HashTable<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut t = HashTable::new();
        for (k, v) in iter {
            t.insert(k, v);
        }
        t
    }
}

impl<K: Hash + Eq, V> Extend<(K, V)> for HashTable<K, V> {
    fn extend<T: IntoIterator<Item = (K, V)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn basic_ops() {
        let mut t = HashTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(1, "a"), None);
        assert_eq!(t.insert(2, "b"), None);
        assert_eq!(t.insert(1, "c"), Some("a"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&1), Some(&"c"));
        assert_eq!(t.get(&3), None);
        assert_eq!(t.remove(&1), Some("c"));
        assert_eq!(t.remove(&1), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = HashTable::new();
        t.insert("k", 1);
        *t.get_mut(&"k").unwrap() += 10;
        assert_eq!(t.get(&"k"), Some(&11));
        assert_eq!(t.get_mut(&"absent"), None);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut t = HashTable::new();
        for i in 0..1000 {
            t.insert(i, i * 2);
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000 {
            assert_eq!(t.get(&i), Some(&(i * 2)));
        }
        assert_eq!(t.iter().count(), 1000);
    }

    #[test]
    fn with_capacity_avoids_empty_bucket_panic() {
        let mut t = HashTable::with_capacity(100);
        assert_eq!(t.get(&5), None);
        t.insert(5, 5);
        assert_eq!(t.get(&5), Some(&5));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut t = HashTable::new();
        for i in 0..100 {
            t.insert(i, i);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.get(&1), None);
        t.insert(1, 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn from_iterator_collects() {
        let t: HashTable<i32, i32> = (0..10).map(|i| (i, i)).collect();
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn hasher_is_deterministic() {
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_ne!(hash_of(&"hello"), hash_of(&"world"));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn boxed_slice_keys() {
        // The runtime uses Box<[Value]>-style composite keys.
        let mut t: HashTable<Box<[i64]>, u32> = HashTable::new();
        t.insert(vec![1, 2].into_boxed_slice(), 7);
        assert_eq!(t.get(&vec![1, 2].into_boxed_slice()), Some(&7));
        assert_eq!(t.get(&vec![2, 1].into_boxed_slice()), None);
    }

    #[test]
    fn reserve_avoids_rehash_during_batch() {
        let mut t: HashTable<i64, i64> = HashTable::new();
        t.insert(-1, -1);
        t.reserve(1000);
        let nbuckets = t.buckets.len();
        for i in 0..1000 {
            t.insert(i, i);
        }
        assert_eq!(t.buckets.len(), nbuckets, "no rehash during reserved batch");
        assert_eq!(t.len(), 1001);
        assert_eq!(t.get(&-1), Some(&-1));
        // Shrinking reserve is a no-op.
        t.reserve(0);
        assert_eq!(t.buckets.len(), nbuckets);
    }

    #[test]
    fn from_batch_is_presized_and_replaces() {
        let t: HashTable<i64, i64> =
            HashTable::from_batch((0..500).map(|i| (i % 100, i)).collect());
        assert_eq!(t.len(), 100);
        for k in 0..100 {
            assert_eq!(t.get(&k), Some(&(400 + k)), "last entry wins");
        }
        let empty: HashTable<i64, i64> = HashTable::from_batch(Vec::new());
        assert!(empty.is_empty());
        assert_eq!(empty.get(&0), None);
    }

    proptest! {
        #[test]
        fn behaves_like_std_hashmap(ops in proptest::collection::vec((0u8..3, 0i64..50, 0i64..100), 0..300)) {
            let mut sut: HashTable<i64, i64> = HashTable::new();
            let mut model: HashMap<i64, i64> = HashMap::new();
            for (op, k, v) in ops {
                match op {
                    0 => prop_assert_eq!(sut.insert(k, v), model.insert(k, v)),
                    1 => prop_assert_eq!(sut.remove(&k), model.remove(&k)),
                    _ => prop_assert_eq!(sut.get(&k), model.get(&k)),
                }
                prop_assert_eq!(sut.len(), model.len());
            }
            let mut got: Vec<(i64, i64)> = sut.iter().map(|(k, v)| (*k, *v)).collect();
            let mut want: Vec<(i64, i64)> = model.into_iter().collect();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
