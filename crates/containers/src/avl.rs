//! An arena-backed AVL tree map.
//!
//! Plays the role of the paper's ordered-tree primitive
//! (`std::map` / `boost::intrusive::set` in the C++ implementation):
//! O(log n) lookup/insert/remove and ordered iteration.
//!
//! Nodes live in a `Vec<Option<Node>>` arena with a free list, so the
//! structure contains no `unsafe` code and reuses slots after removal.

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    val: V,
    left: u32,
    right: u32,
    height: i8,
}

/// An AVL tree map with keys ordered by `K: Ord`.
#[derive(Debug, Clone)]
pub struct AvlMap<K, V> {
    nodes: Vec<Option<Node<K, V>>>,
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl<K, V> Default for AvlMap<K, V> {
    fn default() -> Self {
        AvlMap {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }
}

impl<K: Ord, V> AvlMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        AvlMap::default()
    }

    /// Reserves arena capacity for at least `additional` more entries, so a
    /// batch of insertions performs one arena growth instead of several.
    pub fn reserve(&mut self, additional: usize) {
        self.nodes
            .reserve(additional.saturating_sub(self.free.len()));
    }

    /// Builds a map from entries with **strictly increasing** keys in O(n),
    /// producing a perfectly height-balanced tree (the midpoint of every
    /// subrange becomes a subtree root) — the bulk-load counterpart of n
    /// O(log n) insertions.
    ///
    /// # Panics
    ///
    /// Debug-asserts that keys are strictly increasing; in release builds an
    /// unsorted input silently produces a map with undefined lookup
    /// behaviour.
    pub fn from_sorted(entries: Vec<(K, V)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "from_sorted requires strictly increasing keys"
        );
        let len = entries.len();
        let mut nodes: Vec<Option<Node<K, V>>> = entries
            .into_iter()
            .map(|(key, val)| {
                Some(Node {
                    key,
                    val,
                    left: NIL,
                    right: NIL,
                    height: 1,
                })
            })
            .collect();
        fn link<K, V>(nodes: &mut [Option<Node<K, V>>], lo: usize, hi: usize) -> (u32, i8) {
            if lo >= hi {
                return (NIL, 0);
            }
            let mid = lo + (hi - lo) / 2;
            let (l, lh) = link(nodes, lo, mid);
            let (r, rh) = link(nodes, mid + 1, hi);
            let n = nodes[mid].as_mut().expect("fresh node");
            n.left = l;
            n.right = r;
            n.height = 1 + lh.max(rh);
            (mid as u32, n.height)
        }
        let (root, _) = link(&mut nodes, 0, len);
        AvlMap {
            nodes,
            free: Vec::new(),
            root,
            len,
        }
    }

    /// Builds a map from arbitrary entries: one stable sort, one
    /// keep-the-last-entry dedup pass (matching [`insert`](AvlMap::insert)'s
    /// replace semantics), then the O(n) [`from_sorted`](AvlMap::from_sorted)
    /// balanced build.
    pub fn bulk_build(mut entries: Vec<(K, V)>) -> Self {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        AvlMap::from_sorted(dedup_keep_last(entries))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn node(&self, n: u32) -> &Node<K, V> {
        self.nodes[n as usize].as_ref().expect("live node")
    }

    fn node_mut(&mut self, n: u32) -> &mut Node<K, V> {
        self.nodes[n as usize].as_mut().expect("live node")
    }

    fn height(&self, n: u32) -> i8 {
        if n == NIL {
            0
        } else {
            self.node(n).height
        }
    }

    fn update_height(&mut self, n: u32) {
        let h = 1 + self
            .height(self.node(n).left)
            .max(self.height(self.node(n).right));
        self.node_mut(n).height = h;
    }

    fn balance_factor(&self, n: u32) -> i8 {
        self.height(self.node(n).left) - self.height(self.node(n).right)
    }

    fn rotate_right(&mut self, y: u32) -> u32 {
        let x = self.node(y).left;
        let t2 = self.node(x).right;
        self.node_mut(x).right = y;
        self.node_mut(y).left = t2;
        self.update_height(y);
        self.update_height(x);
        x
    }

    fn rotate_left(&mut self, x: u32) -> u32 {
        let y = self.node(x).right;
        let t2 = self.node(y).left;
        self.node_mut(y).left = x;
        self.node_mut(x).right = t2;
        self.update_height(x);
        self.update_height(y);
        y
    }

    fn rebalance(&mut self, n: u32) -> u32 {
        self.update_height(n);
        let bf = self.balance_factor(n);
        if bf > 1 {
            if self.balance_factor(self.node(n).left) < 0 {
                let l = self.node(n).left;
                let nl = self.rotate_left(l);
                self.node_mut(n).left = nl;
            }
            self.rotate_right(n)
        } else if bf < -1 {
            if self.balance_factor(self.node(n).right) > 0 {
                let r = self.node(n).right;
                let nr = self.rotate_right(r);
                self.node_mut(n).right = nr;
            }
            self.rotate_left(n)
        } else {
            n
        }
    }

    fn alloc(&mut self, key: K, val: V) -> u32 {
        let node = Node {
            key,
            val,
            left: NIL,
            right: NIL,
            height: 1,
        };
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = Some(node);
            i
        } else {
            self.nodes.push(Some(node));
            (self.nodes.len() - 1) as u32
        }
    }

    /// Inserts `k → v`, returning the previous value for `k`, if any.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        let (root, old) = self.insert_at(self.root, k, v);
        self.root = root;
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_at(&mut self, n: u32, k: K, v: V) -> (u32, Option<V>) {
        if n == NIL {
            return (self.alloc(k, v), None);
        }
        let old = match k.cmp(&self.node(n).key) {
            std::cmp::Ordering::Equal => {
                let old = std::mem::replace(&mut self.node_mut(n).val, v);
                return (n, Some(old));
            }
            std::cmp::Ordering::Less => {
                let (child, old) = self.insert_at(self.node(n).left, k, v);
                self.node_mut(n).left = child;
                old
            }
            std::cmp::Ordering::Greater => {
                let (child, old) = self.insert_at(self.node(n).right, k, v);
                self.node_mut(n).right = child;
                old
            }
        };
        if old.is_none() {
            (self.rebalance(n), old)
        } else {
            (n, old)
        }
    }

    /// Descends to `k`'s node by comparing through the key's borrowed form,
    /// so probes need not own a key. The `Borrow` contract guarantees the
    /// borrowed ordering agrees with the owned ordering used at insertion.
    fn find<Q>(&self, k: &Q) -> Option<u32>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut n = self.root;
        while n != NIL {
            match k.cmp(self.node(n).key.borrow()) {
                std::cmp::Ordering::Equal => return Some(n),
                std::cmp::Ordering::Less => n = self.node(n).left,
                std::cmp::Ordering::Greater => n = self.node(n).right,
            }
        }
        None
    }

    /// Looks up the value for `k`, which may be any borrowed form of the key
    /// (e.g. `&[Value]` for a `Box<[Value]>`-keyed map).
    pub fn get<Q>(&self, k: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.find(k).map(|n| &self.node(n).val)
    }

    /// Looks up the value for `k` (any borrowed form), mutably.
    pub fn get_mut<Q>(&mut self, k: &Q) -> Option<&mut V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        match self.find(k) {
            Some(n) => Some(&mut self.node_mut(n).val),
            None => None,
        }
    }

    /// Removes the entry for `k` (any borrowed form), returning its value.
    pub fn remove<Q>(&mut self, k: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let (root, removed) = self.remove_at(self.root, k);
        self.root = root;
        removed.map(|i| {
            self.len -= 1;
            self.free.push(i);
            self.nodes[i as usize]
                .take()
                .expect("removed node live")
                .val
        })
    }

    fn remove_at<Q>(&mut self, n: u32, k: &Q) -> (u32, Option<u32>)
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        if n == NIL {
            return (NIL, None);
        }
        let (n, removed) = match k.cmp(self.node(n).key.borrow()) {
            std::cmp::Ordering::Less => {
                let (child, rem) = self.remove_at(self.node(n).left, k);
                self.node_mut(n).left = child;
                (n, rem)
            }
            std::cmp::Ordering::Greater => {
                let (child, rem) = self.remove_at(self.node(n).right, k);
                self.node_mut(n).right = child;
                (n, rem)
            }
            std::cmp::Ordering::Equal => {
                let left = self.node(n).left;
                let right = self.node(n).right;
                if left == NIL {
                    return (right, Some(n));
                }
                if right == NIL {
                    return (left, Some(n));
                }
                // Two children: detach the in-order successor and splice it
                // into n's position; n's slot is then free.
                let (new_right, succ) = self.detach_min(right);
                self.node_mut(succ).left = left;
                self.node_mut(succ).right = new_right;
                return (self.rebalance(succ), Some(n));
            }
        };
        if removed.is_some() {
            (self.rebalance(n), removed)
        } else {
            (n, None)
        }
    }

    /// Detaches the minimum node of the subtree rooted at `n`, returning the
    /// new subtree root and the detached node's index.
    fn detach_min(&mut self, n: u32) -> (u32, u32) {
        if self.node(n).left == NIL {
            return (self.node(n).right, n);
        }
        let (new_left, min) = self.detach_min(self.node(n).left);
        self.node_mut(n).left = new_left;
        (self.rebalance(n), min)
    }

    /// Calls `f` for every entry whose key lies in the interval `(lo, hi)`,
    /// in ascending key order.
    ///
    /// Subtrees that cannot intersect the interval are pruned, so the walk
    /// touches O(log n + k) nodes for k matches — the complexity the
    /// `qrange` query operator's cost model assumes.
    pub fn for_each_range(
        &self,
        lo: std::ops::Bound<&K>,
        hi: std::ops::Bound<&K>,
        mut f: impl FnMut(&K, &V),
    ) {
        self.range_rec(self.root, lo, hi, &mut f);
    }

    fn range_rec(
        &self,
        n: u32,
        lo: std::ops::Bound<&K>,
        hi: std::ops::Bound<&K>,
        f: &mut impl FnMut(&K, &V),
    ) {
        use std::ops::Bound;
        fn above_lo<K: Ord>(k: &K, lo: Bound<&K>) -> bool {
            match lo {
                Bound::Unbounded => true,
                Bound::Included(l) => k >= l,
                Bound::Excluded(l) => k > l,
            }
        }
        fn below_hi<K: Ord>(k: &K, hi: Bound<&K>) -> bool {
            match hi {
                Bound::Unbounded => true,
                Bound::Included(h) => k <= h,
                Bound::Excluded(h) => k < h,
            }
        }
        if n == NIL {
            return;
        }
        let node = self.node(n);
        // Keys smaller than a key failing the lower bound also fail it, and
        // symmetrically for the upper bound — prune those subtrees.
        if above_lo(&node.key, lo) {
            self.range_rec(node.left, lo, hi, f);
            if below_hi(&node.key, hi) {
                f(&node.key, &node.val);
            }
        }
        if below_hi(&node.key, hi) {
            self.range_rec(node.right, lo, hi, f);
        }
    }

    /// Calls `f`, in ascending key order, for every entry `classify` maps to
    /// [`Ordering::Equal`](std::cmp::Ordering::Equal).
    ///
    /// `classify` must be *monotone* in key order: `Less` for keys before
    /// the selected run, `Equal` inside it, `Greater` after it. Subtrees
    /// wholly before or after the run are pruned (O(log n + k) nodes for k
    /// matches). Generalizes [`for_each_range`](AvlMap::for_each_range) to
    /// runs that plain `Bound`s cannot express, e.g. "keys with prefix `p`
    /// whose final coordinate lies in an interval".
    pub fn for_each_classified(
        &self,
        classify: impl Fn(&K) -> std::cmp::Ordering,
        mut f: impl FnMut(&K, &V),
    ) {
        self.classified_rec(self.root, &classify, &mut f);
    }

    fn classified_rec(
        &self,
        n: u32,
        classify: &impl Fn(&K) -> std::cmp::Ordering,
        f: &mut impl FnMut(&K, &V),
    ) {
        use std::cmp::Ordering;
        if n == NIL {
            return;
        }
        let node = self.node(n);
        match classify(&node.key) {
            // Node before the run: the whole left subtree is too.
            Ordering::Less => self.classified_rec(node.right, classify, f),
            // Node after the run: the whole right subtree is too.
            Ordering::Greater => self.classified_rec(node.left, classify, f),
            Ordering::Equal => {
                self.classified_rec(node.left, classify, f);
                f(&node.key, &node.val);
                self.classified_rec(node.right, classify, f);
            }
        }
    }

    /// Iterates entries in ascending key order.
    pub fn iter(&self) -> AvlIter<'_, K, V> {
        let mut stack = Vec::new();
        let mut n = self.root;
        while n != NIL {
            stack.push(n);
            n = self.node(n).left;
        }
        AvlIter { map: self, stack }
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        self.len = 0;
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        fn rec<K: Ord, V>(m: &AvlMap<K, V>, n: u32, lo: Option<&K>, hi: Option<&K>) -> (i8, usize) {
            if n == NIL {
                return (0, 0);
            }
            let node = m.node(n);
            if let Some(lo) = lo {
                assert!(&node.key > lo, "BST order violated");
            }
            if let Some(hi) = hi {
                assert!(&node.key < hi, "BST order violated");
            }
            let (lh, lc) = rec(m, node.left, lo, Some(&node.key));
            let (rh, rc) = rec(m, node.right, Some(&node.key), hi);
            assert!((lh - rh).abs() <= 1, "AVL balance violated");
            assert_eq!(node.height, 1 + lh.max(rh), "height cache wrong");
            (node.height, lc + rc + 1)
        }
        let (_, count) = rec(self, self.root, None, None);
        assert_eq!(count, self.len, "len out of sync");
    }
}

/// Collapses runs of equal keys in a slice sorted (stably) by key, keeping
/// the **last** entry of each run — the batch analog of repeated
/// replace-semantics insertion.
pub(crate) fn dedup_keep_last<K: Ord, V>(entries: Vec<(K, V)>) -> Vec<(K, V)> {
    let mut out: Vec<(K, V)> = Vec::with_capacity(entries.len());
    for e in entries {
        match out.last_mut() {
            Some(last) if last.0 == e.0 => *last = e,
            _ => out.push(e),
        }
    }
    out
}

impl<K: Ord, V> FromIterator<(K, V)> for AvlMap<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut m = AvlMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<K: Ord, V> Extend<(K, V)> for AvlMap<K, V> {
    fn extend<T: IntoIterator<Item = (K, V)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

/// Iterator over an [`AvlMap`] in ascending key order.
#[derive(Debug)]
pub struct AvlIter<'a, K, V> {
    map: &'a AvlMap<K, V>,
    stack: Vec<u32>,
}

impl<'a, K: Ord, V> Iterator for AvlIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        let node = self.map.node(n);
        let mut m = node.right;
        while m != NIL {
            self.stack.push(m);
            m = self.map.node(m).left;
        }
        Some((&node.key, &node.val))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn basic_ops() {
        let mut m = AvlMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(2, "b"), None);
        assert_eq!(m.insert(1, "a"), None);
        assert_eq!(m.insert(3, "c"), None);
        assert_eq!(m.insert(2, "B"), Some("b"));
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&2), Some(&"B"));
        assert_eq!(m.get(&9), None);
        m.check_invariants();
    }

    #[test]
    fn ordered_iteration() {
        let m: AvlMap<i32, i32> = [(5, 0), (1, 0), (3, 0), (2, 0), (4, 0)]
            .into_iter()
            .collect();
        let keys: Vec<i32> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn remove_all_shapes() {
        // Removal of leaf, one-child, and two-children nodes.
        let mut m: AvlMap<i32, i32> = (0..15).map(|i| (i, i)).collect();
        m.check_invariants();
        assert_eq!(m.remove(&14), Some(14)); // leaf
        m.check_invariants();
        assert_eq!(m.remove(&7), Some(7)); // internal (root region)
        m.check_invariants();
        assert_eq!(m.remove(&0), Some(0));
        m.check_invariants();
        assert_eq!(m.remove(&7), None);
        assert_eq!(m.len(), 12);
        let keys: Vec<i32> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5, 6, 8, 9, 10, 11, 12, 13]);
    }

    #[test]
    fn slot_reuse_after_removal() {
        let mut m = AvlMap::new();
        for i in 0..100 {
            m.insert(i, i);
        }
        for i in 0..100 {
            assert_eq!(m.remove(&i), Some(i));
        }
        assert!(m.is_empty());
        let arena_size = m.nodes.len();
        for i in 0..100 {
            m.insert(i, i);
        }
        assert_eq!(m.nodes.len(), arena_size, "free list should reuse slots");
        m.check_invariants();
    }

    #[test]
    fn ascending_and_descending_insertions_stay_balanced() {
        let mut up = AvlMap::new();
        for i in 0..1000 {
            up.insert(i, ());
        }
        up.check_invariants();
        let mut down = AvlMap::new();
        for i in (0..1000).rev() {
            down.insert(i, ());
        }
        down.check_invariants();
        // AVL height bound: 1.44 log2(n + 2).
        assert!(up.height(up.root) <= 15);
        assert!(down.height(down.root) <= 15);
    }

    #[test]
    fn get_mut_and_clear() {
        let mut m = AvlMap::new();
        m.insert("k", 1);
        *m.get_mut(&"k").unwrap() = 9;
        assert_eq!(m.get(&"k"), Some(&9));
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&"k"), None);
    }

    #[test]
    fn classified_selects_prefix_runs() {
        use std::cmp::Ordering;
        // Composite keys (a, b): select the run a == 5, 2 <= b < 4.
        let m: AvlMap<(i64, i64), ()> = (0..10)
            .flat_map(|a| (0..6).map(move |b| ((a, b), ())))
            .collect();
        let mut got = Vec::new();
        m.for_each_classified(
            |k| match k.0.cmp(&5) {
                Ordering::Equal => {
                    if k.1 < 2 {
                        Ordering::Less
                    } else if k.1 >= 4 {
                        Ordering::Greater
                    } else {
                        Ordering::Equal
                    }
                }
                o => o,
            },
            |k, _| got.push(*k),
        );
        assert_eq!(got, vec![(5, 2), (5, 3)]);
    }

    #[test]
    fn range_visits_interval_in_order() {
        use std::ops::Bound;
        let m: AvlMap<i64, i64> = (0..100).map(|i| (i, i * 10)).collect();
        let mut got = Vec::new();
        m.for_each_range(Bound::Included(&10), Bound::Excluded(&15), |k, v| {
            got.push((*k, *v));
        });
        assert_eq!(
            got,
            vec![(10, 100), (11, 110), (12, 120), (13, 130), (14, 140)]
        );
        got.clear();
        m.for_each_range(Bound::Excluded(&97), Bound::Unbounded, |k, _| {
            got.push((*k, 0))
        });
        assert_eq!(
            got.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![98, 99]
        );
        got.clear();
        m.for_each_range(Bound::Unbounded, Bound::Included(&1), |k, _| {
            got.push((*k, 0))
        });
        assert_eq!(got.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![0, 1]);
        got.clear();
        // Empty interval.
        m.for_each_range(Bound::Included(&50), Bound::Excluded(&50), |k, _| {
            got.push((*k, 0))
        });
        assert!(got.is_empty());
    }

    #[test]
    fn from_sorted_builds_balanced_tree() {
        let m: AvlMap<i64, i64> = AvlMap::from_sorted((0..1000).map(|i| (i, i * 2)).collect());
        assert_eq!(m.len(), 1000);
        m.check_invariants();
        // A perfectly balanced 1000-node tree has height ⌈log2(1001)⌉ = 10.
        assert_eq!(m.height(m.root), 10);
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        let keys: Vec<i64> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..1000).collect::<Vec<_>>());
        // Edge sizes.
        let empty: AvlMap<i64, ()> = AvlMap::from_sorted(Vec::new());
        assert!(empty.is_empty());
        let one: AvlMap<i64, ()> = AvlMap::from_sorted(vec![(7, ())]);
        assert_eq!(one.get(&7), Some(&()));
        one.check_invariants();
    }

    #[test]
    fn bulk_build_sorts_and_keeps_last_duplicate() {
        let m: AvlMap<i64, &str> =
            AvlMap::bulk_build(vec![(3, "c"), (1, "a"), (3, "C"), (2, "b"), (1, "A")]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&1), Some(&"A"));
        assert_eq!(m.get(&3), Some(&"C"));
        m.check_invariants();
    }

    #[test]
    fn from_sorted_map_mutates_like_incremental_map() {
        let mut bulk: AvlMap<i64, i64> = AvlMap::from_sorted((0..100).map(|i| (i, i)).collect());
        let mut incr: AvlMap<i64, i64> = (0..100).map(|i| (i, i)).collect();
        for k in [0, 50, 99, 13] {
            assert_eq!(bulk.remove(&k), incr.remove(&k));
            bulk.check_invariants();
        }
        bulk.insert(1000, 1);
        incr.insert(1000, 1);
        bulk.check_invariants();
        let a: Vec<_> = bulk.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<_> = incr.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn reserve_presizes_arena() {
        let mut m: AvlMap<i64, ()> = AvlMap::new();
        m.reserve(100);
        let cap = m.nodes.capacity();
        assert!(cap >= 100);
        for i in 0..100 {
            m.insert(i, ());
        }
        assert_eq!(m.nodes.capacity(), cap, "no regrowth during batch");
    }

    proptest! {
        #[test]
        fn bulk_build_agrees_with_insert_fold(
            entries in proptest::collection::vec((0i64..60, 0i64..100), 0..150),
        ) {
            let bulk = AvlMap::bulk_build(entries.clone());
            bulk.check_invariants();
            let mut incr = AvlMap::new();
            for (k, v) in entries {
                incr.insert(k, v);
            }
            let a: Vec<_> = bulk.iter().map(|(k, v)| (*k, *v)).collect();
            let b: Vec<_> = incr.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(a, b);
        }
    }

    proptest! {
        #[test]
        fn range_agrees_with_filtered_iteration(
            keys in proptest::collection::btree_set(0i64..200, 0..60),
            lo in 0i64..200,
            span in 0i64..60,
            lo_incl in proptest::bool::ANY,
            hi_incl in proptest::bool::ANY,
        ) {
            use std::ops::Bound;
            let m: AvlMap<i64, ()> = keys.iter().map(|k| (*k, ())).collect();
            let hi = lo + span;
            let lo_b = if lo_incl { Bound::Included(&lo) } else { Bound::Excluded(&lo) };
            let hi_b = if hi_incl { Bound::Included(&hi) } else { Bound::Excluded(&hi) };
            let mut got = Vec::new();
            m.for_each_range(lo_b, hi_b, |k, _| got.push(*k));
            let want: Vec<i64> = keys
                .iter()
                .copied()
                .filter(|k| {
                    (if lo_incl { *k >= lo } else { *k > lo })
                        && (if hi_incl { *k <= hi } else { *k < hi })
                })
                .collect();
            prop_assert_eq!(got, want);
        }
    }

    proptest! {
        #[test]
        fn behaves_like_std_btreemap(ops in proptest::collection::vec((0u8..3, 0i64..40, 0i64..100), 0..300)) {
            let mut sut: AvlMap<i64, i64> = AvlMap::new();
            let mut model: BTreeMap<i64, i64> = BTreeMap::new();
            for (op, k, v) in ops {
                match op {
                    0 => prop_assert_eq!(sut.insert(k, v), model.insert(k, v)),
                    1 => prop_assert_eq!(sut.remove(&k), model.remove(&k)),
                    _ => prop_assert_eq!(sut.get(&k), model.get(&k)),
                }
                sut.check_invariants();
                prop_assert_eq!(sut.len(), model.len());
            }
            let got: Vec<(i64, i64)> = sut.iter().map(|(k, v)| (*k, *v)).collect();
            let want: Vec<(i64, i64)> = model.into_iter().collect();
            prop_assert_eq!(got, want);
        }
    }
}
