//! An unsorted association vector (the paper's `vector` primitive).

/// A map stored as an unsorted vector of key/value entries.
///
/// Lookup, insert and remove are all O(n) scans, but with a very small
/// constant and perfect cache behaviour — ideal for tiny key domains such as
/// the scheduler's two-valued `state` column, which is exactly where the
/// paper deploys its `vector` structure.
#[derive(Debug, Clone)]
pub struct AssocVec<K, V> {
    entries: Vec<(K, V)>,
}

impl<K, V> Default for AssocVec<K, V> {
    fn default() -> Self {
        AssocVec {
            entries: Vec::new(),
        }
    }
}

impl<K: Eq, V> AssocVec<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        AssocVec::default()
    }

    /// Reserves capacity for at least `additional` more entries.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Builds a map from a batch of entries with the vector pre-sized once.
    /// Duplicate keys follow [`insert`](AssocVec::insert)'s replace
    /// semantics (the last entry wins).
    pub fn from_batch(entries: Vec<(K, V)>) -> Self {
        let mut m = AssocVec::new();
        m.reserve(entries.len());
        for (k, v) in entries {
            m.insert(k, v);
        }
        m
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts `k → v`, returning the previous value for `k`, if any.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        for entry in &mut self.entries {
            if entry.0 == k {
                return Some(std::mem::replace(&mut entry.1, v));
            }
        }
        self.entries.push((k, v));
        None
    }

    /// Looks up the value for `k`, which may be any borrowed form of the key
    /// (e.g. `&[Value]` for a `Box<[Value]>`-keyed map).
    pub fn get<Q>(&self, k: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + ?Sized,
    {
        self.entries
            .iter()
            .find(|(kk, _)| kk.borrow() == k)
            .map(|(_, v)| v)
    }

    /// Looks up the value for `k` (any borrowed form), mutably.
    pub fn get_mut<Q>(&mut self, k: &Q) -> Option<&mut V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + ?Sized,
    {
        self.entries
            .iter_mut()
            .find(|(kk, _)| kk.borrow() == k)
            .map(|(_, v)| v)
    }

    /// Removes the entry for `k` (any borrowed form), returning its value.
    pub fn remove<Q>(&mut self, k: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + ?Sized,
    {
        let i = self.entries.iter().position(|(kk, _)| kk.borrow() == k)?;
        Some(self.entries.swap_remove(i).1)
    }

    /// Iterates entries in insertion order (modulo `swap_remove` holes).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl<K: Eq, V> FromIterator<(K, V)> for AssocVec<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut m = AssocVec::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<K: Eq, V> Extend<(K, V)> for AssocVec<K, V> {
    fn extend<T: IntoIterator<Item = (K, V)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn basic_ops() {
        let mut m = AssocVec::new();
        assert_eq!(m.insert("S", 1), None);
        assert_eq!(m.insert("R", 2), None);
        assert_eq!(m.insert("S", 3), Some(1));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&"R"), Some(&2));
        assert_eq!(m.remove(&"R"), Some(2));
        assert_eq!(m.get(&"R"), None);
    }

    #[test]
    fn get_mut_and_clear() {
        let mut m = AssocVec::new();
        m.insert(1, 1);
        *m.get_mut(&1).unwrap() = 2;
        assert_eq!(m.get(&1), Some(&2));
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn from_batch_presizes_and_replaces() {
        let m: AssocVec<&str, i64> =
            AssocVec::from_batch(vec![("S", 1), ("R", 2), ("S", 3), ("Z", 4)]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&"S"), Some(&3), "last entry wins");
        assert_eq!(m.get(&"R"), Some(&2));
        let mut m2: AssocVec<i64, i64> = AssocVec::new();
        m2.reserve(64);
        assert!(m2.entries.capacity() >= 64);
    }

    proptest! {
        #[test]
        fn behaves_like_std_hashmap(ops in proptest::collection::vec((0u8..3, 0i64..20, 0i64..100), 0..200)) {
            let mut sut: AssocVec<i64, i64> = AssocVec::new();
            let mut model: HashMap<i64, i64> = HashMap::new();
            for (op, k, v) in ops {
                match op {
                    0 => prop_assert_eq!(sut.insert(k, v), model.insert(k, v)),
                    1 => prop_assert_eq!(sut.remove(&k), model.remove(&k)),
                    _ => prop_assert_eq!(sut.get(&k), model.get(&k)),
                }
                prop_assert_eq!(sut.len(), model.len());
            }
        }
    }
}
