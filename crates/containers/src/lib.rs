//! From-scratch associative containers used as decomposition primitives.
//!
//! The paper assembles physical representations from "a library of primitive
//! data structures" implementing "a common associative container API" (§3,
//! §6). This crate is that library, built from scratch so the runtime's
//! complexity profile is fully under our control:
//!
//! * [`HashTable`] — separate-chaining hash table with a deterministic
//!   FxHash-style hasher (the paper's `htable`); expected O(1) lookup.
//! * [`AvlMap`] — arena-backed AVL tree (the paper's `btree` stand-in);
//!   O(log n) lookup, ordered iteration.
//! * [`SortedVecMap`] — binary-searched sorted vector; O(log n) lookup,
//!   O(n) insert/remove.
//! * [`AssocVec`] — unsorted association vector, linear scans (the paper's
//!   `vector` of key/value entries).
//! * [`DListMap`] — arena-backed doubly-linked list of key/value pairs (the
//!   paper's non-intrusive `dlist`); O(n) lookup, O(1) insert.
//!
//! Intrusive lists (whose links live inside the *child* objects, as with
//! `boost::intrusive::list`) depend on the instance layout and therefore live
//! in `relic-core`, not here.
//!
//! All containers share the same core surface: `insert`, `get`, `remove`,
//! `iter`, `len` — enough for the map decomposition primitive
//! `C -[ψ]-> v`. Insert uses *replace* semantics and returns the previous
//! value, mirroring `std` maps.
//!
//! # Example
//!
//! ```
//! use relic_containers::HashTable;
//!
//! let mut t = HashTable::new();
//! t.insert("x", 1);
//! t.insert("y", 2);
//! assert_eq!(t.insert("x", 3), Some(1));
//! assert_eq!(t.get(&"x"), Some(&3));
//! assert_eq!(t.remove(&"y"), Some(2));
//! assert_eq!(t.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assoc_vec;
mod avl;
mod dlist;
mod hash;
mod sorted_vec;

pub use assoc_vec::AssocVec;
pub use avl::AvlMap;
pub use dlist::DListMap;
pub use hash::{FxHasher, HashTable};
pub use sorted_vec::SortedVecMap;
