//! A sorted-vector map with binary-search lookup.

/// A map stored as a vector of entries sorted by key.
///
/// Lookup is O(log n) (binary search); insert and remove are O(n) due to
/// shifting. Iteration is ordered and cache-friendly. A good choice for
/// read-mostly edges with small fan-out.
#[derive(Debug, Clone)]
pub struct SortedVecMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K, V> Default for SortedVecMap<K, V> {
    fn default() -> Self {
        SortedVecMap {
            entries: Vec::new(),
        }
    }
}

impl<K: Ord, V> SortedVecMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        SortedVecMap::default()
    }

    /// Reserves capacity for at least `additional` more entries.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Builds a map from entries with **strictly increasing** keys in O(n)
    /// (no per-entry binary search or shifting).
    pub fn from_sorted(entries: Vec<(K, V)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "from_sorted requires strictly increasing keys"
        );
        SortedVecMap { entries }
    }

    /// Inserts a whole batch at amortized O((n + m) log (n + m)) instead of
    /// m O(n) shifting insertions: append, one stable sort, one dedup pass.
    ///
    /// Equivalent to folding [`insert`](SortedVecMap::insert) over the batch
    /// in order: on key collisions — within the batch or against existing
    /// entries — the **last** batch entry wins.
    pub fn bulk_insert(&mut self, batch: Vec<(K, V)>) {
        if batch.is_empty() {
            return;
        }
        // Fast path: a batch strictly beyond the current maximum appends
        // without re-sorting the existing run.
        let sorted_beyond = batch.windows(2).all(|w| w[0].0 < w[1].0)
            && match (self.entries.last(), batch.first()) {
                (Some(last), Some(first)) => last.0 < first.0,
                _ => true,
            };
        self.entries.reserve(batch.len());
        self.entries.extend(batch);
        if sorted_beyond {
            return;
        }
        // Stable sort keeps existing-before-batch and batch order within
        // equal keys, so keep-last implements replace semantics.
        self.entries.sort_by(|a, b| a.0.cmp(&b.0));
        let merged = std::mem::take(&mut self.entries);
        self.entries = crate::avl::dedup_keep_last(merged);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Binary search through the keys' borrowed form, so probes need not own
    /// a key (`Borrow` guarantees the orderings agree).
    fn search<Q>(&self, k: &Q) -> Result<usize, usize>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.entries.binary_search_by(|(kk, _)| kk.borrow().cmp(k))
    }

    /// Inserts `k → v`, returning the previous value for `k`, if any.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        match self.search(&k) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, v)),
            Err(i) => {
                self.entries.insert(i, (k, v));
                None
            }
        }
    }

    /// Looks up the value for `k`, which may be any borrowed form of the key
    /// (e.g. `&[Value]` for a `Box<[Value]>`-keyed map).
    pub fn get<Q>(&self, k: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.search(k).ok().map(|i| &self.entries[i].1)
    }

    /// Looks up the value for `k` (any borrowed form), mutably.
    pub fn get_mut<Q>(&mut self, k: &Q) -> Option<&mut V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        match self.search(k) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Removes the entry for `k` (any borrowed form), returning its value.
    pub fn remove<Q>(&mut self, k: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        match self.search(k) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Iterates entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Calls `f` for every entry whose key lies in the interval `(lo, hi)`,
    /// in ascending key order.
    ///
    /// The start index is found by binary search (O(log n)), then entries
    /// are visited until the upper bound fails — O(log n + k) for k matches.
    pub fn for_each_range(
        &self,
        lo: std::ops::Bound<&K>,
        hi: std::ops::Bound<&K>,
        mut f: impl FnMut(&K, &V),
    ) {
        use std::ops::Bound;
        let start = match lo {
            Bound::Unbounded => 0,
            Bound::Included(l) => self.entries.partition_point(|(k, _)| k < l),
            Bound::Excluded(l) => self.entries.partition_point(|(k, _)| k <= l),
        };
        for (k, v) in &self.entries[start..] {
            let in_hi = match hi {
                Bound::Unbounded => true,
                Bound::Included(h) => k <= h,
                Bound::Excluded(h) => k < h,
            };
            if !in_hi {
                break;
            }
            f(k, v);
        }
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Calls `f`, in ascending key order, for every entry `classify` maps to
    /// [`Ordering::Equal`](std::cmp::Ordering::Equal).
    ///
    /// `classify` must be *monotone* in key order (`Less`, then `Equal`,
    /// then `Greater`); the boundaries are found by binary search, so the
    /// walk costs O(log n + k) for k matches.
    pub fn for_each_classified(
        &self,
        classify: impl Fn(&K) -> std::cmp::Ordering,
        mut f: impl FnMut(&K, &V),
    ) {
        use std::cmp::Ordering;
        let start = self
            .entries
            .partition_point(|(k, _)| classify(k) == Ordering::Less);
        for (k, v) in &self.entries[start..] {
            if classify(k) != Ordering::Equal {
                break;
            }
            f(k, v);
        }
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for SortedVecMap<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut m = SortedVecMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<K: Ord, V> Extend<(K, V)> for SortedVecMap<K, V> {
    fn extend<T: IntoIterator<Item = (K, V)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn basic_ops() {
        let mut m = SortedVecMap::new();
        assert_eq!(m.insert(3, "c"), None);
        assert_eq!(m.insert(1, "a"), None);
        assert_eq!(m.insert(1, "A"), Some("a"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&3), Some(&"c"));
        assert_eq!(m.remove(&3), Some("c"));
        assert_eq!(m.remove(&3), None);
        assert!(!m.is_empty());
    }

    #[test]
    fn iteration_is_sorted() {
        let m: SortedVecMap<i32, ()> = [(4, ()), (1, ()), (3, ())].into_iter().collect();
        let keys: Vec<i32> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 4]);
    }

    #[test]
    fn get_mut_and_clear() {
        let mut m = SortedVecMap::new();
        m.insert(1, 10);
        *m.get_mut(&1).unwrap() += 1;
        assert_eq!(m.get(&1), Some(&11));
        assert_eq!(m.get_mut(&2), None);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn classified_selects_contiguous_run() {
        use std::cmp::Ordering;
        let m: SortedVecMap<i64, ()> = (0..30).map(|i| (i, ())).collect();
        let mut got = Vec::new();
        m.for_each_classified(
            |k| {
                if *k < 10 {
                    Ordering::Less
                } else if *k > 13 {
                    Ordering::Greater
                } else {
                    Ordering::Equal
                }
            },
            |k, _| got.push(*k),
        );
        assert_eq!(got, vec![10, 11, 12, 13]);
    }

    #[test]
    fn range_visits_interval_in_order() {
        use std::ops::Bound;
        let m: SortedVecMap<i64, i64> = (0..20).map(|i| (i, -i)).collect();
        let mut got = Vec::new();
        m.for_each_range(Bound::Included(&3), Bound::Included(&6), |k, v| {
            got.push((*k, *v))
        });
        assert_eq!(got, vec![(3, -3), (4, -4), (5, -5), (6, -6)]);
        got.clear();
        m.for_each_range(Bound::Unbounded, Bound::Unbounded, |k, _| got.push((*k, 0)));
        assert_eq!(got.len(), 20);
    }

    #[test]
    fn from_sorted_and_reserve() {
        let mut m: SortedVecMap<i64, i64> =
            SortedVecMap::from_sorted((0..50).map(|i| (i, -i)).collect());
        assert_eq!(m.len(), 50);
        assert_eq!(m.get(&30), Some(&-30));
        m.reserve(100);
        assert!(m.entries.capacity() >= 150);
    }

    #[test]
    fn bulk_insert_merges_and_replaces() {
        let mut m: SortedVecMap<i64, &str> = [(1, "a"), (3, "c"), (5, "e")].into_iter().collect();
        m.bulk_insert(vec![(4, "d"), (3, "C"), (2, "b"), (3, "CC")]);
        let got: Vec<_> = m.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, vec![(1, "a"), (2, "b"), (3, "CC"), (4, "d"), (5, "e")]);
        // Append-beyond fast path.
        m.bulk_insert(vec![(6, "f"), (7, "g")]);
        assert_eq!(m.len(), 7);
        assert_eq!(m.get(&7), Some(&"g"));
        m.bulk_insert(Vec::new());
        assert_eq!(m.len(), 7);
    }

    proptest! {
        #[test]
        fn bulk_insert_agrees_with_insert_fold(
            base in proptest::collection::vec((0i64..40, 0i64..100), 0..60),
            batch in proptest::collection::vec((0i64..40, 0i64..100), 0..60),
        ) {
            let mut bulk: SortedVecMap<i64, i64> = SortedVecMap::new();
            let mut incr: SortedVecMap<i64, i64> = SortedVecMap::new();
            for (k, v) in base {
                bulk.insert(k, v);
                incr.insert(k, v);
            }
            bulk.bulk_insert(batch.clone());
            for (k, v) in batch {
                incr.insert(k, v);
            }
            let a: Vec<_> = bulk.iter().map(|(k, v)| (*k, *v)).collect();
            let b: Vec<_> = incr.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(a, b);
        }
    }

    proptest! {
        #[test]
        fn range_agrees_with_filtered_iteration(
            keys in proptest::collection::btree_set(0i64..200, 0..60),
            lo in 0i64..200,
            span in 0i64..60,
            lo_incl in proptest::bool::ANY,
            hi_incl in proptest::bool::ANY,
        ) {
            use std::ops::Bound;
            let m: SortedVecMap<i64, ()> = keys.iter().map(|k| (*k, ())).collect();
            let hi = lo + span;
            let lo_b = if lo_incl { Bound::Included(&lo) } else { Bound::Excluded(&lo) };
            let hi_b = if hi_incl { Bound::Included(&hi) } else { Bound::Excluded(&hi) };
            let mut got = Vec::new();
            m.for_each_range(lo_b, hi_b, |k, _| got.push(*k));
            let want: Vec<i64> = keys
                .iter()
                .copied()
                .filter(|k| {
                    (if lo_incl { *k >= lo } else { *k > lo })
                        && (if hi_incl { *k <= hi } else { *k < hi })
                })
                .collect();
            prop_assert_eq!(got, want);
        }
    }

    proptest! {
        #[test]
        fn behaves_like_std_btreemap(ops in proptest::collection::vec((0u8..3, 0i64..40, 0i64..100), 0..200)) {
            let mut sut: SortedVecMap<i64, i64> = SortedVecMap::new();
            let mut model: BTreeMap<i64, i64> = BTreeMap::new();
            for (op, k, v) in ops {
                match op {
                    0 => prop_assert_eq!(sut.insert(k, v), model.insert(k, v)),
                    1 => prop_assert_eq!(sut.remove(&k), model.remove(&k)),
                    _ => prop_assert_eq!(sut.get(&k), model.get(&k)),
                }
            }
            let got: Vec<(i64, i64)> = sut.iter().map(|(k, v)| (*k, *v)).collect();
            let want: Vec<(i64, i64)> = model.into_iter().collect();
            prop_assert_eq!(got, want);
        }
    }
}
