//! Comparison/range queries (`query_where`, §2's "comparisons other than
//! equality" extension): plan selection, ordered-seek vs scan-and-filter
//! fallback, and agreement with the reference implementation.

use proptest::prelude::*;
use relic_core::SynthRelation;
use relic_decomp::{parse, Decomposition};
use relic_spec::{Catalog, ColSet, Pattern, Pred, RelSpec, Relation, Tuple, Value};

/// An event-log relation ⟨host, ts, bytes⟩ with host,ts → bytes, in four
/// representations: time-indexed per host (ordered inner edge), flat ordered
/// composite, hash-only (no ordered edge anywhere), and a shared join.
fn event_log() -> (Catalog, RelSpec, Vec<Decomposition>) {
    let mut cat = Catalog::new();
    let sources = [
        // 0: host -> avl(ts) -> unit — the intended shape for time ranges.
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
         let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
        // 1: flat sortedvec keyed by the composite {host,ts}.
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let x : {} . {host,ts,bytes} = {host,ts} -[sortedvec]-> u in x",
        // 2: hash tables only — ranges must degrade to scan-and-filter.
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let h : {host} . {ts,bytes} = {ts} -[htable]-> u in
         let x : {} . {host,ts,bytes} = {host} -[htable]-> h in x",
        // 3: join sharing the leaf: by-host (ordered in ts) and by-ts paths.
        "let u : {host,ts} . {bytes} = unit {bytes} in
         let h : {host} . {ts,bytes} = {ts} -[avl]-> u in
         let t : {ts} . {host,bytes} = {host} -[htable]-> u in
         let x : {} . {host,ts,bytes} =
           ({host} -[htable]-> h) join ({ts} -[avl]-> t) in x",
    ];
    let ds: Vec<Decomposition> = sources
        .iter()
        .map(|s| parse(&mut cat, s).unwrap())
        .collect();
    let spec = RelSpec::new(cat.all()).with_fd(
        cat.col("host").unwrap() | cat.col("ts").unwrap(),
        cat.col("bytes").unwrap().set(),
    );
    (cat, spec, ds)
}

fn tup(cat: &Catalog, host: i64, ts: i64, bytes: i64) -> Tuple {
    Tuple::from_pairs([
        (cat.col("host").unwrap(), Value::from(host)),
        (cat.col("ts").unwrap(), Value::from(ts)),
        (cat.col("bytes").unwrap(), Value::from(bytes)),
    ])
}

fn populate(cat: &Catalog, r: &mut SynthRelation, m: &mut Relation) {
    for host in 0..4i64 {
        for ts in 0..20i64 {
            let t = tup(cat, host, ts, (host * 7 + ts * 3) % 11);
            r.insert(t.clone()).unwrap();
            m.insert(t);
        }
    }
}

#[test]
fn planner_chooses_qrange_on_ordered_edges() {
    let (cat, spec, ds) = event_log();
    let host = cat.col("host").unwrap();
    let ts = cat.col("ts").unwrap();
    let bytes = cat.col("bytes").unwrap();
    let r = SynthRelation::new(&cat, spec, ds[0].clone()).unwrap();
    let p = Pattern::new()
        .with(host, Pred::Eq(Value::from(1)))
        .with(ts, Pred::Between(Value::from(5), Value::from(9)));
    let plan = r.plan_for_where(&p, bytes.set()).unwrap();
    assert_eq!(
        plan, "qlookup(qrange(qunit))",
        "time index should be seeked"
    );
}

#[test]
fn planner_falls_back_to_scan_on_hash_edges() {
    let (cat, spec, ds) = event_log();
    let host = cat.col("host").unwrap();
    let ts = cat.col("ts").unwrap();
    let bytes = cat.col("bytes").unwrap();
    let r = SynthRelation::new(&cat, spec, ds[2].clone()).unwrap();
    let p = Pattern::new()
        .with(host, Pred::Eq(Value::from(1)))
        .with(ts, Pred::Between(Value::from(5), Value::from(9)));
    let plan = r.plan_for_where(&p, bytes.set()).unwrap();
    assert_eq!(plan, "qlookup(qscan(qunit))", "hash edge cannot seek");
}

#[test]
fn composite_key_range_uses_prefix_rule() {
    // Decomposition 1 keys a sortedvec by {host,ts}; with host pinned the
    // final coordinate ts is rangeable.
    let (cat, spec, ds) = event_log();
    let host = cat.col("host").unwrap();
    let ts = cat.col("ts").unwrap();
    let bytes = cat.col("bytes").unwrap();
    let r = SynthRelation::new(&cat, spec, ds[1].clone()).unwrap();
    let p = Pattern::new()
        .with(host, Pred::Eq(Value::from(2)))
        .with(ts, Pred::Ge(Value::from(15)));
    assert_eq!(r.plan_for_where(&p, bytes.set()).unwrap(), "qrange(qunit)");
    // Without the host prefix bound, the composite key cannot seek.
    let p = Pattern::new().with(ts, Pred::Ge(Value::from(15)));
    assert_eq!(r.plan_for_where(&p, bytes.set()).unwrap(), "qscan(qunit)");
}

#[test]
fn range_results_match_reference_on_all_decompositions() {
    let (cat, spec, ds) = event_log();
    let host = cat.col("host").unwrap();
    let ts = cat.col("ts").unwrap();
    let bytes = cat.col("bytes").unwrap();
    for (i, d) in ds.iter().enumerate() {
        let mut r = SynthRelation::new(&cat, spec.clone(), d.clone()).unwrap();
        let mut m = Relation::empty(cat.all());
        populate(&cat, &mut r, &mut m);
        let patterns = [
            Pattern::new()
                .with(host, Pred::Eq(Value::from(1)))
                .with(ts, Pred::Between(Value::from(5), Value::from(9))),
            Pattern::new().with(ts, Pred::Lt(Value::from(3))),
            Pattern::new().with(ts, Pred::Ge(Value::from(18))),
            Pattern::new()
                .with(host, Pred::Ne(Value::from(0)))
                .with(ts, Pred::Le(Value::from(1))),
            Pattern::new().with(bytes, Pred::Gt(Value::from(8))),
            Pattern::new()
                .with(host, Pred::Eq(Value::from(2)))
                .with(ts, Pred::Between(Value::from(9), Value::from(5))), // empty
        ];
        for (j, p) in patterns.iter().enumerate() {
            for out in [cat.all(), ts | bytes, host.set(), ColSet::EMPTY] {
                let got = r.query_where(p, out).unwrap();
                let want = m.query_where(p, out);
                assert_eq!(got, want, "decomposition {i}, pattern {j}, out {out:?}");
            }
        }
    }
}

#[test]
fn all_equality_pattern_agrees_with_plain_query() {
    let (cat, spec, ds) = event_log();
    let host = cat.col("host").unwrap();
    let ts = cat.col("ts").unwrap();
    let bytes = cat.col("bytes").unwrap();
    let mut r = SynthRelation::new(&cat, spec, ds[0].clone()).unwrap();
    let mut m = Relation::empty(cat.all());
    populate(&cat, &mut r, &mut m);
    let t = Tuple::from_pairs([(host, Value::from(1)), (ts, Value::from(7))]);
    let p = Pattern::from_tuple(&t);
    assert_eq!(
        r.query_where(&p, bytes.set()).unwrap(),
        r.query(&t, bytes.set()).unwrap()
    );
}

#[test]
fn foreign_columns_rejected() {
    let (cat, spec, ds) = event_log();
    let mut cat2 = cat.clone();
    let alien = cat2.intern("alien");
    let r = SynthRelation::new(&cat, spec, ds[0].clone()).unwrap();
    let p = Pattern::new().with(alien, Pred::Lt(Value::from(0)));
    assert!(r.query_where(&p, ColSet::EMPTY).is_err());
}

#[test]
fn remove_where_evicts_old_entries() {
    // The thttpd idiom: drop everything older than a threshold.
    let (cat, spec, ds) = event_log();
    let host = cat.col("host").unwrap();
    let ts = cat.col("ts").unwrap();
    for (i, d) in ds.iter().enumerate() {
        let mut r = SynthRelation::new(&cat, spec.clone(), d.clone()).unwrap();
        let mut m = Relation::empty(cat.all());
        populate(&cat, &mut r, &mut m);
        let stale = Pattern::new().with(ts, Pred::Lt(Value::from(15)));
        let got = r.remove_where(&stale).unwrap();
        let want = m.remove_where(&stale);
        assert_eq!(got, want, "decomposition {i}");
        assert_eq!(got, 4 * 15);
        assert_eq!(r.to_relation(), m, "decomposition {i}");
        r.validate()
            .unwrap_or_else(|e| panic!("decomposition {i}: {e}"));
        // Removing again is a no-op.
        assert_eq!(r.remove_where(&stale).unwrap(), 0);
        // A pattern combining equality and comparison.
        let one_host = Pattern::new()
            .with(host, Pred::Eq(Value::from(2)))
            .with(ts, Pred::Ge(Value::from(18)));
        let got = r.remove_where(&one_host).unwrap();
        let want = m.remove_where(&one_host);
        assert_eq!(got, want, "decomposition {i}");
        assert_eq!(r.to_relation(), m, "decomposition {i}");
        r.validate()
            .unwrap_or_else(|e| panic!("decomposition {i}: {e}"));
    }
}

#[test]
fn remove_where_all_equality_matches_remove() {
    let (cat, spec, ds) = event_log();
    let host = cat.col("host").unwrap();
    let mut r1 = SynthRelation::new(&cat, spec.clone(), ds[0].clone()).unwrap();
    let mut r2 = SynthRelation::new(&cat, spec, ds[0].clone()).unwrap();
    let mut m = Relation::empty(cat.all());
    populate(&cat, &mut r1, &mut m);
    let mut m2 = Relation::empty(cat.all());
    populate(&cat, &mut r2, &mut m2);
    let t = Tuple::from_pairs([(host, Value::from(1))]);
    let n1 = r1.remove(&t).unwrap();
    let n2 = r2.remove_where(&Pattern::from_tuple(&t)).unwrap();
    assert_eq!(n1, n2);
    assert_eq!(r1.to_relation(), r2.to_relation());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// remove_where ≡ reference removal under random contents and patterns,
    /// and the instance stays well-formed.
    #[test]
    fn remove_where_matches_reference(
        rows in proptest::collection::vec((0i64..5, 0i64..25, 0i64..8), 0..60),
        kind in 0u8..6,
        a in 0i64..25,
        b in 0i64..25,
        eq_host in proptest::option::of(0i64..5),
        which in 0usize..4,
    ) {
        let (cat, spec, ds) = event_log();
        let host = cat.col("host").unwrap();
        let ts = cat.col("ts").unwrap();
        let mut r = SynthRelation::new(&cat, spec, ds[which].clone()).unwrap();
        let mut m = Relation::empty(cat.all());
        for (h, t, by) in rows {
            let tup = tup(&cat, h, t, by);
            if r.insert(tup.clone()).is_ok() {
                m.insert(tup);
            }
        }
        let mut p = Pattern::new();
        if let Some(h) = eq_host {
            p = p.with(host, Pred::Eq(Value::from(h)));
        }
        p = match kind {
            0 => p.with(ts, Pred::Lt(Value::from(a))),
            1 => p.with(ts, Pred::Le(Value::from(a))),
            2 => p.with(ts, Pred::Gt(Value::from(a))),
            3 => p.with(ts, Pred::Ge(Value::from(a))),
            4 => p.with(ts, Pred::Between(Value::from(a.min(b)), Value::from(a.max(b)))),
            _ => p.with(ts, Pred::Ne(Value::from(a))),
        };
        let got = r.remove_where(&p).unwrap();
        let want = m.remove_where(&p);
        prop_assert_eq!(got, want);
        prop_assert_eq!(r.to_relation(), m);
        r.validate().map_err(TestCaseError::fail)?;
    }

    /// query_where ≡ reference across random contents and random patterns,
    /// on every representation (ordered, composite, hash-only, shared join).
    #[test]
    fn query_where_matches_reference(
        rows in proptest::collection::vec((0i64..5, 0i64..25, 0i64..8), 0..80),
        eq_host in proptest::option::of(0i64..5),
        kind in 0u8..6,
        a in 0i64..25,
        b in 0i64..25,
        which in 0usize..4,
        out_sel in 0u8..3,
    ) {
        let (cat, spec, ds) = event_log();
        let host = cat.col("host").unwrap();
        let ts = cat.col("ts").unwrap();
        let bytes = cat.col("bytes").unwrap();
        let mut r = SynthRelation::new(&cat, spec, ds[which].clone()).unwrap();
        let mut m = Relation::empty(cat.all());
        for (h, t, by) in rows {
            let tup = tup(&cat, h, t, by);
            // Keep FDs satisfied: skip conflicting inserts.
            if r.insert(tup.clone()).is_ok() {
                m.insert(tup);
            }
        }
        let mut p = Pattern::new();
        if let Some(h) = eq_host {
            p = p.with(host, Pred::Eq(Value::from(h)));
        }
        p = match kind {
            0 => p.with(ts, Pred::Lt(Value::from(a))),
            1 => p.with(ts, Pred::Le(Value::from(a))),
            2 => p.with(ts, Pred::Gt(Value::from(a))),
            3 => p.with(ts, Pred::Ge(Value::from(a))),
            4 => p.with(ts, Pred::Between(Value::from(a.min(b)), Value::from(a.max(b)))),
            _ => p.with(ts, Pred::Ne(Value::from(a))),
        };
        let out = match out_sel {
            0 => cat.all(),
            1 => ts | bytes,
            _ => host.set(),
        };
        let got = r.query_where(&p, out).unwrap();
        let want = m.query_where(&p, out);
        prop_assert_eq!(got, want);
    }
}
