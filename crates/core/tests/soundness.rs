//! Empirical soundness (Theorem 5): for random operation sequences over
//! random adequate decompositions, the synthesized relation agrees with the
//! reference implementation of the relational specification, and the
//! instance stays well-formed (Fig. 5).

use proptest::prelude::*;
use relic_core::{OpError, SynthRelation};
use relic_decomp::{enumerate_decompositions, parse, Decomposition, DsKind, EnumerateOptions};
use relic_spec::{Catalog, ColSet, RelSpec, Relation, Tuple, Value};

/// The scheduler catalog, specification, and a palette of hand-picked
/// decompositions exercising every container kind and sharing.
fn scheduler_setup() -> (Catalog, RelSpec, Vec<Decomposition>) {
    let mut cat = Catalog::new();
    let sources = [
        // The paper's Fig. 2(a), with an intrusive list on the z path.
        "let w : {ns,pid,state} . {cpu} = unit {cpu} in
         let y : {ns} . {pid,cpu} = {pid} -[htable]-> w in
         let z : {state} . {ns,pid,cpu} = {ns,pid} -[ilist]-> w in
         let x : {} . {ns,pid,state,cpu} =
           ({ns} -[htable]-> y) join ({state} -[vec]-> z) in x",
        // Same shape, non-intrusive dlist.
        "let w : {ns,pid,state} . {cpu} = unit {cpu} in
         let y : {ns} . {pid,cpu} = {pid} -[avl]-> w in
         let z : {state} . {ns,pid,cpu} = {ns,pid} -[dlist]-> w in
         let x : {} . {ns,pid,state,cpu} =
           ({ns} -[sortedvec]-> y) join ({state} -[vec]-> z) in x",
        // A simple chain: ns -> pid -> unit{state,cpu}.
        "let w : {ns,pid} . {state,cpu} = unit {state,cpu} in
         let y : {ns} . {pid,state,cpu} = {pid} -[htable]-> w in
         let x : {} . {ns,pid,state,cpu} = {ns} -[htable]-> y in x",
        // Single flat map keyed by the whole key.
        "let w : {ns,pid} . {state,cpu} = unit {state,cpu} in
         let x : {} . {ns,pid,state,cpu} = {ns,pid} -[avl]-> w in x",
        // Unshared join of two chains.
        "let l : {ns,pid} . {state,cpu} = unit {state,cpu} in
         let r : {state,ns,pid} . {cpu} = unit {cpu} in
         let z : {state} . {ns,pid,cpu} = {ns,pid} -[dlist]-> r in
         let x : {} . {ns,pid,state,cpu} =
           ({ns,pid} -[htable]-> l) join ({state} -[vec]-> z) in x",
    ];
    let ds: Vec<Decomposition> = sources
        .iter()
        .map(|s| parse(&mut cat, s).unwrap())
        .collect();
    let spec = RelSpec::new(cat.all()).with_fd(
        cat.col("ns").unwrap() | cat.col("pid").unwrap(),
        cat.col("state").unwrap() | cat.col("cpu").unwrap(),
    );
    (cat, spec, ds)
}

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64, bool, i64),
    RemoveKey(i64, i64),
    RemoveNs(i64),
    RemoveState(bool),
    UpdateCpu(i64, i64, i64),
    UpdateState(i64, i64, bool),
    QueryByNs(i64),
    QueryByState(bool),
    QueryPoint(i64, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let ns = 0i64..4;
    let pid = 0i64..6;
    let cpu = 0i64..4;
    prop_oneof![
        (ns.clone(), pid.clone(), any::<bool>(), cpu.clone())
            .prop_map(|(a, b, c, d)| Op::Insert(a, b, c, d)),
        (ns.clone(), pid.clone()).prop_map(|(a, b)| Op::RemoveKey(a, b)),
        ns.clone().prop_map(Op::RemoveNs),
        any::<bool>().prop_map(Op::RemoveState),
        (ns.clone(), pid.clone(), cpu.clone()).prop_map(|(a, b, c)| Op::UpdateCpu(a, b, c)),
        (ns.clone(), pid.clone(), any::<bool>()).prop_map(|(a, b, c)| Op::UpdateState(a, b, c)),
        ns.clone().prop_map(Op::QueryByNs),
        any::<bool>().prop_map(Op::QueryByState),
        (ns, pid).prop_map(|(a, b)| Op::QueryPoint(a, b)),
    ]
}

fn state_val(s: bool) -> Value {
    Value::from(if s { "R" } else { "S" })
}

/// Applies an operation to both implementations, checking agreement.
fn apply(
    cat: &Catalog,
    synth: &mut SynthRelation,
    reference: &mut Relation,
    op: &Op,
) -> Result<(), TestCaseError> {
    let ns = cat.col("ns").unwrap();
    let pid = cat.col("pid").unwrap();
    let state = cat.col("state").unwrap();
    let cpu = cat.col("cpu").unwrap();
    match op {
        Op::Insert(a, b, s, c) => {
            let t = Tuple::from_pairs([
                (ns, Value::from(*a)),
                (pid, Value::from(*b)),
                (state, state_val(*s)),
                (cpu, Value::from(*c)),
            ]);
            let dup = reference.contains(&t);
            let conflict = reference
                .query(
                    &Tuple::from_pairs([(ns, Value::from(*a)), (pid, Value::from(*b))]),
                    cat.all(),
                )
                .into_iter()
                .any(|u| u != t);
            match synth.insert(t.clone()) {
                Ok(true) => {
                    prop_assert!(!dup && !conflict, "insert should have failed");
                    reference.insert(t);
                }
                Ok(false) => prop_assert!(dup, "false only for duplicates"),
                Err(OpError::FdViolation { .. }) => {
                    prop_assert!(conflict, "FdViolation only on real conflicts")
                }
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
        }
        Op::RemoveKey(a, b) => {
            let pat = Tuple::from_pairs([(ns, Value::from(*a)), (pid, Value::from(*b))]);
            let got = synth.remove(&pat).unwrap();
            let want = reference.remove(&pat);
            prop_assert_eq!(got, want);
        }
        Op::RemoveNs(a) => {
            let pat = Tuple::from_pairs([(ns, Value::from(*a))]);
            let got = synth.remove(&pat).unwrap();
            let want = reference.remove(&pat);
            prop_assert_eq!(got, want);
        }
        Op::RemoveState(s) => {
            let pat = Tuple::from_pairs([(state, state_val(*s))]);
            let got = synth.remove(&pat).unwrap();
            let want = reference.remove(&pat);
            prop_assert_eq!(got, want);
        }
        Op::UpdateCpu(a, b, c) => {
            let pat = Tuple::from_pairs([(ns, Value::from(*a)), (pid, Value::from(*b))]);
            let chg = Tuple::from_pairs([(cpu, Value::from(*c))]);
            let had = !reference.query(&pat, cat.all()).is_empty();
            let got = synth.update(&pat, &chg).unwrap();
            prop_assert_eq!(got, had);
            reference.update(&pat, &chg);
        }
        Op::UpdateState(a, b, s) => {
            let pat = Tuple::from_pairs([(ns, Value::from(*a)), (pid, Value::from(*b))]);
            let chg = Tuple::from_pairs([(state, state_val(*s))]);
            let had = !reference.query(&pat, cat.all()).is_empty();
            let got = synth.update(&pat, &chg).unwrap();
            prop_assert_eq!(got, had);
            reference.update(&pat, &chg);
        }
        Op::QueryByNs(a) => {
            let pat = Tuple::from_pairs([(ns, Value::from(*a))]);
            let got = synth.query(&pat, pid | state | cpu).unwrap();
            let want = reference.query(&pat, pid | state | cpu);
            prop_assert_eq!(got, want);
        }
        Op::QueryByState(s) => {
            let pat = Tuple::from_pairs([(state, state_val(*s))]);
            let got = synth.query(&pat, ns | pid).unwrap();
            let want = reference.query(&pat, ns | pid);
            prop_assert_eq!(got, want);
        }
        Op::QueryPoint(a, b) => {
            let pat = Tuple::from_pairs([(ns, Value::from(*a)), (pid, Value::from(*b))]);
            let got = synth.query(&pat, state | cpu).unwrap();
            let want = reference.query(&pat, state | cpu);
            prop_assert_eq!(got, want);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 5, empirically: synthesized ≡ reference across five
    /// hand-picked decompositions covering all container kinds and sharing.
    #[test]
    fn synth_matches_reference(ops in proptest::collection::vec(op_strategy(), 1..60), which in 0usize..5) {
        let (cat, spec, ds) = scheduler_setup();
        let d = ds[which].clone();
        let mut synth = SynthRelation::new(&cat, spec.clone(), d).unwrap();
        let mut reference = Relation::empty(cat.all());
        for op in &ops {
            apply(&cat, &mut synth, &mut reference, op)?;
        }
        // Final deep checks: abstraction agreement and well-formedness.
        prop_assert_eq!(synth.to_relation(), reference.clone());
        prop_assert_eq!(synth.len(), reference.len());
        synth.validate().map_err(|e| TestCaseError::fail(format!("ill-formed: {e}")))?;
    }

    /// Well-formedness is maintained *after every operation*, not just at
    /// the end (uses the intrusive-list decomposition, the trickiest one).
    #[test]
    fn wellformed_after_every_op(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        let (cat, spec, ds) = scheduler_setup();
        let mut synth = SynthRelation::new(&cat, spec, ds[0].clone()).unwrap();
        let mut reference = Relation::empty(cat.all());
        for op in &ops {
            apply(&cat, &mut synth, &mut reference, op)?;
            synth.validate().map_err(|e| TestCaseError::fail(format!("ill-formed after {op:?}: {e}")))?;
        }
    }
}

/// A deterministic stress over *enumerated* decompositions of the graph
/// relation, with mixed data structures: insert/remove/query churn, checking
/// α-agreement and well-formedness per decomposition.
#[test]
fn enumerated_decompositions_sound_under_churn() {
    let mut cat = Catalog::new();
    let src = cat.intern("src");
    let dst = cat.intern("dst");
    let weight = cat.intern("weight");
    let spec = RelSpec::new(src | dst | weight).with_fd(src | dst, weight.into());
    let opts = EnumerateOptions {
        max_edges: 3,
        structures: vec![DsKind::HashTable, DsKind::DList],
        ..Default::default()
    };
    let all = enumerate_decompositions(&spec, &opts);
    assert!(
        all.len() >= 20,
        "expected a rich candidate set, got {}",
        all.len()
    );
    // Deterministically sample to keep the test fast.
    for (i, d) in all.iter().enumerate().filter(|(i, _)| i % 7 == 0) {
        let mut synth = SynthRelation::new(&cat, spec.clone(), d.clone())
            .unwrap_or_else(|e| panic!("decomposition {i} rejected: {e}"));
        let mut reference = Relation::empty(src | dst | weight);
        // Insert a small dense graph.
        let mut x: u64 = 0x9E3779B97F4A7C15 ^ (i as u64);
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..60 {
            let s = (rand() % 5) as i64;
            let t = (rand() % 5) as i64;
            let w = (rand() % 3) as i64;
            let tup = Tuple::from_pairs([
                (src, Value::from(s)),
                (dst, Value::from(t)),
                (weight, Value::from(w)),
            ]);
            let key = Tuple::from_pairs([(src, Value::from(s)), (dst, Value::from(t))]);
            let conflicting = reference
                .query(&key, src | dst | weight)
                .into_iter()
                .any(|u| u != tup);
            match synth.insert(tup.clone()) {
                Ok(true) => {
                    reference.insert(tup);
                }
                Ok(false) => {}
                Err(OpError::FdViolation { .. }) => assert!(conflicting),
                Err(e) => panic!("unexpected {e}"),
            }
            if rand() % 3 == 0 {
                let s = (rand() % 5) as i64;
                let pat = Tuple::from_pairs([(src, Value::from(s))]);
                assert_eq!(
                    synth.remove(&pat).unwrap(),
                    reference.remove(&pat),
                    "decomposition {i}"
                );
            }
        }
        assert_eq!(synth.to_relation(), reference, "decomposition {i} diverged");
        synth
            .validate()
            .unwrap_or_else(|e| panic!("decomposition {i} ill-formed: {e}"));
        // Successor and predecessor queries agree.
        for v in 0..5i64 {
            let pat = Tuple::from_pairs([(src, Value::from(v))]);
            assert_eq!(
                synth.query(&pat, dst.into()).unwrap(),
                reference.query(&pat, dst.into())
            );
            let pat = Tuple::from_pairs([(dst, Value::from(v))]);
            assert_eq!(
                synth.query(&pat, src.into()).unwrap(),
                reference.query(&pat, src.into())
            );
        }
    }
}

/// The §3.4 inadequacy counterexample: the Fig. 2 decomposition cannot
/// represent a relation violating ns,pid → state,cpu — and the runtime
/// surfaces this as an `FdViolation` instead of corrupting the structure.
#[test]
fn inadequate_data_rejected_not_corrupted() {
    let (cat, spec, ds) = scheduler_setup();
    let mut r = SynthRelation::new(&cat, spec, ds[0].clone()).unwrap();
    let ns = cat.col("ns").unwrap();
    let pid = cat.col("pid").unwrap();
    let state = cat.col("state").unwrap();
    let cpu = cat.col("cpu").unwrap();
    r.insert(Tuple::from_pairs([
        (ns, Value::from(1)),
        (pid, Value::from(2)),
        (state, Value::from("S")),
        (cpu, Value::from(42)),
    ]))
    .unwrap();
    let err = r
        .insert(Tuple::from_pairs([
            (ns, Value::from(1)),
            (pid, Value::from(2)),
            (state, Value::from("R")),
            (cpu, Value::from(34)),
        ]))
        .unwrap_err();
    assert!(matches!(err, OpError::FdViolation { .. }));
    r.validate().unwrap();
    assert_eq!(r.len(), 1);
}

/// Queries with empty output columns act as existence tests.
#[test]
fn empty_output_projection() {
    let (cat, spec, ds) = scheduler_setup();
    let mut r = SynthRelation::new(&cat, spec, ds[2].clone()).unwrap();
    let ns = cat.col("ns").unwrap();
    let pid = cat.col("pid").unwrap();
    let state = cat.col("state").unwrap();
    let cpu = cat.col("cpu").unwrap();
    r.insert(Tuple::from_pairs([
        (ns, Value::from(1)),
        (pid, Value::from(1)),
        (state, Value::from("S")),
        (cpu, Value::from(0)),
    ]))
    .unwrap();
    let got = r
        .query(&Tuple::from_pairs([(ns, Value::from(1))]), ColSet::EMPTY)
        .unwrap();
    assert_eq!(got, vec![Tuple::empty()]);
    let got = r
        .query(&Tuple::from_pairs([(ns, Value::from(9))]), ColSet::EMPTY)
        .unwrap();
    assert!(got.is_empty());
}
