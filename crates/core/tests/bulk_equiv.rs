//! Property tests: the batch mutation APIs are observably equivalent to
//! folding the per-tuple operations, across every container kind a
//! decomposition edge can use.
//!
//! `bulk_load(ts)` must produce the same tuple set, the same length, the
//! same insertion count, and — when the fold fails — an error of the same
//! variant for the same offending tuple, with everything the fold inserted
//! before the failure still present. (The `existing` witness of an
//! `FdViolation` may be a different conflicting tuple: the batch path finds
//! *a* witness, not necessarily the fold's.)
//!
//! The `migrate_*` tests extend the harness to representation migration:
//! `migrate_to` between every pair of enumerated decompositions must
//! preserve the exact tuple set and answer every query signature
//! identically to the reference model.

use proptest::prelude::*;
use relic_core::{OpError, SynthRelation};
use relic_decomp::{enumerate_decompositions, parse, Decomposition, DsKind, EnumerateOptions};
use relic_spec::{Catalog, ColSet, RelSpec, Relation, Tuple, Value};

/// The five non-intrusive container kinds of the library, as decomposition
/// syntax, plus the intrusive list for good measure.
const KINDS: [&str; 6] = ["htable", "avl", "sortedvec", "vec", "dlist", "ilist"];

/// Builds the two-level test relation `{a,b} → {v}` with both edges using
/// container kind `ds` (intrusive lists are only legal below a shared leaf,
/// so `ilist` pairs with an `htable` root).
fn relation_for(ds: &str, with_fd: bool) -> (Catalog, SynthRelation) {
    let mut cat = Catalog::new();
    // Without the FD `a,b → v` the unit leaf `{v}` would be inadequate, so
    // the FD-free variant carries every column on the key path instead.
    let src = match (ds, with_fd) {
        ("ilist", true) => "let u : {a,b} . {v} = unit {v} in
             let y : {a} . {b,v} = {b} -[ilist]-> u in
             let x : {} . {a,b,v} = {a} -[htable]-> y in x"
            .to_string(),
        ("ilist", false) => "let u : {a,b,v} . {} = unit {} in
             let y : {a} . {b,v} = {b,v} -[ilist]-> u in
             let x : {} . {a,b,v} = {a} -[htable]-> y in x"
            .to_string(),
        (_, true) => format!(
            "let u : {{a,b}} . {{v}} = unit {{v}} in
             let y : {{a}} . {{b,v}} = {{b}} -[{ds}]-> u in
             let x : {{}} . {{a,b,v}} = {{a}} -[{ds}]-> y in x"
        ),
        (_, false) => format!(
            "let u : {{a,b,v}} . {{}} = unit {{}} in
             let y : {{a}} . {{b,v}} = {{b,v}} -[{ds}]-> u in
             let x : {{}} . {{a,b,v}} = {{a}} -[{ds}]-> y in x"
        ),
    };
    let d = parse(&mut cat, &src).unwrap();
    let (a, b, v) = (
        cat.col("a").unwrap(),
        cat.col("b").unwrap(),
        cat.col("v").unwrap(),
    );
    let mut spec = RelSpec::new(cat.all());
    if with_fd {
        spec = spec.with_fd(a | b, v.into());
    }
    let r = SynthRelation::new(&cat, spec, d).unwrap();
    (cat, r)
}

fn tuple(cat: &Catalog, a: i64, b: i64, v: i64) -> Tuple {
    Tuple::from_pairs([
        (cat.col("a").unwrap(), Value::from(a)),
        (cat.col("b").unwrap(), Value::from(b)),
        (cat.col("v").unwrap(), Value::from(v)),
    ])
}

/// Folds `insert` over the batch: `(inserted count, first error)`.
fn fold_insert(r: &mut SynthRelation, tuples: &[Tuple]) -> (usize, Option<OpError>) {
    let mut n = 0;
    for t in tuples {
        match r.insert(t.clone()) {
            Ok(true) => n += 1,
            Ok(false) => {}
            Err(e) => return (n, Some(e)),
        }
    }
    (n, None)
}

/// The two outcomes agree up to the witness tuple of an `FdViolation`.
fn same_error(a: &OpError, b: &OpError) -> bool {
    match (a, b) {
        (OpError::FdViolation { tuple: ta, .. }, OpError::FdViolation { tuple: tb, .. }) => {
            ta == tb
        }
        (
            OpError::ColumnMismatch {
                expected: ea,
                actual: aa,
            },
            OpError::ColumnMismatch {
                expected: eb,
                actual: ab,
            },
        ) => ea == eb && aa == ab,
        _ => false,
    }
}

fn check_equivalence(
    ds: &str,
    with_fd: bool,
    seed_tuples: &[(i64, i64, i64)],
    batch: &[(i64, i64, i64)],
    use_insert_many: bool,
) -> Result<(), TestCaseError> {
    let (cat, mut bulk) = relation_for(ds, with_fd);
    let (_, mut fold) = relation_for(ds, with_fd);
    // Seed both relations identically (pre-existing content exercises the
    // store-probe side of the screening).
    for &(a, b, v) in seed_tuples {
        let t = tuple(&cat, a, b, v);
        let _ = bulk.insert(t.clone());
        let _ = fold.insert(t);
    }
    let batch: Vec<Tuple> = batch
        .iter()
        .map(|&(a, b, v)| tuple(&cat, a, b, v))
        .collect();
    let bulk_res = if use_insert_many {
        bulk.insert_many(batch.clone())
    } else {
        bulk.bulk_load(batch.clone())
    };
    let (fold_n, fold_err) = fold_insert(&mut fold, &batch);
    match (&bulk_res, &fold_err) {
        (Ok(n), None) => prop_assert_eq!(*n, fold_n, "insert counts differ ({ds})"),
        (Err(be), Some(fe)) => {
            prop_assert!(
                same_error(be, fe),
                "different first error ({ds}): bulk {be:?} vs fold {fe:?}"
            );
        }
        _ => {
            return Err(TestCaseError::fail(format!(
                "outcome mismatch ({ds}): bulk {bulk_res:?} vs fold {fold_err:?}"
            )))
        }
    }
    prop_assert_eq!(bulk.len(), fold.len(), "lengths differ ({ds})");
    prop_assert_eq!(
        bulk.to_relation(),
        fold.to_relation(),
        "tuple sets differ ({ds})"
    );
    bulk.validate().map_err(TestCaseError::fail)?;
    Ok(())
}

/// The enumerated candidate set migrations range over: every adequate
/// decomposition of the `{a,b} → {v}` spec with up to two edges, over the
/// hash-table and AVL palettes.
fn migration_candidates() -> (Catalog, RelSpec, Vec<Decomposition>) {
    let mut cat = Catalog::new();
    let (a, b, v) = (cat.intern("a"), cat.intern("b"), cat.intern("v"));
    let spec = RelSpec::new(a | b | v).with_fd(a | b, v.into());
    let opts = EnumerateOptions {
        max_edges: 2,
        structures: vec![DsKind::HashTable, DsKind::AvlTree],
        ..Default::default()
    };
    let cs = enumerate_decompositions(&spec, &opts);
    assert!(cs.len() >= 2, "need at least two candidates to migrate");
    (cat, spec, cs)
}

/// Every query signature over `{a, b, v}`: each pattern column subset ×
/// each output subset, with each pattern's values drawn from the tuple set
/// (hits) and from outside it (misses).
fn assert_all_queries_agree(r: &SynthRelation, model: &Relation, cat: &Catalog) {
    let cols = [
        cat.col("a").unwrap(),
        cat.col("b").unwrap(),
        cat.col("v").unwrap(),
    ];
    let subsets: Vec<ColSet> = (0u8..8)
        .map(|m| {
            cols.iter()
                .enumerate()
                .filter(|&(i, _)| m & (1 << i) != 0)
                .map(|(_, &c)| c)
                .collect()
        })
        .collect();
    for &pat_cols in &subsets {
        // Every distinct valuation of the pattern columns present in the
        // model, plus one definitely-absent valuation.
        let mut pats: Vec<Tuple> = model.iter().map(|t| t.project(pat_cols)).collect();
        pats.sort();
        pats.dedup();
        pats.push(Tuple::from_pairs(
            pat_cols.iter().map(|c| (c, Value::from(-1))),
        ));
        for pat in &pats {
            for &out in &subsets {
                assert_eq!(
                    r.query(pat, out).unwrap(),
                    model.query(pat, out),
                    "query({pat}, {out:?}) diverged"
                );
            }
        }
    }
}

/// Exhaustive pair coverage on a fixed, collision-rich tuple set: load
/// under candidate `i`, migrate to candidate `j`, and the tuple set and
/// every query answer must match the reference model.
#[test]
fn migrate_between_every_candidate_pair_preserves_everything() {
    let (cat, spec, cs) = migration_candidates();
    let tuples: Vec<Tuple> = (0..12)
        .map(|i| tuple(&cat, i % 3, i % 4, (i % 3) * 10 + (i % 4)))
        .collect();
    let mut model = Relation::empty(cat.all());
    for t in &tuples {
        model.insert(t.clone());
    }
    for i in 0..cs.len() {
        let mut r = SynthRelation::new(&cat, spec.clone(), cs[i].clone()).unwrap();
        r.bulk_load(tuples.clone()).unwrap();
        for (j, target) in cs.iter().enumerate() {
            r.migrate_to(target.clone()).unwrap();
            assert_eq!(r.decomposition(), target);
            assert_eq!(r.to_relation(), model, "tuple set diverged ({i}→{j})");
            r.validate().unwrap();
        }
        // One full answer sweep per source candidate, after the round trip.
        assert_all_queries_agree(&r, &model, &cat);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random batches, random candidate pair: migration preserves the
    /// exact tuple set, the length, and every query signature's answers.
    #[test]
    fn migrate_preserves_tuples_and_answers(
        batch in proptest::collection::vec((0i64..3, 0i64..4, 0i64..3), 0..20),
        from in 0usize..64,
        to in 0usize..64,
    ) {
        let (cat, spec, cs) = migration_candidates();
        let (from, to) = (from % cs.len(), to % cs.len());
        let mut r = SynthRelation::new(&cat, spec.clone(), cs[from].clone()).unwrap();
        let mut model = Relation::empty(cat.all());
        for &(a, b, v) in &batch {
            let t = tuple(&cat, a, b, v);
            // FD conflicts are rejected identically by both; keep the
            // accepted ones in the model.
            if r.insert(t.clone()).is_ok() {
                model.insert(t);
            }
        }
        r.migrate_to(cs[to].clone()).unwrap();
        prop_assert_eq!(r.len(), model.len());
        prop_assert_eq!(r.to_relation(), model.clone());
        r.validate().map_err(TestCaseError::fail)?;
        assert_all_queries_agree(&r, &model, &cat);
        // And back again, for the i → j → i round trip.
        r.migrate_to(cs[from].clone()).unwrap();
        prop_assert_eq!(r.to_relation(), model.clone());
        r.validate().map_err(TestCaseError::fail)?;
    }

    /// `bulk_load` over every container kind, with the FD declared: small
    /// value domains force in-batch duplicates, store duplicates, and FD
    /// conflicts.
    #[test]
    fn bulk_load_equals_insert_fold(
        seed in proptest::collection::vec((0i64..3, 0i64..4, 0i64..3), 0..8),
        batch in proptest::collection::vec((0i64..3, 0i64..4, 0i64..3), 0..24),
        kind in 0usize..KINDS.len(),
    ) {
        check_equivalence(KINDS[kind], true, &seed, &batch, false)?;
    }

    /// `insert_many` (unsorted walk) is equivalent too.
    #[test]
    fn insert_many_equals_insert_fold(
        seed in proptest::collection::vec((0i64..3, 0i64..4, 0i64..3), 0..8),
        batch in proptest::collection::vec((0i64..3, 0i64..4, 0i64..3), 0..24),
        kind in 0usize..KINDS.len(),
    ) {
        check_equivalence(KINDS[kind], true, &seed, &batch, true)?;
    }

    /// Without FDs the minimal key is the full column set: the screening
    /// degenerates to exact-duplicate detection and nothing can conflict.
    #[test]
    fn bulk_load_without_fds_never_errors(
        batch in proptest::collection::vec((0i64..3, 0i64..4, 0i64..3), 0..24),
        kind in 0usize..KINDS.len(),
    ) {
        check_equivalence(KINDS[kind], false, &[], &batch, false)?;
    }

    /// `remove_many` equals folding `remove` over the patterns.
    #[test]
    fn remove_many_equals_remove_fold(
        tuples in proptest::collection::vec((0i64..4, 0i64..4, 0i64..2), 0..20),
        pats in proptest::collection::vec((0u8..3, 0i64..4, 0i64..4), 0..8),
        kind in 0usize..KINDS.len(),
    ) {
        let (cat, mut many) = relation_for(KINDS[kind], false);
        let (_, mut fold) = relation_for(KINDS[kind], false);
        for &(a, b, v) in &tuples {
            let t = tuple(&cat, a, b, v);
            let _ = many.insert(t.clone());
            let _ = fold.insert(t);
        }
        let (ca, cb) = (cat.col("a").unwrap(), cat.col("b").unwrap());
        // Patterns over {a}, {b} or {a,b}, hitting different cuts.
        let pats: Vec<Tuple> = pats
            .iter()
            .map(|&(shape, a, b)| match shape {
                0 => Tuple::from_pairs([(ca, Value::from(a))]),
                1 => Tuple::from_pairs([(cb, Value::from(b))]),
                _ => Tuple::from_pairs([(ca, Value::from(a)), (cb, Value::from(b))]),
            })
            .collect();
        let n_many = many.remove_many(pats.iter()).unwrap();
        let mut n_fold = 0;
        for p in &pats {
            n_fold += fold.remove(p).unwrap();
        }
        prop_assert_eq!(n_many, n_fold);
        prop_assert_eq!(many.to_relation(), fold.to_relation());
        many.validate().map_err(TestCaseError::fail)?;
    }
}
