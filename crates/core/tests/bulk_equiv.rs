//! Property tests: the batch mutation APIs are observably equivalent to
//! folding the per-tuple operations, across every container kind a
//! decomposition edge can use.
//!
//! `bulk_load(ts)` must produce the same tuple set, the same length, the
//! same insertion count, and — when the fold fails — an error of the same
//! variant for the same offending tuple, with everything the fold inserted
//! before the failure still present. (The `existing` witness of an
//! `FdViolation` may be a different conflicting tuple: the batch path finds
//! *a* witness, not necessarily the fold's.)

use proptest::prelude::*;
use relic_core::{OpError, SynthRelation};
use relic_decomp::parse;
use relic_spec::{Catalog, RelSpec, Tuple, Value};

/// The five non-intrusive container kinds of the library, as decomposition
/// syntax, plus the intrusive list for good measure.
const KINDS: [&str; 6] = ["htable", "avl", "sortedvec", "vec", "dlist", "ilist"];

/// Builds the two-level test relation `{a,b} → {v}` with both edges using
/// container kind `ds` (intrusive lists are only legal below a shared leaf,
/// so `ilist` pairs with an `htable` root).
fn relation_for(ds: &str, with_fd: bool) -> (Catalog, SynthRelation) {
    let mut cat = Catalog::new();
    // Without the FD `a,b → v` the unit leaf `{v}` would be inadequate, so
    // the FD-free variant carries every column on the key path instead.
    let src = match (ds, with_fd) {
        ("ilist", true) => "let u : {a,b} . {v} = unit {v} in
             let y : {a} . {b,v} = {b} -[ilist]-> u in
             let x : {} . {a,b,v} = {a} -[htable]-> y in x"
            .to_string(),
        ("ilist", false) => "let u : {a,b,v} . {} = unit {} in
             let y : {a} . {b,v} = {b,v} -[ilist]-> u in
             let x : {} . {a,b,v} = {a} -[htable]-> y in x"
            .to_string(),
        (_, true) => format!(
            "let u : {{a,b}} . {{v}} = unit {{v}} in
             let y : {{a}} . {{b,v}} = {{b}} -[{ds}]-> u in
             let x : {{}} . {{a,b,v}} = {{a}} -[{ds}]-> y in x"
        ),
        (_, false) => format!(
            "let u : {{a,b,v}} . {{}} = unit {{}} in
             let y : {{a}} . {{b,v}} = {{b,v}} -[{ds}]-> u in
             let x : {{}} . {{a,b,v}} = {{a}} -[{ds}]-> y in x"
        ),
    };
    let d = parse(&mut cat, &src).unwrap();
    let (a, b, v) = (
        cat.col("a").unwrap(),
        cat.col("b").unwrap(),
        cat.col("v").unwrap(),
    );
    let mut spec = RelSpec::new(cat.all());
    if with_fd {
        spec = spec.with_fd(a | b, v.into());
    }
    let r = SynthRelation::new(&cat, spec, d).unwrap();
    (cat, r)
}

fn tuple(cat: &Catalog, a: i64, b: i64, v: i64) -> Tuple {
    Tuple::from_pairs([
        (cat.col("a").unwrap(), Value::from(a)),
        (cat.col("b").unwrap(), Value::from(b)),
        (cat.col("v").unwrap(), Value::from(v)),
    ])
}

/// Folds `insert` over the batch: `(inserted count, first error)`.
fn fold_insert(r: &mut SynthRelation, tuples: &[Tuple]) -> (usize, Option<OpError>) {
    let mut n = 0;
    for t in tuples {
        match r.insert(t.clone()) {
            Ok(true) => n += 1,
            Ok(false) => {}
            Err(e) => return (n, Some(e)),
        }
    }
    (n, None)
}

/// The two outcomes agree up to the witness tuple of an `FdViolation`.
fn same_error(a: &OpError, b: &OpError) -> bool {
    match (a, b) {
        (OpError::FdViolation { tuple: ta, .. }, OpError::FdViolation { tuple: tb, .. }) => {
            ta == tb
        }
        (
            OpError::ColumnMismatch {
                expected: ea,
                actual: aa,
            },
            OpError::ColumnMismatch {
                expected: eb,
                actual: ab,
            },
        ) => ea == eb && aa == ab,
        _ => false,
    }
}

fn check_equivalence(
    ds: &str,
    with_fd: bool,
    seed_tuples: &[(i64, i64, i64)],
    batch: &[(i64, i64, i64)],
    use_insert_many: bool,
) -> Result<(), TestCaseError> {
    let (cat, mut bulk) = relation_for(ds, with_fd);
    let (_, mut fold) = relation_for(ds, with_fd);
    // Seed both relations identically (pre-existing content exercises the
    // store-probe side of the screening).
    for &(a, b, v) in seed_tuples {
        let t = tuple(&cat, a, b, v);
        let _ = bulk.insert(t.clone());
        let _ = fold.insert(t);
    }
    let batch: Vec<Tuple> = batch
        .iter()
        .map(|&(a, b, v)| tuple(&cat, a, b, v))
        .collect();
    let bulk_res = if use_insert_many {
        bulk.insert_many(batch.clone())
    } else {
        bulk.bulk_load(batch.clone())
    };
    let (fold_n, fold_err) = fold_insert(&mut fold, &batch);
    match (&bulk_res, &fold_err) {
        (Ok(n), None) => prop_assert_eq!(*n, fold_n, "insert counts differ ({ds})"),
        (Err(be), Some(fe)) => {
            prop_assert!(
                same_error(be, fe),
                "different first error ({ds}): bulk {be:?} vs fold {fe:?}"
            );
        }
        _ => {
            return Err(TestCaseError::fail(format!(
                "outcome mismatch ({ds}): bulk {bulk_res:?} vs fold {fold_err:?}"
            )))
        }
    }
    prop_assert_eq!(bulk.len(), fold.len(), "lengths differ ({ds})");
    prop_assert_eq!(
        bulk.to_relation(),
        fold.to_relation(),
        "tuple sets differ ({ds})"
    );
    bulk.validate().map_err(TestCaseError::fail)?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `bulk_load` over every container kind, with the FD declared: small
    /// value domains force in-batch duplicates, store duplicates, and FD
    /// conflicts.
    #[test]
    fn bulk_load_equals_insert_fold(
        seed in proptest::collection::vec((0i64..3, 0i64..4, 0i64..3), 0..8),
        batch in proptest::collection::vec((0i64..3, 0i64..4, 0i64..3), 0..24),
        kind in 0usize..KINDS.len(),
    ) {
        check_equivalence(KINDS[kind], true, &seed, &batch, false)?;
    }

    /// `insert_many` (unsorted walk) is equivalent too.
    #[test]
    fn insert_many_equals_insert_fold(
        seed in proptest::collection::vec((0i64..3, 0i64..4, 0i64..3), 0..8),
        batch in proptest::collection::vec((0i64..3, 0i64..4, 0i64..3), 0..24),
        kind in 0usize..KINDS.len(),
    ) {
        check_equivalence(KINDS[kind], true, &seed, &batch, true)?;
    }

    /// Without FDs the minimal key is the full column set: the screening
    /// degenerates to exact-duplicate detection and nothing can conflict.
    #[test]
    fn bulk_load_without_fds_never_errors(
        batch in proptest::collection::vec((0i64..3, 0i64..4, 0i64..3), 0..24),
        kind in 0usize..KINDS.len(),
    ) {
        check_equivalence(KINDS[kind], false, &[], &batch, false)?;
    }

    /// `remove_many` equals folding `remove` over the patterns.
    #[test]
    fn remove_many_equals_remove_fold(
        tuples in proptest::collection::vec((0i64..4, 0i64..4, 0i64..2), 0..20),
        pats in proptest::collection::vec((0u8..3, 0i64..4, 0i64..4), 0..8),
        kind in 0usize..KINDS.len(),
    ) {
        let (cat, mut many) = relation_for(KINDS[kind], false);
        let (_, mut fold) = relation_for(KINDS[kind], false);
        for &(a, b, v) in &tuples {
            let t = tuple(&cat, a, b, v);
            let _ = many.insert(t.clone());
            let _ = fold.insert(t);
        }
        let (ca, cb) = (cat.col("a").unwrap(), cat.col("b").unwrap());
        // Patterns over {a}, {b} or {a,b}, hitting different cuts.
        let pats: Vec<Tuple> = pats
            .iter()
            .map(|&(shape, a, b)| match shape {
                0 => Tuple::from_pairs([(ca, Value::from(a))]),
                1 => Tuple::from_pairs([(cb, Value::from(b))]),
                _ => Tuple::from_pairs([(ca, Value::from(a)), (cb, Value::from(b))]),
            })
            .collect();
        let n_many = many.remove_many(pats.iter()).unwrap();
        let mut n_fold = 0;
        for p in &pats {
            n_fold += fold.remove(p).unwrap();
        }
        prop_assert_eq!(n_many, n_fold);
        prop_assert_eq!(many.to_relation(), fold.to_relation());
        many.validate().map_err(TestCaseError::fail)?;
    }
}
