//! Non-constant-space query operators (§4.1's noted extension): the
//! `qhashjoin` strategy under the realistic join-cost mode, and streaming
//! duplicate elimination.

use proptest::prelude::*;
use relic_core::SynthRelation;
use relic_decomp::{parse, Decomposition};
use relic_query::JoinCostMode;
use relic_spec::{Catalog, ColSet, RelSpec, Relation, Tuple, Value};

/// The paper's scheduler decomposition (Fig. 2a): a two-path join whose
/// right side cannot be looked up without `state`.
fn scheduler() -> (Catalog, RelSpec, Decomposition) {
    let mut cat = Catalog::new();
    let d = parse(
        &mut cat,
        "let w : {ns,pid,state} . {cpu} = unit {cpu} in
         let y : {ns} . {pid,cpu} = {pid} -[htable]-> w in
         let z : {state} . {ns,pid,cpu} = {ns,pid} -[dlist]-> w in
         let x : {} . {ns,pid,state,cpu} =
           ({ns} -[htable]-> y) join ({state} -[vec]-> z) in x",
    )
    .unwrap();
    let spec = RelSpec::new(cat.all()).with_fd(
        cat.col("ns").unwrap() | cat.col("pid").unwrap(),
        cat.col("state").unwrap() | cat.col("cpu").unwrap(),
    );
    (cat, spec, d)
}

fn populate(cat: &Catalog, r: &mut SynthRelation, m: &mut Relation, n: i64) {
    let ns = cat.col("ns").unwrap();
    let pid = cat.col("pid").unwrap();
    let state = cat.col("state").unwrap();
    let cpu = cat.col("cpu").unwrap();
    for i in 0..n {
        let t = Tuple::from_pairs([
            (ns, Value::from(i % 8)),
            (pid, Value::from(i)),
            (state, Value::from(if i % 3 == 0 { "R" } else { "S" })),
            (cpu, Value::from(i % 5)),
        ]);
        r.insert(t.clone()).unwrap();
        m.insert(t);
    }
}

#[test]
fn optimistic_mode_never_chooses_hashjoin() {
    // The default (paper) cost model charges a hash join strictly more than
    // the nested join, so the paper's constant-space plans are preserved.
    let (cat, spec, d) = scheduler();
    let r = SynthRelation::new(&cat, spec, d).unwrap();
    let ns = cat.col("ns").unwrap();
    let state = cat.col("state").unwrap();
    for avail in [ColSet::EMPTY, ns.set(), state.set(), ns | state] {
        let plan = r.plan_for(avail, cat.all()).unwrap();
        assert!(!plan.contains("qhashjoin"), "{avail:?}: {plan}");
    }
}

/// A "two-panel" decomposition: the relation ⟨id, a, b⟩ (id → a, b) split
/// into an a-keyed panel and a b-keyed panel, each holding only its own
/// attribute. Neither side alone answers a full-row query, and neither
/// side's lookup key is bound by scanning the other — the worst case for
/// nested join execution.
fn two_panel() -> (Catalog, RelSpec, Decomposition) {
    let mut cat = Catalog::new();
    let d = parse(
        &mut cat,
        "let wl : {a,id} . {} = unit {} in
         let wr : {b,id} . {} = unit {} in
         let l : {a} . {id} = {id} -[htable]-> wl in
         let r : {b} . {id} = {id} -[htable]-> wr in
         let x : {} . {id,a,b} = ({a} -[htable]-> l) join ({b} -[htable]-> r) in x",
    )
    .unwrap();
    let id = cat.col("id").unwrap();
    let a = cat.col("a").unwrap();
    let b = cat.col("b").unwrap();
    let spec = RelSpec::new(id | a | b).with_fd(id.set(), a | b);
    (cat, spec, d)
}

fn populate_panels(cat: &Catalog, r: &mut SynthRelation, m: &mut Relation, n: i64) {
    let id = cat.col("id").unwrap();
    let a = cat.col("a").unwrap();
    let b = cat.col("b").unwrap();
    for i in 0..n {
        let t = Tuple::from_pairs([
            (id, Value::from(i)),
            (a, Value::from(i % 8)),
            (b, Value::from(i % 10)),
        ]);
        r.insert(t.clone()).unwrap();
        m.insert(t);
    }
}

#[test]
fn realistic_mode_chooses_hashjoin_for_full_enumeration() {
    // Enumerating all (id, a, b) rows needs both panels; nested execution
    // re-scans one panel per outer tuple, so the hash join wins once joins
    // are charged realistically.
    let (cat, spec, d) = two_panel();
    let mut r = SynthRelation::new(&cat, spec, d).unwrap();
    let mut m = Relation::empty(cat.all());
    populate_panels(&cat, &mut r, &mut m, 100);
    r.set_cost_model(r.observed_cost_model());
    let nested_plan = r.plan_for(ColSet::EMPTY, cat.all()).unwrap();
    assert!(nested_plan.contains("qjoin"), "{nested_plan}");
    r.set_join_cost_mode(JoinCostMode::Realistic);
    let plan = r.plan_for(ColSet::EMPTY, cat.all()).unwrap();
    assert!(plan.contains("qhashjoin"), "{plan}");
    // And the results are exactly the relation.
    let got = r.query(&Tuple::empty(), cat.all()).unwrap();
    let want = m.query(&Tuple::empty(), cat.all());
    assert_eq!(got, want);
}

#[test]
fn realistic_mode_keeps_lookups_for_point_queries() {
    // A point query has a cheap nested plan (lookups only); materializing a
    // hash index would be a loss and the planner must not pick it.
    let (cat, spec, d) = scheduler();
    let mut r = SynthRelation::new(&cat, spec, d).unwrap();
    let mut m = Relation::empty(cat.all());
    populate(&cat, &mut r, &mut m, 100);
    r.set_join_cost_mode(JoinCostMode::Realistic);
    let ns = cat.col("ns").unwrap();
    let pid = cat.col("pid").unwrap();
    let cpu = cat.col("cpu").unwrap();
    let plan = r.plan_for(ns | pid, cpu.set()).unwrap();
    assert_eq!(plan, "qlr(qlookup(qlookup(qunit)), left)");
}

#[test]
fn hashjoin_results_agree_with_nested_join() {
    let (cat, spec, d) = two_panel();
    let mut r = SynthRelation::new(&cat, spec, d).unwrap();
    let mut m = Relation::empty(cat.all());
    populate_panels(&cat, &mut r, &mut m, 60);
    let nested = r.query(&Tuple::empty(), cat.all()).unwrap();
    r.set_cost_model(r.observed_cost_model());
    r.set_join_cost_mode(JoinCostMode::Realistic);
    assert!(r
        .plan_for(ColSet::EMPTY, cat.all())
        .unwrap()
        .contains("qhashjoin"));
    let hashed = r.query(&Tuple::empty(), cat.all()).unwrap();
    assert_eq!(nested, hashed);
    // Pattern queries agree too.
    let a = cat.col("a").unwrap();
    let pat = Tuple::from_pairs([(a, Value::from(3))]);
    let got = r.query(&pat, cat.all()).unwrap();
    let want = m.query(&pat, cat.all());
    assert_eq!(got, want);
}

#[test]
fn constant_space_flag_distinguishes_plans() {
    use relic_query::{Plan, Side};
    let nested = Plan::join(
        Side::Left,
        Plan::scan(Plan::scan(Plan::Unit)),
        Plan::lookup(Plan::lookup(Plan::Unit)),
    );
    assert!(nested.is_constant_space());
    let hashed = Plan::hash_join(
        Side::Left,
        Plan::scan(Plan::scan(Plan::Unit)),
        Plan::scan(Plan::scan(Plan::Unit)),
    );
    assert!(!hashed.is_constant_space());
    assert_eq!(
        hashed.to_string(),
        "qhashjoin(qscan(qscan(qunit)), qscan(qscan(qunit)), left)"
    );
}

#[test]
fn distinct_streams_each_projection_once() {
    let (cat, spec, d) = scheduler();
    let mut r = SynthRelation::new(&cat, spec, d).unwrap();
    let mut m = Relation::empty(cat.all());
    populate(&cat, &mut r, &mut m, 40);
    let state = cat.col("state").unwrap();
    // Projecting everything onto {state} yields exactly two distinct rows.
    let mut seen = Vec::new();
    r.query_distinct_for_each(&Tuple::empty(), state.set(), |t| seen.push(t.clone()))
        .unwrap();
    assert_eq!(seen.len(), 2, "{seen:?}");
    let mut sorted = seen.clone();
    sorted.sort();
    assert_eq!(sorted, m.query(&Tuple::empty(), state.set()));
    // The plain streaming variant delivers duplicates (one per tuple).
    let mut dups = 0usize;
    r.query_for_each(&Tuple::empty(), state.set(), |_| dups += 1)
        .unwrap();
    assert_eq!(dups, 40);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hash-joined and nested execution agree with the reference under
    /// random contents, patterns, and projections.
    #[test]
    fn hashjoin_matches_reference(
        rows in proptest::collection::vec((0i64..6, 0i64..30, any::<bool>(), 0i64..4), 0..60),
        pat_ns in proptest::option::of(0i64..6),
        out_sel in 0u8..3,
    ) {
        let (cat, spec, d) = scheduler();
        let ns = cat.col("ns").unwrap();
        let pid = cat.col("pid").unwrap();
        let state = cat.col("state").unwrap();
        let cpu = cat.col("cpu").unwrap();
        let mut r = SynthRelation::new(&cat, spec, d).unwrap();
        let mut m = Relation::empty(cat.all());
        for (a, b, s, c) in rows {
            let t = Tuple::from_pairs([
                (ns, Value::from(a)),
                (pid, Value::from(b)),
                (state, Value::from(if s { "R" } else { "S" })),
                (cpu, Value::from(c)),
            ]);
            if r.insert(t.clone()).is_ok() {
                m.insert(t);
            }
        }
        r.set_join_cost_mode(JoinCostMode::Realistic);
        let pat = match pat_ns {
            Some(a) => Tuple::from_pairs([(ns, Value::from(a))]),
            None => Tuple::empty(),
        };
        let out = match out_sel {
            0 => cat.all(),
            1 => ns | pid,
            _ => state | cpu,
        };
        prop_assert_eq!(r.query(&pat, out).unwrap(), m.query(&pat, out));
    }
}
