//! Wire decoders on arbitrary bytes: every outcome is `Ok` or a typed
//! [`WireError`] — never a panic. The network path (`relic_server`,
//! replication) hands checksummed-but-untrusted payloads to these
//! decoders, so "no panic on garbage" is a load-bearing property, not a
//! nicety.

use proptest::prelude::*;
use relic_core::wire::{
    take_catalog, take_decomposition, take_spec, take_tuple, take_tuples, take_value, Reader,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every decoder consumes arbitrary bytes without panicking.
    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(
        bytes in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..96),
    ) {
        let _ = take_value(&mut Reader::new(&bytes));
        let _ = take_tuple(&mut Reader::new(&bytes));
        let _ = take_tuples(&mut Reader::new(&bytes));
        let _ = take_catalog(&mut Reader::new(&bytes));
        let _ = take_spec(&mut Reader::new(&bytes));
        let mut cat = relic_spec::Catalog::new();
        let _ = take_decomposition(&mut Reader::new(&bytes), &mut cat);
    }

    /// Truncating a valid tuple encoding at any point yields a typed
    /// error, not a panic — decoders on prefixes of real data are how a
    /// torn frame actually looks.
    #[test]
    fn truncated_tuple_encodings_fail_typed(
        vals in proptest::collection::vec(proptest::arbitrary::any::<i64>(), 1..5),
        cut_seed in proptest::arbitrary::any::<usize>(),
    ) {
        use relic_spec::{ColSet, Tuple, Value};
        let cols = ColSet::from_bits((1u64 << vals.len()) - 1);
        let t = Tuple::from_parts(cols, vals.into_iter().map(Value::from).collect());
        let mut buf = Vec::new();
        relic_core::wire::put_tuple(&mut buf, &t);
        let cut = cut_seed % buf.len();
        prop_assert!(take_tuple(&mut Reader::new(&buf[..cut])).is_err());
    }
}
