//! Soundness of the scratch-accumulator executor: the zero-allocation
//! binding path (`query_for_each_bindings`) must emit exactly the same tuple
//! sets as the collecting `query` path and as the reference [`Relation`]
//! model, across the Fig. 4 process-scheduler decompositions (the paper's
//! running example, covering shared join nodes, intrusive lists, and every
//! container kind).

use proptest::prelude::*;
use relic_core::{Bindings, SynthRelation};
use relic_decomp::{parse, Decomposition};
use relic_spec::{Catalog, ColSet, RelSpec, Relation, Tuple, Value};
use std::collections::BTreeSet;

/// The Fig. 4 scheduler decompositions: the paper's Fig. 2(a) shape with an
/// intrusive z-list, a dlist variant, a hash chain, a flat ordered map, and
/// an unshared join.
fn scheduler_setup() -> (Catalog, RelSpec, Vec<Decomposition>) {
    let mut cat = Catalog::new();
    let sources = [
        "let w : {ns,pid,state} . {cpu} = unit {cpu} in
         let y : {ns} . {pid,cpu} = {pid} -[htable]-> w in
         let z : {state} . {ns,pid,cpu} = {ns,pid} -[ilist]-> w in
         let x : {} . {ns,pid,state,cpu} =
           ({ns} -[htable]-> y) join ({state} -[vec]-> z) in x",
        "let w : {ns,pid,state} . {cpu} = unit {cpu} in
         let y : {ns} . {pid,cpu} = {pid} -[avl]-> w in
         let z : {state} . {ns,pid,cpu} = {ns,pid} -[dlist]-> w in
         let x : {} . {ns,pid,state,cpu} =
           ({ns} -[sortedvec]-> y) join ({state} -[vec]-> z) in x",
        "let w : {ns,pid} . {state,cpu} = unit {state,cpu} in
         let y : {ns} . {pid,state,cpu} = {pid} -[htable]-> w in
         let x : {} . {ns,pid,state,cpu} = {ns} -[htable]-> y in x",
        "let w : {ns,pid} . {state,cpu} = unit {state,cpu} in
         let x : {} . {ns,pid,state,cpu} = {ns,pid} -[avl]-> w in x",
        "let l : {ns,pid} . {state,cpu} = unit {state,cpu} in
         let r : {state,ns,pid} . {cpu} = unit {cpu} in
         let z : {state} . {ns,pid,cpu} = {ns,pid} -[dlist]-> r in
         let x : {} . {ns,pid,state,cpu} =
           ({ns,pid} -[htable]-> l) join ({state} -[vec]-> z) in x",
    ];
    let ds: Vec<Decomposition> = sources
        .iter()
        .map(|s| parse(&mut cat, s).unwrap())
        .collect();
    let spec = RelSpec::new(cat.all()).with_fd(
        cat.col("ns").unwrap() | cat.col("pid").unwrap(),
        cat.col("state").unwrap() | cat.col("cpu").unwrap(),
    );
    (cat, spec, ds)
}

/// Collects the deduplicated projections the raw binding path emits.
fn raw_query(
    r: &SynthRelation,
    scratch: &mut Bindings,
    pattern: &Tuple,
    out: ColSet,
) -> Vec<Tuple> {
    let mut set: BTreeSet<Tuple> = BTreeSet::new();
    r.query_for_each_bindings(scratch, pattern, out, |b| {
        // The emitted domain must cover the requested projection.
        assert!(
            out.is_subset(b.dom()),
            "binding domain {:?} missing requested columns {:?}",
            b.dom(),
            out
        );
        set.insert(b.project(out));
    })
    .unwrap();
    set.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// For random relations and every query signature over {ns,pid,state}:
    /// raw binding path ≡ collecting path ≡ reference model, on all five
    /// scheduler decompositions.
    #[test]
    fn bindings_path_agrees_with_query_and_model(
        rows in proptest::collection::vec((0i64..4, 0i64..6, any::<bool>(), 0i64..4), 0..40),
        which in 0usize..5,
    ) {
        let (cat, spec, ds) = scheduler_setup();
        let ns = cat.col("ns").unwrap();
        let pid = cat.col("pid").unwrap();
        let state = cat.col("state").unwrap();
        let cpu = cat.col("cpu").unwrap();
        let mut synth = SynthRelation::new(&cat, spec, ds[which].clone()).unwrap();
        let mut model = Relation::empty(cat.all());
        for (a, b, s, c) in rows {
            let t = Tuple::from_pairs([
                (ns, Value::from(a)),
                (pid, Value::from(b)),
                (state, Value::from(if s { "R" } else { "S" })),
                (cpu, Value::from(c)),
            ]);
            if synth.insert(t.clone()).unwrap_or(false) {
                model.insert(t);
            }
        }
        // One scratch reused across every query below: stale bindings from a
        // previous query must never leak into the next.
        let mut scratch = Bindings::new();
        let outs = [ns | pid, state | cpu, cat.all(), ColSet::EMPTY, cpu.into()];
        let patterns = [
            Tuple::empty(),
            Tuple::from_pairs([(ns, Value::from(1))]),
            Tuple::from_pairs([(state, Value::from("R"))]),
            Tuple::from_pairs([(ns, Value::from(2)), (pid, Value::from(3))]),
            Tuple::from_pairs([(ns, Value::from(0)), (pid, Value::from(0)), (state, Value::from("S"))]),
        ];
        for pattern in &patterns {
            for &out in &outs {
                let raw = raw_query(&synth, &mut scratch, pattern, out);
                let collected = synth.query(pattern, out).unwrap();
                prop_assert_eq!(&raw, &collected, "raw vs collecting path diverged");
                let want = model.query(pattern, out);
                prop_assert_eq!(&raw, &want, "raw path vs reference model diverged");
            }
        }
    }
}

/// The paper's Equation 1 example relation, queried through the raw path on
/// the Fig. 2(a) decomposition — a deterministic end-to-end check of the
/// exact emitted bindings (pattern + scan keys + unit payload).
#[test]
fn fig2_bindings_carry_full_valuations() {
    let (cat, spec, ds) = scheduler_setup();
    let ns = cat.col("ns").unwrap();
    let pid = cat.col("pid").unwrap();
    let state = cat.col("state").unwrap();
    let cpu = cat.col("cpu").unwrap();
    let mut r = SynthRelation::new(&cat, spec, ds[0].clone()).unwrap();
    for (a, b, s, c) in [(1, 1, "S", 7), (1, 2, "R", 4), (2, 1, "S", 5)] {
        r.insert(Tuple::from_pairs([
            (ns, Value::from(a)),
            (pid, Value::from(b)),
            (state, Value::from(s)),
            (cpu, Value::from(c)),
        ]))
        .unwrap();
    }
    let mut scratch = Bindings::new();
    let mut seen = Vec::new();
    r.query_for_each_bindings(
        &mut scratch,
        &Tuple::from_pairs([(state, Value::from("S"))]),
        ns | pid,
        |b| {
            // Full valuation available: every relation column is bound.
            assert_eq!(b.dom(), cat.all());
            seen.push((
                b.get(ns).unwrap().as_int().unwrap(),
                b.get(pid).unwrap().as_int().unwrap(),
                b.get(cpu).unwrap().as_int().unwrap(),
            ));
        },
    )
    .unwrap();
    seen.sort_unstable();
    assert_eq!(seen, vec![(1, 1, 7), (2, 1, 5)]);
    // After execution the scratch is restored to just-the-pattern state and
    // is reusable for an unrelated query.
    let mut count = 0;
    r.query_for_each_bindings(
        &mut scratch,
        &Tuple::from_pairs([(ns, Value::from(1)), (pid, Value::from(2))]),
        cpu.into(),
        |b| {
            assert_eq!(b.get(cpu).unwrap().as_int(), Some(4));
            count += 1;
        },
    )
    .unwrap();
    assert_eq!(count, 1);
}

/// Plan-cache regression (the seed double-locked get-then-insert and cloned
/// a plan per operation): the cache memoizes per signature, hands out shared
/// plans, and is invalidated by `set_cost_model`, `set_join_cost_mode`, and
/// `clear`.
#[test]
fn plan_cache_memoizes_and_invalidates() {
    let (cat, spec, ds) = scheduler_setup();
    let ns = cat.col("ns").unwrap();
    let pid = cat.col("pid").unwrap();
    let cpu = cat.col("cpu").unwrap();
    let state = cat.col("state").unwrap();
    let mut r = SynthRelation::new(&cat, spec, ds[0].clone()).unwrap();
    for (a, b, s, c) in [(1, 1, "S", 7), (1, 2, "R", 4)] {
        r.insert(Tuple::from_pairs([
            (ns, Value::from(a)),
            (pid, Value::from(b)),
            (state, Value::from(s)),
            (cpu, Value::from(c)),
        ]))
        .unwrap();
    }
    let inserted_plans = r.plan_cache_len();
    assert!(inserted_plans > 0, "insert probes should have planned");
    // Same signature twice: one cache entry.
    let pat = Tuple::from_pairs([(ns, Value::from(1)), (pid, Value::from(1))]);
    r.query(&pat, cpu.into()).unwrap();
    let after_first = r.plan_cache_len();
    r.query(&pat, cpu.into()).unwrap();
    assert_eq!(
        r.plan_cache_len(),
        after_first,
        "warm query must not re-plan"
    );
    // set_cost_model invalidates.
    let observed = r.observed_cost_model();
    r.set_cost_model(observed);
    assert_eq!(r.plan_cache_len(), 0, "set_cost_model must clear the cache");
    r.query(&pat, cpu.into()).unwrap();
    assert!(r.plan_cache_len() > 0);
    // set_join_cost_mode invalidates.
    r.set_join_cost_mode(relic_query::JoinCostMode::Realistic);
    assert_eq!(
        r.plan_cache_len(),
        0,
        "set_join_cost_mode must clear the cache"
    );
    r.query(&pat, cpu.into()).unwrap();
    assert!(r.plan_cache_len() > 0);
    // clear() invalidates (observed-cost plans reflect the old instance).
    r.clear();
    assert_eq!(r.plan_cache_len(), 0, "clear must drop memoized plans");
    // The relation stays fully usable afterwards.
    r.insert(Tuple::from_pairs([
        (ns, Value::from(5)),
        (pid, Value::from(5)),
        (state, Value::from("R")),
        (cpu, Value::from(1)),
    ]))
    .unwrap();
    assert_eq!(r.query_full(&Tuple::empty()).unwrap().len(), 1);
}

/// The read-mostly cache serves concurrent warm readers without exclusive
/// locking; this is a smoke check that shared-reference queries from many
/// threads agree (`SynthRelation` is `Sync` on the query path).
#[test]
fn concurrent_warm_queries_agree() {
    let (cat, spec, ds) = scheduler_setup();
    let ns = cat.col("ns").unwrap();
    let pid = cat.col("pid").unwrap();
    let state = cat.col("state").unwrap();
    let cpu = cat.col("cpu").unwrap();
    let mut r = SynthRelation::new(&cat, spec, ds[1].clone()).unwrap();
    for i in 0..40i64 {
        r.insert(Tuple::from_pairs([
            (ns, Value::from(i % 4)),
            (pid, Value::from(i)),
            (state, Value::from(if i % 2 == 0 { "R" } else { "S" })),
            (cpu, Value::from(i % 3)),
        ]))
        .unwrap();
    }
    let r = &r;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..8 {
            handles.push(s.spawn(move || {
                let mut scratch = Bindings::new();
                let mut total = 0usize;
                for round in 0..50 {
                    let pat = Tuple::from_pairs([(ns, Value::from((t + round) % 4))]);
                    r.query_for_each_bindings(&mut scratch, &pat, pid.into(), |_| total += 1)
                        .unwrap();
                }
                total
            }));
        }
        let counts: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread sweeps all four namespaces the same number of times.
        assert!(counts.iter().all(|&c| c == counts[0]));
        assert_eq!(counts[0], 50 * 10);
    });
}
