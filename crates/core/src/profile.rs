//! Workload profiling: cheap operation counters on the relation's hot
//! paths, and the [`WorkloadProfile`] snapshot the autotuner consumes.
//!
//! The paper's §4.3 notes that the cost model's counts "can be provided by
//! the user, or recorded as part of a profiling run"; §5's autotuner then
//! picks the best decomposition for a *measured* workload. The recorder here
//! closes that loop at runtime: every public query records its
//! `(avail, ranged, out)` column-set signature, every successful insert and
//! every removal pattern bumps a counter, and
//! [`SynthRelation::profile`](crate::SynthRelation::profile) snapshots the
//! counts so `relic_autotune` can rebuild a `Workload` from what actually
//! ran (profile → recommend → migrate).
//!
//! Recording is designed to stay off the allocator once warm: a signature
//! seen before costs one shared-lock acquisition, one hash probe, and one
//! relaxed atomic increment. Only the *first* occurrence of a signature
//! takes the write lock and allocates its counter entry.

use relic_spec::ColSet;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// The `(avail, ranged, out)` bit signature of a query.
type SigKey = (u64, u64, u64);

/// Interior-mutable operation counters, owned by a `SynthRelation`.
///
/// Queries take `&self`, so the recorder mirrors the plan cache's
/// read-mostly discipline: warm signatures increment an existing
/// [`AtomicU64`] under the read lock; the write lock is only taken to
/// insert a signature's first counter.
#[derive(Debug, Default)]
pub(crate) struct ProfileCounters {
    queries: RwLock<HashMap<SigKey, AtomicU64>>,
    inserts: AtomicU64,
    removes: RwLock<HashMap<u64, AtomicU64>>,
}

impl ProfileCounters {
    /// Counts one query with equality columns `avail`, interval columns
    /// `ranged`, and output columns `out`.
    pub(crate) fn record_query(&self, avail: ColSet, ranged: ColSet, out: ColSet) {
        let key = (avail.bits(), ranged.bits(), out.bits());
        if let Some(c) = self.queries.read().expect("profile poisoned").get(&key) {
            c.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.queries
            .write()
            .expect("profile poisoned")
            .entry(key)
            .or_insert_with(|| AtomicU64::new(0))
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` inserted tuples.
    pub(crate) fn record_inserts(&self, n: u64) {
        if n > 0 {
            self.inserts.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts one removal with pattern columns `pattern`.
    pub(crate) fn record_remove(&self, pattern: ColSet) {
        let key = pattern.bits();
        if let Some(c) = self.removes.read().expect("profile poisoned").get(&key) {
            c.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.removes
            .write()
            .expect("profile poisoned")
            .entry(key)
            .or_insert_with(|| AtomicU64::new(0))
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots the counters into a [`WorkloadProfile`] (sorted, hence
    /// deterministic).
    pub(crate) fn snapshot(&self) -> WorkloadProfile {
        let mut queries: Vec<(ColSet, ColSet, ColSet, u64)> = self
            .queries
            .read()
            .expect("profile poisoned")
            .iter()
            .map(|(&(a, r, o), c)| {
                (
                    ColSet::from_bits(a),
                    ColSet::from_bits(r),
                    ColSet::from_bits(o),
                    c.load(Ordering::Relaxed),
                )
            })
            .collect();
        queries.sort_by_key(|&(a, r, o, _)| (a.bits(), r.bits(), o.bits()));
        let mut removes: Vec<(ColSet, u64)> = self
            .removes
            .read()
            .expect("profile poisoned")
            .iter()
            .map(|(&p, c)| (ColSet::from_bits(p), c.load(Ordering::Relaxed)))
            .collect();
        removes.sort_by_key(|&(p, _)| p.bits());
        WorkloadProfile {
            queries,
            inserts: self.inserts.load(Ordering::Relaxed),
            removes,
        }
    }

    /// Zeroes every counter (the recording window restarts).
    pub(crate) fn reset(&self) {
        self.queries.write().expect("profile poisoned").clear();
        self.inserts.store(0, Ordering::Relaxed);
        self.removes.write().expect("profile poisoned").clear();
    }
}

/// A snapshot of the operations a relation has served: the measured
/// workload the autotuner's `Workload::from_profile` consumes.
///
/// Signatures are column *sets*, not values, so a profile is independent of
/// the decomposition that recorded it — it survives a
/// [`migrate_to`](crate::SynthRelation::migrate_to) unchanged and keeps
/// accumulating across representations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkloadProfile {
    /// Per-signature query counts: `(avail, ranged, out, count)`, where
    /// `avail` are the equality-bound columns and `ranged` the columns
    /// carrying interval comparisons (empty for plain queries).
    pub queries: Vec<(ColSet, ColSet, ColSet, u64)>,
    /// Number of tuples successfully inserted.
    pub inserts: u64,
    /// Per-pattern removal counts: `(pattern columns, count)`.
    pub removes: Vec<(ColSet, u64)>,
}

impl WorkloadProfile {
    /// Has nothing been recorded?
    pub fn is_empty(&self) -> bool {
        self.total_ops() == 0
    }

    /// Total recorded operations (queries + inserts + removes).
    pub fn total_ops(&self) -> u64 {
        self.queries.iter().map(|&(_, _, _, n)| n).sum::<u64>()
            + self.inserts
            + self.removes.iter().map(|&(_, n)| n).sum::<u64>()
    }

    /// Accumulates another profile into this one (used to aggregate
    /// per-shard profiles into a whole-relation view).
    pub fn merge(&mut self, other: &WorkloadProfile) {
        for &(a, r, o, n) in &other.queries {
            match self
                .queries
                .iter_mut()
                .find(|(qa, qr, qo, _)| *qa == a && *qr == r && *qo == o)
            {
                Some(q) => q.3 += n,
                None => self.queries.push((a, r, o, n)),
            }
        }
        self.queries
            .sort_by_key(|&(a, r, o, _)| (a.bits(), r.bits(), o.bits()));
        self.inserts += other.inserts;
        for &(p, n) in &other.removes {
            match self.removes.iter_mut().find(|(rp, _)| *rp == p) {
                Some(r) => r.1 += n,
                None => self.removes.push((p, n)),
            }
        }
        self.removes.sort_by_key(|&(p, _)| p.bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relic_spec::ColId;

    fn cs(ids: &[usize]) -> ColSet {
        ids.iter().map(|&i| ColId::from_index(i)).collect()
    }

    #[test]
    fn counters_accumulate_and_snapshot_deterministically() {
        let c = ProfileCounters::default();
        c.record_query(cs(&[0]), ColSet::EMPTY, cs(&[1]));
        c.record_query(cs(&[0]), ColSet::EMPTY, cs(&[1]));
        c.record_query(cs(&[1]), cs(&[2]), cs(&[0]));
        c.record_inserts(3);
        c.record_remove(cs(&[0]));
        let p = c.snapshot();
        assert_eq!(p.queries.len(), 2);
        assert_eq!(p.queries[0], (cs(&[0]), ColSet::EMPTY, cs(&[1]), 2));
        assert_eq!(p.inserts, 3);
        assert_eq!(p.removes, vec![(cs(&[0]), 1)]);
        assert_eq!(p.total_ops(), 7);
        c.reset();
        assert!(c.snapshot().is_empty());
    }

    #[test]
    fn merge_sums_matching_signatures() {
        let a = ProfileCounters::default();
        a.record_query(cs(&[0]), ColSet::EMPTY, cs(&[1]));
        a.record_inserts(1);
        let b = ProfileCounters::default();
        b.record_query(cs(&[0]), ColSet::EMPTY, cs(&[1]));
        b.record_query(cs(&[2]), ColSet::EMPTY, cs(&[1]));
        b.record_remove(cs(&[2]));
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.queries.len(), 2);
        assert_eq!(m.queries[0].3, 2);
        assert_eq!(m.inserts, 1);
        assert_eq!(m.removes, vec![(cs(&[2]), 1)]);
    }
}
